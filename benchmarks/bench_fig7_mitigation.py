"""Figure 7 — FaP vs FaPIT vs FalVolt accuracy at 10 %, 30 % and 60 % fault rates.

The key mitigation result of the paper: fault-aware pruning alone (FaP)
collapses as the fault rate grows, retraining (FaPIT) recovers most of the
accuracy, and FalVolt (retraining with per-layer threshold optimization)
recovers the baseline even at 60 % faulty PEs.
"""

from conftest import bench_config, emit, run_once
from repro.experiments import PAPER_FAULT_RATES, run_fig7_mitigation_comparison
import pytest

#: Full figure reproduction: trains baselines for every dataset.
pytestmark = pytest.mark.slow


def test_fig7_mitigation_comparison(benchmark, dataset_name, dataset_baseline):
    config = bench_config(dataset_name)
    records = run_once(benchmark, run_fig7_mitigation_comparison, config,
                       fault_rates=PAPER_FAULT_RATES,
                       methods=("fap", "fapit", "falvolt"))
    emit(records, name=f"fig7_{dataset_name}",
         title=f"Fig. 7 ({dataset_name}): mitigation accuracy vs fault rate",
         table_columns=["dataset", "fault_rate", "method", "accuracy", "accuracy_drop",
                        "pruned_fraction"],
         series=("fault_rate", "accuracy", "method"))

    by_key = {(r["method"], r["fault_rate"]): r["accuracy"] for r in records}
    baseline = records[0]["baseline_accuracy"]
    # Shape checks mirroring the paper's conclusions:
    #   (1) at 60% faults, FaP has lost a large amount of accuracy;
    #   (2) retraining-based methods beat FaP at every fault rate;
    #   (3) FalVolt recovers most of the loss even at 60% faults (the exact
    #       gap to the baseline depends on the small-scale retraining budget;
    #       see EXPERIMENTS.md).
    assert by_key[("FaP", 0.60)] < baseline - 0.25
    for rate in PAPER_FAULT_RATES:
        assert by_key[("FalVolt", rate)] >= by_key[("FaP", rate)]
        assert by_key[("FaPIT", rate)] >= by_key[("FaP", rate)]
    assert by_key[("FalVolt", 0.30)] >= baseline - 0.15
    assert by_key[("FalVolt", 0.60)] >= by_key[("FaP", 0.60)] + 0.25
