"""Shared infrastructure for the figure-reproduction benchmarks.

Each benchmark module regenerates one figure of the paper: it runs the
corresponding experiment driver once (via ``benchmark.pedantic`` so
pytest-benchmark records the wall-clock cost without repeating the run),
prints the resulting rows/series in the same shape the paper reports, and
saves the raw records as JSON under ``benchmarks/results/``.

Scaling: the benchmarks default to the "small" experiment scale so the whole
suite finishes in minutes on a laptop CPU.  Set ``REPRO_BENCH_SCALE=full``
for the larger overnight configuration.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.experiments import default_config, format_series, format_table, prepare_baseline
from repro.utils import save_records

#: Where benchmark tables/JSON land.  CI points this at a scratch directory
#: (``REPRO_BENCH_RESULTS_DIR=bench-fresh``) so the freshly measured numbers
#: can be diffed against the *recorded* baselines in ``benchmarks/results/``
#: by the perf-regression gate instead of overwriting them.
RESULTS_DIR = Path(os.environ.get(
    "REPRO_BENCH_RESULTS_DIR", Path(__file__).resolve().parent / "results"))

#: Experiment scale used by every benchmark ("small" or "full").
BENCH_SCALE = os.environ.get("REPRO_BENCH_SCALE", "small")

#: Datasets exercised by the benchmarks.  All three paper datasets by default;
#: set REPRO_BENCH_DATASETS=mnist (comma separated) to restrict.
BENCH_DATASETS = tuple(
    name.strip() for name in
    os.environ.get("REPRO_BENCH_DATASETS", "mnist,nmnist,dvs_gesture").split(",") if name.strip())


def bench_config(dataset: str, **overrides):
    """Benchmark configuration for ``dataset`` at the selected scale."""

    return default_config(dataset, scale=BENCH_SCALE, **overrides)


@pytest.fixture(scope="session", params=BENCH_DATASETS)
def dataset_name(request):
    """Parametrised dataset fixture shared by the per-figure benchmarks."""

    return request.param


@pytest.fixture(scope="session")
def dataset_baseline(dataset_name):
    """Trained baseline model for the dataset (cached across benchmark modules)."""

    return prepare_baseline(bench_config(dataset_name))


def emit(records, *, name: str, title: str, table_columns=None,
         series=None) -> None:
    """Print records (table and/or series) and persist them as JSON + text."""

    chunks = []
    if table_columns:
        chunks.append(format_table(records, columns=table_columns, title=title))
    if series:
        x, y, group = series
        chunks.append(format_series(records, x=x, y=y, group_by=group,
                                    title=f"{title} (series)"))
    text = "\n".join(chunks)
    print("\n" + text)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    save_records(records, RESULTS_DIR / f"{name}.json")


def run_once(benchmark, fn, *args, **kwargs):
    """Execute ``fn`` exactly once under pytest-benchmark timing."""

    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1,
                              warmup_rounds=0)
