"""Campaign engine micro-benchmark: batched vs sequential sweep cost.

Runs the same Fig. 5b-style vulnerability sweep (faulty-PE counts x trials)
through both campaign engines against one trained micro-model and reports:

* per-engine wall-clock cost and the batched speedup,
* that both engines produce **identical** records (same accuracies, same
  seeds -- the bit-identity guarantee of the batched path),
* the on-disk cache: a warm re-run answers from JSON without simulating.

The sweep is evaluated in the streaming regime (small evaluation batches),
which is where re-running a full inference per fault map pays the most
per-operation overhead and the batched engine's fold over fault maps pays
off.  Larger evaluation batches shrink the gap (the arithmetic is identical
in both engines); the point of the engine is that an entire sweep point --
or an entire sweep -- costs a handful of folded passes instead of
``points x trials`` full inferences, plus free re-runs through the cache.
"""

import time

import numpy as np
import pytest

from conftest import RESULTS_DIR
from repro.datasets import DataLoader
from repro.experiments import ExperimentConfig, format_table, prepare_baseline
from repro.faults import sweep_faulty_pe_count
from repro.utils import save_records

#: Micro configuration: trains in seconds, large enough to be above chance.
CAMPAIGN_CONFIG = ExperimentConfig(
    dataset="mnist", num_train=120, num_test=50,
    dataset_kwargs=(("max_shift", 1), ("noise_std", 0.04)),
    channels=6, hidden_units=32, time_steps=3,
    batch_size=12, baseline_epochs=8, baseline_lr=2.5e-2,
    array_rows=32, array_cols=32, seed=13)

COUNTS = (0, 2, 4, 8, 16)
TRIALS = 8
EVAL_BATCH = 2  # streaming regime: many small batches per fault map


@pytest.fixture(scope="module")
def campaign_setup():
    baseline = prepare_baseline(CAMPAIGN_CONFIG)
    model = baseline.model_factory()
    loader = DataLoader(baseline.test_loader.dataset, batch_size=EVAL_BATCH)
    return model, loader


def run_sweep(model, loader, engine, cache_dir=None):
    start = time.perf_counter()
    records = sweep_faulty_pe_count(
        model, loader,
        rows=CAMPAIGN_CONFIG.array_rows, cols=CAMPAIGN_CONFIG.array_cols,
        counts=COUNTS, trials=TRIALS, seed=CAMPAIGN_CONFIG.seed,
        dataset="mnist", engine=engine, cache_dir=cache_dir)
    return records, time.perf_counter() - start


def test_bench_campaign_batched_vs_sequential(campaign_setup):
    model, loader = campaign_setup
    sequential_records, sequential_time = run_sweep(model, loader, "sequential")
    batched_records, batched_time = run_sweep(model, loader, "batched")
    speedup = sequential_time / batched_time

    rows = [{
        "engine": "sequential", "points": len(COUNTS), "trials": TRIALS,
        "fault_maps": (len(COUNTS) - 1) * TRIALS, "seconds": sequential_time,
        "speedup": 1.0,
    }, {
        "engine": "batched", "points": len(COUNTS), "trials": TRIALS,
        "fault_maps": (len(COUNTS) - 1) * TRIALS, "seconds": batched_time,
        "speedup": speedup,
    }]
    table = format_table(rows, columns=["engine", "points", "trials", "fault_maps",
                                        "seconds", "speedup"],
                         title="Campaign engine: Fig. 5b sweep cost")
    print("\n" + table)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "campaign_engine.txt").write_text(table + "\n", encoding="utf-8")
    save_records(rows, RESULTS_DIR / "campaign_engine.json")

    # The acceptance property: identical records (same accuracies, same seeds).
    assert batched_records == sequential_records
    # The fault-free point reports the software baseline.
    assert batched_records[0]["num_faulty_pes"] == 0
    # Wall-clock: the batched engine must be decisively faster in this regime.
    assert speedup >= 1.5, f"batched speedup only {speedup:.2f}x"


def test_bench_campaign_cache_hit(campaign_setup, tmp_path):
    model, loader = campaign_setup
    cold_records, cold_time = run_sweep(model, loader, "batched", cache_dir=tmp_path)
    warm_records, warm_time = run_sweep(model, loader, "batched", cache_dir=tmp_path)
    speedup = cold_time / max(warm_time, 1e-9)
    print(f"\ncampaign cache: cold {cold_time:.2f}s, warm {warm_time:.3f}s "
          f"({speedup:.0f}x)")

    assert warm_records == cold_records
    assert list(tmp_path.glob("*.json")), "cache directory is empty"
    # A warm sweep must not re-simulate: >=5x is conservative (typically >50x).
    assert speedup >= 5.0, f"cache-hit speedup only {speedup:.2f}x"


def test_bench_campaign_scaling_with_trials(campaign_setup):
    """Batched cost grows sublinearly in trials versus the sequential path."""

    model, loader = campaign_setup
    times = {}
    for trials in (2, 8):
        start = time.perf_counter()
        sweep_faulty_pe_count(
            model, loader, rows=CAMPAIGN_CONFIG.array_rows,
            cols=CAMPAIGN_CONFIG.array_cols, counts=(4,), trials=trials,
            seed=CAMPAIGN_CONFIG.seed, engine="batched")
        times[trials] = time.perf_counter() - start
    print(f"\nbatched sweep point: trials=2 {times[2]:.2f}s, trials=8 {times[8]:.2f}s")
    # 4x the fault maps should cost well under 4x the wall-clock.
    assert times[8] < 3.5 * times[2]
