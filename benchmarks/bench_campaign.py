"""Campaign engine micro-benchmark: sequential vs batched vs fused sweep cost.

Runs the same Fig. 5b-style vulnerability sweep (faulty-PE counts x trials)
through all three campaign engines against one trained micro-model and
reports:

* per-engine wall-clock cost, the speedup over the sequential oracle and
  the fused engine's speedup over the batched autograd engine,
* the fused engine's machine-relative ratios for the chain fast path vs
  the untiled reference, prefix-level batching vs per-group application,
  2 fork lanes vs 1 (the bit-safe intra-sweep parallelism knob), the
  stuck-at sweep vs the same sweep under transient (SEU) schedules, and
  the compiled cffi kernel backend vs the numpy oracle backend,
* that all engines produce **identical** records (same accuracies, same
  seeds -- the float64 bit-identity guarantee), including the transient
  sweep (phase-aware fused engine vs the per-schedule sequential oracle),
* the on-disk cache: a warm re-run answers from JSON without simulating,
* the sharded orchestrator: a 2-worker chunked sweep produces byte-identical
  records and a resumed sweep answers from the unit cache.

The sweep is evaluated in the streaming regime (small evaluation batches),
which is where re-running a full inference per fault map pays the most
per-operation overhead.  The batched engine (PR 1) folds a point's fault
maps into the batch axis of one autograd pass; the fused engine (PR 2)
additionally drops the autograd graph entirely -- lowered plan, in-place
membrane updates, static-prefix caching and clean-prefix sharing across
fault maps that have not yet diverged.  On the box that produced
``results/campaign_engine.json``, PR 1 recorded the batched engine at
2.43x over sequential; the fused engine's target is a further >= 2x over
that recorded batched cost.
"""

import time

import numpy as np
import pytest

from conftest import RESULTS_DIR
from repro.datasets import DataLoader
from repro.experiments import ExperimentConfig, format_table, prepare_baseline
from repro.faults import sweep_faulty_pe_count
from repro.utils import save_records

#: Micro configuration: trains in seconds, large enough to be above chance.
CAMPAIGN_CONFIG = ExperimentConfig(
    dataset="mnist", num_train=120, num_test=50,
    dataset_kwargs=(("max_shift", 1), ("noise_std", 0.04)),
    channels=6, hidden_units=32, time_steps=3,
    batch_size=12, baseline_epochs=8, baseline_lr=2.5e-2,
    array_rows=32, array_cols=32, seed=13)

COUNTS = (0, 2, 4, 8, 16)
TRIALS = 8
EVAL_BATCH = 2  # streaming regime: many small batches per fault map

#: Cold batched-engine cost on the reference box as recorded by PR 1's
#: version of this benchmark.  PR 1 kept results/ untracked, so that file
#: is gone; the figure is carried forward here, in the CHANGES.md PR 2
#: entry, and as a reference row in the JSON this benchmark writes -- and
#: PR 2 now tracks the result files in git precisely so future recorded
#: baselines survive.  The fused engine's acceptance target is >= 2x over
#: this cost on the same box.  Note the batched engine itself got faster
#: in PR 2 (shared im2col/chain-scatter optimizations), so the in-run
#: "vs_batched" ratio is measured against a stronger baseline.
PR1_BATCHED_SECONDS = 1.884


@pytest.fixture(scope="module")
def campaign_setup():
    baseline = prepare_baseline(CAMPAIGN_CONFIG)
    model = baseline.model_factory()
    loader = DataLoader(baseline.test_loader.dataset, batch_size=EVAL_BATCH)
    return model, loader


def run_sweep(model, loader, engine, cache_dir=None, dtype="float64", repeats=1):
    """Run the sweep ``repeats`` times; return (records, best wall time).

    The best-of-N guards the comparison against scheduler noise on loaded
    CI boxes.  Timed comparisons must pass ``cache_dir=None`` (the
    default): with a cache directory, iterations after the first answer
    from disk and measure cache reads, not simulation.
    """

    best = float("inf")
    records = None
    for _ in range(repeats):
        start = time.perf_counter()
        records = sweep_faulty_pe_count(
            model, loader,
            rows=CAMPAIGN_CONFIG.array_rows, cols=CAMPAIGN_CONFIG.array_cols,
            counts=COUNTS, trials=TRIALS, seed=CAMPAIGN_CONFIG.seed,
            dataset="mnist", engine=engine, cache_dir=cache_dir, dtype=dtype)
        best = min(best, time.perf_counter() - start)
    return records, best


#: Transient-schedule parameters for the transient benchmark rows; the
#: step count matches the micro-model's ``time_steps``.
TRANSIENT_PARAMS = {"process": "bernoulli", "num_steps": 3, "rate": 0.5}


def run_sweep_interleaved(model, loader, configs, rounds=3):
    """Best-of-``rounds`` sweep cost per config, measured round-robin.

    ``configs`` maps label -> (engine, chain_fastpath, prefix_batch, dtype,
    lane_threads, fault_model, backend).  Interleaving the configurations
    (instead of timing each one back to back) keeps a load spike on a
    shared CI box from billing one configuration only.
    """

    from repro.systolic import chain_kernel

    times = {label: float("inf") for label in configs}
    records = {}
    saved = (chain_kernel.FASTPATH_ENABLED, chain_kernel.PREFIX_BATCH_ENABLED)
    try:
        for _ in range(rounds):
            for label, (engine, fastpath, prefix, dtype, lane_threads,
                        fault_model, backend) in configs.items():
                chain_kernel.FASTPATH_ENABLED = fastpath
                chain_kernel.PREFIX_BATCH_ENABLED = prefix
                params = TRANSIENT_PARAMS if fault_model == "transient" else None
                start = time.perf_counter()
                records[label] = sweep_faulty_pe_count(
                    model, loader,
                    rows=CAMPAIGN_CONFIG.array_rows, cols=CAMPAIGN_CONFIG.array_cols,
                    counts=COUNTS, trials=TRIALS, seed=CAMPAIGN_CONFIG.seed,
                    dataset="mnist", engine=engine, dtype=dtype,
                    lane_threads=lane_threads,
                    fault_model=fault_model, fault_params=params,
                    backend=backend)
                times[label] = min(times[label], time.perf_counter() - start)
    finally:
        chain_kernel.FASTPATH_ENABLED, chain_kernel.PREFIX_BATCH_ENABLED = saved
    return records, times


def test_bench_campaign_engines(campaign_setup):
    from repro.snn.inference import available_backends

    model, loader = campaign_setup
    have_cffi = "cffi" in available_backends()
    # Warm-up pass so BLAS thread pools / allocators do not bill the first
    # timed engine; the cffi warm-up additionally absorbs the one-time lazy
    # build (or cached-.so load) of the compiled extension.
    run_sweep(model, loader, "fused")
    if have_cffi:
        sweep_faulty_pe_count(
            model, loader,
            rows=CAMPAIGN_CONFIG.array_rows, cols=CAMPAIGN_CONFIG.array_cols,
            counts=COUNTS, trials=TRIALS, seed=CAMPAIGN_CONFIG.seed,
            dataset="mnist", engine="fused", backend="cffi")

    configs = {
        "sequential": ("sequential", True, True, "float64", None, "stuck_at", None),
        "batched": ("batched", True, True, "float64", None, "stuck_at", None),
        "fused": ("fused", True, True, "float64", None, "stuck_at", None),
        "fused-chainref": ("fused", False, True, "float64", None, "stuck_at", None),
        "fused-noprefix": ("fused", True, False, "float64", None, "stuck_at", None),
        "fused-lane2": ("fused", True, True, "float64", 2, "stuck_at", None),
        "fused-f32": ("fused", True, True, "float32", None, "stuck_at", None),
        "sequential-seu": ("sequential", True, True, "float64", None, "transient", None),
        "fused-seu": ("fused", True, True, "float64", None, "transient", None),
    }
    if have_cffi:
        configs["fused-cffi"] = (
            "fused", True, True, "float64", None, "stuck_at", "cffi")
    records, times = run_sweep_interleaved(model, loader, configs, rounds=5)

    fused_vs_batched = times["batched"] / times["fused"]
    fastpath_speedup = times["fused-chainref"] / times["fused"]
    prefix_speedup = times["fused-noprefix"] / times["fused"]
    lane_speedup = times["fused"] / times["fused-lane2"]
    transient_ratio = times["fused"] / times["fused-seu"]
    backend_speedup = (times["fused"] / times["fused-cffi"]
                       if have_cffi else None)
    rows = []
    for engine in ("sequential", "batched", "fused", "fused-cffi",
                   "fused-chainref", "fused-noprefix", "fused-lane2",
                   "fused-f32", "sequential-seu", "fused-seu"):
        if engine not in times:
            continue
        rows.append({
            "engine": engine, "points": len(COUNTS), "trials": TRIALS,
            "fault_maps": (len(COUNTS) - 1) * TRIALS,
            "seconds": times[engine],
            "speedup": times["sequential"] / times[engine],
            "vs_batched": times["batched"] / times[engine],
        })
    identical = (records["batched"] == records["sequential"]
                 and records["fused"] == records["sequential"]
                 and records["fused-chainref"] == records["sequential"]
                 and records["fused-noprefix"] == records["sequential"]
                 and records["fused-lane2"] == records["sequential"]
                 # The compiled backend must reproduce the oracle's records.
                 and ("fused-cffi" not in records
                      or records["fused-cffi"] == records["sequential"])
                 # The transient (SEU) schedule sweep: the phase-aware fused
                 # engine must match the per-schedule sequential oracle.
                 and records["fused-seu"] == records["sequential-seu"])
    table = format_table(rows, columns=["engine", "points", "trials", "fault_maps",
                                        "seconds", "speedup", "vs_batched"],
                         title="Campaign engines: Fig. 5b sweep cost")
    backend_note = (f"cffi backend vs numpy: {backend_speedup:.2f}x; "
                    if backend_speedup is not None else
                    "cffi backend vs numpy: n/a (backend unavailable); ")
    summary = (f"fused vs batched (this run): {fused_vs_batched:.2f}x; "
               f"chain fast path vs untiled reference: {fastpath_speedup:.2f}x; "
               f"prefix batching vs per-group: {prefix_speedup:.2f}x; "
               f"2 fork lanes vs 1: {lane_speedup:.2f}x; "
               f"stuck-at fused vs transient fused: {transient_ratio:.2f}x; "
               + backend_note +
               f"fused vs PR 1 recorded batched ({PR1_BATCHED_SECONDS:.3f}s): "
               f"{PR1_BATCHED_SECONDS / times['fused']:.2f}x")
    print("\n" + table + "\n" + summary)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "campaign_engine.txt").write_text(table + "\n" + summary + "\n",
                                                    encoding="utf-8")
    save_records(rows + [{
        "engine": "batched-pr1-reference",
        "seconds": PR1_BATCHED_SECONDS,
        "note": "cold batched cost recorded by PR 1's benchmark on the "
                "reference box, before PR 2's shared-path optimizations; "
                "the fused acceptance target is >= 2x over this figure",
    }, {
        "engine": "meta",
        "identical_records": bool(identical),
        "chain_fastpath_speedup": fastpath_speedup,
        "prefix_batch_speedup": prefix_speedup,
        "lane_speedup": lane_speedup,
        "transient_overhead": transient_ratio,
        **({"backend_speedup": backend_speedup}
           if backend_speedup is not None else {}),
        "note": "identical_records pins float64 bit-identity across all "
                "engines, both chain paths, prefix batching on/off, "
                "1 vs 2 fork lanes, the compiled cffi kernel backend, and "
                "the transient (SEU) schedule sweep "
                "(phase-aware fused vs per-schedule sequential); the "
                "*_speedup entries are cold Fig. 5b sweep cost ratios "
                "measured within this run (machine-relative): untiled "
                "reference chain path over the uniform-tile fast path, "
                "per-group application over prefix-level batching, one "
                "fork lane over two, and the numpy oracle backend over the "
                "compiled cffi backend (backend_speedup, present only when "
                "the cffi backend is available); transient_overhead is the "
                "stuck-at fused sweep cost over the transient-schedule "
                "fused sweep cost (a drop means the transient path got "
                "relatively slower)",
    }], RESULTS_DIR / "campaign_engine.json")

    # The acceptance property: identical records across all three engines,
    # both chain-application paths, prefix batching on/off and 1 vs 2 fork
    # lanes (same accuracies, same seeds -- float64 bit-identity).
    assert identical, "engine records diverged"
    # The fault-free point reports the software baseline.
    assert records["fused"][0]["num_faulty_pes"] == 0
    # Wall-clock: conservative bounds that hold across CI machines; the
    # recorded results document the precise ratios on the reference box.
    assert times["sequential"] / times["batched"] >= 1.5, \
        f"batched speedup only {times['sequential'] / times['batched']:.2f}x"
    assert fused_vs_batched >= 1.25, \
        f"fused only {fused_vs_batched:.2f}x over batched"
    assert fastpath_speedup >= 1.1, \
        f"chain fast path only {fastpath_speedup:.2f}x over the reference path"
    # Prefix batching must never cost wall-clock; lane threads may not win
    # on single-core boxes but must stay within thread-overhead noise.  The
    # recorded ratios are gated machine-relative by check_regression.py.
    assert prefix_speedup >= 0.9, \
        f"prefix batching slowed the sweep: {prefix_speedup:.2f}x"
    assert lane_speedup >= 0.5, \
        f"2 fork lanes cost {1 / lane_speedup:.2f}x over serial lanes"
    # The transient path re-prepares per *phase*, not per step; even with
    # every step in its own phase the fused sweep must stay within a small
    # multiple of the stuck-at sweep.  The recorded ratio is gated
    # machine-relative by check_regression.py.
    assert transient_ratio >= 0.15, \
        f"transient sweep cost {1 / transient_ratio:.2f}x over stuck-at"
    # The compiled backend must never lose to the numpy oracle on the cold
    # sweep (conservative in-run floor; the recorded ratio -- >= 1.15x on
    # the reference box -- is gated machine-relative by check_regression.py).
    if backend_speedup is not None:
        assert backend_speedup >= 1.0, \
            f"cffi backend only {backend_speedup:.2f}x over the numpy oracle"


def test_bench_campaign_cache_hit(campaign_setup, tmp_path):
    model, loader = campaign_setup
    cold_records, cold_time = run_sweep(model, loader, "fused", cache_dir=tmp_path)
    warm_records, warm_time = run_sweep(model, loader, "fused", cache_dir=tmp_path)
    speedup = cold_time / max(warm_time, 1e-9)
    print(f"\ncampaign cache: cold {cold_time:.2f}s, warm {warm_time:.3f}s "
          f"({speedup:.0f}x)")

    assert warm_records == cold_records
    assert list(tmp_path.glob("*.json")), "cache directory is empty"
    # A warm sweep must not re-simulate: >=5x is conservative (typically >50x).
    assert speedup >= 5.0, f"cache-hit speedup only {speedup:.2f}x"


def test_bench_campaign_orchestrator(campaign_setup, tmp_path):
    """Orchestrated sweeps: identical records, and resume skips all work.

    Byte-identity of the orchestrated/sharded records with the serial
    runner is the acceptance property; wall-clock is reported but not
    asserted (on single-core CI boxes the fork pool cannot win, and the
    worker processes re-lower the model once each -- the pool pays off on
    multi-core hosts with larger grids).
    """

    import json

    from repro.faults import CampaignPoint, CampaignRunner

    model, loader = campaign_setup
    points = [
        CampaignPoint.for_trials(
            CAMPAIGN_CONFIG.array_rows, CAMPAIGN_CONFIG.array_cols, count,
            TRIALS, bit_position=None, stuck_type="sa1",
            seed=CAMPAIGN_CONFIG.seed + count, label="bench", dataset="mnist")
        for count in COUNTS if count
    ]

    start = time.perf_counter()
    serial = CampaignRunner(model, loader).run(points)
    serial_time = time.perf_counter() - start

    start = time.perf_counter()
    orchestrated = CampaignRunner(model, loader, workers=2, trial_chunk=2,
                                  cache_dir=tmp_path / "pool").run(points)
    pool_time = time.perf_counter() - start

    start = time.perf_counter()
    resumed = CampaignRunner(model, loader, workers=2, trial_chunk=2,
                             cache_dir=tmp_path / "pool").run(points)
    resume_time = time.perf_counter() - start

    print(f"\norchestrator: serial {serial_time:.2f}s, 2 workers "
          f"{pool_time:.2f}s, resume {resume_time:.3f}s "
          f"({pool_time / max(resume_time, 1e-9):.0f}x)")

    canonical = lambda records: json.dumps(records, sort_keys=True)  # noqa: E731
    assert canonical(orchestrated) == canonical(serial)
    assert canonical(resumed) == canonical(serial)
    # A resumed sweep answers purely from the unit cache.
    assert resume_time < 0.5 * pool_time


def test_bench_campaign_chaos_recovery(campaign_setup, tmp_path):
    """Failure-recovery cost on the heartbeat pool: bounded overhead, zero drift.

    The heartbeat/watchdog machinery is always on in pool mode, so the
    clean 2-worker run prices its steady-state cost against the serial
    oracle (reported by test_bench_campaign_orchestrator).  The chaos run
    then injects one worker crash (SIGKILL-equivalent ``os._exit`` →
    kill + fork replacement + unit redo) and one poisoned attempt
    (in-worker exception → backoff + retry) and must still produce
    byte-identical records on its own.  The watchdog-kill path for a real
    hang waits out the soft deadline by design, so it is priced by the
    tier-1 tests and the CI chaos smoke, not timed here.
    """

    import json

    from repro.faults import CampaignOrchestrator, CampaignPoint, CampaignRunner
    from repro.testing import clear_plan, install_plan

    model, loader = campaign_setup
    points = [
        CampaignPoint.for_trials(
            CAMPAIGN_CONFIG.array_rows, CAMPAIGN_CONFIG.array_cols, count,
            TRIALS, bit_position=None, stuck_type="sa1",
            seed=CAMPAIGN_CONFIG.seed + count, label="bench-chaos",
            dataset="mnist")
        for count in COUNTS if count
    ]

    serial = CampaignRunner(model, loader).run(points)

    start = time.perf_counter()
    clean = CampaignRunner(model, loader, workers=2, trial_chunk=2).run(points)
    clean_time = time.perf_counter() - start

    install_plan({
        "rules": [{"site": "unit", "action": "crash", "key": 0},
                  {"site": "unit", "action": "raise", "key": 1}],
        "state_dir": str(tmp_path / "chaos-state"),
    })
    try:
        runner = CampaignRunner(model, loader)
        orchestrator = CampaignOrchestrator(runner, workers=2, trial_chunk=2,
                                            retry_backoff=0.05)
        start = time.perf_counter()
        result = orchestrator.run(points)
        chaos_time = time.perf_counter() - start
    finally:
        clear_plan()

    overhead = chaos_time - clean_time
    print(f"\nchaos recovery: clean 2-worker {clean_time:.2f}s, "
          f"crash+poison {chaos_time:.2f}s (overhead {overhead:+.2f}s, "
          f"{result.report.retries} retries)")

    canonical = lambda records: json.dumps(records, sort_keys=True)  # noqa: E731
    assert result.complete
    assert canonical(clean) == canonical(serial)
    assert canonical(result.records) == canonical(serial)
    assert result.report.crashed == 1
    assert result.report.poisoned == 1
    assert result.report.retries >= 2
    # Recovery redoes one unit and respawns one forked worker; it must stay
    # within a small multiple of the clean pooled sweep even on loaded CI.
    assert chaos_time <= 3.0 * clean_time + 10.0, \
        f"chaos recovery cost {chaos_time:.2f}s vs clean {clean_time:.2f}s"


def test_bench_campaign_lane_scaling(campaign_setup):
    """Lane-thread scaling: byte-identical records at 1/2/4 fork lanes.

    The identity assertion is the acceptance property; wall-clock per lane
    count is reported for multi-core boxes (numpy releases the GIL inside
    the divergent-lane GEMMs) but only sanity-bounded, since a single-core
    CI runner cannot win from threading.
    """

    model, loader = campaign_setup
    lane_counts = (1, 2, 4)
    times = {threads: float("inf") for threads in lane_counts}
    records = {}
    for _ in range(3):
        for threads in lane_counts:
            start = time.perf_counter()
            records[threads] = sweep_faulty_pe_count(
                model, loader,
                rows=CAMPAIGN_CONFIG.array_rows, cols=CAMPAIGN_CONFIG.array_cols,
                counts=COUNTS, trials=TRIALS, seed=CAMPAIGN_CONFIG.seed,
                dataset="mnist", engine="fused", lane_threads=threads)
            times[threads] = min(times[threads], time.perf_counter() - start)

    report = ", ".join(f"{threads} lane(s) {times[threads]:.2f}s"
                       for threads in lane_counts)
    print(f"\nlane scaling (cold fused sweep): {report}")
    for threads in lane_counts[1:]:
        assert records[threads] == records[1], \
            f"records diverged at lane_threads={threads}"
        # Identity is the guarantee; overhead must stay bounded even where
        # a single core means threads cannot pay for themselves.
        assert times[1] / times[threads] >= 0.5, \
            f"{threads} lanes cost {times[threads] / times[1]:.2f}x over serial"


def test_bench_campaign_scaling_with_trials(campaign_setup):
    """Fused cost grows sublinearly in trials versus the sequential path."""

    model, loader = campaign_setup
    times = {}
    for trials in (2, 8):
        start = time.perf_counter()
        sweep_faulty_pe_count(
            model, loader, rows=CAMPAIGN_CONFIG.array_rows,
            cols=CAMPAIGN_CONFIG.array_cols, counts=(4,), trials=trials,
            seed=CAMPAIGN_CONFIG.seed, engine="fused")
        times[trials] = time.perf_counter() - start
    print(f"\nfused sweep point: trials=2 {times[2]:.2f}s, trials=8 {times[8]:.2f}s")
    # 4x the fault maps should cost well under 4x the wall-clock.
    assert times[8] < 3.5 * times[2]
