"""Figure 5a — accuracy vs stuck-at fault bit location (sa0 / sa1).

The paper injects stuck-at-0 and stuck-at-1 faults into individual output
bits of the PE accumulators and shows that faults in the higher-order bits
destroy accuracy while LSB faults are benign.  This benchmark sweeps the
data bits of the reproduction's accumulator format for all three datasets.
"""

from conftest import bench_config, emit, run_once
from repro.experiments import run_fig5a_bit_locations
from repro.systolic import DEFAULT_ACCUMULATOR_FORMAT
import pytest

#: Full figure reproduction: trains baselines for every dataset.
pytestmark = pytest.mark.slow

BIT_POSITIONS = tuple(range(0, DEFAULT_ACCUMULATOR_FORMAT.magnitude_msb + 1, 2))


def test_fig5a_bit_locations(benchmark, dataset_name, dataset_baseline):
    config = bench_config(dataset_name)
    records = run_once(
        benchmark, run_fig5a_bit_locations, config,
        bit_positions=BIT_POSITIONS, stuck_types=("sa0", "sa1"),
        num_faulty=8, trials=2)
    emit(records, name=f"fig5a_{dataset_name}",
         title=f"Fig. 5a ({dataset_name}): accuracy vs fault bit location",
         table_columns=["dataset", "stuck_type", "bit_position", "accuracy"],
         series=("bit_position", "accuracy", "stuck_type"))

    by_key = {(r["stuck_type"], r["bit_position"]): r["accuracy"] for r in records}
    top_bit = max(BIT_POSITIONS)
    # Shape check: high-order sa1 faults hurt far more than LSB faults.
    assert by_key[("sa1", top_bit)] <= by_key[("sa1", 0)]
