"""CI perf-regression gate for the campaign-engine benchmark.

Compares a freshly measured ``campaign_engine.json`` (written by
``bench_campaign.py`` into ``REPRO_BENCH_RESULTS_DIR``) against the
*recorded* baseline tracked in ``benchmarks/results/``.

Rules (the documented gate policy):

* **Identity mismatch always fails.**  The fresh run's ``meta`` row must
  report ``identical_records: true`` -- float64 records bit-identical
  across the sequential / batched / fused engines and both chain paths.
  No tolerance applies.
* **Only machine-relative ratios are gated.**  Absolute seconds are not
  comparable between the recording box and a CI runner, but ratios
  measured *within one run* are: the ``speedup`` column (cost relative to
  the same run's sequential oracle) for the batched and fused engines,
  and the ``meta`` ratios ``chain_fastpath_speedup`` (untiled reference
  chain path over the uniform-tile fast path), ``prefix_batch_speedup``
  (per-group chain application over prefix-level batching),
  ``lane_speedup`` (one fork lane over two) and ``backend_speedup`` (the
  numpy oracle backend over the compiled cffi backend) -- each gated only
  when both the fresh and the recorded run report it.  Each fresh ratio must be at
  least ``(1 - tolerance)`` times the recorded one; the default tolerance
  is 30%, sized for noisy shared CI boxes (single-run ratios can swing
  roughly 10-20%; a real fast-path regression costs 2x+).

Exit status: 0 when the gate passes, 1 on any violation (so the CI step
fails), 2 on malformed input.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Engines whose same-run speedup (vs sequential) is gated.
GATED_ENGINES = ("batched", "fused")

#: Default allowed relative shortfall of a fresh ratio vs the recorded one.
DEFAULT_TOLERANCE = 0.30


def load_rows(path: Path) -> dict:
    rows = json.loads(path.read_text())
    return {row.get("engine"): row for row in rows if isinstance(row, dict)}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        type=Path,
        default=Path(__file__).resolve().parent / "results" / "campaign_engine.json",
        help="recorded baseline JSON (tracked in git)",
    )
    parser.add_argument(
        "--fresh",
        type=Path,
        required=True,
        help="freshly measured JSON from this CI run",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="allowed relative shortfall of fresh vs recorded ratios "
        "(default %(default)s; identity has no tolerance)",
    )
    args = parser.parse_args(argv)

    try:
        baseline = load_rows(args.baseline)
        fresh = load_rows(args.fresh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"perf gate: cannot read inputs: {exc}", file=sys.stderr)
        return 2

    failures = []

    meta = fresh.get("meta")
    if meta is None:
        failures.append("fresh results carry no 'meta' row (identity unknown)")
    elif not meta.get("identical_records"):
        failures.append(
            "IDENTITY MISMATCH: engine records are not bit-identical "
            "(identical_records is false) -- this always fails, no tolerance"
        )

    def gate(label, fresh_value, recorded_value):
        floor = recorded_value * (1.0 - args.tolerance)
        status = "ok" if fresh_value >= floor else "REGRESSION"
        print(
            f"perf gate: {label}: fresh {fresh_value:.2f}x vs recorded "
            f"{recorded_value:.2f}x (floor {floor:.2f}x) -> {status}"
        )
        if fresh_value < floor:
            failures.append(
                f"{label}: {fresh_value:.2f}x below floor {floor:.2f}x "
                f"(recorded {recorded_value:.2f}x, tolerance {args.tolerance:.0%})"
            )

    for engine in GATED_ENGINES:
        if engine not in fresh:
            failures.append(f"fresh results miss the '{engine}' engine row")
            continue
        if engine not in baseline:
            print(f"perf gate: no recorded baseline for '{engine}', skipping")
            continue
        gate(f"{engine} speedup", fresh[engine]["speedup"], baseline[engine]["speedup"])

    recorded_meta = baseline.get("meta", {})
    gated_ratios = (
        ("chain_fastpath_speedup", "chain fast path"),
        ("prefix_batch_speedup", "prefix batching"),
        ("lane_speedup", "lane threads"),
        ("transient_overhead", "transient path"),
        ("backend_speedup", "cffi backend"),
    )
    for key, label in gated_ratios:
        if meta and key in meta and key in recorded_meta:
            gate(label, meta[key], recorded_meta[key])

    if failures:
        print("perf gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("perf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
