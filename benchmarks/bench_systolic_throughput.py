"""Micro-benchmarks of the systolic-array simulator itself.

These are conventional pytest-benchmark measurements (multiple rounds) of the
simulator's hot paths -- fault-free matmul, faulty matmul and convolution --
plus the analytical latency model's estimate of how much slower a
re-execution-based fault-tolerance scheme would be (the overhead the paper's
approach avoids).
"""

import numpy as np
import pytest

from repro.faults import StuckAtFault, random_fault_map
from repro.systolic import (
    DEFAULT_ACCUMULATOR_FORMAT,
    LayerWorkload,
    SystolicArray,
    reexecution_overhead,
    schedule_network,
)

FMT = DEFAULT_ACCUMULATOR_FORMAT
RNG = np.random.default_rng(0)
WEIGHT = RNG.normal(size=(64, 128))
INPUTS = (RNG.random((256, 128)) > 0.7).astype(float)


def test_bench_matmul_fault_free(benchmark):
    array = SystolicArray(32, 32)
    result = benchmark(array.matmul, WEIGHT, INPUTS)
    assert np.allclose(result, INPUTS @ WEIGHT.T)


def test_bench_matmul_with_faults(benchmark):
    array = SystolicArray(32, 32)
    array.load_fault_map(random_fault_map(32, 32, 32, bit_position=FMT.magnitude_msb,
                                          seed=1))
    result = benchmark(array.matmul, WEIGHT, INPUTS)
    assert result.shape == (256, 64)


def test_bench_matmul_with_bypass(benchmark):
    array = SystolicArray(32, 32)
    array.load_fault_map(random_fault_map(32, 32, 32, seed=1))
    array.bypass_faulty_pes()
    result = benchmark(array.matmul, WEIGHT, INPUTS)
    assert result.shape == (256, 64)


def test_bench_conv2d_on_array(benchmark):
    array = SystolicArray(32, 32)
    weight = RNG.normal(size=(8, 4, 3, 3))
    images = (RNG.random((8, 4, 16, 16)) > 0.8).astype(float)
    result = benchmark(array.conv2d, weight, images, None, 1, 1)
    assert result.shape == (8, 8, 16, 16)


def test_reexecution_overhead_vs_bypass(benchmark):
    """The latency model's summary the paper's argument rests on: redundant
    re-execution doubles the cycle count, whereas the bypass path adds none."""

    workloads = [
        LayerWorkload("conv1", out_features=8, in_features=72, vectors=1024),
        LayerWorkload("conv2", out_features=8, in_features=72, vectors=256),
        LayerWorkload("fc1", out_features=32, in_features=128, vectors=4),
        LayerWorkload("fc2", out_features=10, in_features=32, vectors=4),
    ]
    summary = benchmark(schedule_network, workloads, 32, 32)
    doubled = reexecution_overhead(summary["total_cycles"], redundancy=2)
    print(f"\nsingle-pass cycles: {summary['total_cycles']}, "
          f"re-execution cycles: {doubled}, "
          f"average utilization: {summary['average_utilization']:.3f}")
    assert doubled == 2 * summary["total_cycles"]
