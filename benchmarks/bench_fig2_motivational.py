"""Figure 2 — motivational study: retraining accuracy at fixed threshold voltages.

The paper retrains a faulty systolicSNN (30 % and 60 % faulty PEs) with the
candidate thresholds {0.45, 0.5, 0.55, 0.7} on MNIST and DVS128 Gesture and
shows accuracy varies strongly with the choice.  This benchmark regenerates
that grid (threshold -> accuracy per fault rate) for the same two datasets.
"""

import pytest

from conftest import bench_config, emit, run_once
from repro.experiments import PAPER_THRESHOLD_GRID, run_fig2_threshold_grid

#: Full figure reproduction: trains baselines for every dataset.
pytestmark = pytest.mark.slow

#: The paper's Fig. 2 uses the static MNIST and the neuromorphic DVS Gesture sets.
FIG2_DATASETS = ("mnist", "dvs_gesture")


@pytest.mark.parametrize("dataset", FIG2_DATASETS)
def test_fig2_threshold_grid(benchmark, dataset):
    config = bench_config(dataset)
    records = run_once(
        benchmark, run_fig2_threshold_grid, config,
        fault_rates=(0.30, 0.60),
        thresholds=PAPER_THRESHOLD_GRID,
        retraining_epochs=max(2, config.retrain_epochs // 2))
    emit(records, name=f"fig2_{dataset}",
         title=f"Fig. 2 ({dataset}): accuracy after retraining at fixed thresholds",
         table_columns=["dataset", "fault_rate", "threshold", "accuracy",
                        "baseline_accuracy"],
         series=("threshold", "accuracy", "fault_rate"))
    # Sanity: every grid point produced a valid accuracy.
    assert len(records) == 2 * len(PAPER_THRESHOLD_GRID)
    assert all(0.0 <= r["accuracy"] <= 1.0 for r in records)
