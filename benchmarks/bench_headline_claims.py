"""Headline claims (abstract / Section I) evaluated end to end.

Three claims: (1) a handful of faulty PEs destroys accuracy, (2) FalVolt
recovers the baseline even at a 60 % fault rate, (3) FalVolt needs fewer
retraining epochs than FaPIT.  This benchmark runs the full pipeline for the
MNIST configuration and prints a paper-vs-measured verdict table.
"""

from conftest import bench_config, emit, run_once
from repro.experiments import run_headline_claims
import pytest

#: Full figure reproduction: trains baselines for every dataset.
pytestmark = pytest.mark.slow


def test_headline_claims(benchmark):
    config = bench_config("mnist")
    records = run_once(benchmark, run_headline_claims, config)
    emit(records, name="headline_mnist",
         title="Headline claims (MNIST configuration): paper vs measured",
         table_columns=["claim", "paper", "measured", "holds"])

    assert len(records) == 3
    # The two central claims (vulnerability + FalVolt recovery) must hold.
    assert records[0]["holds"]
    assert records[1]["holds"]
