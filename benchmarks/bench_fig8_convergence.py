"""Figure 8 — accuracy vs retraining epochs for FaPIT and FalVolt (30 % faults).

The paper's convergence-speed claim: with 30 % of the PEs faulty, FalVolt
reaches the baseline accuracy in roughly half the retraining epochs that
FaPIT needs.  This benchmark records the per-epoch accuracy trace of both
methods under the same fault map and reports the epochs-to-baseline ratio.
"""

from conftest import bench_config, emit, run_once
from repro.experiments import convergence_speedup, run_fig8_convergence
import pytest

#: Full figure reproduction: trains baselines for every dataset.
pytestmark = pytest.mark.slow


def test_fig8_convergence(benchmark, dataset_name, dataset_baseline):
    config = bench_config(dataset_name)
    # Give the convergence comparison a slightly longer epoch budget than the
    # default retraining so the slower method has a chance to catch up.
    epochs = config.retrain_epochs + 4
    records = run_once(benchmark, run_fig8_convergence, config,
                       fault_rate=0.30, retraining_epochs=epochs)
    emit(records, name=f"fig8_{dataset_name}",
         title=f"Fig. 8 ({dataset_name}): accuracy vs retraining epochs (30% faulty PEs)",
         table_columns=["dataset", "method", "epoch", "accuracy", "epochs_to_baseline"],
         series=("epoch", "accuracy", "method"))

    speedup = convergence_speedup(records)
    print(f"\nepochs-to-baseline speedup (FaPIT / FalVolt): "
          f"{'n/a' if speedup is None else f'{speedup:.2f}x'} (paper: ~2x)")

    by_method = {}
    for record in records:
        by_method.setdefault(record["method"], []).append(record["accuracy"])
    # Both methods improve over their first-epoch accuracy by the end.
    for method, trace in by_method.items():
        assert max(trace) >= trace[0] - 0.02
    # FalVolt's final accuracy is at least as good as FaPIT's (small tolerance
    # for run-to-run noise on the scaled-down configuration).
    assert max(by_method["FalVolt"]) >= max(by_method["FaPIT"]) - 0.1
