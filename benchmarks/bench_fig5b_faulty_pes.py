"""Figure 5b — accuracy vs number of faulty PEs (worst-case high-order-bit faults).

The paper shows that as few as 8 faulty PEs (0.012 % of a 256x256 array)
halve the classification accuracy.  The reproduction uses a scaled-down
array (see EXPERIMENTS.md) and sweeps the same kind of curve: accuracy as a
function of the number of faulty PEs, averaged over several fault maps.
"""

from conftest import bench_config, emit, run_once
from repro.experiments import run_fig5b_faulty_pe_count
import pytest

#: Full figure reproduction: trains baselines for every dataset.
pytestmark = pytest.mark.slow

COUNTS = (0, 2, 4, 8, 16, 32, 48, 64)


def test_fig5b_faulty_pe_count(benchmark, dataset_name, dataset_baseline):
    config = bench_config(dataset_name)
    records = run_once(benchmark, run_fig5b_faulty_pe_count, config,
                       counts=COUNTS, trials=4)
    emit(records, name=f"fig5b_{dataset_name}",
         title=f"Fig. 5b ({dataset_name}): accuracy vs number of faulty PEs",
         table_columns=["dataset", "num_faulty_pes", "fault_rate", "accuracy",
                        "accuracy_std"],
         series=("num_faulty_pes", "accuracy", None))

    accuracies = {r["num_faulty_pes"]: r["accuracy"] for r in records}
    # Shape checks: fault-free accuracy is the baseline; large fault counts collapse it.
    assert accuracies[0] >= accuracies[64]
    assert accuracies[64] <= accuracies[0] - 0.3
