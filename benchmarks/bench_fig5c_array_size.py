"""Figure 5c — accuracy vs systolic array size at a fixed number of faulty PEs.

The paper fixes the number of faulty PEs and grows the array from 4x4 to
256x256: small arrays are reused more heavily, so the same faults corrupt a
larger share of the computation and accuracy collapses.  The reproduction
sweeps 4x4 .. 64x64 (its networks are correspondingly smaller).
"""

from conftest import bench_config, emit, run_once
from repro.experiments import run_fig5c_array_sizes
import pytest

#: Full figure reproduction: trains baselines for every dataset.
pytestmark = pytest.mark.slow

SIZES = (4, 8, 16, 32, 64)


def test_fig5c_array_sizes(benchmark, dataset_name, dataset_baseline):
    config = bench_config(dataset_name)
    records = run_once(benchmark, run_fig5c_array_sizes, config,
                       sizes=SIZES, num_faulty=4, trials=3)
    emit(records, name=f"fig5c_{dataset_name}",
         title=f"Fig. 5c ({dataset_name}): accuracy vs systolic array size (4 faulty PEs)",
         table_columns=["dataset", "array_size", "total_pes", "accuracy", "accuracy_std"],
         series=("total_pes", "accuracy", None))

    by_size = {r["array_size"]: r["accuracy"] for r in records}
    # Shape check: the smallest array suffers at least as much as the largest.
    assert by_size[4] <= by_size[64] + 0.05
