"""Figure 6 — per-layer threshold voltages optimized by FalVolt.

After FalVolt retraining at 10 %, 30 % and 60 % fault rates, the paper
reports the optimized threshold voltage of every hidden convolutional and
fully connected layer.  This benchmark prints the same per-layer table.
"""

from conftest import bench_config, emit, run_once
from repro.experiments import PAPER_FAULT_RATES, run_fig6_optimized_thresholds
import pytest

#: Full figure reproduction: trains baselines for every dataset.
pytestmark = pytest.mark.slow


def test_fig6_optimized_thresholds(benchmark, dataset_name, dataset_baseline):
    config = bench_config(dataset_name)
    records = run_once(benchmark, run_fig6_optimized_thresholds, config,
                       fault_rates=PAPER_FAULT_RATES)
    emit(records, name=f"fig6_{dataset_name}",
         title=f"Fig. 6 ({dataset_name}): optimized per-layer threshold voltage (FalVolt)",
         table_columns=["dataset", "fault_rate", "layer", "threshold_voltage", "accuracy"],
         series=("layer", "threshold_voltage", "fault_rate"))

    expected_layers = 7 if dataset_name == "dvs_gesture" else 4
    assert len(records) == expected_layers * len(PAPER_FAULT_RATES)
    assert all(r["threshold_voltage"] > 0.0 for r in records)
