"""Ablation benchmarks for the reproduction's design choices (see DESIGN.md).

Not figures from the paper: these quantify the knobs the reproduction had to
choose -- surrogate gradient family, threshold granularity, membrane reset
mode and accumulator word length -- so a reader can judge how sensitive the
headline results are to each choice.
"""

import pytest

from conftest import bench_config, emit, run_once
from repro.experiments import (
    ablate_accumulator_width,
    ablate_reset_mode,
    ablate_surrogate_gradient,
    ablate_threshold_granularity,
)

#: Full figure reproduction: trains baselines for every dataset.
pytestmark = pytest.mark.slow


def test_ablation_surrogate_gradient(benchmark):
    config = bench_config("mnist")
    records = run_once(benchmark, ablate_surrogate_gradient, config,
                       surrogates=("triangle", "atan", "sigmoid"))
    emit(records, name="ablation_surrogate",
         title="Ablation: baseline accuracy per surrogate gradient",
         table_columns=["dataset", "surrogate", "epochs", "accuracy"])
    assert len(records) == 3
    assert all(r["accuracy"] > 0.3 for r in records)


def test_ablation_threshold_granularity(benchmark):
    config = bench_config("mnist")
    records = run_once(benchmark, ablate_threshold_granularity, config, fault_rate=0.30)
    emit(records, name="ablation_threshold_granularity",
         title="Ablation: FalVolt threshold initialisation / granularity",
         table_columns=["dataset", "granularity", "fault_rate", "accuracy"])
    assert len(records) == 2


def test_ablation_reset_mode(benchmark):
    config = bench_config("mnist")
    records = run_once(benchmark, ablate_reset_mode, config,
                       epochs=max(4, config.baseline_epochs // 2))
    emit(records, name="ablation_reset_mode",
         title="Ablation: hard vs soft membrane reset",
         table_columns=["dataset", "reset_mode", "epochs", "accuracy"])
    assert {r["reset_mode"] for r in records} == {"hard", "soft"}


def test_ablation_accumulator_width(benchmark):
    config = bench_config("mnist")
    records = run_once(benchmark, ablate_accumulator_width, config,
                       widths=(8, 12, 16, 24), num_faulty=8, trials=2)
    emit(records, name="ablation_accumulator_width",
         title="Ablation: unmitigated fault impact vs accumulator word length",
         table_columns=["dataset", "total_bits", "num_faulty_pes", "accuracy",
                        "baseline_accuracy"])
    assert len(records) == 4
