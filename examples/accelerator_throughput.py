#!/usr/bin/env python
"""Systolic-array dataflow study: utilisation, latency and re-execution cost.

The paper motivates systolic arrays with throughput and argues that redundant
re-execution (a classic fault-tolerance fallback) is too expensive, which is
why the bypass + FalVolt approach matters.  This example uses the analytical
dataflow model to show, for each layer of the MNIST PLIF-SNN mapped onto
different array sizes:

* the number of tiles and cycles,
* the array utilisation,
* the cycle cost of duplicating every execution (re-execution) vs the
  zero-cycle overhead of the bypass path.

    python examples/accelerator_throughput.py --array-sizes 16 32 64
"""

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import affine_layers
from repro.experiments import format_table
from repro.snn import build_model_for_dataset
from repro.systolic import LayerWorkload, reexecution_overhead, schedule_network


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--array-sizes", type=int, nargs="+", default=[16, 32, 64])
    parser.add_argument("--batch", type=int, default=32,
                        help="inference batch size used for the vector count")
    parser.add_argument("--time-steps", type=int, default=4)
    return parser.parse_args()


def build_workloads(batch: int, time_steps: int):
    """One LayerWorkload per affine layer of the MNIST PLIF-SNN."""

    model, config = build_model_for_dataset("mnist", channels=8, hidden_units=32,
                                            time_steps=time_steps)
    workloads = []
    spatial = config.input_size
    for name, layer in affine_layers(model):
        weight = layer.weight.data
        if weight.ndim == 4:
            vectors = batch * spatial * spatial * time_steps
            if spatial > 4:  # pooling halves the resolution after each conv block
                spatial //= 2
        else:
            vectors = batch * time_steps
        workloads.append(LayerWorkload.from_weight(name, weight, vectors))
    return workloads


def main() -> int:
    args = parse_args()
    workloads = build_workloads(args.batch, args.time_steps)

    for size in args.array_sizes:
        summary = schedule_network(workloads, rows=size, cols=size)
        rows = [{
            "layer": schedule.name,
            "tiles": schedule.tiles,
            "cycles": schedule.cycles,
            "macs": schedule.mac_operations,
            "utilization": schedule.utilization,
        } for schedule in summary["layers"]]
        print(format_table(rows, columns=["layer", "tiles", "cycles", "macs", "utilization"],
                           title=f"\n== {size}x{size} systolic array =="))
        total = summary["total_cycles"]
        print(f"total cycles: {total}, average utilization: "
              f"{summary['average_utilization']:.3f}")
        print(f"re-execution (2x redundancy) would cost {reexecution_overhead(total, 2)} "
              f"cycles; the bypass path used by FaP/FalVolt costs 0 extra cycles")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
