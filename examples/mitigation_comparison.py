#!/usr/bin/env python
"""FaP vs FaPIT vs FalVolt across fault rates (paper Fig. 7 / Fig. 8).

For the chosen dataset this example runs all three mitigation methods on the
same fault maps at the paper's fault rates (10 %, 30 %, 60 %), prints the
recovered accuracies (Fig. 7), and then compares the epoch-by-epoch
convergence of FaPIT and FalVolt at 30 % faults (Fig. 8), reporting the
epochs-to-baseline speedup that the paper quotes as ~2x.

    python examples/mitigation_comparison.py --dataset mnist
"""

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments import (
    PAPER_FAULT_RATES,
    convergence_speedup,
    default_config,
    format_series,
    format_table,
    run_fig7_mitigation_comparison,
    run_fig8_convergence,
)
from repro.utils import configure_logging, save_records


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", choices=("mnist", "nmnist", "dvs_gesture"),
                        default="mnist")
    parser.add_argument("--scale", choices=("small", "full"), default="small")
    parser.add_argument("--convergence-epochs", type=int, default=None,
                        help="retraining epoch budget for the Fig. 8 comparison")
    parser.add_argument("--out", type=Path, default=None)
    return parser.parse_args()


def main() -> int:
    args = parse_args()
    configure_logging()
    config = default_config(args.dataset, scale=args.scale)

    print(f"== Fig. 7: mitigation comparison ({args.dataset}) ==")
    fig7 = run_fig7_mitigation_comparison(config, fault_rates=PAPER_FAULT_RATES)
    print(format_table(fig7, columns=["fault_rate", "method", "accuracy",
                                      "accuracy_drop", "pruned_fraction"]))
    print(format_series(fig7, x="fault_rate", y="accuracy", group_by="method"))

    epochs = args.convergence_epochs or (config.retrain_epochs + 4)
    print(f"\n== Fig. 8: convergence at 30% faulty PEs ({epochs} epoch budget) ==")
    fig8 = run_fig8_convergence(config, fault_rate=0.30, retraining_epochs=epochs)
    print(format_series(fig8, x="epoch", y="accuracy", group_by="method"))
    speedup = convergence_speedup(fig8)
    if speedup is None:
        print("epochs-to-baseline: at least one method did not reach the baseline "
              "within the budget; increase --convergence-epochs")
    else:
        print(f"epochs-to-baseline speedup (FaPIT / FalVolt): {speedup:.2f}x (paper: ~2x)")

    if args.out is not None:
        save_records({"fig7": fig7, "fig8": fig8}, args.out)
        print(f"\nrecords saved to {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
