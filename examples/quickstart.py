#!/usr/bin/env python
"""Quickstart: train a PLIF-SNN, break it with stuck-at faults, repair it with FalVolt.

This walks through the paper's whole pipeline on the synthetic MNIST stand-in:

1. train a small PLIF-SNN classifier to its baseline accuracy,
2. map it onto a systolic-array accelerator with stuck-at faults in 30 % of
   the PEs and measure the (collapsed) accuracy,
3. apply fault-aware pruning (FaP) -- the hardware bypass alone,
4. apply FalVolt -- pruning plus retraining with per-layer threshold voltage
   optimization -- and show the baseline accuracy is restored.

Run time: a couple of minutes on a laptop CPU.

    python examples/quickstart.py [--fault-rate 0.3] [--epochs 8]
"""

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import FalVolt, FaultAwarePruning
from repro.datasets import DataLoader, load_dataset
from repro.experiments import format_table
from repro.faults import evaluate_with_faults, fault_map_from_rate
from repro.snn import Adam, Trainer, build_model_for_dataset
from repro.systolic import DEFAULT_ACCUMULATOR_FORMAT
from repro.utils import configure_logging


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fault-rate", type=float, default=0.30,
                        help="fraction of faulty PEs (paper: 0.1, 0.3, 0.6)")
    parser.add_argument("--epochs", type=int, default=8,
                        help="baseline training epochs")
    parser.add_argument("--retrain-epochs", type=int, default=6,
                        help="fault-aware retraining epochs")
    parser.add_argument("--array-size", type=int, default=32,
                        help="systolic array dimension (NxN)")
    parser.add_argument("--seed", type=int, default=7)
    return parser.parse_args()


def main() -> int:
    args = parse_args()
    configure_logging()

    # ------------------------------------------------------------------
    # 1. Baseline training.
    # ------------------------------------------------------------------
    print("== 1. training the baseline PLIF-SNN on synthetic MNIST ==")
    train, test = load_dataset("mnist", num_train=240, num_test=80, seed=args.seed,
                               max_shift=1, noise_std=0.05)
    train_loader = DataLoader(train, batch_size=20, shuffle=True, seed=args.seed)
    test_loader = DataLoader(test, batch_size=80)

    model, config = build_model_for_dataset("mnist", channels=8, hidden_units=32,
                                            time_steps=4, seed=args.seed)
    trainer = Trainer(model, Adam(model.parameters(), lr=2e-2), num_classes=10)
    history = trainer.fit(train_loader, epochs=args.epochs, test_loader=test_loader)
    baseline_accuracy = history.test_accuracy[-1]
    baseline_state = model.state_dict()
    print(f"baseline test accuracy: {baseline_accuracy:.3f}")

    # ------------------------------------------------------------------
    # 2. Unmitigated fault injection on the systolic array.
    # ------------------------------------------------------------------
    print(f"\n== 2. injecting stuck-at faults in {args.fault_rate:.0%} of the "
          f"{args.array_size}x{args.array_size} PEs ==")
    fault_map = fault_map_from_rate(args.array_size, args.array_size, args.fault_rate,
                                    bit_position=DEFAULT_ACCUMULATOR_FORMAT.magnitude_msb,
                                    stuck_type="sa1", seed=args.seed)
    faulty_accuracy = evaluate_with_faults(model, test_loader, fault_map=fault_map)
    print(f"{fault_map.describe()}")
    print(f"accuracy with unmitigated faults: {faulty_accuracy:.3f}")

    # ------------------------------------------------------------------
    # 3. Fault-aware pruning only (FaP).
    # ------------------------------------------------------------------
    print("\n== 3. fault-aware pruning (FaP): bypass faulty PEs, no retraining ==")
    model.load_state_dict(baseline_state)
    fap_result = FaultAwarePruning().run(model, fault_map, train_loader, test_loader,
                                         num_classes=10,
                                         baseline_accuracy=baseline_accuracy)
    print(f"FaP accuracy: {fap_result.accuracy:.3f} "
          f"(pruned {fap_result.pruned_fraction:.1%} of the weights)")

    # ------------------------------------------------------------------
    # 4. FalVolt: pruning + retraining with threshold voltage optimization.
    # ------------------------------------------------------------------
    print("\n== 4. FalVolt: retraining with per-layer threshold optimization ==")
    model.load_state_dict(baseline_state)
    falvolt = FalVolt(retraining_epochs=args.retrain_epochs, learning_rate=1e-2)
    result = falvolt.run(model, fault_map, train_loader, test_loader, num_classes=10,
                         baseline_accuracy=baseline_accuracy)
    print(f"FalVolt accuracy: {result.accuracy:.3f} "
          f"(drop vs baseline: {result.accuracy_drop:.3f})")
    print("optimized per-layer threshold voltages:")
    for layer, threshold in result.thresholds.items():
        print(f"  {layer}: {threshold:.3f}")

    # ------------------------------------------------------------------
    # Summary table.
    # ------------------------------------------------------------------
    summary = [
        {"configuration": "baseline (no faults)", "accuracy": baseline_accuracy},
        {"configuration": f"faulty, unmitigated ({args.fault_rate:.0%} PEs)",
         "accuracy": faulty_accuracy},
        {"configuration": "FaP (bypass only)", "accuracy": fap_result.accuracy},
        {"configuration": "FalVolt", "accuracy": result.accuracy},
    ]
    print("\n" + format_table(summary, columns=["configuration", "accuracy"],
                              title="Quickstart summary"))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
