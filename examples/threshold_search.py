#!/usr/bin/env python
"""Exhaustive threshold search vs FalVolt (paper Fig. 2 + motivation for Section IV).

The paper's motivational study retrains a faulty systolicSNN at several
hand-picked threshold voltages and observes that the best choice depends on
the fault rate and the dataset -- finding it by exhaustive search costs one
full retraining run per candidate.  This example runs that grid search, then
runs a single FalVolt retraining and compares:

* the best accuracy the grid search found vs FalVolt's accuracy,
* the total retraining epochs consumed by the search vs by FalVolt.

    python examples/threshold_search.py --dataset mnist --fault-rate 0.3
"""

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import FalVolt, best_threshold, search_cost_epochs, threshold_grid_search
from repro.experiments import PAPER_THRESHOLD_GRID, default_config, format_table, prepare_baseline
from repro.experiments.mitigation import _fault_map_for_rate
from repro.utils import configure_logging


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", choices=("mnist", "nmnist", "dvs_gesture"),
                        default="mnist")
    parser.add_argument("--fault-rate", type=float, default=0.30)
    parser.add_argument("--retrain-epochs", type=int, default=None)
    return parser.parse_args()


def main() -> int:
    args = parse_args()
    configure_logging()
    config = default_config(args.dataset)
    epochs = args.retrain_epochs or config.retrain_epochs

    baseline = prepare_baseline(config)
    fault_map = _fault_map_for_rate(config, args.fault_rate)
    print(f"baseline accuracy: {baseline.baseline_accuracy:.3f}")
    print(f"fault map: {fault_map.describe()}")

    print(f"\n== exhaustive grid search over thresholds {PAPER_THRESHOLD_GRID} ==")
    grid = threshold_grid_search(baseline.model_factory, fault_map,
                                 baseline.train_loader, baseline.test_loader,
                                 num_classes=baseline.num_classes,
                                 thresholds=PAPER_THRESHOLD_GRID,
                                 retraining_epochs=epochs,
                                 learning_rate=config.retrain_lr,
                                 dataset=config.dataset)
    print(format_table(grid, columns=["threshold", "accuracy", "baseline_accuracy"]))
    winner = best_threshold(grid)
    grid_cost = search_cost_epochs(grid)
    print(f"best fixed threshold: {winner['threshold']} "
          f"(accuracy {winner['accuracy']:.3f}), search cost {grid_cost} epochs")

    print("\n== single FalVolt run (thresholds optimized during retraining) ==")
    model = baseline.model_factory()
    falvolt = FalVolt(retraining_epochs=epochs, learning_rate=config.retrain_lr)
    result = falvolt.run(model, fault_map, baseline.train_loader, baseline.test_loader,
                         num_classes=baseline.num_classes,
                         baseline_accuracy=baseline.baseline_accuracy)
    print(f"FalVolt accuracy: {result.accuracy:.3f} using {epochs} retraining epochs "
          f"({grid_cost // max(epochs, 1)}x fewer than the grid search)")
    print("optimized per-layer thresholds:")
    for layer, threshold in result.thresholds.items():
        print(f"  {layer}: {threshold:.3f}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
