"""Plain-text reporting of experiment records.

The paper's results are figures; since this reproduction is headless, every
experiment driver returns a list of flat dict records and these helpers
render them as aligned ASCII tables or as (x, y) series, which is what the
benchmarks print and what EXPERIMENTS.md quotes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


def format_value(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_table(records: Sequence[dict], columns: Optional[Sequence[str]] = None,
                 title: str = "") -> str:
    """Render records as an aligned ASCII table."""

    records = list(records)
    if not records:
        return f"{title}\n(no records)" if title else "(no records)"
    if columns is None:
        columns = list(records[0].keys())
    rows = [[format_value(record.get(col, "")) for col in columns] for record in records]
    widths = [max(len(str(col)), *(len(row[i]) for row in rows)) for i, col in enumerate(columns)]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(str(col).ljust(widths[i]) for i, col in enumerate(columns))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rows:
        lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(records: Sequence[dict], x: str, y: str,
                  group_by: Optional[str] = None, title: str = "") -> str:
    """Render records as one or more ``x -> y`` series (paper-figure style)."""

    records = list(records)
    lines = [title] if title else []
    if not records:
        groups: Dict[str, List[dict]] = {}
    elif group_by is None:
        groups = {"": records}
    else:
        groups = {}
        for record in records:
            groups.setdefault(str(record.get(group_by, "")), []).append(record)
    for name, group in groups.items():
        label = f"[{group_by}={name}] " if group_by else ""
        points = ", ".join(
            f"{format_value(r.get(x))}->{format_value(r.get(y))}" for r in group)
        lines.append(f"{label}{points}")
    return "\n".join(lines)


def summarize(records: Sequence[dict], keys: Sequence[str]) -> List[dict]:
    """Project records onto ``keys`` (dropping everything else)."""

    return [{key: record.get(key) for key in keys} for record in records]
