"""Experiment configuration shared by all figure-reproduction drivers.

A single :class:`ExperimentConfig` captures everything needed to prepare a
baseline model for one dataset: dataset synthesis parameters, network size,
baseline training schedule, retraining schedule and the systolic array
dimensions used for fault injection.

Two preset scales are provided:

* ``"small"`` (default) -- the laptop/CI scale used by the test-suite and
  the benchmark harness.  Networks reach their baseline accuracy in a few
  seconds per dataset.
* ``"full"`` -- a larger configuration (more samples, more channels, more
  epochs, a 64x64 array) for overnight runs that get closer to the paper's
  operating point.  The experiment code is identical; only this config
  changes.

The paper's 256x256 array is scaled down together with the networks: the
reproduction's layers are ~100x smaller than the paper's, so a 32x32 array
preserves the *ratio* of workload size to array size (and therefore the
reuse behaviour that drives fault sensitivity).  See EXPERIMENTS.md.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Tuple


@dataclasses.dataclass(frozen=True)
class ExperimentConfig:
    """All knobs for one dataset's experiments."""

    dataset: str = "mnist"
    # Dataset synthesis
    num_train: int = 240
    num_test: int = 80
    image_size: int = 16
    dataset_kwargs: Tuple[Tuple[str, object], ...] = ()
    # Network
    channels: int = 8
    hidden_units: int = 32
    time_steps: int = 4
    # Baseline training
    batch_size: int = 20
    baseline_epochs: int = 10
    baseline_lr: float = 2e-2
    # Fault-aware retraining
    retrain_epochs: int = 6
    retrain_lr: float = 1e-2
    # Systolic array used for fault injection
    array_rows: int = 32
    array_cols: int = 32
    # Reproducibility
    seed: int = 7

    @property
    def num_classes(self) -> int:
        return 11 if self.dataset == "dvs_gesture" else 10

    def dataset_options(self) -> Dict[str, object]:
        """Extra keyword arguments forwarded to the dataset generator."""

        return dict(self.dataset_kwargs)

    def with_overrides(self, **overrides) -> "ExperimentConfig":
        """Return a copy with the given fields replaced."""

        return dataclasses.replace(self, **overrides)


_SMALL_PRESETS: Dict[str, ExperimentConfig] = {
    "mnist": ExperimentConfig(
        dataset="mnist", num_train=240, num_test=80, time_steps=4,
        dataset_kwargs=(("max_shift", 1), ("noise_std", 0.05)),
        baseline_epochs=10, retrain_epochs=6),
    "nmnist": ExperimentConfig(
        dataset="nmnist", num_train=240, num_test=80, time_steps=4,
        baseline_epochs=10, retrain_epochs=6),
    "dvs_gesture": ExperimentConfig(
        dataset="dvs_gesture", num_train=264, num_test=88, time_steps=6,
        baseline_epochs=14, retrain_epochs=8, batch_size=22),
}

_FULL_PRESETS: Dict[str, ExperimentConfig] = {
    "mnist": ExperimentConfig(
        dataset="mnist", num_train=1000, num_test=300, channels=16, hidden_units=64,
        time_steps=6, baseline_epochs=20, retrain_epochs=15,
        dataset_kwargs=(("max_shift", 2), ("noise_std", 0.08)),
        array_rows=64, array_cols=64),
    "nmnist": ExperimentConfig(
        dataset="nmnist", num_train=1000, num_test=300, channels=16, hidden_units=64,
        time_steps=6, baseline_epochs=20, retrain_epochs=15,
        array_rows=64, array_cols=64),
    "dvs_gesture": ExperimentConfig(
        dataset="dvs_gesture", num_train=1100, num_test=330, channels=16, hidden_units=64,
        time_steps=8, baseline_epochs=30, retrain_epochs=20, batch_size=22,
        array_rows=64, array_cols=64),
}

SCALES = {"small": _SMALL_PRESETS, "full": _FULL_PRESETS}

#: Fault rates used by the paper's mitigation experiments (Figs. 6-7).
PAPER_FAULT_RATES = (0.10, 0.30, 0.60)

#: Candidate thresholds of the motivational study (Fig. 2).
PAPER_THRESHOLD_GRID = (0.45, 0.5, 0.55, 0.7)

#: Datasets evaluated in the paper.
PAPER_DATASETS = ("mnist", "nmnist", "dvs_gesture")


def default_config(dataset: str, scale: str = "small", **overrides) -> ExperimentConfig:
    """Return the preset config for ``dataset`` at ``scale``, with overrides applied."""

    if scale not in SCALES:
        raise KeyError(f"unknown scale '{scale}'; options: {sorted(SCALES)}")
    presets = SCALES[scale]
    key = dataset.lower()
    if key not in presets:
        raise KeyError(f"unknown dataset '{dataset}'; options: {sorted(presets)}")
    config = presets[key]
    return config.with_overrides(**overrides) if overrides else config
