"""Registry mapping paper artifacts (figure ids) to experiment drivers.

Gives examples, benchmarks and documentation one authoritative list of
"everything the paper reports and how to regenerate it".
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List

from .ablations import (
    ablate_accumulator_width,
    ablate_reset_mode,
    ablate_surrogate_gradient,
    ablate_threshold_granularity,
)
from .convergence import run_fig8_convergence
from .headline import run_headline_claims
from .mitigation import run_fig6_optimized_thresholds, run_fig7_mitigation_comparison
from .motivational import run_fig2_threshold_grid
from .vulnerability import (
    run_fig5a_bit_locations,
    run_fig5b_faulty_pe_count,
    run_fig5c_array_sizes,
)


@dataclasses.dataclass(frozen=True)
class ExperimentSpec:
    """One reproducible artifact of the paper."""

    experiment_id: str
    paper_artifact: str
    description: str
    runner: Callable[..., List[dict]]
    benchmark: str


EXPERIMENTS: Dict[str, ExperimentSpec] = {
    spec.experiment_id: spec for spec in [
        ExperimentSpec(
            "fig2", "Figure 2",
            "Motivational study: retraining accuracy at fixed threshold voltages "
            "(0.45/0.5/0.55/0.7) under 30% and 60% faulty PEs.",
            run_fig2_threshold_grid, "benchmarks/bench_fig2_motivational.py"),
        ExperimentSpec(
            "fig5a", "Figure 5a",
            "Accuracy vs stuck-at fault bit location (sa0/sa1) in the PE accumulator.",
            run_fig5a_bit_locations, "benchmarks/bench_fig5a_bit_location.py"),
        ExperimentSpec(
            "fig5b", "Figure 5b",
            "Accuracy vs number of faulty PEs under worst-case high-order-bit faults.",
            run_fig5b_faulty_pe_count, "benchmarks/bench_fig5b_faulty_pes.py"),
        ExperimentSpec(
            "fig5c", "Figure 5c",
            "Accuracy vs systolic array size at a fixed number of faulty PEs.",
            run_fig5c_array_sizes, "benchmarks/bench_fig5c_array_size.py"),
        ExperimentSpec(
            "fig6", "Figure 6",
            "Per-layer threshold voltages optimized by FalVolt at 10/30/60% fault rates.",
            run_fig6_optimized_thresholds, "benchmarks/bench_fig6_thresholds.py"),
        ExperimentSpec(
            "fig7", "Figure 7",
            "Accuracy of FaP vs FaPIT vs FalVolt at 10/30/60% fault rates.",
            run_fig7_mitigation_comparison, "benchmarks/bench_fig7_mitigation.py"),
        ExperimentSpec(
            "fig8", "Figure 8",
            "Accuracy vs retraining epochs for FaPIT and FalVolt at 30% faults.",
            run_fig8_convergence, "benchmarks/bench_fig8_convergence.py"),
        ExperimentSpec(
            "headline", "Abstract / Section I",
            "The paper's three headline claims evaluated end to end.",
            run_headline_claims, "benchmarks/bench_headline_claims.py"),
        ExperimentSpec(
            "ablation-surrogate", "(ablation)",
            "Baseline accuracy per surrogate gradient family.",
            ablate_surrogate_gradient, "benchmarks/bench_ablations.py"),
        ExperimentSpec(
            "ablation-threshold", "(ablation)",
            "FalVolt with per-layer vs shared-start thresholds.",
            ablate_threshold_granularity, "benchmarks/bench_ablations.py"),
        ExperimentSpec(
            "ablation-reset", "(ablation)",
            "Hard vs soft membrane reset.",
            ablate_reset_mode, "benchmarks/bench_ablations.py"),
        ExperimentSpec(
            "ablation-accumulator", "(ablation)",
            "Fault impact vs accumulator word length.",
            ablate_accumulator_width, "benchmarks/bench_ablations.py"),
    ]
}


def get_experiment(experiment_id: str) -> ExperimentSpec:
    """Look up an experiment by id (e.g. ``"fig7"``)."""

    if experiment_id not in EXPERIMENTS:
        raise KeyError(f"unknown experiment '{experiment_id}'; options: {sorted(EXPERIMENTS)}")
    return EXPERIMENTS[experiment_id]


def list_experiments() -> List[ExperimentSpec]:
    """All registered experiments in a stable order."""

    return [EXPERIMENTS[key] for key in sorted(EXPERIMENTS)]
