"""Headline claims of the paper, computed from the reproduction's own records.

The paper's abstract makes three quantitative claims:

1. Classification accuracy of a systolicSNN drops significantly even at
   extremely low fault rates (8 faulty PEs, 0.012 % of a 256x256 array).
2. FalVolt enables operation at fault rates up to 60 % with a negligible
   accuracy drop (as low as 0.1 %).
3. FalVolt is ~2x faster (in retraining epochs) than FaPIT.

:func:`run_headline_claims` evaluates each claim against the reproduction's
scaled-down setup and reports both the measured numbers and a boolean
"claim holds qualitatively" verdict.
"""

from __future__ import annotations

from typing import List, Optional

from .config import ExperimentConfig, default_config
from .convergence import convergence_speedup, run_fig8_convergence
from .mitigation import run_fig7_mitigation_comparison
from .vulnerability import run_fig5b_faulty_pe_count


def run_headline_claims(config: Optional[ExperimentConfig] = None,
                        dataset: str = "mnist",
                        few_faults: int = 8,
                        high_fault_rate: float = 0.60,
                        retraining_epochs: Optional[int] = None) -> List[dict]:
    """Evaluate the paper's three headline claims; returns one record per claim."""

    config = config or default_config(dataset)
    records: List[dict] = []

    # Claim 1: a handful of faulty PEs destroys accuracy.
    vuln = run_fig5b_faulty_pe_count(config, counts=(0, few_faults), trials=3)
    clean = next(r for r in vuln if r["num_faulty_pes"] == 0)["accuracy"]
    faulty = next(r for r in vuln if r["num_faulty_pes"] == few_faults)["accuracy"]
    records.append({
        "claim": f"accuracy collapses with only {few_faults} faulty PEs",
        "paper": "99% -> ~50% (MNIST)",
        "measured": f"{clean:.3f} -> {faulty:.3f}",
        "holds": bool(clean - faulty >= 0.2),
    })

    # Claim 2: FalVolt recovers accuracy even at a 60 % fault rate.
    mitigation = run_fig7_mitigation_comparison(
        config, fault_rates=(high_fault_rate,), methods=("fap", "falvolt"),
        retraining_epochs=retraining_epochs)
    fap = next(r for r in mitigation if r["method"] == "FaP")
    falvolt = next(r for r in mitigation if r["method"] == "FalVolt")
    records.append({
        "claim": f"FalVolt operates at {high_fault_rate:.0%} faulty PEs with negligible drop",
        "paper": "drop as low as 0.1%",
        "measured": (f"FalVolt drop {falvolt['accuracy_drop']:.3f} "
                     f"(FaP drop {fap['accuracy_drop']:.3f})"),
        "holds": bool(falvolt["accuracy_drop"] <= 0.10
                      and falvolt["accuracy"] > fap["accuracy"]),
    })

    # Claim 3: FalVolt converges in fewer retraining epochs than FaPIT.
    convergence = run_fig8_convergence(config, fault_rate=0.30,
                                       retraining_epochs=retraining_epochs)
    speedup = convergence_speedup(convergence)
    records.append({
        "claim": "FalVolt needs fewer retraining epochs than FaPIT",
        "paper": "~2x fewer epochs",
        "measured": "not reached within budget" if speedup is None else f"{speedup:.2f}x",
        "holds": bool(speedup is not None and speedup >= 1.0),
    })
    return records
