"""Experiment harness: one driver per table/figure of the FalVolt paper."""

from .config import (
    ExperimentConfig,
    PAPER_DATASETS,
    PAPER_FAULT_RATES,
    PAPER_THRESHOLD_GRID,
    default_config,
)
from .baseline import PreparedBaseline, build_loaders, clear_baseline_cache, prepare_baseline
from .reporting import format_series, format_table, summarize
from .vulnerability import (
    run_fig5a_bit_locations,
    run_fig5b_faulty_pe_count,
    run_fig5c_array_sizes,
)
from .motivational import run_fig2_threshold_grid
from .mitigation import run_fig6_optimized_thresholds, run_fig7_mitigation_comparison, run_mitigation
from .convergence import convergence_speedup, run_fig8_convergence
from .headline import run_headline_claims
from .ablations import (
    ablate_accumulator_width,
    ablate_reset_mode,
    ablate_surrogate_gradient,
    ablate_threshold_granularity,
)
from .registry import EXPERIMENTS, ExperimentSpec, get_experiment, list_experiments
from .scenarios import (
    MITIGATIONS,
    SCENARIOS,
    SWEEPS,
    Scenario,
    get_scenario,
    list_scenarios,
    register_scenario,
    run_scenario,
    scenario_from_json,
)

__all__ = [
    "ExperimentConfig",
    "PAPER_DATASETS",
    "PAPER_FAULT_RATES",
    "PAPER_THRESHOLD_GRID",
    "default_config",
    "PreparedBaseline",
    "build_loaders",
    "clear_baseline_cache",
    "prepare_baseline",
    "format_series",
    "format_table",
    "summarize",
    "run_fig5a_bit_locations",
    "run_fig5b_faulty_pe_count",
    "run_fig5c_array_sizes",
    "run_fig2_threshold_grid",
    "run_fig6_optimized_thresholds",
    "run_fig7_mitigation_comparison",
    "run_mitigation",
    "convergence_speedup",
    "run_fig8_convergence",
    "run_headline_claims",
    "ablate_accumulator_width",
    "ablate_reset_mode",
    "ablate_surrogate_gradient",
    "ablate_threshold_granularity",
    "EXPERIMENTS",
    "ExperimentSpec",
    "get_experiment",
    "list_experiments",
    "MITIGATIONS",
    "SCENARIOS",
    "SWEEPS",
    "Scenario",
    "get_scenario",
    "list_scenarios",
    "register_scenario",
    "run_scenario",
    "scenario_from_json",
]
