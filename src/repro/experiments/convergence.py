"""Retraining-convergence experiment (paper Fig. 8).

FaPIT and FalVolt are run with the same fault map and the same retraining
budget; the per-epoch test accuracy traces are recorded so the number of
epochs each method needs to come back within a tolerance of the baseline can
be compared (the paper's "FalVolt is 2x faster" claim).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .baseline import prepare_baseline
from .config import ExperimentConfig, default_config
from .mitigation import _fault_map_for_rate, run_mitigation


def run_fig8_convergence(config: Optional[ExperimentConfig] = None,
                         dataset: str = "mnist",
                         fault_rate: float = 0.30,
                         methods: Sequence[str] = ("fapit", "falvolt"),
                         retraining_epochs: Optional[int] = None,
                         baseline_tolerance: float = 0.02) -> List[dict]:
    """Per-epoch accuracy of FaPIT vs FalVolt at a fixed fault rate (Fig. 8).

    Returns one record per (method, epoch); each record also carries the
    number of epochs the method needed to reach the baseline (minus
    ``baseline_tolerance``), or ``None`` if it never did within the budget.
    """

    config = config or default_config(dataset)
    baseline = prepare_baseline(config)
    fault_map = _fault_map_for_rate(config, fault_rate)
    records: List[dict] = []
    for method in methods:
        result = run_mitigation(method, baseline, fault_map,
                                retraining_epochs=retraining_epochs)
        epochs_needed = result.history.epochs_to_reach(
            result.baseline_accuracy - baseline_tolerance)
        for epoch, accuracy in enumerate(result.history.test_accuracy, start=1):
            records.append({
                "dataset": config.dataset,
                "fault_rate": float(fault_rate),
                "method": result.method,
                "epoch": epoch,
                "accuracy": float(accuracy),
                "baseline_accuracy": result.baseline_accuracy,
                "epochs_to_baseline": epochs_needed,
            })
    return records


def convergence_speedup(records: Sequence[dict]) -> Optional[float]:
    """Ratio of FaPIT epochs-to-baseline over FalVolt epochs-to-baseline.

    A value >= 2 corresponds to the paper's "2x faster" claim; ``None`` when
    either method never reached the baseline within the budget.
    """

    epochs: Dict[str, Optional[int]] = {}
    for record in records:
        epochs[record["method"]] = record["epochs_to_baseline"]
    fapit = epochs.get("FaPIT")
    falvolt = epochs.get("FalVolt")
    if not fapit or not falvolt:
        return None
    return fapit / falvolt
