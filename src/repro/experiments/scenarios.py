"""Declarative scenario registry for fault-injection campaigns.

A :class:`Scenario` names one complete campaign configuration -- dataset x
sweep axis x fault model x mitigation -- as *data* (a frozen dataclass that
round-trips through a plain dict / JSON), so campaign workloads can be
shared, versioned and launched by name instead of by code::

    python -m repro campaign --scenario nmnist-transient-bernoulli

The registry ships the paper's datasets as first-class campaign workloads
(including the NMNIST and DVS-Gesture pipelines under transient fault
schedules) and validates configurations eagerly with explicit errors:
unknown keys, missing required fields and inconsistent combinations
(e.g. bypass mitigation of transient schedules) are rejected at
construction, not at evaluation time.

The campaign *grid* of a scenario is exactly the grid of the matching
:mod:`repro.faults.analysis` sweep driver -- built by the same functions,
with the same deterministic seed derivations -- so scenario records share
cache keys with hand-launched sweeps of the same shape.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict, List, Optional, Tuple, Union

from ..faults.analysis import (array_size_points, bit_sweep_points,
                               pe_count_points, sweep_array_sizes,
                               sweep_bit_locations, sweep_faulty_pe_count)
from ..faults.campaign import FAULT_MODELS, CampaignPoint
from ..faults.fault_model import StuckAtType
from ..systolic.fixed_point import DEFAULT_ACCUMULATOR_FORMAT
from ..utils.rng import derive_seed
from .config import PAPER_DATASETS, SCALES, ExperimentConfig, default_config

__all__ = [
    "MITIGATIONS",
    "SCENARIOS",
    "SWEEPS",
    "Scenario",
    "get_scenario",
    "list_scenarios",
    "register_scenario",
    "run_scenario",
    "scenario_from_json",
]

#: Sweep axes a scenario can select (the Fig. 5a/5b/5c grid shapes).
SWEEPS = ("bits", "counts", "sizes")

#: Mitigation modes a scenario can request.
MITIGATIONS = ("none", "bypass")

#: Seed-derivation tag per sweep; matches the CLI's hand-launched
#: campaigns so identical grids share cache keys.
_SWEEP_TAGS = {"bits": "fig5a", "counts": "fig5b", "sizes": "fig5c"}

#: Default faulty-PE count for sweeps that need one (bits / sizes),
#: matching the corresponding sweep-driver defaults.
_DEFAULT_NUM_FAULTY = {"bits": 8, "sizes": 4}


def _config_field_names() -> Tuple[str, ...]:
    return tuple(field.name for field in dataclasses.fields(ExperimentConfig))


@dataclasses.dataclass(frozen=True)
class Scenario:
    """One named (dataset x sweep x fault model x mitigation) campaign.

    Required fields: ``name``, ``dataset``, ``sweep`` and ``values`` (the
    swept bit positions, faulty-PE counts or array sizes).  Everything else
    defaults to the matching sweep driver's defaults.  ``fault_params``
    configures the transient schedule process; for transient scenarios a
    missing ``num_steps`` resolves to the dataset config's ``time_steps``
    when the grid is built.  ``config_overrides`` are forwarded to
    :func:`repro.experiments.default_config` (e.g. smaller
    ``baseline_epochs`` for smoke runs).
    """

    name: str
    dataset: str
    sweep: str
    values: Tuple[int, ...]
    description: str = ""
    scale: str = "small"
    trials: int = 4
    num_faulty: Optional[int] = None
    bit_position: Optional[int] = None
    stuck_type: str = "sa1"
    fault_model: str = "stuck_at"
    fault_params: Tuple[Tuple[str, object], ...] = ()
    mitigation: str = "none"
    seed: Optional[int] = None
    config_overrides: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        problems: List[str] = []
        if not self.name or not isinstance(self.name, str):
            problems.append("'name' must be a non-empty string")
        if self.dataset not in PAPER_DATASETS:
            problems.append(
                f"unknown dataset '{self.dataset}'; options: {PAPER_DATASETS}")
        if self.scale not in SCALES:
            problems.append(
                f"unknown scale '{self.scale}'; options: {tuple(sorted(SCALES))}")
        if self.sweep not in SWEEPS:
            problems.append(f"unknown sweep '{self.sweep}'; options: {SWEEPS}")
        try:
            values = (() if isinstance(self.values, (str, bytes))
                      else tuple(int(v) for v in self.values))
        except (TypeError, ValueError):
            values = ()
        if not values:
            problems.append("'values' must be a non-empty list of integers")
        object.__setattr__(self, "values", values)
        if int(self.trials) <= 0:
            problems.append("'trials' must be positive")
        if self.num_faulty is not None and int(self.num_faulty) <= 0:
            problems.append("'num_faulty' must be positive when given")
        try:
            object.__setattr__(
                self, "stuck_type",
                StuckAtType.from_value(self.stuck_type).short_name)
        except ValueError as exc:
            problems.append(str(exc))
        if self.fault_model not in FAULT_MODELS:
            problems.append(
                f"unknown fault model '{self.fault_model}'; "
                f"options: {FAULT_MODELS}")
        if self.mitigation not in MITIGATIONS:
            problems.append(
                f"unknown mitigation '{self.mitigation}'; "
                f"options: {MITIGATIONS}")
        if self.fault_model == "transient" and self.mitigation == "bypass":
            problems.append(
                "bypass mitigation is not defined for transient fault "
                "schedules")
        params = self.fault_params
        items = params.items() if isinstance(params, dict) else tuple(params)
        normalized = tuple(sorted((str(k), v) for k, v in items))
        if normalized and self.fault_model != "transient":
            problems.append(
                "'fault_params' are only meaningful for transient scenarios")
        object.__setattr__(self, "fault_params", normalized)
        overrides = self.config_overrides
        items = (overrides.items() if isinstance(overrides, dict)
                 else tuple(overrides))
        normalized = tuple(sorted((str(k), v) for k, v in items))
        known = _config_field_names()
        unknown = [k for k, _ in normalized if k not in known]
        if unknown:
            problems.append(
                f"unknown config_overrides key(s) {unknown}; "
                f"options: {known}")
        object.__setattr__(self, "config_overrides", normalized)
        if problems:
            raise ValueError(
                f"invalid scenario '{self.name}': " + "; ".join(problems))

    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, payload: dict) -> "Scenario":
        """Build a scenario from a plain dict, rejecting malformed input.

        All structural problems -- a non-dict payload, unknown keys,
        missing required fields -- are collected into one ``ValueError``
        so a hand-edited JSON scenario fails with the full list at once.
        """

        if not isinstance(payload, dict):
            raise ValueError(
                f"scenario payload must be a JSON object, "
                f"got {type(payload).__name__}")
        known = tuple(field.name for field in dataclasses.fields(cls))
        required = ("name", "dataset", "sweep", "values")
        problems: List[str] = []
        unknown = sorted(key for key in payload if key not in known)
        if unknown:
            problems.append(f"unknown key(s) {unknown}; options: {known}")
        missing = [key for key in required if key not in payload]
        if missing:
            problems.append(f"missing required field(s) {missing}")
        if problems:
            name = payload.get("name", "<unnamed>")
            raise ValueError(f"invalid scenario '{name}': " + "; ".join(problems))
        return cls(**payload)

    def to_dict(self) -> dict:
        """JSON-stable representation; ``from_dict`` round-trips it."""

        payload = dataclasses.asdict(self)
        payload["values"] = list(self.values)
        payload["fault_params"] = dict(self.fault_params)
        payload["config_overrides"] = dict(self.config_overrides)
        return payload

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    # ------------------------------------------------------------------
    def build_config(self, **overrides) -> ExperimentConfig:
        """Experiment config of this scenario (scenario overrides first)."""

        merged = dict(self.config_overrides)
        if self.seed is not None:
            merged["seed"] = int(self.seed)
        merged.update(overrides)
        return default_config(self.dataset, scale=self.scale, **merged)

    def resolved_fault_params(self, config: ExperimentConfig) -> dict:
        """fault_params with scenario-level defaults resolved against ``config``."""

        params = dict(self.fault_params)
        if self.fault_model == "transient":
            params.setdefault("num_steps", int(config.time_steps))
        return params

    def resolved_bit_position(self) -> Optional[int]:
        """Explicit bit position for counts/sizes grids (driver default)."""

        if self.bit_position is not None or self.sweep == "bits":
            return self.bit_position
        return DEFAULT_ACCUMULATOR_FORMAT.magnitude_msb

    def campaign_points(self, config: Optional[ExperimentConfig] = None
                        ) -> List[CampaignPoint]:
        """The scenario's campaign grid (without evaluating it).

        Exactly the grid the matching sweep driver runs -- built by the
        same :mod:`repro.faults.analysis` grid builders with the same seed
        derivations -- so records produced by :func:`run_scenario` share
        cache keys with hand-launched sweeps of the same shape.
        """

        config = self.build_config() if config is None else config
        seed = derive_seed(config.seed, _SWEEP_TAGS[self.sweep])
        fault_params = self.resolved_fault_params(config)
        common = dict(trials=int(self.trials), stuck_type=self.stuck_type,
                      dataset=config.dataset, seed=seed,
                      fault_model=self.fault_model, fault_params=fault_params)
        if self.sweep == "bits":
            return bit_sweep_points(
                rows=config.array_rows, cols=config.array_cols,
                bit_positions=self.values, stuck_types=(self.stuck_type,),
                num_faulty=self.num_faulty or _DEFAULT_NUM_FAULTY["bits"],
                **{k: v for k, v in common.items() if k != "stuck_type"})
        if self.sweep == "counts":
            return pe_count_points(
                rows=config.array_rows, cols=config.array_cols,
                counts=self.values, bit_position=self.resolved_bit_position(),
                **common)
        return array_size_points(
            sizes=self.values, bit_position=self.resolved_bit_position(),
            num_faulty=self.num_faulty or _DEFAULT_NUM_FAULTY["sizes"],
            **common)

    def describe(self) -> str:
        bits = [self.dataset, self.sweep, self.fault_model]
        if self.mitigation != "none":
            bits.append(f"mitigation={self.mitigation}")
        return f"{self.name} ({', '.join(bits)})"


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
SCENARIOS: Dict[str, Scenario] = {}


def register_scenario(scenario: Scenario, *, replace: bool = False) -> Scenario:
    """Add ``scenario`` to the registry (``replace=False`` forbids clobbering)."""

    if not replace and scenario.name in SCENARIOS:
        raise ValueError(f"scenario '{scenario.name}' is already registered")
    SCENARIOS[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> Scenario:
    """Look up a registered scenario; unknown names list what is available."""

    try:
        return SCENARIOS[name]
    except KeyError:
        available = ", ".join(sorted(SCENARIOS))
        raise ValueError(
            f"unknown scenario '{name}'; available: {available}") from None


def list_scenarios() -> List[Scenario]:
    """All registered scenarios, sorted by name."""

    return [SCENARIOS[name] for name in sorted(SCENARIOS)]


def scenario_from_json(text: str) -> Scenario:
    """Parse a JSON object into a (validated, unregistered) scenario."""

    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValueError(f"scenario JSON does not parse: {exc}") from None
    return Scenario.from_dict(payload)


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def run_scenario(scenario: Union[Scenario, str], *,
                 config_overrides: Optional[dict] = None,
                 baseline=None, **engine_options) -> List[dict]:
    """Evaluate a scenario end-to-end and return its sweep records.

    Prepares (or reuses, via ``baseline``) the dataset's trained baseline,
    then dispatches to the matching :mod:`repro.faults.analysis` sweep
    driver with the scenario's fault model, parameters and mitigation.
    ``engine_options`` are the usual campaign knobs (``engine``, ``dtype``,
    ``workers``, ``cache_dir``, ``shard``, ...).
    """

    from .baseline import prepare_baseline

    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    config = scenario.build_config(**(config_overrides or {}))
    if baseline is None:
        baseline = prepare_baseline(config)
    model = baseline.model_factory()
    seed = derive_seed(config.seed, _SWEEP_TAGS[scenario.sweep])
    fault_params = scenario.resolved_fault_params(config)
    common = dict(trials=int(scenario.trials), dataset=config.dataset,
                  seed=seed, fault_model=scenario.fault_model,
                  fault_params=fault_params,
                  bypass=scenario.mitigation == "bypass",
                  **engine_options)
    if scenario.sweep == "bits":
        return sweep_bit_locations(
            model, baseline.test_loader,
            rows=config.array_rows, cols=config.array_cols,
            bit_positions=scenario.values, stuck_types=(scenario.stuck_type,),
            num_faulty=scenario.num_faulty or _DEFAULT_NUM_FAULTY["bits"],
            **common)
    if scenario.sweep == "counts":
        return sweep_faulty_pe_count(
            model, baseline.test_loader,
            rows=config.array_rows, cols=config.array_cols,
            counts=scenario.values, stuck_type=scenario.stuck_type,
            bit_position=scenario.bit_position, **common)
    return sweep_array_sizes(
        model, baseline.test_loader,
        sizes=scenario.values, stuck_type=scenario.stuck_type,
        num_faulty=scenario.num_faulty or _DEFAULT_NUM_FAULTY["sizes"],
        bit_position=scenario.bit_position, **common)


# ----------------------------------------------------------------------
# Built-in scenarios
# ----------------------------------------------------------------------
# The paper's permanent stuck-at model on its headline grid, plus the two
# extension fault models, and the NMNIST / DVS-Gesture pipelines as
# first-class transient campaign workloads.  All built-ins use the small
# (CI) scale; pass config_overrides / a different scale via a custom
# scenario for larger runs.
register_scenario(Scenario(
    name="mnist-stuck-at-counts",
    description="Paper's Fig. 5b grid point family: permanent datapath "
                "stuck-at faults vs faulty-PE count on MNIST.",
    dataset="mnist", sweep="counts", values=(0, 2, 4, 8), trials=4))
register_scenario(Scenario(
    name="mnist-stuck-at-bypass",
    description="Mitigated hardware: permanent stuck-at faults with the "
                "bypass multiplexer enabled.",
    dataset="mnist", sweep="counts", values=(0, 4, 8, 16), trials=4,
    mitigation="bypass"))
register_scenario(Scenario(
    name="mnist-sram-counts",
    description="Weight-SRAM stuck-at faults (corrupted quantised weight "
                "tiles) vs faulty-PE count on MNIST.",
    dataset="mnist", sweep="counts", values=(0, 2, 4, 8), trials=4,
    fault_model="sram"))
register_scenario(Scenario(
    name="mnist-transient-bernoulli",
    description="Transient (SEU) faults, Bernoulli-per-step rate process, "
                "vs faulty-PE count on MNIST.",
    dataset="mnist", sweep="counts", values=(0, 2, 4, 8), trials=4,
    fault_model="transient",
    fault_params=(("process", "bernoulli"), ("rate", 0.5))))
register_scenario(Scenario(
    name="nmnist-transient-bernoulli",
    description="NMNIST pipeline under transient (SEU) faults with a "
                "Bernoulli-per-step rate process.",
    dataset="nmnist", sweep="counts", values=(0, 2, 4, 8), trials=2,
    fault_model="transient",
    fault_params=(("process", "bernoulli"), ("rate", 0.5))))
register_scenario(Scenario(
    name="dvs-gesture-transient-burst",
    description="DVS-Gesture pipeline under transient (SEU) burst faults "
                "(contiguous live window per site).",
    dataset="dvs_gesture", sweep="counts", values=(0, 2, 4), trials=2,
    fault_model="transient",
    fault_params=(("process", "burst"), ("burst_length", 2))))
