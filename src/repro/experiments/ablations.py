"""Ablation studies on the design choices called out in DESIGN.md.

These are not figures from the paper; they probe the knobs the reproduction
had to choose and quantify how much each one matters:

* surrogate gradient family (triangle per Eq. 2, ATan, sigmoid),
* per-layer vs a single global learnable threshold in FalVolt,
* hard vs soft membrane reset,
* fixed-point accumulator width of the systolic array.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..core import FalVolt
from ..faults import fault_map_from_rate, evaluate_with_faults
from ..snn import Adam, Trainer, build_model_for_dataset, get_surrogate
from ..systolic import FixedPointFormat
from ..utils.rng import derive_seed
from .baseline import build_loaders, prepare_baseline
from .config import ExperimentConfig, default_config
from .mitigation import _fault_map_for_rate


def ablate_surrogate_gradient(config: Optional[ExperimentConfig] = None,
                              dataset: str = "mnist",
                              surrogates: Sequence[str] = ("triangle", "atan", "sigmoid"),
                              epochs: Optional[int] = None) -> List[dict]:
    """Baseline-training accuracy for each surrogate gradient family."""

    config = config or default_config(dataset)
    epochs = epochs if epochs is not None else config.baseline_epochs
    train_loader, test_loader = build_loaders(config)
    records: List[dict] = []
    for name in surrogates:
        model, _ = build_model_for_dataset(
            config.dataset, surrogate=get_surrogate(name),
            channels=config.channels, hidden_units=config.hidden_units,
            time_steps=config.time_steps, seed=config.seed)
        trainer = Trainer(model, Adam(model.parameters(), lr=config.baseline_lr),
                          num_classes=config.num_classes)
        history = trainer.fit(train_loader, epochs=epochs, test_loader=test_loader)
        records.append({
            "dataset": config.dataset,
            "surrogate": name,
            "epochs": epochs,
            "accuracy": history.test_accuracy[-1] if history.test_accuracy else 0.0,
        })
    return records


def ablate_threshold_granularity(config: Optional[ExperimentConfig] = None,
                                 dataset: str = "mnist",
                                 fault_rate: float = 0.30,
                                 retraining_epochs: Optional[int] = None) -> List[dict]:
    """FalVolt with per-layer thresholds vs a single shared initial threshold.

    The "global" variant still learns one threshold per layer structurally,
    but every layer starts from the same value and the comparison measures
    whether the per-layer freedom (the paper's choice) is what recovers
    accuracy, versus simply lowering all thresholds together.
    """

    config = config or default_config(dataset)
    baseline = prepare_baseline(config)
    fault_map = _fault_map_for_rate(config, fault_rate)
    epochs = retraining_epochs if retraining_epochs is not None else config.retrain_epochs
    records: List[dict] = []
    for granularity, initial in (("per-layer", None), ("shared-start-0.7", 0.7)):
        mitigation = FalVolt(retraining_epochs=epochs, learning_rate=config.retrain_lr,
                             initial_threshold=initial)
        model = baseline.model_factory()
        result = mitigation.run(model, fault_map, baseline.train_loader,
                                baseline.test_loader, num_classes=baseline.num_classes,
                                baseline_accuracy=baseline.baseline_accuracy)
        records.append({
            "dataset": config.dataset,
            "granularity": granularity,
            "fault_rate": fault_rate,
            "accuracy": result.accuracy,
            "thresholds": result.thresholds,
        })
    return records


def ablate_reset_mode(config: Optional[ExperimentConfig] = None,
                      dataset: str = "mnist",
                      epochs: Optional[int] = None) -> List[dict]:
    """Hard reset (to 0) vs soft reset (subtract threshold) baseline accuracy."""


    config = config or default_config(dataset)
    epochs = epochs if epochs is not None else config.baseline_epochs
    train_loader, test_loader = build_loaders(config)
    records: List[dict] = []
    for mode, v_reset in (("hard", 0.0), ("soft", None)):
        model, _ = build_model_for_dataset(
            config.dataset, channels=config.channels, hidden_units=config.hidden_units,
            time_steps=config.time_steps, seed=config.seed)
        for node in model.spiking_layers():
            node.v_reset = v_reset
        trainer = Trainer(model, Adam(model.parameters(), lr=config.baseline_lr),
                          num_classes=config.num_classes)
        history = trainer.fit(train_loader, epochs=epochs, test_loader=test_loader)
        records.append({
            "dataset": config.dataset,
            "reset_mode": mode,
            "epochs": epochs,
            "accuracy": history.test_accuracy[-1] if history.test_accuracy else 0.0,
        })
    return records


def ablate_accumulator_width(config: Optional[ExperimentConfig] = None,
                             dataset: str = "mnist",
                             widths: Sequence[int] = (8, 12, 16, 24),
                             num_faulty: int = 8,
                             trials: int = 2) -> List[dict]:
    """Unmitigated fault impact as a function of the accumulator word length.

    Wider accumulators put the worst-case data bit at a larger magnitude, so
    the same stuck-at-1 fault produces a larger corruption.
    """

    config = config or default_config(dataset)
    baseline = prepare_baseline(config)
    model = baseline.model_factory()
    records: List[dict] = []
    for width in widths:
        fmt = FixedPointFormat(total_bits=width, frac_bits=min(8, width - 2))
        fault_map = fault_map_from_rate(
            config.array_rows, config.array_cols,
            num_faulty / (config.array_rows * config.array_cols),
            bit_position=fmt.magnitude_msb, stuck_type="sa1", fmt=fmt,
            seed=derive_seed(config.seed, "width", width))
        accuracy = evaluate_with_faults(model, baseline.test_loader,
                                        fault_map=fault_map, fmt=fmt)
        records.append({
            "dataset": config.dataset,
            "total_bits": width,
            "num_faulty_pes": num_faulty,
            "accuracy": accuracy,
            "baseline_accuracy": baseline.baseline_accuracy,
        })
    return records
