"""Motivational case study (paper Fig. 2): retraining with fixed thresholds.

The paper retrains a faulty systolicSNN with several hand-picked threshold
voltages and shows that accuracy varies wildly with the choice -- motivating
the automatic per-layer threshold optimization of FalVolt.  This driver runs
that grid search for one dataset and a set of fault rates.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..core import threshold_grid_search
from ..faults import fault_map_from_rate
from ..systolic import DEFAULT_ACCUMULATOR_FORMAT
from ..utils.rng import derive_seed
from .baseline import prepare_baseline
from .config import ExperimentConfig, PAPER_THRESHOLD_GRID, default_config


def run_fig2_threshold_grid(config: Optional[ExperimentConfig] = None,
                            dataset: str = "mnist",
                            fault_rates: Sequence[float] = (0.30, 0.60),
                            thresholds: Sequence[float] = PAPER_THRESHOLD_GRID,
                            retraining_epochs: Optional[int] = None) -> List[dict]:
    """Accuracy after retraining at each fixed threshold voltage (Fig. 2).

    Returns one record per (fault rate, threshold) pair.  The paper uses
    MNIST and DVS128 Gesture with 30 % and 60 % faulty PEs.
    """

    config = config or default_config(dataset)
    if retraining_epochs is None:
        retraining_epochs = config.retrain_epochs
    baseline = prepare_baseline(config)
    records: List[dict] = []
    for rate in fault_rates:
        fault_map = fault_map_from_rate(
            config.array_rows, config.array_cols, rate,
            bit_position=DEFAULT_ACCUMULATOR_FORMAT.magnitude_msb, stuck_type="sa1",
            seed=derive_seed(config.seed, "fig2", int(rate * 1000)))
        rate_records = threshold_grid_search(
            baseline.model_factory, fault_map,
            baseline.train_loader, baseline.test_loader,
            num_classes=baseline.num_classes,
            thresholds=thresholds, retraining_epochs=retraining_epochs,
            learning_rate=config.retrain_lr, dataset=config.dataset)
        records.extend(rate_records)
    return records
