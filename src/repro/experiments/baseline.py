"""Baseline model preparation and caching.

Every figure of the paper starts from the same pre-trained ("baseline")
PLIF-SNN per dataset.  :func:`prepare_baseline` trains that model once per
:class:`~repro.experiments.config.ExperimentConfig` and caches the trained
weights in-process, so running several experiments (or several benchmarks in
one pytest session) does not repeat the training.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

import numpy as np

from ..datasets import DataLoader, load_dataset
from ..snn import Adam, SpikingClassifier, Trainer, build_model_for_dataset
from ..utils.logging import get_logger
from ..utils.rng import derive_seed
from .config import ExperimentConfig

logger = get_logger("experiments.baseline")


@dataclasses.dataclass
class PreparedBaseline:
    """A trained baseline model plus everything needed to rerun experiments on it.

    ``model_factory()`` returns a *fresh* model loaded with the trained
    baseline weights, so each mitigation run starts from identical state.
    """

    config: ExperimentConfig
    state: Dict[str, np.ndarray]
    baseline_accuracy: float
    train_loader: DataLoader
    test_loader: DataLoader
    num_classes: int

    def model_factory(self) -> SpikingClassifier:
        model, _ = build_model_for_dataset(
            self.config.dataset, channels=self.config.channels,
            hidden_units=self.config.hidden_units, time_steps=self.config.time_steps,
            seed=self.config.seed)
        model.load_state_dict(self.state)
        return model


_CACHE: Dict[ExperimentConfig, PreparedBaseline] = {}


def clear_baseline_cache() -> None:
    """Drop all cached baselines (used by the test-suite)."""

    _CACHE.clear()


def build_loaders(config: ExperimentConfig):
    """Create (train_loader, test_loader) for ``config``."""

    train, test = load_dataset(
        config.dataset, num_train=config.num_train, num_test=config.num_test,
        image_size=config.image_size, seed=derive_seed(config.seed, "data"),
        **config.dataset_options())
    train_loader = DataLoader(train, batch_size=config.batch_size, shuffle=True,
                              seed=derive_seed(config.seed, "loader"))
    test_loader = DataLoader(test, batch_size=min(config.num_test, 4 * config.batch_size))
    return train_loader, test_loader


def prepare_baseline(config: ExperimentConfig, use_cache: bool = True,
                     verbose: bool = False) -> PreparedBaseline:
    """Train (or fetch from cache) the baseline model for ``config``."""

    if use_cache and config in _CACHE:
        return _CACHE[config]

    train_loader, test_loader = build_loaders(config)
    model, model_config = build_model_for_dataset(
        config.dataset, channels=config.channels, hidden_units=config.hidden_units,
        time_steps=config.time_steps, seed=config.seed)
    trainer = Trainer(model, Adam(model.parameters(), lr=config.baseline_lr),
                      num_classes=config.num_classes)
    history = trainer.fit(train_loader, epochs=config.baseline_epochs,
                          test_loader=test_loader, verbose=verbose)
    baseline_accuracy = history.test_accuracy[-1] if history.test_accuracy else 0.0
    logger.info("baseline %s accuracy %.3f after %d epochs",
                config.dataset, baseline_accuracy, config.baseline_epochs)

    prepared = PreparedBaseline(
        config=config,
        state=model.state_dict(),
        baseline_accuracy=baseline_accuracy,
        train_loader=train_loader,
        test_loader=test_loader,
        num_classes=config.num_classes,
    )
    if use_cache:
        _CACHE[config] = prepared
    return prepared
