"""Fault-mitigation experiments (paper Fig. 6 and Fig. 7).

``run_fig7_mitigation_comparison`` applies FaP, FaPIT and FalVolt to the
same fault maps at the paper's fault rates (10 %, 30 %, 60 %) and records
the recovered accuracy.  ``run_fig6_optimized_thresholds`` extracts the
per-layer threshold voltages that FalVolt converged to, which is exactly
what the paper's Fig. 6 reports.

Every (fault rate, method) cell is an independent retraining run, so both
drivers execute their grids through the campaign engine's helpers:
:func:`repro.faults.campaign.map_grid` fans cells out over the
orchestrator's crash-tolerant work-stealing pool (a cell that raises or
loses its worker is retried once on another worker), and
:func:`repro.faults.campaign.cached_record` provides on-disk caching keyed
by the baseline weights and the grid cell, so interrupted grids resume.
"""

from __future__ import annotations

import functools
from typing import List, Optional, Sequence

from ..core import MITIGATIONS, get_mitigation
from ..faults import cached_record, fault_map_from_rate, map_grid
from ..faults.campaign import state_token
from ..systolic import DEFAULT_ACCUMULATOR_FORMAT
from ..utils.rng import derive_seed
from .baseline import PreparedBaseline, prepare_baseline
from .config import ExperimentConfig, PAPER_FAULT_RATES, default_config


def _fault_map_for_rate(config: ExperimentConfig, rate: float):
    """Worst-case (high-order-bit stuck-at-1) fault map covering ``rate`` of the PEs."""

    return fault_map_from_rate(
        config.array_rows, config.array_cols, rate,
        bit_position=DEFAULT_ACCUMULATOR_FORMAT.magnitude_msb, stuck_type="sa1",
        seed=derive_seed(config.seed, "mitigation_map", int(rate * 1000)))


def _mitigation_kwargs(method: str, config: ExperimentConfig,
                       retraining_epochs: Optional[int]) -> dict:
    epochs = config.retrain_epochs if retraining_epochs is None else retraining_epochs
    if method == "fap":
        return {}
    return {"retraining_epochs": epochs, "learning_rate": config.retrain_lr}


def run_mitigation(method: str, baseline: PreparedBaseline, fault_map,
                   retraining_epochs: Optional[int] = None):
    """Run one mitigation method on a fresh copy of the baseline model."""

    config = baseline.config
    mitigation = get_mitigation(method, **_mitigation_kwargs(method, config, retraining_epochs))
    model = baseline.model_factory()
    return mitigation.run(model, fault_map, baseline.train_loader, baseline.test_loader,
                          num_classes=baseline.num_classes,
                          baseline_accuracy=baseline.baseline_accuracy)


def _fig7_cell(cell, *, config: ExperimentConfig, baseline: PreparedBaseline,
               retraining_epochs: Optional[int], baseline_token: str,
               cache_dir) -> dict:
    """One (fault rate, method) cell of the Fig. 7 grid, through the cache."""

    rate, method = cell

    def compute() -> dict:
        fault_map = _fault_map_for_rate(config, rate)
        result = run_mitigation(method, baseline, fault_map,
                                retraining_epochs=retraining_epochs)
        return {
            "dataset": config.dataset,
            "fault_rate": float(rate),
            "method": result.method,
            "accuracy": result.accuracy,
            "baseline_accuracy": result.baseline_accuracy,
            "accuracy_drop": result.accuracy_drop,
            "pruned_fraction": result.pruned_fraction,
            "retraining_epochs": result.retraining_epochs,
        }

    payload = {
        "experiment": "fig7",
        "baseline": baseline_token,
        "dataset": config.dataset,
        "seed": config.seed,
        "fault_rate": float(rate),
        "method": method,
        # Everything below also determines the result: the fault map covers
        # the configured array, and a None override falls back to the
        # config's retraining schedule.
        "array": [config.array_rows, config.array_cols],
        "retraining_epochs": (config.retrain_epochs if retraining_epochs is None
                              else retraining_epochs),
        "retrain_lr": config.retrain_lr,
    }
    return cached_record(cache_dir, payload, compute)


def run_fig7_mitigation_comparison(config: Optional[ExperimentConfig] = None,
                                   dataset: str = "mnist",
                                   fault_rates: Sequence[float] = PAPER_FAULT_RATES,
                                   methods: Sequence[str] = ("fap", "fapit", "falvolt"),
                                   retraining_epochs: Optional[int] = None,
                                   workers: int = 1,
                                   cache_dir=None) -> List[dict]:
    """Accuracy of each mitigation method at each fault rate (Fig. 7).

    Each (rate, method) cell retrains independently, so the grid maps onto
    the campaign helpers: ``workers`` forks one process per cell and
    ``cache_dir`` caches finished cells keyed by the baseline weights.
    """

    config = config or default_config(dataset)
    for method in methods:
        if method not in MITIGATIONS:
            raise KeyError(f"unknown mitigation '{method}'")
    baseline = prepare_baseline(config)
    cells = [(rate, method) for rate in fault_rates for method in methods]
    evaluate = functools.partial(
        _fig7_cell, config=config, baseline=baseline,
        retraining_epochs=retraining_epochs,
        baseline_token=state_token(baseline.state), cache_dir=cache_dir)
    return map_grid(evaluate, cells, workers=workers)


def _fig6_rate(rate: float, *, config: ExperimentConfig, baseline: PreparedBaseline,
               retraining_epochs: Optional[int], baseline_token: str,
               cache_dir) -> List[dict]:
    """FalVolt threshold records for one fault rate, through the cache."""

    def compute() -> List[dict]:
        fault_map = _fault_map_for_rate(config, rate)
        result = run_mitigation("falvolt", baseline, fault_map,
                                retraining_epochs=retraining_epochs)
        return [{
            "dataset": config.dataset,
            "fault_rate": float(rate),
            "layer": layer,
            "threshold_voltage": float(threshold),
            "accuracy": result.accuracy,
        } for layer, threshold in result.thresholds.items()]

    payload = {
        "experiment": "fig6",
        "baseline": baseline_token,
        "dataset": config.dataset,
        "seed": config.seed,
        "fault_rate": float(rate),
        "array": [config.array_rows, config.array_cols],
        "retraining_epochs": (config.retrain_epochs if retraining_epochs is None
                              else retraining_epochs),
        "retrain_lr": config.retrain_lr,
    }
    return cached_record(cache_dir, payload, compute)


def run_fig6_optimized_thresholds(config: Optional[ExperimentConfig] = None,
                                  dataset: str = "mnist",
                                  fault_rates: Sequence[float] = PAPER_FAULT_RATES,
                                  retraining_epochs: Optional[int] = None,
                                  workers: int = 1,
                                  cache_dir=None) -> List[dict]:
    """Per-layer threshold voltages returned by FalVolt (Fig. 6).

    One record per (fault rate, layer) with the optimized threshold voltage.
    """

    config = config or default_config(dataset)
    baseline = prepare_baseline(config)
    evaluate = functools.partial(
        _fig6_rate, config=config, baseline=baseline,
        retraining_epochs=retraining_epochs,
        baseline_token=state_token(baseline.state), cache_dir=cache_dir)
    groups = map_grid(evaluate, list(fault_rates), workers=workers)
    return [record for group in groups for record in group]
