"""Fault-mitigation experiments (paper Fig. 6 and Fig. 7).

``run_fig7_mitigation_comparison`` applies FaP, FaPIT and FalVolt to the
same fault maps at the paper's fault rates (10 %, 30 %, 60 %) and records
the recovered accuracy.  ``run_fig6_optimized_thresholds`` extracts the
per-layer threshold voltages that FalVolt converged to, which is exactly
what the paper's Fig. 6 reports.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core import MITIGATIONS, get_mitigation
from ..faults import fault_map_from_rate
from ..systolic import DEFAULT_ACCUMULATOR_FORMAT
from ..utils.rng import derive_seed
from .baseline import PreparedBaseline, prepare_baseline
from .config import ExperimentConfig, PAPER_FAULT_RATES, default_config


def _fault_map_for_rate(config: ExperimentConfig, rate: float):
    """Worst-case (high-order-bit stuck-at-1) fault map covering ``rate`` of the PEs."""

    return fault_map_from_rate(
        config.array_rows, config.array_cols, rate,
        bit_position=DEFAULT_ACCUMULATOR_FORMAT.magnitude_msb, stuck_type="sa1",
        seed=derive_seed(config.seed, "mitigation_map", int(rate * 1000)))


def _mitigation_kwargs(method: str, config: ExperimentConfig,
                       retraining_epochs: Optional[int]) -> dict:
    epochs = config.retrain_epochs if retraining_epochs is None else retraining_epochs
    if method == "fap":
        return {}
    return {"retraining_epochs": epochs, "learning_rate": config.retrain_lr}


def run_mitigation(method: str, baseline: PreparedBaseline, fault_map,
                   retraining_epochs: Optional[int] = None):
    """Run one mitigation method on a fresh copy of the baseline model."""

    config = baseline.config
    mitigation = get_mitigation(method, **_mitigation_kwargs(method, config, retraining_epochs))
    model = baseline.model_factory()
    return mitigation.run(model, fault_map, baseline.train_loader, baseline.test_loader,
                          num_classes=baseline.num_classes,
                          baseline_accuracy=baseline.baseline_accuracy)


def run_fig7_mitigation_comparison(config: Optional[ExperimentConfig] = None,
                                   dataset: str = "mnist",
                                   fault_rates: Sequence[float] = PAPER_FAULT_RATES,
                                   methods: Sequence[str] = ("fap", "fapit", "falvolt"),
                                   retraining_epochs: Optional[int] = None) -> List[dict]:
    """Accuracy of each mitigation method at each fault rate (Fig. 7)."""

    config = config or default_config(dataset)
    for method in methods:
        if method not in MITIGATIONS:
            raise KeyError(f"unknown mitigation '{method}'")
    baseline = prepare_baseline(config)
    records: List[dict] = []
    for rate in fault_rates:
        fault_map = _fault_map_for_rate(config, rate)
        for method in methods:
            result = run_mitigation(method, baseline, fault_map,
                                    retraining_epochs=retraining_epochs)
            records.append({
                "dataset": config.dataset,
                "fault_rate": float(rate),
                "method": result.method,
                "accuracy": result.accuracy,
                "baseline_accuracy": result.baseline_accuracy,
                "accuracy_drop": result.accuracy_drop,
                "pruned_fraction": result.pruned_fraction,
                "retraining_epochs": result.retraining_epochs,
            })
    return records


def run_fig6_optimized_thresholds(config: Optional[ExperimentConfig] = None,
                                  dataset: str = "mnist",
                                  fault_rates: Sequence[float] = PAPER_FAULT_RATES,
                                  retraining_epochs: Optional[int] = None) -> List[dict]:
    """Per-layer threshold voltages returned by FalVolt (Fig. 6).

    One record per (fault rate, layer) with the optimized threshold voltage.
    """

    config = config or default_config(dataset)
    baseline = prepare_baseline(config)
    records: List[dict] = []
    for rate in fault_rates:
        fault_map = _fault_map_for_rate(config, rate)
        result = run_mitigation("falvolt", baseline, fault_map,
                                retraining_epochs=retraining_epochs)
        for layer, threshold in result.thresholds.items():
            records.append({
                "dataset": config.dataset,
                "fault_rate": float(rate),
                "layer": layer,
                "threshold_voltage": float(threshold),
                "accuracy": result.accuracy,
            })
    return records
