"""Post-fabrication fault detection (how fault maps are obtained in practice).

The paper assumes the per-chip fault map is known: "the fault locations are
determined through post-fabrication tests on a systolicSNN chip".  This
module implements that step for the simulated accelerator so the tool-flow
of Fig. 4 is closed end to end:

1. :func:`generate_test_vectors` builds structural stimuli (all-rows-on spike
   vectors with positive and negative weight planes) whose fault-free column
   responses are known analytically.
2. :func:`locate_faulty_columns` compares the observed column sums with the
   reference and flags deviating columns.
3. :func:`locate_faulty_rows_in_column` finds the faulty rows inside a
   flagged column by *bypass isolation*: the per-PE bypass multiplexers that
   the mitigated design already contains (Fig. 3b) are used as a diagnostic
   knob -- bypassing every PE of the column except one leaves only that PE's
   behaviour observable, so each row can be checked independently (which
   also handles multiple faults in the same column).
4. :func:`detect_fault_map` wraps everything into "post-fabrication testing
   in a box": given a faulty array it returns the recovered fault map, which
   can be handed straight to the mitigation methods in :mod:`repro.core`.

The exact stuck-at bit is additionally estimated from the magnitude and sign
of the observed error; the mitigation flow only needs the PE coordinates,
but the estimate is reported for diagnosis.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..systolic.array import SystolicArray
from ..systolic.fixed_point import FixedPointFormat
from ..systolic.mapping import faulty_weight_mask
from .fault_map import FaultMap
from .fault_model import StuckAtFault, StuckAtType

Coordinate = Tuple[int, int]


@dataclasses.dataclass(frozen=True)
class TestVector:
    """One structural test stimulus: a weight plane plus a binary spike vector."""

    name: str
    weight: np.ndarray        # (out_features, in_features)
    activation: np.ndarray    # (1, in_features) binary spikes
    description: str = ""


@dataclasses.dataclass
class Diagnosis:
    """Detection outcome for one faulty PE."""

    row: int
    col: int
    estimated_bit: Optional[int]
    estimated_type: StuckAtType
    max_error: float


def generate_test_vectors(rows: int, cols: int,
                          weight_value: float = 0.25) -> List[TestVector]:
    """Build the all-rows-on stimuli used to expose faulty columns.

    Two weight planes are used -- positive and negative -- so that both
    stuck-at polarities produce a visible deviation regardless of the sign of
    the accumulated partial sums.
    """

    if rows <= 0 or cols <= 0:
        raise ValueError("array dimensions must be positive")
    if weight_value <= 0:
        raise ValueError("weight_value must be positive")
    all_on = np.ones((1, rows))
    return [
        TestVector("all-on-positive", np.full((cols, rows), weight_value), all_on,
                   "all rows active, positive weights"),
        TestVector("all-on-negative", np.full((cols, rows), -weight_value), all_on,
                   "all rows active, negative weights"),
    ]


def _expected_response(vector: TestVector, rows: int, cols: int,
                       bypassed: Set[Coordinate]) -> np.ndarray:
    """Fault-free response of a test vector given the currently bypassed PEs."""

    weight = vector.weight
    if bypassed:
        mask = faulty_weight_mask(bypassed, weight.shape, rows, cols)
        weight = np.where(mask, 0.0, weight)
    return vector.activation @ weight.T


def _column_errors(array: SystolicArray, vector: TestVector,
                   bypassed: Set[Coordinate]) -> np.ndarray:
    array.set_bypass(bypassed)
    observed = array.matmul(vector.weight, vector.activation)
    expected = _expected_response(vector, array.rows, array.cols, bypassed)
    return (observed - expected)[0]


def locate_faulty_columns(array: SystolicArray, vectors: Sequence[TestVector],
                          tolerance: float = 1e-6) -> Dict[int, float]:
    """Columns whose response deviates from the reference, with the worst error."""

    errors: Dict[int, float] = {}
    for vector in vectors:
        deviation = _column_errors(array, vector, set())
        for out_index in np.nonzero(np.abs(deviation) > tolerance)[0]:
            col = int(out_index) % array.cols
            value = float(deviation[out_index])
            if col not in errors or abs(value) > abs(errors[col]):
                errors[col] = value
    return errors


def _column_is_faulty(array: SystolicArray, column: int, vectors: Sequence[TestVector],
                      bypassed: Set[Coordinate], tolerance: float) -> bool:
    for vector in vectors:
        deviation = _column_errors(array, vector, bypassed)
        out_indices = [i for i in range(vector.weight.shape[0])
                       if i % array.cols == column]
        if any(abs(deviation[i]) > tolerance for i in out_indices):
            return True
    return False


def locate_faulty_rows_in_column(array: SystolicArray, column: int,
                                 vectors: Sequence[TestVector],
                                 tolerance: float = 1e-6) -> List[int]:
    """Find every faulty row in ``column`` by bypass isolation.

    For each candidate row the bypass multiplexers of *all other* PEs in the
    column are enabled, so the only observable behaviour is that of the
    candidate PE; a deviation from the (bypass-aware) reference then
    implicates exactly that PE.  This handles any number of faults per
    column at the cost of one test pair per row.
    """

    faulty_rows: List[int] = []
    for row in range(array.rows):
        others = {(r, column) for r in range(array.rows) if r != row}
        if _column_is_faulty(array, column, vectors, others, tolerance):
            faulty_rows.append(row)
    return faulty_rows


def _estimate_bit(error_magnitude: float, fmt: FixedPointFormat) -> Optional[int]:
    """Estimate which accumulator bit is stuck from the observed error magnitude."""

    if error_magnitude <= 0:
        return None
    codes = error_magnitude / fmt.scale
    bit = int(round(np.log2(codes))) if codes >= 1 else 0
    return int(np.clip(bit, 0, fmt.total_bits - 1))


def run_detection(array: SystolicArray, tolerance: float = 1e-6) -> List[Diagnosis]:
    """Full detection flow: locate faulty columns, then isolate the faulty PEs."""

    vectors = generate_test_vectors(array.rows, array.cols)
    original_bypass = array.bypassed_coordinates
    diagnoses: List[Diagnosis] = []
    try:
        column_errors = locate_faulty_columns(array, vectors, tolerance=tolerance)
        for column, worst_error in sorted(column_errors.items()):
            for row in locate_faulty_rows_in_column(array, column, vectors,
                                                    tolerance=tolerance):
                diagnoses.append(Diagnosis(
                    row=row, col=column,
                    estimated_bit=_estimate_bit(abs(worst_error), array.fmt),
                    estimated_type=(StuckAtType.STUCK_AT_1 if worst_error > 0
                                    else StuckAtType.STUCK_AT_0),
                    max_error=abs(worst_error)))
    finally:
        array.set_bypass(original_bypass)
    return diagnoses


def detect_fault_map(array: SystolicArray, tolerance: float = 1e-6) -> FaultMap:
    """Run post-fabrication testing on ``array`` and return the recovered fault map."""

    recovered = FaultMap(array.rows, array.cols)
    for diagnosis in run_detection(array, tolerance=tolerance):
        bit = diagnosis.estimated_bit if diagnosis.estimated_bit is not None else 0
        recovered.add(diagnosis.row, diagnosis.col,
                      StuckAtFault(bit_position=bit, stuck_type=diagnosis.estimated_type))
    return recovered


def detection_coverage(true_map: FaultMap, recovered: FaultMap) -> Dict[str, float]:
    """Coverage metrics of a detection run against the ground-truth fault map.

    Returns recall (fraction of truly faulty PEs detected), precision
    (fraction of reported PEs that are truly faulty) and the number of
    missed / spurious coordinates.
    """

    truth = set(true_map.coordinates())
    found = set(recovered.coordinates())
    true_positives = truth & found
    recall = len(true_positives) / len(truth) if truth else 1.0
    precision = len(true_positives) / len(found) if found else 1.0
    return {
        "recall": recall,
        "precision": precision,
        "missed": float(len(truth - found)),
        "spurious": float(len(found - truth)),
    }
