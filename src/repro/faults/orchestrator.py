"""Sharded, resumable campaign sweep orchestrator.

The campaign engine (:mod:`repro.faults.campaign`) makes one sweep *point*
fast; this module makes whole *sweeps* scale out.  A grid of
:class:`~repro.faults.campaign.CampaignPoint` objects is decomposed into
independent **work units** -- one per (grid point, trial chunk) -- which are
scheduled across a pool of forked worker processes pulling from a shared
work queue (idle workers steal whatever unit is next, so load balances
itself), and, when interrupted, resumed for free:

* **Cache keys are the coordination protocol.**  Every unit's on-disk key
  is exactly the PR 1 campaign cache key of its (sub-)point -- (model hash,
  data hash, grid point, seeds).  A unit whose key is already materialised
  is skipped, so a killed sweep continues where it stopped, a plain
  :class:`~repro.faults.campaign.CampaignRunner` cache primes the
  orchestrator (and vice versa), and concurrent orchestrators sharing a
  filesystem cooperate instead of duplicating work.  Result files are
  written atomically (temp file + ``os.replace``), so a reader never sees
  a torn record.
* **Shards split one sweep across machines.**  :class:`ShardSpec`
  (``--shard i/N``) deterministically assigns each unit ordinal to one of
  ``N`` shards (round-robin), so ``N`` machines pointed at the same cache
  directory partition the grid exactly.  A shard whose neighbours have not
  finished reports its pending points (:class:`PendingShardError` at the
  runner level); once every unit is materialised, any invocation -- or a
  final ``--resume`` pass -- assembles the merged records purely from disk.
* **The merge step is bit-exact.**  Per-map accuracies are independent of
  which pass evaluated them (the engines' documented per-map independence),
  and JSON round-trips IEEE-754 doubles exactly, so concatenating a point's
  chunk records reconstructs byte-identical output to a single-process
  :meth:`CampaignRunner.run`.
* **Failures are contained.**  A unit that raises is retried (on any
  worker) up to ``max_attempts`` times; a worker process that dies is
  detected, its unit re-queued and a replacement forked.  Remaining units
  keep running either way, and the report records every retry.

:class:`CampaignOrchestrator` is not usually constructed by hand:
``CampaignRunner(..., workers=K, shard=..., trial_chunk=...)`` routes
:meth:`~repro.faults.campaign.CampaignRunner.run` through it, and the CLI
exposes the same knobs (``python -m repro campaign --workers K
--shard i/N --resume``).
"""

from __future__ import annotations

import dataclasses
import math
import multiprocessing
import os
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..utils.logging import get_logger
from ..utils.serialization import load_records
from .campaign import CampaignPoint, _digest_payload, _store_record

__all__ = [
    "CampaignOrchestrator",
    "OrchestratorResult",
    "PendingShardError",
    "ShardSpec",
    "SweepReport",
    "WorkUnit",
    "pool_map",
    "run_tasks",
]

logger = get_logger("faults.orchestrator")


# ----------------------------------------------------------------------
# Shards
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class ShardSpec:
    """One shard of an ``N``-way sweep split (``--shard i/N``, 0-based).

    Units are assigned round-robin by ordinal, so the ``N`` shards of the
    same grid partition its units exactly: every unit belongs to one and
    only one shard, regardless of cache state or timing.
    """

    index: int
    total: int

    def __post_init__(self) -> None:
        if self.total < 1:
            raise ValueError("shard total must be at least 1")
        if not 0 <= self.index < self.total:
            raise ValueError(
                f"shard index must be in [0, {self.total}); got {self.index}")

    @classmethod
    def parse(cls, text: Union[str, "ShardSpec"]) -> "ShardSpec":
        """Parse an ``"i/N"`` string (e.g. ``"0/2"``) into a shard spec."""

        if isinstance(text, ShardSpec):
            return text
        parts = str(text).split("/")
        if len(parts) != 2:
            raise ValueError(f"expected 'i/N' (e.g. '0/2'); got {text!r}")
        try:
            index, total = int(parts[0]), int(parts[1])
        except ValueError:
            raise ValueError(f"expected integers in 'i/N'; got {text!r}") from None
        return cls(index=index, total=total)

    def owns(self, ordinal: int) -> bool:
        """Whether this shard is responsible for unit ``ordinal``."""

        return ordinal % self.total == self.index

    def __str__(self) -> str:
        return f"{self.index}/{self.total}"


# ----------------------------------------------------------------------
# Work units
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class WorkUnit:
    """One schedulable unit of a sweep: a (grid point, trial chunk) pair.

    ``point`` is a :class:`CampaignPoint` restricted to this chunk's trial
    seeds; it is a perfectly ordinary point, so its cache key is the PR 1
    campaign key and a plain :class:`CampaignRunner` would produce (or
    consume) the identical record for it.
    """

    ordinal: int
    point_index: int
    chunk_index: int
    num_chunks: int
    point: CampaignPoint


def plan_work_units(points: Sequence[CampaignPoint],
                    trial_chunk: Optional[int] = None) -> List[WorkUnit]:
    """Decompose ``points`` into work units of at most ``trial_chunk`` trials.

    ``trial_chunk=None`` keeps one unit per point (unit keys then equal the
    plain per-point campaign cache keys).  The decomposition depends only on
    the grid and ``trial_chunk`` -- never on worker count or cache state --
    so every shard of a split sweep enumerates identical ordinals.
    """

    if trial_chunk is not None and trial_chunk < 1:
        raise ValueError("trial_chunk must be at least 1")
    units: List[WorkUnit] = []
    for point_index, point in enumerate(points):
        seeds = point.map_seeds
        chunk = len(seeds) if trial_chunk is None else int(trial_chunk)
        num_chunks = max(1, math.ceil(len(seeds) / chunk))
        for chunk_index in range(num_chunks):
            chunk_seeds = seeds[chunk_index * chunk:(chunk_index + 1) * chunk]
            sub_point = (point if num_chunks == 1 else
                         dataclasses.replace(point, map_seeds=chunk_seeds))
            units.append(WorkUnit(ordinal=len(units), point_index=point_index,
                                  chunk_index=chunk_index, num_chunks=num_chunks,
                                  point=sub_point))
    return units


# ----------------------------------------------------------------------
# Generic work-stealing process pool with crash recovery
# ----------------------------------------------------------------------
@dataclasses.dataclass
class TaskResult:
    """Outcome of one pooled task: its value or its final error.

    ``exception`` carries the original exception object when it survived
    the trip back from the worker (so callers can re-raise with the real
    type); ``error`` is always a human-readable string.
    """

    value: object = None
    error: Optional[str] = None
    exception: Optional[BaseException] = None
    attempts: int = 0
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None


#: Task callable handed to forked workers via copy-on-write memory (set
#: immediately before the fork, cleared after; never pickled).
_TASK_FN: Optional[Callable[[int], object]] = None


class _SyncChannel:
    """Multi-producer result pipe with synchronous, crash-safe writes.

    ``Connection.send`` pickles and writes the whole message (under a
    shared lock) before returning, so a worker that dies immediately after
    reporting cannot lose the message -- ``multiprocessing.Queue``'s
    asynchronous feeder thread would, breaking crash attribution.  Built
    from documented primitives only (``Pipe``, ``Lock``,
    ``Connection.poll``); single consumer.
    """

    def __init__(self, context) -> None:
        self._reader, self._writer = context.Pipe(duplex=False)
        self._lock = context.Lock()

    def put(self, item) -> None:
        with self._lock:
            self._writer.send(item)

    def poll(self, timeout: float) -> bool:
        return self._reader.poll(timeout)

    def get(self):
        return self._reader.recv()


def _pool_worker(task_queue, result_queue) -> None:
    """Worker loop: steal task indices until the ``None`` sentinel arrives."""

    while True:
        index = task_queue.get()
        if index is None:
            return
        result_queue.put(("started", os.getpid(), index))
        start = time.perf_counter()
        try:
            value = _TASK_FN(index)
        except Exception as exc:  # noqa: BLE001 - reported to the parent
            elapsed = time.perf_counter() - start
            try:
                result_queue.put(("failed", os.getpid(), index, exc, elapsed))
            except Exception:  # unpicklable exception: fall back to text
                result_queue.put(("failed", os.getpid(), index,
                                  f"{type(exc).__name__}: {exc}", elapsed))
        except BaseException:
            # KeyboardInterrupt / SystemExit: die visibly -- the parent
            # detects the dead worker and re-queues the task.
            raise
        else:
            result_queue.put(("done", os.getpid(), index, value,
                              time.perf_counter() - start))


def run_tasks(num_tasks: int, fn: Callable[[int], object], *,
              workers: int = 1, max_attempts: int = 3,
              progress: Optional[Callable[[dict], None]] = None
              ) -> List[TaskResult]:
    """Run ``fn(0..num_tasks-1)`` on a crash-tolerant work-stealing pool.

    Task indices are placed on a shared queue; ``workers`` forked processes
    pull from it as they become idle, so long tasks never serialise behind
    short ones.  A task that raises is re-queued (and may land on any
    worker) until it succeeds or ``max_attempts`` is exhausted; a worker
    that dies mid-task is detected, its task re-queued and a replacement
    process forked.  Results are returned in task order; failures are
    recorded per task, never raised -- callers decide the policy.

    ``fn`` is installed in a module global before the fork, so workers
    inherit it (and anything it closes over, e.g. a trained model) through
    copy-on-write memory; only integer indices and result payloads travel
    through the queues.  Any state warmed in the parent *before* this call
    -- notably a :class:`~repro.snn.inference.PlanCache` holding the
    lowered inference plan -- is likewise inherited by every worker, and
    because **replacement workers are forked from the same parent**, a
    worker spawned after a crash starts with the warmed cache too; no
    worker ever re-lowers a plan the parent already lowered.  Falls back
    to in-process execution (same retry semantics) when ``workers <= 1``,
    when there is a single task, or on platforms without the ``fork``
    start method.
    """

    results = [TaskResult() for _ in range(num_tasks)]
    if num_tasks <= 0:
        return results
    workers = max(1, int(workers))
    context = None
    if workers > 1 and num_tasks > 1:
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            context = None
    if context is None:
        _run_tasks_inline(results, fn, max_attempts=max_attempts, progress=progress)
        return results

    global _TASK_FN
    _TASK_FN = fn
    task_queue = context.Queue()
    result_queue = _SyncChannel(context)
    pending = set(range(num_tasks))
    for index in range(num_tasks):
        task_queue.put(index)
    pool_size = min(workers, num_tasks)

    def spawn():
        process = context.Process(target=_pool_worker,
                                  args=(task_queue, result_queue), daemon=True)
        process.start()
        return process

    processes = [spawn() for _ in range(pool_size)]
    in_flight: Dict[int, int] = {}  # worker pid -> task index
    try:
        while pending:
            message = result_queue.get() if result_queue.poll(0.05) else None
            if message is not None:
                _handle_pool_message(message, results, pending, in_flight,
                                     task_queue, max_attempts, progress,
                                     num_tasks)
                continue
            # No message: check worker liveness and replace crashed workers.
            for slot, process in enumerate(processes):
                if process is None or process.is_alive():
                    continue
                process.join()
                _handle_worker_crash(process, results, pending, in_flight,
                                     task_queue, max_attempts, progress)
                processes[slot] = spawn() if pending else None
    finally:
        _TASK_FN = None
        for process in processes:
            if process is not None and process.is_alive():
                task_queue.put(None)
        deadline = time.monotonic() + 5.0
        for process in processes:
            if process is None:
                continue
            process.join(timeout=max(0.0, deadline - time.monotonic()))
            if process.is_alive():  # pragma: no cover - defensive shutdown
                process.terminate()
                process.join(timeout=1.0)
        task_queue.close()
    return results


def _run_tasks_inline(results: List[TaskResult], fn: Callable[[int], object], *,
                      max_attempts: int,
                      progress: Optional[Callable[[dict], None]]) -> None:
    """Serial fallback with the pool's retry-and-continue semantics."""

    for index in range(len(results)):
        result = results[index]
        while result.attempts < max_attempts:
            result.attempts += 1
            start = time.perf_counter()
            try:
                result.value = fn(index)
            except Exception as exc:  # noqa: BLE001 - collected per task
                # KeyboardInterrupt / SystemExit propagate: an interrupted
                # serial sweep stops immediately (finished tasks are already
                # cached, so a re-run resumes).
                result.exception = exc
                result.error = f"{type(exc).__name__}: {exc}"
                result.seconds = time.perf_counter() - start
                _emit(progress, kind="task-failed", index=index,
                      attempt=result.attempts, error=result.error)
            else:
                result.error = None
                result.exception = None
                result.seconds = time.perf_counter() - start
                _emit(progress, kind="task-done", index=index,
                      attempt=result.attempts, seconds=result.seconds)
                break


def _emit(progress: Optional[Callable[[dict], None]], **event) -> None:
    if progress is not None:
        progress(event)


def _handle_pool_message(message: tuple, results: List[TaskResult],
                         pending: set, in_flight: Dict[int, int],
                         task_queue, max_attempts: int,
                         progress: Optional[Callable[[dict], None]],
                         num_tasks: int) -> None:
    kind, pid, index = message[0], message[1], message[2]
    if kind == "started":
        if index in pending:
            in_flight[pid] = index
            results[index].attempts += 1
        return
    in_flight.pop(pid, None)
    if index not in pending:
        return  # duplicate delivery after a defensive re-queue
    result = results[index]
    if kind == "done":
        _, _, _, value, seconds = message
        result.value, result.error, result.seconds = value, None, seconds
        result.exception = None
        pending.discard(index)
        _emit(progress, kind="task-done", index=index, attempt=result.attempts,
              seconds=seconds, completed=num_tasks - len(pending),
              total=num_tasks)
    elif kind == "failed":
        _, _, _, failure, seconds = message
        if isinstance(failure, BaseException):
            result.exception = failure
            result.error = f"{type(failure).__name__}: {failure}"
        else:
            result.exception = None
            result.error = failure
        result.seconds = seconds
        _emit(progress, kind="task-failed", index=index,
              attempt=result.attempts, error=result.error)
        if result.attempts >= max_attempts:
            pending.discard(index)
        else:
            task_queue.put(index)


def _handle_worker_crash(process, results: List[TaskResult], pending: set,
                         in_flight: Dict[int, int], task_queue,
                         max_attempts: int,
                         progress: Optional[Callable[[dict], None]]) -> None:
    index = in_flight.pop(process.pid, None)
    _emit(progress, kind="worker-crash", pid=process.pid,
          exitcode=process.exitcode, index=index)
    logger.warning("worker %s died (exit %s) while running task %s",
                   process.pid, process.exitcode, index)
    if index is not None and index in pending:
        result = results[index]
        result.error = f"worker died (exit {process.exitcode})"
        result.exception = None
        if result.attempts >= max_attempts:
            pending.discard(index)
        else:
            task_queue.put(index)
    elif index is None:
        # The worker died between dequeuing a task and announcing it: the
        # task vanished from the queue without a trace.  Re-queue every
        # unresolved task not known to be running; duplicates are harmless
        # because completed indices are ignored on delivery.
        for orphan in sorted(pending - set(in_flight.values())):
            task_queue.put(orphan)


def pool_map(fn: Callable, items: Sequence, *, workers: int = 1,
             max_attempts: int = 2) -> list:
    """Map ``fn`` over ``items`` on the crash-tolerant pool; raise on failure.

    Drop-in pool backend for grid helpers such as
    :func:`repro.faults.campaign.map_grid`: results come back in item order,
    and if any task still fails after ``max_attempts`` the first failed
    item's original exception is re-raised (matching the serial path's
    exception types; worker tracebacks are lost to the process boundary).
    Failures surface only after the surviving items have finished, so no
    work is wasted.
    """

    items = list(items)
    results = run_tasks(len(items), lambda index: fn(items[index]),
                        workers=workers, max_attempts=max_attempts)
    failures = [(index, result) for index, result in enumerate(results)
                if not result.ok]
    if failures:
        detail = "; ".join(f"item {index}: {result.error}"
                           for index, result in failures)
        logger.error("%d grid task(s) failed: %s", len(failures), detail)
        first = failures[0][1]
        if first.exception is not None:
            raise first.exception
        raise RuntimeError(f"{len(failures)} grid task(s) failed: {detail}")
    return [result.value for result in results]


# ----------------------------------------------------------------------
# Reports
# ----------------------------------------------------------------------
@dataclasses.dataclass
class SweepReport:
    """Structured progress/outcome report of one orchestrated sweep.

    ``unit_seconds`` holds per-unit wall-clock of the computed units (keyed
    by ordinal); ``retries`` counts every extra attempt beyond the first,
    whether caused by an exception or a dead worker.
    """

    total_units: int = 0
    owned_units: int = 0
    cached_units: int = 0
    computed_units: int = 0
    failed_units: List[Tuple[int, str]] = dataclasses.field(default_factory=list)
    retries: int = 0
    elapsed_seconds: float = 0.0
    unit_seconds: Dict[int, float] = dataclasses.field(default_factory=dict)

    def summary(self) -> dict:
        """Flat JSON-friendly summary (suitable for logs and tables)."""

        computed = [self.unit_seconds[key] for key in sorted(self.unit_seconds)]
        return {
            "total_units": self.total_units,
            "owned_units": self.owned_units,
            "cached_units": self.cached_units,
            "computed_units": self.computed_units,
            "failed_units": len(self.failed_units),
            "retries": self.retries,
            "elapsed_seconds": self.elapsed_seconds,
            "mean_unit_seconds": (sum(computed) / len(computed)) if computed else 0.0,
        }


class PendingShardError(RuntimeError):
    """A sharded sweep finished its own units but other shards' are missing.

    Raised by :meth:`CampaignRunner.run` when merged records cannot be
    assembled yet; ``pending`` lists the affected point indices.  Run the
    remaining shards against the same cache directory, then re-run (any
    shard, or no shard at all) to merge purely from disk.
    """

    def __init__(self, pending: Sequence[int], report: Optional[SweepReport] = None):
        self.pending = list(pending)
        self.report = report
        super().__init__(
            f"{len(self.pending)} sweep point(s) still pending other shards: "
            f"{self.pending}")


@dataclasses.dataclass
class OrchestratorResult:
    """Outcome of :meth:`CampaignOrchestrator.run`.

    ``records`` aligns with the input points; entries are ``None`` for
    points whose units (owned by other shards) are not materialised yet,
    listed in ``pending``.
    """

    records: List[Optional[dict]]
    pending: List[int]
    report: SweepReport

    @property
    def complete(self) -> bool:
        return not self.pending


# ----------------------------------------------------------------------
# Orchestrator
# ----------------------------------------------------------------------
class CampaignOrchestrator:
    """Schedule a campaign grid as sharded, resumable work units.

    Parameters
    ----------
    runner:
        The :class:`~repro.faults.campaign.CampaignRunner` that evaluates
        units and defines the cache keys.  Its model/loader are inherited
        by forked workers through copy-on-write memory.
    workers:
        Worker processes pulling from the shared unit queue (default: the
        runner's ``workers``; 1 executes in-process).
    trial_chunk:
        Maximum trials per work unit.  ``None`` (default) keeps one unit
        per grid point, making unit cache keys identical to the plain
        per-point campaign keys.
    shard:
        Optional :class:`ShardSpec` or ``"i/N"`` string restricting this
        orchestrator to its round-robin share of the units.  Requires a
        cache directory on the runner (the shared filesystem is the only
        channel between shards).
    max_attempts:
        Attempts per unit before it is reported as failed (exceptions and
        worker deaths both consume attempts).
    progress:
        Optional callable receiving structured event dicts
        (``unit-done`` / ``unit-failed`` / ``worker-crash``) with per-unit
        timing and an ETA estimate; called in the parent process only.
    unit_hook:
        Test/diagnostic callable invoked with each :class:`WorkUnit` inside
        the worker immediately before evaluation.
    """

    def __init__(self, runner, *, workers: Optional[int] = None,
                 trial_chunk: Optional[int] = None,
                 shard: Optional[Union[str, ShardSpec]] = None,
                 max_attempts: int = 3,
                 progress: Optional[Callable[[dict], None]] = None,
                 unit_hook: Optional[Callable[[WorkUnit], None]] = None) -> None:
        self.runner = runner
        self.workers = int(runner.workers if workers is None else workers)
        self.trial_chunk = trial_chunk
        self.shard = None if shard is None else ShardSpec.parse(shard)
        self.max_attempts = int(max_attempts)
        self.progress = progress
        self.unit_hook = unit_hook
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.shard is not None and runner.cache_dir is None:
            raise ValueError(
                "sharded sweeps need a shared cache_dir: the on-disk unit "
                "records are the only channel between shards")

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def plan_units(self, points: Sequence[CampaignPoint]) -> List[WorkUnit]:
        """All work units of ``points`` (every shard sees the same list)."""

        return plan_work_units(points, self.trial_chunk)

    def _unit_path(self, unit: WorkUnit) -> Optional[Path]:
        # A unit's key IS the plain campaign key of its (sub-)point -- this
        # identity is the whole resume/coordination protocol.
        return self._point_path(unit.point)

    def _load_cached(self, path: Optional[Path]) -> Optional[dict]:
        if path is None or not path.exists():
            return None
        return load_records(path)

    # ------------------------------------------------------------------
    # Unit evaluation (runs inside workers)
    # ------------------------------------------------------------------
    def _compute_unit(self, unit: WorkUnit) -> Tuple[str, dict]:
        """Evaluate one unit, cooperating with concurrent orchestrators.

        Re-checks the cache immediately before simulating: on a shared
        filesystem another orchestrator may have materialised the unit
        since this run planned it, in which case its record is adopted.
        """

        if self.unit_hook is not None:
            self.unit_hook(unit)
        path = self._unit_path(unit)
        record = self._load_cached(path)
        if record is not None:
            return "cached", record
        record = self.runner._evaluate_point(unit.point)
        if path is not None:
            _store_record(record, path)
        return "computed", record

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, points: Sequence[CampaignPoint]) -> OrchestratorResult:
        """Evaluate (this shard's share of) ``points`` and merge records.

        Returns records aligned with ``points``; entries owned by other,
        unfinished shards are ``None`` and listed in ``pending``.  Units
        that fail after ``max_attempts`` raise a ``RuntimeError`` -- after
        every other unit has finished and been cached, so no work is lost.
        """

        start = time.monotonic()
        points = list(points)
        units = self.plan_units(points)
        report = SweepReport(total_units=len(units))
        records: List[Optional[dict]] = [None] * len(points)

        # Points whose full-grid record is already cached need no units at
        # all -- this is what makes plain CampaignRunner caches prime the
        # orchestrator.
        done_points = set()
        if self.runner.cache_dir is not None:
            for index, point in enumerate(points):
                cached = self._load_cached(self._point_path(point))
                if cached is not None:
                    records[index] = cached
                    done_points.add(index)

        report.cached_units += sum(
            1 for unit in units if unit.point_index in done_points)
        owned = [unit for unit in units
                 if unit.point_index not in done_points
                 and (self.shard is None or self.shard.owns(unit.ordinal))]
        report.owned_units = len(owned)

        unit_records: Dict[int, dict] = {}
        to_compute: List[WorkUnit] = []
        for unit in owned:
            cached = self._load_cached(self._unit_path(unit))
            if cached is not None:
                unit_records[unit.ordinal] = cached
                report.cached_units += 1
            else:
                to_compute.append(unit)

        failures = self._execute(to_compute, unit_records, report)
        self._assemble(points, units, done_points, unit_records, records,
                       report)
        report.elapsed_seconds = time.monotonic() - start
        logger.info("orchestrated sweep: %s", report.summary())
        if failures:
            detail = "; ".join(f"unit {ordinal} (point {units[ordinal].point_index}"
                               f", chunk {units[ordinal].chunk_index}): {error}"
                               for ordinal, error in failures)
            raise RuntimeError(
                f"{len(failures)} work unit(s) failed after "
                f"{self.max_attempts} attempt(s): {detail}")
        pending = [index for index in range(len(points))
                   if records[index] is None]
        return OrchestratorResult(records=records, pending=pending, report=report)

    def _execute(self, to_compute: List[WorkUnit],
                 unit_records: Dict[int, dict],
                 report: SweepReport) -> List[Tuple[int, str]]:
        """Run the missing units on the pool; fill ``unit_records``."""

        if not to_compute:
            return []
        # Lower the inference plan into the runner's per-process plan cache
        # *before* the pool forks: workers (and crash replacements, which
        # fork from this same parent) inherit the lowered plan through
        # copy-on-write memory instead of re-lowering once per work unit.
        warm = getattr(self.runner, "warm_plan_cache", None)
        if warm is not None:
            warm()
        seconds_seen: List[float] = []

        def forward_progress(event: dict) -> None:
            kind = event.get("kind", "")
            if kind.startswith("task"):
                task_index = event.get("index")
                unit = to_compute[task_index]
                event = dict(event, kind=kind.replace("task", "unit"),
                             ordinal=unit.ordinal, point_index=unit.point_index,
                             chunk_index=unit.chunk_index)
                event.pop("index", None)
                if kind == "task-done" and event.get("seconds") is not None:
                    seconds_seen.append(event["seconds"])
                    remaining = len(to_compute) - len(seconds_seen)
                    average = sum(seconds_seen) / len(seconds_seen)
                    event["eta_seconds"] = (remaining * average
                                            / max(1, min(self.workers,
                                                         len(to_compute))))
            if self.progress is not None:
                self.progress(event)

        results = run_tasks(
            len(to_compute), lambda index: self._compute_unit(to_compute[index]),
            workers=self.workers, max_attempts=self.max_attempts,
            progress=forward_progress)

        failures: List[Tuple[int, str]] = []
        for unit, result in zip(to_compute, results):
            report.retries += max(0, result.attempts - 1)
            if not result.ok:
                failures.append((unit.ordinal, result.error))
                report.failed_units.append((unit.ordinal, result.error))
                continue
            status, record = result.value
            unit_records[unit.ordinal] = record
            if status == "cached":
                report.cached_units += 1
            else:
                report.computed_units += 1
                report.unit_seconds[unit.ordinal] = result.seconds
        return failures

    # ------------------------------------------------------------------
    # Merging
    # ------------------------------------------------------------------
    def _point_path(self, point: CampaignPoint) -> Optional[Path]:
        if self.runner.cache_dir is None:
            return None
        payload = self.runner._cache_payload(point)
        return Path(self.runner.cache_dir) / f"{_digest_payload(payload)}.json"

    def merge_unit_records(self, point: CampaignPoint,
                           chunk_records: Sequence[dict]) -> dict:
        """Reconstruct the single-process record of ``point`` from its chunks.

        Concatenates the per-chunk accuracies in chunk order and recomputes
        the aggregate statistics exactly as
        :meth:`CampaignRunner._record_for` does; per-map independence of
        the engines makes the result byte-identical to an unsplit run.
        """

        accuracies: List[float] = []
        for record in chunk_records:
            accuracies.extend(record["accuracies"])
        return self.runner._record_for(point, accuracies)

    def _assemble(self, points: Sequence[CampaignPoint],
                  units: Sequence[WorkUnit], done_points: set,
                  unit_records: Dict[int, dict],
                  records: List[Optional[dict]], report: SweepReport) -> None:
        """Merge unit records (own, cached, or other shards') per point."""

        units_by_point: Dict[int, List[WorkUnit]] = {}
        for unit in units:
            units_by_point.setdefault(unit.point_index, []).append(unit)
        for index, point in enumerate(points):
            if index in done_points:
                continue
            chunk_records: List[dict] = []
            for unit in units_by_point[index]:
                record = unit_records.get(unit.ordinal)
                if record is None:  # not owned: look for another shard's work
                    record = self._load_cached(self._unit_path(unit))
                if record is None:
                    chunk_records = []
                    break
                chunk_records.append(record)
            if not chunk_records:
                continue
            if len(chunk_records) == 1:
                records[index] = chunk_records[0]
            else:
                records[index] = self.merge_unit_records(point, chunk_records)
                # Materialise the merged full-point record so future plain
                # runners (and full-point lookups) hit the cache directly.
                path = self._point_path(point)
                if path is not None and not path.exists():
                    _store_record(records[index], path)
