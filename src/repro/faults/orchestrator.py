"""Sharded, resumable campaign sweep orchestrator.

The campaign engine (:mod:`repro.faults.campaign`) makes one sweep *point*
fast; this module makes whole *sweeps* scale out.  A grid of
:class:`~repro.faults.campaign.CampaignPoint` objects is decomposed into
independent **work units** -- one per (grid point, trial chunk) -- which are
scheduled across a pool of forked worker processes pulling from a shared
work queue (idle workers steal whatever unit is next, so load balances
itself), and, when interrupted, resumed for free:

* **Cache keys are the coordination protocol.**  Every unit's on-disk key
  is exactly the PR 1 campaign cache key of its (sub-)point -- (model hash,
  data hash, grid point, seeds).  A unit whose key is already materialised
  is skipped, so a killed sweep continues where it stopped, a plain
  :class:`~repro.faults.campaign.CampaignRunner` cache primes the
  orchestrator (and vice versa), and concurrent orchestrators sharing a
  filesystem cooperate instead of duplicating work.  Result files are
  written atomically (temp file + ``os.replace``), so a reader never sees
  a torn record.
* **Shards split one sweep across machines.**  :class:`ShardSpec`
  (``--shard i/N``) deterministically assigns each unit ordinal to one of
  ``N`` shards (round-robin), so ``N`` machines pointed at the same cache
  directory partition the grid exactly.  A shard whose neighbours have not
  finished reports its pending points (:class:`PendingShardError` at the
  runner level); once every unit is materialised, any invocation -- or a
  final ``--resume`` pass -- assembles the merged records purely from disk.
* **The merge step is bit-exact.**  Per-map accuracies are independent of
  which pass evaluated them (the engines' documented per-map independence),
  and JSON round-trips IEEE-754 doubles exactly, so concatenating a point's
  chunk records reconstructs byte-identical output to a single-process
  :meth:`CampaignRunner.run`.
* **Failures are contained.**  A unit that raises is retried (on any
  worker) up to ``max_attempts`` times; a worker process that dies is
  detected, its unit re-queued and a replacement forked.  Workers emit
  heartbeats on the results channel while a unit runs, and a watchdog
  enforces a per-unit soft deadline (``unit_timeout``, or derived from
  observed unit timings): a *wedged* worker is killed (``SIGTERM``
  escalating to ``SIGKILL``) and replaced exactly like a crashed one, with
  exponential backoff between re-attempts of the same unit.  Units that
  exhaust ``max_attempts`` land on a quarantine list, so the rest of the
  sweep always completes, and :class:`SweepReport` attributes every
  failure to a taxonomy class (``crashed`` / ``hung`` / ``poisoned`` /
  ``cache-corrupt``).  Damaged cache entries are quarantined and recomputed
  by the campaign layer (:mod:`repro.faults.campaign`) instead of raising.
  All of these paths are testable deterministically through the chaos
  harness (:mod:`repro.testing.chaos`).

:class:`CampaignOrchestrator` is not usually constructed by hand:
``CampaignRunner(..., workers=K, shard=..., trial_chunk=...)`` routes
:meth:`~repro.faults.campaign.CampaignRunner.run` through it, and the CLI
exposes the same knobs (``python -m repro campaign --workers K
--shard i/N --resume``).
"""

from __future__ import annotations

import dataclasses
import heapq
import math
import multiprocessing
import os
import threading
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..utils.logging import get_logger
from .campaign import (
    _REQUIRED_RECORD_KEYS,
    CampaignPoint,
    _digest_payload,
    load_cached_record,
    store_record_safe,
)

__all__ = [
    "CampaignOrchestrator",
    "OrchestratorResult",
    "PendingShardError",
    "ShardSpec",
    "SweepReport",
    "WorkUnit",
    "pool_map",
    "run_tasks",
]

logger = get_logger("faults.orchestrator")


# ----------------------------------------------------------------------
# Shards
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class ShardSpec:
    """One shard of an ``N``-way sweep split (``--shard i/N``, 0-based).

    Units are assigned round-robin by ordinal, so the ``N`` shards of the
    same grid partition its units exactly: every unit belongs to one and
    only one shard, regardless of cache state or timing.
    """

    index: int
    total: int

    def __post_init__(self) -> None:
        if self.total < 1:
            raise ValueError("shard total must be at least 1")
        if not 0 <= self.index < self.total:
            raise ValueError(
                f"shard index must be in [0, {self.total}); got {self.index}")

    @classmethod
    def parse(cls, text: Union[str, "ShardSpec"]) -> "ShardSpec":
        """Parse an ``"i/N"`` string (e.g. ``"0/2"``) into a shard spec."""

        if isinstance(text, ShardSpec):
            return text
        parts = str(text).split("/")
        if len(parts) != 2:
            raise ValueError(f"expected 'i/N' (e.g. '0/2'); got {text!r}")
        try:
            index, total = int(parts[0]), int(parts[1])
        except ValueError:
            raise ValueError(f"expected integers in 'i/N'; got {text!r}") from None
        return cls(index=index, total=total)

    def owns(self, ordinal: int) -> bool:
        """Whether this shard is responsible for unit ``ordinal``."""

        return ordinal % self.total == self.index

    def __str__(self) -> str:
        return f"{self.index}/{self.total}"


# ----------------------------------------------------------------------
# Work units
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class WorkUnit:
    """One schedulable unit of a sweep: a (grid point, trial chunk) pair.

    ``point`` is a :class:`CampaignPoint` restricted to this chunk's trial
    seeds; it is a perfectly ordinary point, so its cache key is the PR 1
    campaign key and a plain :class:`CampaignRunner` would produce (or
    consume) the identical record for it.
    """

    ordinal: int
    point_index: int
    chunk_index: int
    num_chunks: int
    point: CampaignPoint


def plan_work_units(points: Sequence[CampaignPoint],
                    trial_chunk: Optional[int] = None) -> List[WorkUnit]:
    """Decompose ``points`` into work units of at most ``trial_chunk`` trials.

    ``trial_chunk=None`` keeps one unit per point (unit keys then equal the
    plain per-point campaign cache keys).  The decomposition depends only on
    the grid and ``trial_chunk`` -- never on worker count or cache state --
    so every shard of a split sweep enumerates identical ordinals.
    """

    if trial_chunk is not None and trial_chunk < 1:
        raise ValueError("trial_chunk must be at least 1")
    units: List[WorkUnit] = []
    for point_index, point in enumerate(points):
        seeds = point.map_seeds
        chunk = len(seeds) if trial_chunk is None else int(trial_chunk)
        num_chunks = max(1, math.ceil(len(seeds) / chunk))
        for chunk_index in range(num_chunks):
            chunk_seeds = seeds[chunk_index * chunk:(chunk_index + 1) * chunk]
            sub_point = (point if num_chunks == 1 else
                         dataclasses.replace(point, map_seeds=chunk_seeds))
            units.append(WorkUnit(ordinal=len(units), point_index=point_index,
                                  chunk_index=chunk_index, num_chunks=num_chunks,
                                  point=sub_point))
    return units


# ----------------------------------------------------------------------
# Generic work-stealing process pool with crash recovery
# ----------------------------------------------------------------------
@dataclasses.dataclass
class TaskResult:
    """Outcome of one pooled task: its value or its final error.

    ``exception`` carries the original exception object when it survived
    the trip back from the worker (so callers can re-raise with the real
    type); ``error`` is always a human-readable string.  ``failure_kind``
    classifies the *last* failed attempt: ``"poisoned"`` (the task raised),
    ``"crashed"`` (its worker died) or ``"hung"`` (its worker was killed by
    the watchdog).
    """

    value: object = None
    error: Optional[str] = None
    exception: Optional[BaseException] = None
    attempts: int = 0
    seconds: float = 0.0
    failure_kind: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None


class _SafeProgress:
    """Guard around a user progress callback.

    A raising callback must never take down the sweep it is observing: the
    first exception is reported once (with traceback) and the callback is
    disabled for the remainder of the run.
    """

    def __init__(self, callback: Callable[[dict], None]) -> None:
        self._callback = callback
        self._disabled = False

    def __call__(self, event: dict) -> None:
        if self._disabled:
            return
        try:
            self._callback(event)
        except Exception:
            self._disabled = True
            logger.exception(
                "progress callback raised; disabling further progress events")


def _safe_progress(progress: Optional[Callable[[dict], None]]
                   ) -> Optional[Callable[[dict], None]]:
    if progress is None or isinstance(progress, _SafeProgress):
        return progress
    return _SafeProgress(progress)


#: Task callable handed to forked workers via copy-on-write memory (set
#: immediately before the fork, cleared after; never pickled).
_TASK_FN: Optional[Callable[[int], object]] = None


class _WorkerChannel:
    """One worker's result pipe with synchronous, crash-safe sends.

    ``Connection.send`` pickles and writes the whole message before
    returning, so a worker that dies immediately after reporting cannot
    lose the message -- pipe buffers outlive their writer, and
    ``multiprocessing.Queue``'s asynchronous feeder thread would drop it,
    breaking crash attribution.  Each worker owns its *own* pipe: a worker
    killed mid-send (watchdog ``SIGKILL`` can land at any instant) can only
    truncate its own stream, which the parent reads as EOF and moves past
    -- it can never wedge its siblings behind a shared channel lock.  The
    in-process lock only serialises the worker's main thread against its
    heartbeat thread.
    """

    def __init__(self, context) -> None:
        self.reader, self._writer = context.Pipe(duplex=False)
        self._lock = threading.Lock()

    def put(self, item) -> None:
        with self._lock:
            self._writer.send(item)

    def close_parent_end(self) -> None:
        """Drop the parent's copy of the write end (enables EOF detection)."""

        self._writer.close()

    def close(self) -> None:
        try:
            self.reader.close()
        except OSError:  # pragma: no cover - double close is fine
            pass


def _heartbeat_loop(result_queue, index: int, stop: threading.Event,
                    interval: float) -> None:
    """Emit ``("heartbeat", pid, index, elapsed)`` until ``stop`` is set.

    Runs on a daemon side-thread inside the worker so the parent can tell
    "alive but slow" from "wedged beyond even its heartbeat thread"
    (SIGSTOP, channel deadlock) -- the latter trips the stall watchdog.
    """

    start = time.monotonic()
    while not stop.wait(interval):
        try:
            result_queue.put(("heartbeat", os.getpid(), index,
                              time.monotonic() - start))
        except Exception:  # parent gone / channel closed: nothing to report to
            return


def _pool_worker(task_queue, channel: _WorkerChannel,
                 heartbeat_interval: float) -> None:
    """Worker loop: steal task indices until the ``None`` sentinel arrives."""

    result_queue = channel
    while True:
        index = task_queue.get()
        if index is None:
            return
        result_queue.put(("started", os.getpid(), index))
        stop = threading.Event()
        beat = threading.Thread(
            target=_heartbeat_loop,
            args=(result_queue, index, stop, heartbeat_interval), daemon=True)
        beat.start()
        start = time.perf_counter()
        try:
            value = _TASK_FN(index)
        except Exception as exc:  # noqa: BLE001 - reported to the parent
            elapsed = time.perf_counter() - start
            stop.set()
            beat.join(timeout=1.0)
            try:
                result_queue.put(("failed", os.getpid(), index, exc, elapsed))
            except Exception:  # unpicklable exception: fall back to text
                result_queue.put(("failed", os.getpid(), index,
                                  f"{type(exc).__name__}: {exc}", elapsed))
        except BaseException:
            # KeyboardInterrupt / SystemExit: die visibly -- the parent
            # detects the dead worker and re-queues the task.
            raise
        else:
            elapsed = time.perf_counter() - start
            stop.set()
            beat.join(timeout=1.0)
            result_queue.put(("done", os.getpid(), index, value, elapsed))


def _stop_process(process, *, term_timeout: float = 1.0,
                  kill_timeout: float = 5.0) -> None:
    """Stop ``process`` for sure: SIGTERM, then escalate to SIGKILL.

    A worker that ignores (or is too wedged to service) SIGTERM must not be
    able to stall teardown or the watchdog: after ``term_timeout`` the kill
    is escalated to an uncatchable SIGKILL with its own bounded join.
    """

    process.terminate()
    process.join(timeout=term_timeout)
    if process.is_alive():
        process.kill()
        process.join(timeout=kill_timeout)


@dataclasses.dataclass
class _PoolState:
    """Mutable bookkeeping shared by the pool's message/watchdog handlers."""

    results: List[TaskResult]
    pending: set
    task_queue: object
    max_attempts: int
    progress: Optional[Callable[[dict], None]]
    num_tasks: int
    retry_backoff: float
    in_flight: Dict[int, int] = dataclasses.field(default_factory=dict)
    task_started: Dict[int, float] = dataclasses.field(default_factory=dict)
    last_beat: Dict[int, float] = dataclasses.field(default_factory=dict)
    deferred: List[Tuple[float, int]] = dataclasses.field(default_factory=list)
    observed: List[float] = dataclasses.field(default_factory=list)

    def forget_worker(self, pid: int) -> Optional[int]:
        self.task_started.pop(pid, None)
        self.last_beat.pop(pid, None)
        return self.in_flight.pop(pid, None)

    def requeue(self, index: int) -> Optional[float]:
        """Schedule a retry of ``index`` with exponential backoff.

        Returns the backoff delay, or ``None`` when attempts are exhausted
        (the task is then retired as failed -- quarantine is the caller's
        policy).
        """

        result = self.results[index]
        if result.attempts >= self.max_attempts:
            self.pending.discard(index)
            return None
        delay = self.retry_backoff * (2 ** max(0, result.attempts - 1))
        heapq.heappush(self.deferred, (time.monotonic() + delay, index))
        return delay

    def release_deferred(self) -> None:
        now = time.monotonic()
        while self.deferred and self.deferred[0][0] <= now:
            _, index = heapq.heappop(self.deferred)
            if index in self.pending:
                self.task_queue.put(index)


def run_tasks(num_tasks: int, fn: Callable[[int], object], *,
              workers: int = 1, max_attempts: int = 3,
              progress: Optional[Callable[[dict], None]] = None,
              task_timeout: Optional[float] = None,
              timeout_factor: float = 10.0,
              min_timeout: float = 5.0,
              retry_backoff: float = 0.25,
              heartbeat_interval: float = 0.2,
              stall_timeout: float = 30.0,
              ) -> List[TaskResult]:
    """Run ``fn(0..num_tasks-1)`` on a crash- and hang-tolerant pool.

    Task indices are placed on a shared queue; ``workers`` forked processes
    pull from it as they become idle, so long tasks never serialise behind
    short ones.  A task that raises is re-queued (and may land on any
    worker) until it succeeds or ``max_attempts`` is exhausted; a worker
    that dies mid-task is detected, its task re-queued and a replacement
    process forked.  Results are returned in task order; failures are
    recorded per task, never raised -- callers decide the policy.

    **Hang tolerance.**  While a task runs its worker emits heartbeats on
    the results channel every ``heartbeat_interval`` seconds.  A watchdog
    kills (SIGTERM escalating to SIGKILL) and replaces a worker whose task
    exceeds the per-task soft deadline -- ``task_timeout`` when given,
    otherwise ``max(min_timeout, timeout_factor x`` the longest completed
    task ``)`` once at least one task has finished -- or whose heartbeats
    stall for ``stall_timeout`` seconds (a process wedged beyond even its
    heartbeat thread).  The killed task is re-queued like a crashed one.
    Every retry (exception, crash or hang) waits ``retry_backoff x
    2^(attempt-1)`` seconds before re-entering the queue, so a unit that
    keeps wedging cannot monopolise the pool.  Timings, not arithmetic:
    none of these knobs can change task results.

    ``fn`` is installed in a module global before the fork, so workers
    inherit it (and anything it closes over, e.g. a trained model) through
    copy-on-write memory; only integer indices and result payloads travel
    through the queues.  Any state warmed in the parent *before* this call
    -- notably a :class:`~repro.snn.inference.PlanCache` holding the
    lowered inference plan -- is likewise inherited by every worker, and
    because **replacement workers are forked from the same parent**, a
    worker spawned after a crash starts with the warmed cache too; no
    worker ever re-lowers a plan the parent already lowered.  Falls back
    to in-process execution (same retry semantics) when ``workers <= 1``,
    when there is a single task, or on platforms without the ``fork``
    start method.
    """

    results = [TaskResult() for _ in range(num_tasks)]
    if num_tasks <= 0:
        return results
    workers = max(1, int(workers))
    progress = _safe_progress(progress)
    context = None
    if workers > 1 and num_tasks > 1:
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            context = None
    if context is None:
        _run_tasks_inline(results, fn, max_attempts=max_attempts,
                          progress=progress, retry_backoff=retry_backoff)
        return results

    global _TASK_FN
    _TASK_FN = fn
    task_queue = context.Queue()
    pending = set(range(num_tasks))
    for index in range(num_tasks):
        task_queue.put(index)
    pool_size = min(workers, num_tasks)

    def spawn() -> Tuple[object, _WorkerChannel]:
        channel = _WorkerChannel(context)
        process = context.Process(
            target=_pool_worker,
            args=(task_queue, channel, heartbeat_interval), daemon=True)
        process.start()
        channel.close_parent_end()
        return process, channel

    state = _PoolState(results=results, pending=pending, task_queue=task_queue,
                       max_attempts=max_attempts, progress=progress,
                       num_tasks=num_tasks, retry_backoff=retry_backoff)
    stall_limit = max(float(stall_timeout), 10.0 * heartbeat_interval)
    processes: List[Optional[object]] = []
    channels: List[Optional[_WorkerChannel]] = []
    for _ in range(pool_size):
        process, channel = spawn()
        processes.append(process)
        channels.append(channel)

    def retire(slot: int) -> None:
        """Replace the worker in ``slot`` (or close it when work is done)."""

        channels[slot].close()
        if pending:
            processes[slot], channels[slot] = spawn()
        else:
            processes[slot], channels[slot] = None, None

    last_check = time.monotonic()
    try:
        while pending:
            state.release_deferred()
            readers = [channel.reader for channel in channels
                       if channel is not None]
            for reader in (multiprocessing.connection.wait(readers, timeout=0.05)
                           if readers else ()):
                _drain_reader(reader, state)
            # Watchdog + liveness sweep on a timer, not on queue idleness:
            # a steady heartbeat stream must never starve hang detection.
            now = time.monotonic()
            if now - last_check < 0.1:
                continue
            last_check = now
            deadline = _effective_deadline(task_timeout, timeout_factor,
                                           min_timeout, state.observed)
            for slot, process in enumerate(processes):
                if process is None:
                    continue
                if not process.is_alive():
                    process.join()
                    # Drain first: a "done" sent just before death must not
                    # be misclassified as a crash of that task.
                    _drain_reader(channels[slot].reader, state)
                    _handle_worker_crash(process, state)
                    retire(slot)
                    continue
                reason = _hang_reason(state, process.pid, now, deadline,
                                      stall_limit)
                if reason is not None:
                    # Drain and re-check: a completion racing the deadline
                    # wins -- never kill a worker over delivered work.
                    _drain_reader(channels[slot].reader, state)
                    reason = _hang_reason(state, process.pid, time.monotonic(),
                                          deadline, stall_limit)
                if reason is not None:
                    _handle_worker_hang(process, state, reason)
                    retire(slot)
    finally:
        _TASK_FN = None
        for process in processes:
            if process is not None and process.is_alive():
                task_queue.put(None)
        shutdown_deadline = time.monotonic() + 5.0
        for slot, process in enumerate(processes):
            if process is None:
                continue
            process.join(timeout=max(0.0, shutdown_deadline - time.monotonic()))
            if process.is_alive():  # pragma: no cover - defensive shutdown
                # SIGTERM escalating to SIGKILL: teardown must never hang
                # behind a worker that ignores the polite signal.
                _stop_process(process)
            if channels[slot] is not None:
                channels[slot].close()
        task_queue.close()
    return results


def _drain_reader(reader, state: _PoolState) -> None:
    """Handle every message already buffered on one worker's pipe.

    EOF / truncated trailing bytes (the worker died or was killed mid-send)
    end the drain quietly -- the liveness sweep owns dead-worker handling.
    """

    while True:
        try:
            if not reader.poll(0):
                return
            message = reader.recv()
        except (EOFError, OSError):
            return
        _handle_pool_message(message, state)


def _effective_deadline(task_timeout: Optional[float], timeout_factor: float,
                        min_timeout: float,
                        observed: Sequence[float]) -> Optional[float]:
    """The per-task soft deadline currently in force.

    An explicit ``task_timeout`` always wins.  Otherwise the deadline is
    derived from observed behaviour -- ``timeout_factor`` times the longest
    completed task, floored at ``min_timeout`` -- and is ``None`` (no
    enforcement) until the first task completes, since there is nothing to
    derive it from yet.
    """

    if task_timeout is not None:
        return float(task_timeout)
    if not observed:
        return None
    return max(float(min_timeout), float(timeout_factor) * max(observed))


def _hang_reason(state: _PoolState, pid: int, now: float,
                 deadline: Optional[float],
                 stall_limit: float) -> Optional[str]:
    """Why worker ``pid`` should be treated as hung (None = healthy)."""

    index = state.in_flight.get(pid)
    started = state.task_started.get(pid)
    if index is None or started is None:
        return None
    elapsed = now - started
    if deadline is not None and elapsed > deadline:
        return (f"task {index} exceeded the {deadline:.2f}s soft deadline "
                f"(ran {elapsed:.2f}s)")
    beat_age = now - max(state.last_beat.get(pid, started), started)
    if beat_age > stall_limit:
        return (f"task {index} heartbeats stalled for {beat_age:.2f}s "
                f"(limit {stall_limit:.2f}s)")
    return None


def _run_tasks_inline(results: List[TaskResult], fn: Callable[[int], object], *,
                      max_attempts: int,
                      progress: Optional[Callable[[dict], None]],
                      retry_backoff: float = 0.25) -> None:
    """Serial fallback with the pool's retry-and-continue semantics.

    Timeouts cannot be enforced in-process (there is no worker to kill), but
    retries keep the pool's exponential backoff so failure behaviour stays
    comparable across both paths.
    """

    progress = _safe_progress(progress)
    for index in range(len(results)):
        result = results[index]
        while result.attempts < max_attempts:
            if result.attempts:
                time.sleep(retry_backoff * (2 ** (result.attempts - 1)))
            result.attempts += 1
            start = time.perf_counter()
            try:
                result.value = fn(index)
            except Exception as exc:  # noqa: BLE001 - collected per task
                # KeyboardInterrupt / SystemExit propagate: an interrupted
                # serial sweep stops immediately (finished tasks are already
                # cached, so a re-run resumes).
                result.exception = exc
                result.error = f"{type(exc).__name__}: {exc}"
                result.failure_kind = "poisoned"
                result.seconds = time.perf_counter() - start
                _emit(progress, kind="task-failed", index=index,
                      attempt=result.attempts, error=result.error,
                      reason="poisoned")
            else:
                result.error = None
                result.exception = None
                result.failure_kind = None
                result.seconds = time.perf_counter() - start
                _emit(progress, kind="task-done", index=index,
                      attempt=result.attempts, seconds=result.seconds)
                break


def _emit(progress: Optional[Callable[[dict], None]], **event) -> None:
    if progress is not None:
        progress(event)


def _handle_pool_message(message: tuple, state: _PoolState) -> None:
    kind, pid, index = message[0], message[1], message[2]
    now = time.monotonic()
    if kind == "heartbeat":
        state.last_beat[pid] = now
        return
    if kind == "started":
        if index in state.pending:
            state.in_flight[pid] = index
            state.task_started[pid] = now
            state.last_beat[pid] = now
            state.results[index].attempts += 1
        return
    state.forget_worker(pid)
    if index not in state.pending:
        return  # duplicate delivery after a defensive re-queue
    result = state.results[index]
    if kind == "done":
        _, _, _, value, seconds = message
        result.value, result.error, result.seconds = value, None, seconds
        result.exception = None
        result.failure_kind = None
        state.pending.discard(index)
        state.observed.append(seconds)
        _emit(state.progress, kind="task-done", index=index,
              attempt=result.attempts, seconds=seconds,
              completed=state.num_tasks - len(state.pending),
              total=state.num_tasks)
    elif kind == "failed":
        _, _, _, failure, seconds = message
        if isinstance(failure, BaseException):
            result.exception = failure
            result.error = f"{type(failure).__name__}: {failure}"
        else:
            result.exception = None
            result.error = failure
        result.seconds = seconds
        result.failure_kind = "poisoned"
        delay = state.requeue(index)
        _emit(state.progress, kind="task-failed", index=index,
              attempt=result.attempts, error=result.error, reason="poisoned",
              retry_delay=delay)


def _handle_worker_crash(process, state: _PoolState) -> None:
    index = state.forget_worker(process.pid)
    logger.warning("worker %s died (exit %s) while running task %s",
                   process.pid, process.exitcode, index)
    delay = None
    if index is not None and index in state.pending:
        result = state.results[index]
        result.error = f"worker died (exit {process.exitcode})"
        result.exception = None
        result.failure_kind = "crashed"
        delay = state.requeue(index)
    elif index is None:
        # The worker died between dequeuing a task and announcing it: the
        # task vanished from the queue without a trace.  Re-queue every
        # unresolved task not known to be running; duplicates are harmless
        # because completed indices are ignored on delivery.
        for orphan in sorted(state.pending - set(state.in_flight.values())):
            state.task_queue.put(orphan)
    _emit(state.progress, kind="worker-crash", pid=process.pid,
          exitcode=process.exitcode, index=index, reason="crashed",
          retry_delay=delay)


def _handle_worker_hang(process, state: _PoolState, reason: str) -> None:
    """Kill a wedged worker and reschedule its task like a crashed one."""

    pid = process.pid
    index = state.forget_worker(pid)
    logger.warning("worker %s judged hung (%s); killing and replacing it",
                   pid, reason)
    _stop_process(process)
    delay = None
    attempt = None
    if index is not None and index in state.pending:
        result = state.results[index]
        result.error = f"worker hung: {reason}"
        result.exception = None
        result.failure_kind = "hung"
        attempt = result.attempts
        delay = state.requeue(index)
    _emit(state.progress, kind="worker-hung", pid=pid, index=index,
          attempt=attempt, error=reason, reason="hung", retry_delay=delay)


def pool_map(fn: Callable, items: Sequence, *, workers: int = 1,
             max_attempts: int = 2) -> list:
    """Map ``fn`` over ``items`` on the crash-tolerant pool; raise on failure.

    Drop-in pool backend for grid helpers such as
    :func:`repro.faults.campaign.map_grid`: results come back in item order,
    and if any task still fails after ``max_attempts`` the first failed
    item's original exception is re-raised (matching the serial path's
    exception types; worker tracebacks are lost to the process boundary).
    Failures surface only after the surviving items have finished, so no
    work is wasted.
    """

    items = list(items)
    results = run_tasks(len(items), lambda index: fn(items[index]),
                        workers=workers, max_attempts=max_attempts)
    failures = [(index, result) for index, result in enumerate(results)
                if not result.ok]
    if failures:
        detail = "; ".join(f"item {index}: {result.error}"
                           for index, result in failures)
        logger.error("%d grid task(s) failed: %s", len(failures), detail)
        first_index, first = failures[0]
        context = (f"grid task {first_index}/{len(items)} failed after "
                   f"{first.attempts} attempt(s)")
        if first.exception is not None:
            # Prefix the task index / attempt count onto the original
            # exception (same type) so grid-cell failures are attributable
            # from the traceback alone.
            exc = first.exception
            exc.args = (f"{context}: {exc}",)
            raise exc
        raise RuntimeError(f"{context}: {first.error} "
                           f"({len(failures)} grid task(s) failed: {detail})")
    return [result.value for result in results]


# ----------------------------------------------------------------------
# Reports
# ----------------------------------------------------------------------
@dataclasses.dataclass
class SweepReport:
    """Structured progress/outcome report of one orchestrated sweep.

    ``unit_seconds`` holds per-unit wall-clock of the computed units (keyed
    by ordinal); ``retries`` counts every extra attempt beyond the first,
    whether caused by an exception or a dead worker.

    **Failure taxonomy.**  Every recovery action is attributed to a class
    and tallied: ``poisoned`` (a unit raised), ``crashed`` (a worker died
    mid-unit), ``hung`` (the watchdog killed a wedged worker),
    ``cache_corrupt`` (a damaged cache entry was quarantined and the unit
    recomputed) and ``store_degraded`` (a record could not be written --
    e.g. ``ENOSPC`` -- and the sweep continued uncached).  ``events``
    preserves the individual occurrences (dicts with at least ``kind`` and,
    where known, ``ordinal``); ``quarantined`` lists unit ordinals retired
    after exhausting ``max_attempts``.
    """

    total_units: int = 0
    owned_units: int = 0
    cached_units: int = 0
    computed_units: int = 0
    failed_units: List[Tuple[int, str]] = dataclasses.field(default_factory=list)
    retries: int = 0
    elapsed_seconds: float = 0.0
    unit_seconds: Dict[int, float] = dataclasses.field(default_factory=dict)
    poisoned: int = 0
    crashed: int = 0
    hung: int = 0
    cache_corrupt: int = 0
    store_degraded: int = 0
    quarantined: List[int] = dataclasses.field(default_factory=list)
    events: List[dict] = dataclasses.field(default_factory=list)

    def record_event(self, event: dict) -> None:
        """Tally ``event`` into the taxonomy counters and keep it."""

        kind = event.get("kind", "")
        reason = event.get("reason")
        if reason == "poisoned":
            self.poisoned += 1
        elif reason == "crashed":
            self.crashed += 1
        elif reason == "hung":
            self.hung += 1
        elif kind == "cache-corrupt":
            self.cache_corrupt += 1
        elif kind == "store-degraded":
            self.store_degraded += 1
        self.events.append(dict(event))

    def summary(self) -> dict:
        """Flat JSON-friendly summary (suitable for logs and tables)."""

        computed = [self.unit_seconds[key] for key in sorted(self.unit_seconds)]
        return {
            "total_units": self.total_units,
            "owned_units": self.owned_units,
            "cached_units": self.cached_units,
            "computed_units": self.computed_units,
            "failed_units": len(self.failed_units),
            "retries": self.retries,
            "elapsed_seconds": self.elapsed_seconds,
            "mean_unit_seconds": (sum(computed) / len(computed)) if computed else 0.0,
            "poisoned": self.poisoned,
            "crashed": self.crashed,
            "hung": self.hung,
            "cache_corrupt": self.cache_corrupt,
            "store_degraded": self.store_degraded,
            "quarantined": list(self.quarantined),
        }


class PendingShardError(RuntimeError):
    """A sharded sweep finished its own units but other shards' are missing.

    Raised by :meth:`CampaignRunner.run` when merged records cannot be
    assembled yet; ``pending`` lists the affected point indices.  Run the
    remaining shards against the same cache directory, then re-run (any
    shard, or no shard at all) to merge purely from disk.
    """

    def __init__(self, pending: Sequence[int], report: Optional[SweepReport] = None):
        self.pending = list(pending)
        self.report = report
        super().__init__(
            f"{len(self.pending)} sweep point(s) still pending other shards: "
            f"{self.pending}")


@dataclasses.dataclass
class OrchestratorResult:
    """Outcome of :meth:`CampaignOrchestrator.run`.

    ``records`` aligns with the input points; entries are ``None`` for
    points whose units (owned by other shards) are not materialised yet,
    listed in ``pending``.
    """

    records: List[Optional[dict]]
    pending: List[int]
    report: SweepReport

    @property
    def complete(self) -> bool:
        return not self.pending


# ----------------------------------------------------------------------
# Orchestrator
# ----------------------------------------------------------------------
class CampaignOrchestrator:
    """Schedule a campaign grid as sharded, resumable work units.

    Parameters
    ----------
    runner:
        The :class:`~repro.faults.campaign.CampaignRunner` that evaluates
        units and defines the cache keys.  Its model/loader are inherited
        by forked workers through copy-on-write memory.
    workers:
        Worker processes pulling from the shared unit queue (default: the
        runner's ``workers``; 1 executes in-process).
    trial_chunk:
        Maximum trials per work unit.  ``None`` (default) keeps one unit
        per grid point, making unit cache keys identical to the plain
        per-point campaign keys.
    shard:
        Optional :class:`ShardSpec` or ``"i/N"`` string restricting this
        orchestrator to its round-robin share of the units.  Requires a
        cache directory on the runner (the shared filesystem is the only
        channel between shards).
    max_attempts:
        Attempts per unit before it is reported as failed (exceptions,
        worker deaths and watchdog kills all consume attempts).
    unit_timeout:
        Optional per-unit soft deadline in seconds enforced by the pool
        watchdog (CLI: ``--unit-timeout``).  ``None`` (default) derives the
        deadline from observed unit timings instead.
    retry_backoff:
        Base of the exponential backoff (``retry_backoff x 2^(attempt-1)``
        seconds) between re-attempts of the same unit.
    on_exhausted:
        Policy for units that exhaust ``max_attempts``: ``"raise"``
        (default) raises ``RuntimeError`` after every other unit has
        finished; ``"quarantine"`` retires them onto
        :attr:`SweepReport.quarantined` and completes the sweep without
        their records (affected points stay ``None`` / pending).
    progress:
        Optional callable receiving structured event dicts
        (``unit-done`` / ``unit-failed`` / ``worker-crash`` /
        ``worker-hung`` / ``cache-corrupt`` / ``store-degraded``) with
        per-unit timing and an ETA estimate; called in the parent process
        only.  A raising callback is reported once and disabled.
    unit_hook:
        Test/diagnostic callable invoked with each :class:`WorkUnit` inside
        the worker immediately before evaluation.
    """

    def __init__(self, runner, *, workers: Optional[int] = None,
                 trial_chunk: Optional[int] = None,
                 shard: Optional[Union[str, ShardSpec]] = None,
                 max_attempts: int = 3,
                 unit_timeout: Optional[float] = None,
                 retry_backoff: float = 0.25,
                 on_exhausted: str = "raise",
                 progress: Optional[Callable[[dict], None]] = None,
                 unit_hook: Optional[Callable[[WorkUnit], None]] = None) -> None:
        self.runner = runner
        self.workers = int(runner.workers if workers is None else workers)
        self.trial_chunk = trial_chunk
        self.shard = None if shard is None else ShardSpec.parse(shard)
        self.max_attempts = int(max_attempts)
        self.unit_timeout = None if unit_timeout is None else float(unit_timeout)
        self.retry_backoff = float(retry_backoff)
        self.on_exhausted = str(on_exhausted)
        self.progress = _safe_progress(progress)
        self.unit_hook = unit_hook
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.unit_timeout is not None and self.unit_timeout <= 0:
            raise ValueError("unit_timeout must be positive")
        if self.on_exhausted not in ("raise", "quarantine"):
            raise ValueError(
                f"on_exhausted must be 'raise' or 'quarantine'; "
                f"got {self.on_exhausted!r}")
        if self.shard is not None and runner.cache_dir is None:
            raise ValueError(
                "sharded sweeps need a shared cache_dir: the on-disk unit "
                "records are the only channel between shards")

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def plan_units(self, points: Sequence[CampaignPoint]) -> List[WorkUnit]:
        """All work units of ``points`` (every shard sees the same list)."""

        return plan_work_units(points, self.trial_chunk)

    def _unit_path(self, unit: WorkUnit) -> Optional[Path]:
        # A unit's key IS the plain campaign key of its (sub-)point -- this
        # identity is the whole resume/coordination protocol.
        return self._point_path(unit.point)

    def _load_cached(self, path: Optional[Path],
                     on_event: Optional[Callable[[dict], None]] = None
                     ) -> Optional[dict]:
        """Validated cache read; damaged entries quarantine to ``None``."""

        if path is None:
            return None
        return load_cached_record(path, required_keys=_REQUIRED_RECORD_KEYS,
                                  on_event=on_event)

    # ------------------------------------------------------------------
    # Unit evaluation (runs inside workers)
    # ------------------------------------------------------------------
    def _compute_unit(self, unit: WorkUnit) -> Tuple[str, dict, List[dict]]:
        """Evaluate one unit, cooperating with concurrent orchestrators.

        Re-checks the cache immediately before simulating: on a shared
        filesystem another orchestrator may have materialised the unit
        since this run planned it, in which case its record is adopted.
        A damaged cache entry is quarantined and the unit recomputed; a
        failed store degrades to an uncached result.  Either incident is
        returned as a picklable event dict (third element) so the parent
        can attribute it in the :class:`SweepReport` -- this method runs
        inside workers, where the report does not live.
        """

        from ..testing.chaos import active_plan

        events: List[dict] = []

        def note(event: dict) -> None:
            events.append(dict(event, ordinal=unit.ordinal,
                               point_index=unit.point_index))

        if self.unit_hook is not None:
            self.unit_hook(unit)
        plan = active_plan()
        if plan is not None:
            plan.consult("unit", key=unit.ordinal)
        path = self._unit_path(unit)
        record = self._load_cached(path, on_event=note)
        if record is not None:
            return "cached", record, events
        record = self.runner._evaluate_point(unit.point)
        if path is not None:
            store_record_safe(record, path, on_event=note)
        return "computed", record, events

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _note_event(self, report: SweepReport, event: dict) -> None:
        """Attribute ``event`` in the report and forward it to progress."""

        report.record_event(event)
        if self.progress is not None:
            self.progress(dict(event))

    def run(self, points: Sequence[CampaignPoint]) -> OrchestratorResult:
        """Evaluate (this shard's share of) ``points`` and merge records.

        Returns records aligned with ``points``; entries owned by other,
        unfinished shards are ``None`` and listed in ``pending``.  Units
        that fail after ``max_attempts`` raise a ``RuntimeError`` -- after
        every other unit has finished and been cached, so no work is lost
        -- unless ``on_exhausted="quarantine"``, in which case they are
        retired onto ``report.quarantined`` and the sweep completes with
        their points pending.
        """

        start = time.monotonic()
        points = list(points)
        units = self.plan_units(points)
        report = SweepReport(total_units=len(units))
        records: List[Optional[dict]] = [None] * len(points)
        note = lambda event: self._note_event(report, event)  # noqa: E731

        # Points whose full-grid record is already cached need no units at
        # all -- this is what makes plain CampaignRunner caches prime the
        # orchestrator.
        done_points = set()
        if self.runner.cache_dir is not None:
            for index, point in enumerate(points):
                cached = self._load_cached(self._point_path(point), on_event=note)
                if cached is not None:
                    records[index] = cached
                    done_points.add(index)

        report.cached_units += sum(
            1 for unit in units if unit.point_index in done_points)
        owned = [unit for unit in units
                 if unit.point_index not in done_points
                 and (self.shard is None or self.shard.owns(unit.ordinal))]
        report.owned_units = len(owned)

        unit_records: Dict[int, dict] = {}
        to_compute: List[WorkUnit] = []
        for unit in owned:
            cached = self._load_cached(self._unit_path(unit), on_event=note)
            if cached is not None:
                unit_records[unit.ordinal] = cached
                report.cached_units += 1
            else:
                to_compute.append(unit)

        failures = self._execute(to_compute, unit_records, report)
        self._assemble(points, units, done_points, unit_records, records,
                       report)
        report.quarantined = sorted(ordinal for ordinal, _ in failures)
        report.elapsed_seconds = time.monotonic() - start
        logger.info("orchestrated sweep: %s", report.summary())
        if failures and self.on_exhausted == "raise":
            detail = "; ".join(f"unit {ordinal} (point {units[ordinal].point_index}"
                               f", chunk {units[ordinal].chunk_index}): {error}"
                               for ordinal, error in failures)
            raise RuntimeError(
                f"{len(failures)} work unit(s) failed after "
                f"{self.max_attempts} attempt(s): {detail}")
        if failures:
            logger.warning(
                "quarantined %d work unit(s) after %d attempt(s): %s",
                len(failures), self.max_attempts, report.quarantined)
        pending = [index for index in range(len(points))
                   if records[index] is None]
        return OrchestratorResult(records=records, pending=pending, report=report)

    def _execute(self, to_compute: List[WorkUnit],
                 unit_records: Dict[int, dict],
                 report: SweepReport) -> List[Tuple[int, str]]:
        """Run the missing units on the pool; fill ``unit_records``."""

        if not to_compute:
            return []
        # Lower the inference plan into the runner's per-process plan cache
        # *before* the pool forks: workers (and crash replacements, which
        # fork from this same parent) inherit the lowered plan through
        # copy-on-write memory instead of re-lowering once per work unit.
        warm = getattr(self.runner, "warm_plan_cache", None)
        if warm is not None:
            warm()
        seconds_seen: List[float] = []

        def forward_progress(event: dict) -> None:
            kind = event.get("kind", "")
            index = event.get("index")
            if kind.startswith("task") or index is not None:
                # Translate pool task indices into sweep ordinals -- both
                # for unit events and for worker-crash/worker-hung events
                # that name the task the dead worker was running.
                unit = to_compute[index] if index is not None else None
                event = dict(event, kind=kind.replace("task", "unit"))
                if unit is not None:
                    event.update(ordinal=unit.ordinal,
                                 point_index=unit.point_index,
                                 chunk_index=unit.chunk_index)
                event.pop("index", None)
                if kind == "task-done" and event.get("seconds") is not None:
                    seconds_seen.append(event["seconds"])
                    remaining = len(to_compute) - len(seconds_seen)
                    average = sum(seconds_seen) / len(seconds_seen)
                    event["eta_seconds"] = (remaining * average
                                            / max(1, min(self.workers,
                                                         len(to_compute))))
            if event.get("reason") in ("poisoned", "crashed", "hung"):
                report.record_event(event)
            if self.progress is not None:
                self.progress(event)

        results = run_tasks(
            len(to_compute), lambda index: self._compute_unit(to_compute[index]),
            workers=self.workers, max_attempts=self.max_attempts,
            progress=forward_progress, task_timeout=self.unit_timeout,
            retry_backoff=self.retry_backoff)

        failures: List[Tuple[int, str]] = []
        for unit, result in zip(to_compute, results):
            report.retries += max(0, result.attempts - 1)
            if not result.ok:
                failures.append((unit.ordinal, result.error))
                report.failed_units.append((unit.ordinal, result.error))
                continue
            status, record, events = result.value
            for event in events:
                self._note_event(report, event)
            unit_records[unit.ordinal] = record
            if status == "cached":
                report.cached_units += 1
            else:
                report.computed_units += 1
                report.unit_seconds[unit.ordinal] = result.seconds
        return failures

    # ------------------------------------------------------------------
    # Merging
    # ------------------------------------------------------------------
    def _point_path(self, point: CampaignPoint) -> Optional[Path]:
        if self.runner.cache_dir is None:
            return None
        payload = self.runner._cache_payload(point)
        return Path(self.runner.cache_dir) / f"{_digest_payload(payload)}.json"

    def merge_unit_records(self, point: CampaignPoint,
                           chunk_records: Sequence[dict]) -> dict:
        """Reconstruct the single-process record of ``point`` from its chunks.

        Concatenates the per-chunk accuracies in chunk order and recomputes
        the aggregate statistics exactly as
        :meth:`CampaignRunner._record_for` does; per-map independence of
        the engines makes the result byte-identical to an unsplit run.
        """

        accuracies: List[float] = []
        for record in chunk_records:
            accuracies.extend(record["accuracies"])
        return self.runner._record_for(point, accuracies)

    def _assemble(self, points: Sequence[CampaignPoint],
                  units: Sequence[WorkUnit], done_points: set,
                  unit_records: Dict[int, dict],
                  records: List[Optional[dict]], report: SweepReport) -> None:
        """Merge unit records (own, cached, or other shards') per point."""

        units_by_point: Dict[int, List[WorkUnit]] = {}
        for unit in units:
            units_by_point.setdefault(unit.point_index, []).append(unit)
        for index, point in enumerate(points):
            if index in done_points:
                continue
            chunk_records: List[dict] = []
            for unit in units_by_point[index]:
                record = unit_records.get(unit.ordinal)
                if record is None:  # not owned: look for another shard's work
                    record = self._load_cached(
                        self._unit_path(unit),
                        on_event=lambda event: self._note_event(report, event))
                if record is None:
                    chunk_records = []
                    break
                chunk_records.append(record)
            if not chunk_records:
                continue
            if len(chunk_records) == 1:
                records[index] = chunk_records[0]
            else:
                records[index] = self.merge_unit_records(point, chunk_records)
                # Materialise the merged full-point record so future plain
                # runners (and full-point lookups) hit the cache directly.
                path = self._point_path(point)
                if path is not None and not path.exists():
                    store_record_safe(
                        records[index], path,
                        on_event=lambda event: self._note_event(report, event))
