"""Fault maps: which PEs of the array are faulty and with what fault.

A :class:`FaultMap` is the software counterpart of the per-chip fault map a
manufacturer obtains from post-fabrication testing (paper, Section IV).  It
maps PE grid coordinates to :class:`~repro.faults.fault_model.StuckAtFault`
instances and provides the random generators used by the vulnerability and
mitigation experiments (fault maps by PE count, by fault rate, by bit
position).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterator, List, Optional, Tuple, Union


from ..systolic.fixed_point import FixedPointFormat, DEFAULT_ACCUMULATOR_FORMAT
from ..utils.rng import get_rng
from .fault_model import StuckAtFault, StuckAtType

Coordinate = Tuple[int, int]


@dataclasses.dataclass
class FaultMap:
    """Mapping of faulty PE coordinates to stuck-at faults for one fabricated chip.

    ``fmt`` optionally pins the accumulator format the map targets; when set,
    every fault's ``bit_position`` is validated against ``fmt.total_bits`` at
    construction and on :meth:`add`, instead of failing deep inside the
    simulator on first application.
    """

    rows: int
    cols: int
    faults: Dict[Coordinate, StuckAtFault] = dataclasses.field(default_factory=dict)
    fmt: Optional[FixedPointFormat] = None

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise ValueError("array dimensions must be positive")
        for coord, fault in self.faults.items():
            self._validate(coord)
            self._validate_fault(fault)

    # ------------------------------------------------------------------
    # Dict-like interface
    # ------------------------------------------------------------------
    def _validate(self, coord: Coordinate) -> None:
        row, col = coord
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise ValueError(f"coordinate {coord} outside {self.rows}x{self.cols} array")

    def _validate_fault(self, fault: StuckAtFault) -> None:
        if self.fmt is not None and fault.bit_position >= self.fmt.total_bits:
            raise ValueError(
                f"bit {fault.bit_position} outside the "
                f"{self.fmt.total_bits}-bit accumulator format")

    def add(self, row: int, col: int, fault: StuckAtFault) -> None:
        self._validate((row, col))
        self._validate_fault(fault)
        self.faults[(row, col)] = fault

    def items(self) -> Iterator[Tuple[Coordinate, StuckAtFault]]:
        return iter(self.faults.items())

    def coordinates(self) -> List[Coordinate]:
        return list(self.faults.keys())

    def __len__(self) -> int:
        return len(self.faults)

    def __contains__(self, coord: Coordinate) -> bool:
        return tuple(coord) in self.faults

    def __iter__(self) -> Iterator[Coordinate]:
        return iter(self.faults)

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def num_pes(self) -> int:
        return self.rows * self.cols

    @property
    def fault_rate(self) -> float:
        """Fraction of PEs that are faulty, in [0, 1]."""

        return len(self.faults) / self.num_pes

    def describe(self) -> str:
        return (f"FaultMap({self.rows}x{self.cols}, {len(self.faults)} faulty PEs, "
                f"rate={100.0 * self.fault_rate:.3f}%)")

    def merge(self, other: "FaultMap") -> "FaultMap":
        """Union of two fault maps over the same array (later map wins on collisions)."""

        if (self.rows, self.cols) != (other.rows, other.cols):
            raise ValueError("cannot merge fault maps of different array sizes")
        merged = dict(self.faults)
        merged.update(other.faults)
        return FaultMap(self.rows, self.cols, merged,
                        fmt=self.fmt if self.fmt is not None else other.fmt)


# ----------------------------------------------------------------------
# Generators
# ----------------------------------------------------------------------
def _sample_coordinates(rows: int, cols: int, count: int, rng) -> List[Coordinate]:
    if count > rows * cols:
        raise ValueError(f"cannot place {count} faults in a {rows}x{cols} array")
    flat = rng.choice(rows * cols, size=count, replace=False)
    return [(int(index // cols), int(index % cols)) for index in flat]


def random_fault_map(rows: int, cols: int, num_faulty: int,
                     bit_position: Optional[int] = None,
                     stuck_type: Union[StuckAtType, int, str] = 1,
                     fmt: FixedPointFormat = DEFAULT_ACCUMULATOR_FORMAT,
                     high_order_bits: int = 4,
                     seed=None) -> FaultMap:
    """Random fault map with ``num_faulty`` faulty PEs.

    When ``bit_position`` is ``None`` the afflicted bit is drawn uniformly
    from the ``high_order_bits`` most significant *data* bits below the sign
    bit (the paper's worst-case analysis injects faults in the higher-order
    bits of the accumulator output).  The sampling window is clamped at bit
    0: asking for more high-order bits than the format has data bits draws
    from all of them rather than from a negative bit range.
    """

    if num_faulty < 0:
        raise ValueError("num_faulty must be non-negative")
    if high_order_bits < 1:
        raise ValueError("high_order_bits must be at least 1")
    rng = get_rng(seed)
    stuck = StuckAtType.from_value(stuck_type)
    low = max(0, fmt.magnitude_msb - high_order_bits + 1)
    fault_map = FaultMap(rows, cols, fmt=fmt)
    for row, col in _sample_coordinates(rows, cols, num_faulty, rng):
        if bit_position is None:
            bit = int(rng.integers(low, fmt.magnitude_msb + 1))
        else:
            bit = bit_position
        fault_map.add(row, col, StuckAtFault(bit_position=bit, stuck_type=stuck))
    return fault_map


def fault_map_from_rate(rows: int, cols: int, fault_rate: float,
                        bit_position: Optional[int] = None,
                        stuck_type: Union[StuckAtType, int, str] = 1,
                        fmt: FixedPointFormat = DEFAULT_ACCUMULATOR_FORMAT,
                        seed=None) -> FaultMap:
    """Random fault map covering ``fault_rate`` (fraction in [0, 1]) of the PEs.

    Used by the mitigation experiments, which quote fault rates of 10 %,
    30 % and 60 % of the 256x256 array.
    """

    if not 0.0 <= fault_rate <= 1.0:
        raise ValueError("fault_rate must be in [0, 1]")
    num_faulty = int(round(fault_rate * rows * cols))
    return random_fault_map(rows, cols, num_faulty, bit_position=bit_position,
                            stuck_type=stuck_type, fmt=fmt, seed=seed)


def single_bit_fault_map(rows: int, cols: int, num_faulty: int, bit_position: int,
                         stuck_type: Union[StuckAtType, int, str],
                         seed=None) -> FaultMap:
    """Fault map where every faulty PE has the same bit/polarity (Fig. 5a sweeps)."""

    return random_fault_map(rows, cols, num_faulty, bit_position=bit_position,
                            stuck_type=stuck_type, seed=seed)


def fault_maps_for_trials(rows: int, cols: int, num_faulty: int, trials: int,
                          bit_position: Optional[int] = None,
                          stuck_type: Union[StuckAtType, int, str] = 1,
                          fmt: FixedPointFormat = DEFAULT_ACCUMULATOR_FORMAT,
                          seed=None) -> List[FaultMap]:
    """Distinct fault maps for repeated trials (8 iterations per point in Fig. 5b)."""

    if trials <= 0:
        raise ValueError("trials must be positive")
    base = get_rng(seed)
    seeds = base.integers(0, 2**63 - 1, size=trials)
    return [
        random_fault_map(rows, cols, num_faulty, bit_position=bit_position,
                         stuck_type=stuck_type, fmt=fmt, seed=int(s))
        for s in seeds
    ]
