"""Attaching faulty systolic arrays to trained SNNs for inference.

The :class:`FaultInjector` temporarily re-routes every convolutional and
fully connected layer of a :class:`~repro.snn.network.SpikingClassifier`
through a (possibly faulty) :class:`~repro.systolic.array.SystolicArray`, so
that the accuracy measured afterwards reflects the accelerator's stuck-at
faults -- the tool-flow of the paper's Fig. 4 ("fault injection" followed by
"fault mapping to systolic array").

Three execution modes are provided:

* The **fused engine** (default for both evaluation helpers): the model is
  lowered to a :class:`~repro.snn.inference.FusedFaultEngine` -- a flat
  plan of fused pure-numpy kernels with no autograd graph, clean-prefix
  sharing across fault maps that have not yet diverged, and an optional
  float32 mode.  Float64 results are bit-identical to the autograd paths
  below.
* :class:`FaultInjector` / ``engine="autograd"`` on
  :func:`evaluate_with_faults` -- the sequential autograd reference: one
  fault map per forward pass.
* :class:`BatchedFaultInjector` / ``engine="autograd"`` on
  :func:`evaluate_with_faults_batched` -- the batched autograd reference:
  the input batch is tiled ``F`` times and ONE forward pass is routed
  through all ``F`` arrays of a
  :class:`~repro.systolic.array.BatchedSystolicArray` at once (the fault-map
  axis is folded into the batch axis between layers).  Every non-affine
  layer is elementwise over the batch, so per-map accuracies are
  bit-identical to ``F`` sequential passes while amortising the Python and
  dispatch overhead of the whole network across the fault maps.
"""

from __future__ import annotations

import contextlib
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..autograd import Tensor, no_grad
from ..snn.layers import Conv2d, Linear
from ..snn.network import SpikingClassifier
from ..systolic.array import BatchedSystolicArray, SystolicArray
from ..systolic.fixed_point import DEFAULT_ACCUMULATOR_FORMAT, FixedPointFormat
from .fault_map import FaultMap, FaultSchedule, schedule_phases

#: Execution engines accepted by the evaluation helpers: the fused
#: no-autograd plan (default) or the autograd fault-injector reference.
EVAL_ENGINES = ("fused", "autograd")

#: Execution engines accepted by :func:`evaluate_with_transient_faults`:
#: the phase-aware fused plan (default), the batched autograd injector, or
#: the per-schedule sequential oracle.
TRANSIENT_EVAL_ENGINES = ("fused", "batched", "sequential")


def _check_eval_engine(engine: str, dtype: str,
                       lane_threads: Optional[int] = None,
                       backend=None) -> None:
    if engine not in EVAL_ENGINES:
        raise ValueError(f"unknown engine '{engine}'; options: {EVAL_ENGINES}")
    if engine != "fused" and dtype != "float64":
        raise ValueError("dtype overrides require the fused engine")
    if engine != "fused" and lane_threads is not None and int(lane_threads) != 1:
        raise ValueError("lane_threads overrides require the fused engine")
    if engine != "fused" and backend is not None:
        raise ValueError("backend overrides require the fused engine")


class FaultInjector(contextlib.AbstractContextManager):
    """Context manager that runs a model's affine layers on a systolic array.

    Parameters
    ----------
    model:
        Trained spiking classifier.
    array:
        Systolic array carrying the fault map (and, optionally, bypass state).
    layer_filter:
        Optional predicate selecting which affine layers to re-route; by
        default every :class:`Conv2d` and :class:`Linear` layer is mapped to
        the array, matching the paper's accelerator which executes all
        convolutional and fully connected layers on the same PE grid.
    """

    def __init__(self, model: SpikingClassifier, array: SystolicArray,
                 layer_filter=None) -> None:
        self.model = model
        self.array = array
        self.layer_filter = layer_filter or (lambda layer: True)
        self._original_forwards: List[Tuple[object, callable]] = []

    # ------------------------------------------------------------------
    def _target_layers(self) -> List[object]:
        layers = [m for m in self.model.modules() if isinstance(m, (Conv2d, Linear))]
        return [layer for layer in layers if self.layer_filter(layer)]

    def _make_faulty_forward(self, layer):
        array = self.array

        if isinstance(layer, Conv2d):
            def forward(x: Tensor) -> Tensor:
                bias = layer.bias.data if layer.bias is not None else None
                result = array.conv2d(layer.weight.data, x.data, bias=bias,
                                      stride=layer.stride, padding=layer.padding)
                return Tensor(result)
        else:
            def forward(x: Tensor) -> Tensor:
                bias = layer.bias.data if layer.bias is not None else None
                result = array.matmul(layer.weight.data, x.data, bias=bias)
                return Tensor(result)
        return forward

    def __enter__(self) -> "FaultInjector":
        for layer in self._target_layers():
            self._original_forwards.append((layer, layer.forward))
            # Shadow the class-level forward with an instance attribute; the
            # class method reappears untouched once the shadow is removed.
            object.__setattr__(layer, "forward", self._make_faulty_forward(layer))
        return self

    def __exit__(self, *exc_info) -> None:
        for layer, _original in self._original_forwards:
            if "forward" in layer.__dict__:
                object.__delattr__(layer, "forward")
        self._original_forwards = []


class BatchedFaultInjector(contextlib.AbstractContextManager):
    """Run a model's affine layers on ``F`` fault maps in one forward pass.

    The model is driven with ordinary (untiled) batches.  The first
    re-routed layer is the *fan-out* point: its inputs are identical for
    every fault map, so the clean product is computed once and replicated
    before the per-map fault corruption, and its output carries the fault
    maps folded into the batch axis (map-major: slice ``f * B:(f + 1) * B``
    belongs to map ``f``).  Every later re-routed layer unfolds that axis,
    executes the batched array path, and folds it back, so the layers in
    between never notice the extra axis.

    Use only in evaluation mode: batch normalisation in training mode would
    compute statistics across the folded fault-map axis and break the
    per-map equivalence with the sequential path.
    """

    def __init__(self, model: SpikingClassifier, array: BatchedSystolicArray,
                 layer_filter=None) -> None:
        self.model = model
        self.array = array
        self.layer_filter = layer_filter or (lambda layer: True)
        self._original_forwards: List[Tuple[object, callable]] = []

    def _target_layers(self) -> List[object]:
        layers = [m for m in self.model.modules() if isinstance(m, (Conv2d, Linear))]
        return [layer for layer in layers if self.layer_filter(layer)]

    def _make_batched_forward(self, layer, fan_out: bool):
        array = self.array
        num_maps = array.num_maps
        # The masked chain weight stacks depend only on the weights and the
        # fault structure, so they are built once per layer for the whole
        # evaluation (all batches and time steps).
        prepared = array.prepare_weight(layer.weight.data)

        def unfold(data: np.ndarray) -> np.ndarray:
            if fan_out:
                # Shared activations: matmul_batched/conv2d_batched replicate
                # the clean product across the maps themselves.
                return data
            if data.shape[0] % num_maps:
                raise ValueError(
                    f"batch size {data.shape[0]} is not divisible by the "
                    f"{num_maps} fault maps; was the fan-out layer skipped?")
            return data.reshape((num_maps, data.shape[0] // num_maps) + data.shape[1:])

        if isinstance(layer, Conv2d):
            def forward(x: Tensor) -> Tensor:
                bias = layer.bias.data if layer.bias is not None else None
                result = array.conv2d_batched(layer.weight.data, unfold(x.data), bias=bias,
                                              stride=layer.stride, padding=layer.padding,
                                              prepared=prepared)
                return Tensor(result.reshape((-1,) + result.shape[2:]))
        else:
            def forward(x: Tensor) -> Tensor:
                bias = layer.bias.data if layer.bias is not None else None
                result = array.matmul_batched(layer.weight.data, unfold(x.data), bias=bias,
                                              prepared=prepared)
                return Tensor(result.reshape((-1,) + result.shape[2:]))
        return forward

    def __enter__(self) -> "BatchedFaultInjector":
        for index, layer in enumerate(self._target_layers()):
            self._original_forwards.append((layer, layer.forward))
            object.__setattr__(layer, "forward",
                               self._make_batched_forward(layer, fan_out=index == 0))
        return self

    def __exit__(self, *exc_info) -> None:
        for layer, _original in self._original_forwards:
            if "forward" in layer.__dict__:
                object.__delattr__(layer, "forward")
        self._original_forwards = []


class TransientFaultInjector(contextlib.AbstractContextManager):
    """Sequential oracle for one transient fault schedule.

    Every re-routed affine layer is executed once per SNN time step, so a
    per-layer call counter *is* the time step; the layer's GEMM is routed
    through the :class:`SystolicArray` carrying exactly the faults live at
    that step (arrays are shared between steps with identical live sets).
    ``model.forward`` is shadowed too, purely to reset the counters at the
    start of each batch.

    This path makes no fast-path assumptions -- each step runs the full
    per-map array simulation -- which is what makes it the oracle the
    batched and fused transient paths are pinned against.
    """

    def __init__(self, model: SpikingClassifier, schedule: FaultSchedule,
                 fmt: FixedPointFormat = DEFAULT_ACCUMULATOR_FORMAT,
                 layer_filter=None) -> None:
        self.model = model
        self.schedule = schedule
        self.layer_filter = layer_filter or (lambda layer: True)
        step_phase, phase_maps = schedule_phases([schedule])
        self._step_phase = step_phase
        self._arrays = [build_faulty_array(maps[0], fmt=fmt)
                        for maps in phase_maps]
        self._counters: dict = {}
        self._original_forwards: List[Tuple[object, callable]] = []

    def _target_layers(self) -> List[object]:
        layers = [m for m in self.model.modules() if isinstance(m, (Conv2d, Linear))]
        return [layer for layer in layers if self.layer_filter(layer)]

    def _make_transient_forward(self, layer):
        arrays = self._arrays
        step_phase = self._step_phase
        counters = self._counters
        key = id(layer)
        is_conv = isinstance(layer, Conv2d)

        def forward(x: Tensor) -> Tensor:
            step = counters.get(key, 0)
            counters[key] = step + 1
            if step >= len(step_phase):
                raise ValueError(
                    f"layer ran more than {len(step_phase)} time steps but "
                    f"the fault schedule only covers {len(step_phase)}")
            array = arrays[step_phase[step]]
            bias = layer.bias.data if layer.bias is not None else None
            if is_conv:
                result = array.conv2d(layer.weight.data, x.data, bias=bias,
                                      stride=layer.stride, padding=layer.padding)
            else:
                result = array.matmul(layer.weight.data, x.data, bias=bias)
            return Tensor(result)
        return forward

    def __enter__(self) -> "TransientFaultInjector":
        for layer in self._target_layers():
            self._original_forwards.append((layer, layer.forward))
            object.__setattr__(layer, "forward", self._make_transient_forward(layer))
        counters = self._counters
        original_forward = self.model.forward

        def reset_forward(*args, **kwargs):
            counters.clear()
            return original_forward(*args, **kwargs)

        object.__setattr__(self.model, "forward", reset_forward)
        return self

    def __exit__(self, *exc_info) -> None:
        for layer, _original in self._original_forwards:
            if "forward" in layer.__dict__:
                object.__delattr__(layer, "forward")
        self._original_forwards = []
        if "forward" in self.model.__dict__:
            object.__delattr__(self.model, "forward")
        self._counters.clear()


class BatchedTransientFaultInjector(contextlib.AbstractContextManager):
    """Run ``F`` transient fault schedules in one batched forward pass.

    Fan-out works exactly as in :class:`BatchedFaultInjector` -- the first
    re-routed layer's inputs come from the (untiled) encoding path at
    *every* time step, so they are identical across maps at every step and
    the clean product can always be computed once and replicated.  The only
    additions are a per-layer step counter (each affine layer runs once per
    time step) selecting the live-fault phase, and per-(layer, phase)
    prepared weights.
    """

    def __init__(self, model: SpikingClassifier,
                 schedules: Sequence[FaultSchedule],
                 fmt: FixedPointFormat = DEFAULT_ACCUMULATOR_FORMAT,
                 layer_filter=None) -> None:
        schedules = list(schedules)
        if not schedules:
            raise ValueError("at least one schedule is required")
        self.model = model
        self.layer_filter = layer_filter or (lambda layer: True)
        step_phase, phase_maps = schedule_phases(schedules)
        self._step_phase = step_phase
        self._phase_arrays = [BatchedSystolicArray.from_fault_maps(maps, fmt=fmt)
                              for maps in phase_maps]
        self.num_maps = len(schedules)
        self._counters: dict = {}
        self._original_forwards: List[Tuple[object, callable]] = []

    def _target_layers(self) -> List[object]:
        layers = [m for m in self.model.modules() if isinstance(m, (Conv2d, Linear))]
        return [layer for layer in layers if self.layer_filter(layer)]

    def _make_batched_forward(self, layer, fan_out: bool):
        phase_arrays = self._phase_arrays
        prepared = [array.prepare_weight(layer.weight.data)
                    for array in phase_arrays]
        num_maps = self.num_maps
        step_phase = self._step_phase
        counters = self._counters
        key = id(layer)
        is_conv = isinstance(layer, Conv2d)

        def unfold(data: np.ndarray) -> np.ndarray:
            if fan_out:
                return data
            if data.shape[0] % num_maps:
                raise ValueError(
                    f"batch size {data.shape[0]} is not divisible by the "
                    f"{num_maps} fault maps; was the fan-out layer skipped?")
            return data.reshape((num_maps, data.shape[0] // num_maps) + data.shape[1:])

        def forward(x: Tensor) -> Tensor:
            step = counters.get(key, 0)
            counters[key] = step + 1
            if step >= len(step_phase):
                raise ValueError(
                    f"layer ran more than {len(step_phase)} time steps but "
                    f"the fault schedules only cover {len(step_phase)}")
            phase = step_phase[step]
            array = phase_arrays[phase]
            bias = layer.bias.data if layer.bias is not None else None
            if is_conv:
                result = array.conv2d_batched(layer.weight.data, unfold(x.data),
                                              bias=bias, stride=layer.stride,
                                              padding=layer.padding,
                                              prepared=prepared[phase])
            else:
                result = array.matmul_batched(layer.weight.data, unfold(x.data),
                                              bias=bias, prepared=prepared[phase])
            return Tensor(result.reshape((-1,) + result.shape[2:]))
        return forward

    def __enter__(self) -> "BatchedTransientFaultInjector":
        for index, layer in enumerate(self._target_layers()):
            self._original_forwards.append((layer, layer.forward))
            object.__setattr__(layer, "forward",
                               self._make_batched_forward(layer, fan_out=index == 0))
        counters = self._counters
        original_forward = self.model.forward

        def reset_forward(*args, **kwargs):
            counters.clear()
            return original_forward(*args, **kwargs)

        object.__setattr__(self.model, "forward", reset_forward)
        return self

    def __exit__(self, *exc_info) -> None:
        for layer, _original in self._original_forwards:
            if "forward" in layer.__dict__:
                object.__delattr__(layer, "forward")
        self._original_forwards = []
        if "forward" in self.model.__dict__:
            object.__delattr__(self.model, "forward")
        self._counters.clear()


def build_faulty_array(fault_map: FaultMap,
                       fmt: FixedPointFormat = DEFAULT_ACCUMULATOR_FORMAT,
                       bypass: bool = False) -> SystolicArray:
    """Construct a :class:`SystolicArray` loaded with ``fault_map``.

    ``bypass=True`` enables the bypass multiplexer of every faulty PE (the
    mitigated hardware of Fig. 3b); ``bypass=False`` models the unmitigated
    chip used in the vulnerability analysis.
    """

    array = SystolicArray(fault_map.rows, fault_map.cols, fmt=fmt)
    array.load_fault_map(fault_map)
    if bypass:
        array.bypass_faulty_pes()
    return array


def evaluate_with_faults(model: SpikingClassifier, loader,
                         fault_map: Optional[FaultMap] = None,
                         array: Optional[SystolicArray] = None,
                         bypass: bool = False,
                         fmt: FixedPointFormat = DEFAULT_ACCUMULATOR_FORMAT,
                         engine: str = "fused",
                         dtype: str = "float64",
                         plan_cache=None,
                         plan_token: Optional[str] = None,
                         lane_threads: Optional[int] = None,
                         backend: Optional[str] = None) -> float:
    """Measure the classification accuracy of ``model`` under fault injection.

    Parameters
    ----------
    model:
        Trained :class:`~repro.snn.network.SpikingClassifier`.
    loader:
        Evaluation data loader; accuracy is measured over all its batches.
    fault_map:
        Fault map to inject; ignored when a prepared ``array`` is given
        (exactly one of the two is required).
    array:
        Prepared faulty :class:`~repro.systolic.array.SystolicArray`.
    bypass:
        Enable the bypass multiplexer of faulty PEs (mitigated hardware).
    fmt:
        Accumulator fixed-point format of the simulated array.
    engine:
        ``"fused"`` (default) lowers the model to the no-autograd inference
        plan; ``"autograd"`` routes through the software forward.  float64
        results are bit-identical across both.
    dtype:
        ``"float64"`` (default) or ``"float32"``; the latter requires the
        fused engine and trades bit-identity for speed.
    plan_cache:
        Optional :class:`~repro.snn.inference.PlanCache` the fused engine
        fetches the lowered inference plan from instead of re-lowering
        (content-keyed, so it cannot go stale across different models).
    plan_token:
        Optional precomputed model token for the cache lookup, skipping
        the per-call state hashing (ignored without ``plan_cache``).
    lane_threads:
        Fork-lane thread count of the fused engine (``None`` resolves
        ``REPRO_LANE_THREADS``, default 1; 0 auto-sizes).  Results are
        bit-identical for every value; non-default values require
        ``engine="fused"``.
    backend:
        Kernel backend of the fused engine (``None`` resolves
        ``REPRO_BACKEND``, default ``"numpy"``).  float64 results are
        byte-identical across backends; requires ``engine="fused"``.

    Returns
    -------
    float
        Accuracy in ``[0, 1]``.
    """

    _check_eval_engine(engine, dtype, lane_threads, backend)
    if array is None:
        if fault_map is None:
            raise ValueError("either fault_map or array must be provided")
        array = build_faulty_array(fault_map, fmt=fmt, bypass=bypass)

    if engine == "fused":
        from ..snn.inference import FusedFaultEngine

        with FusedFaultEngine(model, [array], dtype=dtype,
                              plan_cache=plan_cache,
                              plan_token=plan_token,
                              lane_threads=lane_threads,
                              backend=backend) as fused:
            return fused.evaluate(loader)[0]

    was_training = model.training
    model.eval()
    correct = 0
    total = 0
    try:
        with FaultInjector(model, array), no_grad():
            for inputs, labels in loader:
                rates = model(Tensor(inputs))
                predictions = np.argmax(rates.data, axis=1)
                correct += int(np.sum(predictions == labels))
                total += labels.shape[0]
    finally:
        model.train(was_training)
    return correct / total if total else 0.0


def evaluate_with_faults_batched(model: SpikingClassifier, loader,
                                 fault_maps: Optional[Sequence[FaultMap]] = None,
                                 array: Optional[BatchedSystolicArray] = None,
                                 bypass: bool = False,
                                 fmt: FixedPointFormat = DEFAULT_ACCUMULATOR_FORMAT,
                                 engine: str = "fused",
                                 dtype: str = "float64",
                                 plan_cache=None,
                                 plan_token: Optional[str] = None,
                                 lane_threads: Optional[int] = None,
                                 backend: Optional[str] = None
                                 ) -> List[float]:
    """Measure per-fault-map accuracies of ``model`` in one multi-map pass.

    The whole sweep point -- all ``F`` fault maps -- costs roughly one
    (``F``-times wider) inference instead of ``F`` full inferences.

    Parameters
    ----------
    model:
        Trained :class:`~repro.snn.network.SpikingClassifier`.
    loader:
        Evaluation data loader; accuracy is measured over all its batches.
    fault_maps:
        Fault maps to evaluate; ignored when a prepared ``array`` is given
        (exactly one of the two is required).
    array:
        Prepared :class:`~repro.systolic.array.BatchedSystolicArray`.
    bypass:
        Enable the bypass multiplexer of faulty PEs (mitigated hardware).
    fmt:
        Accumulator fixed-point format of the simulated arrays.
    engine:
        ``"fused"`` (default) additionally shares the clean activation
        prefix across fault maps that have not yet diverged (see
        :class:`~repro.snn.inference.FusedFaultEngine`); ``"autograd"``
        folds the maps into the batch axis of the software forward.
    dtype:
        ``"float64"`` (default) or ``"float32"`` (fused engine only).
    plan_cache:
        Optional :class:`~repro.snn.inference.PlanCache` the fused engine
        fetches the lowered inference plan from instead of re-lowering.
    plan_token:
        Optional precomputed model token for the cache lookup, skipping
        the per-call state hashing (ignored without ``plan_cache``).
    lane_threads:
        Fork-lane thread count of the fused engine (``None`` resolves
        ``REPRO_LANE_THREADS``, default 1; 0 auto-sizes): the per-step
        fork work of the maps is split into that many thread-parallel
        lanes.  Results are bit-identical for every value; non-default
        values require ``engine="fused"``.
    backend:
        Kernel backend of the fused engine (``None`` resolves
        ``REPRO_BACKEND``, default ``"numpy"``).  float64 results are
        byte-identical across backends; requires ``engine="fused"``.

    Returns
    -------
    list of float
        One accuracy per fault map, in input order.  In float64 the list
        matches ``[evaluate_with_faults(model, loader, fault_map=m) for m
        in fault_maps]`` bit for bit, independent of which maps share the
        pass -- the per-map independence the campaign merge/chunking
        machinery relies on.
    """

    _check_eval_engine(engine, dtype, lane_threads, backend)
    if engine == "fused":
        from ..snn.inference import FusedFaultEngine

        if array is not None:
            arrays = array.arrays
        else:
            if not fault_maps:
                raise ValueError("either fault_maps or array must be provided")
            arrays = [build_faulty_array(fault_map, fmt=fmt, bypass=bypass)
                      for fault_map in fault_maps]
        with FusedFaultEngine(model, arrays, dtype=dtype,
                              plan_cache=plan_cache,
                              plan_token=plan_token,
                              lane_threads=lane_threads,
                              backend=backend) as fused:
            return fused.evaluate(loader)

    if array is None:
        if not fault_maps:
            raise ValueError("either fault_maps or array must be provided")
        array = BatchedSystolicArray.from_fault_maps(fault_maps, fmt=fmt, bypass=bypass)
    num_maps = array.num_maps

    was_training = model.training
    model.eval()
    correct = np.zeros(num_maps, dtype=np.int64)
    total = 0
    try:
        with BatchedFaultInjector(model, array) as injector, no_grad():
            fans_out = bool(injector._original_forwards)
            for inputs, labels in loader:
                rates = model(Tensor(inputs))
                batch = labels.shape[0]
                if fans_out:
                    predictions = np.argmax(rates.data.reshape(num_maps, batch, -1), axis=2)
                    correct += np.sum(predictions == labels[None, :], axis=1)
                else:
                    # No layer was re-routed: every map sees the software path.
                    predictions = np.argmax(rates.data, axis=1)
                    correct += int(np.sum(predictions == labels))
                total += batch
    finally:
        model.train(was_training)
    if not total:
        return [0.0] * num_maps
    return [int(c) / total for c in correct]


def evaluate_with_transient_faults(model: SpikingClassifier, loader,
                                   schedules: Sequence[FaultSchedule], *,
                                   fmt: FixedPointFormat = DEFAULT_ACCUMULATOR_FORMAT,
                                   engine: str = "fused",
                                   dtype: str = "float64",
                                   plan_cache=None,
                                   plan_token: Optional[str] = None,
                                   lane_threads: Optional[int] = None,
                                   backend: Optional[str] = None
                                   ) -> List[float]:
    """Measure per-schedule accuracies of ``model`` under transient faults.

    Parameters
    ----------
    model:
        Trained :class:`~repro.snn.network.SpikingClassifier`.
    loader:
        Evaluation data loader; accuracy is measured over all its batches.
    schedules:
        One :class:`~repro.faults.fault_map.FaultSchedule` per trial.  All
        must share grid dimensions and ``num_steps``; the model must not
        run more time steps than the schedules cover (running fewer is
        fine -- late faults simply never fire).
    fmt:
        Accumulator fixed-point format of the simulated arrays.
    engine:
        ``"fused"`` (default) runs the phase-aware
        :class:`~repro.snn.inference.FusedFaultEngine`; ``"batched"`` the
        autograd :class:`BatchedTransientFaultInjector`; ``"sequential"``
        the per-schedule :class:`TransientFaultInjector` oracle.  float64
        results are bit-identical across all three.
    dtype:
        ``"float64"`` (default) or ``"float32"`` (fused engine only).
    plan_cache / plan_token / lane_threads / backend:
        Fused-engine options, as in :func:`evaluate_with_faults_batched`.

    Returns
    -------
    list of float
        One accuracy per schedule, in input order.

    Notes
    -----
    Transient schedules model the unmitigated chip: there is no ``bypass``
    option (bypassing a PE for the whole inference would mask the fault on
    its clean steps too, a different -- permanent -- mitigation model).
    """

    schedules = list(schedules)
    if not schedules:
        raise ValueError("at least one schedule is required")
    if engine not in TRANSIENT_EVAL_ENGINES:
        raise ValueError(
            f"unknown engine '{engine}'; options: {TRANSIENT_EVAL_ENGINES}")
    if engine != "fused" and dtype != "float64":
        raise ValueError("dtype overrides require the fused engine")
    if engine != "fused" and lane_threads is not None and int(lane_threads) != 1:
        raise ValueError("lane_threads overrides require the fused engine")
    if engine != "fused" and backend is not None:
        raise ValueError("backend overrides require the fused engine")

    if engine == "fused":
        from ..snn.inference import FusedFaultEngine

        with FusedFaultEngine(model, schedules=schedules, fmt=fmt,
                              dtype=dtype, plan_cache=plan_cache,
                              plan_token=plan_token,
                              lane_threads=lane_threads,
                              backend=backend) as fused:
            return fused.evaluate(loader)

    was_training = model.training
    model.eval()
    try:
        if engine == "batched":
            num_maps = len(schedules)
            correct = np.zeros(num_maps, dtype=np.int64)
            total = 0
            with BatchedTransientFaultInjector(model, schedules, fmt=fmt) \
                    as injector, no_grad():
                fans_out = bool(injector._original_forwards)
                for inputs, labels in loader:
                    rates = model(Tensor(inputs))
                    batch = labels.shape[0]
                    if fans_out:
                        predictions = np.argmax(
                            rates.data.reshape(num_maps, batch, -1), axis=2)
                        correct += np.sum(predictions == labels[None, :], axis=1)
                    else:
                        predictions = np.argmax(rates.data, axis=1)
                        correct += int(np.sum(predictions == labels))
                    total += batch
            if not total:
                return [0.0] * num_maps
            return [int(c) / total for c in correct]

        accuracies = []
        for schedule in schedules:
            correct = 0
            total = 0
            with TransientFaultInjector(model, schedule, fmt=fmt), no_grad():
                for inputs, labels in loader:
                    rates = model(Tensor(inputs))
                    predictions = np.argmax(rates.data, axis=1)
                    correct += int(np.sum(predictions == labels))
                    total += labels.shape[0]
            accuracies.append(correct / total if total else 0.0)
        return accuracies
    finally:
        model.train(was_training)
