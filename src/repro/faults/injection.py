"""Attaching faulty systolic arrays to trained SNNs for inference.

The :class:`FaultInjector` temporarily re-routes every convolutional and
fully connected layer of a :class:`~repro.snn.network.SpikingClassifier`
through a (possibly faulty) :class:`~repro.systolic.array.SystolicArray`, so
that the accuracy measured afterwards reflects the accelerator's stuck-at
faults -- the tool-flow of the paper's Fig. 4 ("fault injection" followed by
"fault mapping to systolic array").
"""

from __future__ import annotations

import contextlib
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..autograd import Tensor, no_grad
from ..snn.layers import Conv2d, Linear
from ..snn.network import SpikingClassifier
from ..systolic.array import SystolicArray
from ..systolic.fixed_point import DEFAULT_ACCUMULATOR_FORMAT, FixedPointFormat
from .fault_map import FaultMap


class FaultInjector(contextlib.AbstractContextManager):
    """Context manager that runs a model's affine layers on a systolic array.

    Parameters
    ----------
    model:
        Trained spiking classifier.
    array:
        Systolic array carrying the fault map (and, optionally, bypass state).
    layer_filter:
        Optional predicate selecting which affine layers to re-route; by
        default every :class:`Conv2d` and :class:`Linear` layer is mapped to
        the array, matching the paper's accelerator which executes all
        convolutional and fully connected layers on the same PE grid.
    """

    def __init__(self, model: SpikingClassifier, array: SystolicArray,
                 layer_filter=None) -> None:
        self.model = model
        self.array = array
        self.layer_filter = layer_filter or (lambda layer: True)
        self._original_forwards: List[Tuple[object, callable]] = []

    # ------------------------------------------------------------------
    def _target_layers(self) -> List[object]:
        layers = [m for m in self.model.modules() if isinstance(m, (Conv2d, Linear))]
        return [layer for layer in layers if self.layer_filter(layer)]

    def _make_faulty_forward(self, layer):
        array = self.array

        if isinstance(layer, Conv2d):
            def forward(x: Tensor) -> Tensor:
                bias = layer.bias.data if layer.bias is not None else None
                result = array.conv2d(layer.weight.data, x.data, bias=bias,
                                      stride=layer.stride, padding=layer.padding)
                return Tensor(result)
        else:
            def forward(x: Tensor) -> Tensor:
                bias = layer.bias.data if layer.bias is not None else None
                result = array.matmul(layer.weight.data, x.data, bias=bias)
                return Tensor(result)
        return forward

    def __enter__(self) -> "FaultInjector":
        for layer in self._target_layers():
            self._original_forwards.append((layer, layer.forward))
            # Shadow the class-level forward with an instance attribute; the
            # class method reappears untouched once the shadow is removed.
            object.__setattr__(layer, "forward", self._make_faulty_forward(layer))
        return self

    def __exit__(self, *exc_info) -> None:
        for layer, _original in self._original_forwards:
            if "forward" in layer.__dict__:
                object.__delattr__(layer, "forward")
        self._original_forwards = []


def build_faulty_array(fault_map: FaultMap,
                       fmt: FixedPointFormat = DEFAULT_ACCUMULATOR_FORMAT,
                       bypass: bool = False) -> SystolicArray:
    """Construct a :class:`SystolicArray` loaded with ``fault_map``.

    ``bypass=True`` enables the bypass multiplexer of every faulty PE (the
    mitigated hardware of Fig. 3b); ``bypass=False`` models the unmitigated
    chip used in the vulnerability analysis.
    """

    array = SystolicArray(fault_map.rows, fault_map.cols, fmt=fmt)
    array.load_fault_map(fault_map)
    if bypass:
        array.bypass_faulty_pes()
    return array


def evaluate_with_faults(model: SpikingClassifier, loader,
                         fault_map: Optional[FaultMap] = None,
                         array: Optional[SystolicArray] = None,
                         bypass: bool = False,
                         fmt: FixedPointFormat = DEFAULT_ACCUMULATOR_FORMAT) -> float:
    """Classification accuracy of ``model`` on ``loader`` under fault injection.

    Either a prepared ``array`` or a ``fault_map`` must be supplied.  Returns
    accuracy in [0, 1].
    """

    if array is None:
        if fault_map is None:
            raise ValueError("either fault_map or array must be provided")
        array = build_faulty_array(fault_map, fmt=fmt, bypass=bypass)

    was_training = model.training
    model.eval()
    correct = 0
    total = 0
    try:
        with FaultInjector(model, array), no_grad():
            for inputs, labels in loader:
                rates = model(Tensor(inputs))
                predictions = np.argmax(rates.data, axis=1)
                correct += int(np.sum(predictions == labels))
                total += labels.shape[0]
    finally:
        model.train(was_training)
    return correct / total if total else 0.0
