"""Batched fault-injection campaign engine.

The paper's headline results (Fig. 5 vulnerability sweeps, Fig. 7 mitigation
comparison) are *campaigns*: the same trained SNN evaluated under dozens of
fault maps x bit positions x trials.  This module turns that grid into an
explicit object model:

* :class:`CampaignPoint` -- one grid point: array geometry, fault count, bit
  position, stuck-at polarity and the exact per-trial fault-map seeds (derived
  deterministically via :func:`repro.utils.rng.derive_seed`, which is stable
  across processes).
* :class:`CampaignRunner` -- evaluates points against a trained model.  The
  default ``"fused"`` engine lowers the model to the no-autograd inference
  plan (:class:`repro.snn.inference.FusedFaultEngine`): all of a point's
  fault maps run in one vectorised pass with fused elementwise kernels and
  clean-prefix sharing across maps that have not yet diverged, plus an
  optional ``dtype="float32"`` fast mode.  The ``"batched"`` engine is the
  autograd multi-map pass of PR 1 and the ``"sequential"`` engine the
  one-map-per-inference reference; all three produce bit-identical float64
  records.
  Results are cached on disk as JSON keyed by (model hash, data hash, grid
  point); a cache hit skips the simulation entirely.

Sweeps scale out through :mod:`repro.faults.orchestrator`: with
``workers > 1``, a ``shard`` or a ``trial_chunk`` the runner decomposes the
grid into (point, trial-chunk) work units scheduled on a crash-tolerant
work-stealing pool, with the cache keys doubling as the resume and
multi-machine coordination protocol.

The Fig. 5 sweep drivers in :mod:`repro.faults.analysis` and the experiment
runners in :mod:`repro.experiments` are thin wrappers over this engine.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..systolic.fixed_point import DEFAULT_ACCUMULATOR_FORMAT, FixedPointFormat
from ..utils.hashing import loader_token, model_token, state_token
from ..utils.logging import get_logger
from ..utils.rng import get_rng
from ..utils.serialization import load_records, save_records
from .fault_map import (FaultMap, FaultSchedule, random_fault_map,
                        random_weight_fault_map, schedule_from_process)
from .fault_model import StuckAtType
from .injection import (evaluate_with_faults, evaluate_with_faults_batched,
                        evaluate_with_transient_faults)

__all__ = [
    "CampaignPoint",
    "CampaignRunner",
    "DTYPES",
    "ENGINES",
    "FAULT_MODELS",
    "cached_record",
    "load_cached_record",
    "loader_token",
    "map_grid",
    "model_token",
    "state_token",
    "store_record_safe",
]

logger = get_logger("faults.campaign")

#: Execution engines understood by :class:`CampaignRunner`.
ENGINES = ("fused", "batched", "sequential")

#: Evaluation dtypes understood by the fused engine.
DTYPES = ("float64", "float32")

#: Fault models a grid point can carry: permanent datapath stuck-at (the
#: paper's model), weight-SRAM stuck-at, or per-time-step transient
#: schedules.  Stuck-at points keep their historic cache keys; the other
#: models add ``fault_model``/``fault_params`` to the key payload.
FAULT_MODELS = ("stuck_at", "sram", "transient")

#: fault_params keys accepted on a transient point (forwarded to
#: :func:`repro.faults.fault_map.schedule_from_process`).
_TRANSIENT_PARAM_KEYS = ("process", "num_steps", "rate", "burst_length",
                         "cluster_size", "high_order_bits")

#: Cache layout version; bump when record contents change incompatibly.
_CACHE_VERSION = 1


# ----------------------------------------------------------------------
# Grid points
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class CampaignPoint:
    """One point of a fault-injection sweep grid.

    ``map_seeds`` pins one seed per trial; together with the geometry and
    fault parameters it fully determines the fault maps, so a point is both
    reproducible and cacheable.
    """

    rows: int
    cols: int
    num_faulty: int
    map_seeds: Tuple[int, ...]
    bit_position: Optional[int] = None
    stuck_type: str = "sa1"
    label: str = ""
    dataset: str = ""
    fault_model: str = "stuck_at"
    fault_params: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise ValueError("array dimensions must be positive")
        if self.num_faulty < 0:
            raise ValueError("num_faulty must be non-negative")
        if self.num_faulty > self.rows * self.cols:
            raise ValueError(
                f"cannot place {self.num_faulty} faults in a "
                f"{self.rows}x{self.cols} array")
        if not self.map_seeds:
            raise ValueError("map_seeds must contain at least one trial seed")
        object.__setattr__(self, "map_seeds", tuple(int(s) for s in self.map_seeds))
        object.__setattr__(self, "stuck_type",
                           StuckAtType.from_value(self.stuck_type).short_name)
        if self.fault_model not in FAULT_MODELS:
            raise ValueError(
                f"unknown fault model '{self.fault_model}'; "
                f"options: {FAULT_MODELS}")
        params = self.fault_params
        items = params.items() if isinstance(params, dict) else tuple(params)
        normalized = tuple(sorted((str(key), value) for key, value in items))
        if self.fault_model == "transient":
            unknown = [key for key, _ in normalized
                       if key not in _TRANSIENT_PARAM_KEYS]
            if unknown:
                raise ValueError(
                    f"unknown transient fault_params key(s) {unknown}; "
                    f"options: {_TRANSIENT_PARAM_KEYS}")
            values = dict(normalized)
            if int(values.get("num_steps", 0)) <= 0:
                raise ValueError(
                    "transient points need a positive 'num_steps' in "
                    "fault_params (the schedule must cover the model's "
                    "time steps)")
        elif normalized:
            raise ValueError(
                f"fault_params are only meaningful for transient points, "
                f"not fault_model='{self.fault_model}'")
        object.__setattr__(self, "fault_params", normalized)

    @property
    def trials(self) -> int:
        return len(self.map_seeds)

    @classmethod
    def for_trials(cls, rows: int, cols: int, num_faulty: int, trials: int, *,
                   bit_position: Optional[int] = None,
                   stuck_type: Union[StuckAtType, int, str] = "sa1",
                   seed=None, label: str = "", dataset: str = "",
                   fault_model: str = "stuck_at",
                   fault_params=()) -> "CampaignPoint":
        """Expand one base seed into per-trial map seeds.

        The expansion matches :func:`repro.faults.fault_map.fault_maps_for_trials`
        exactly, so campaign records line up with the historical sweep output.
        """

        if trials <= 0:
            raise ValueError("trials must be positive")
        base = get_rng(seed)
        seeds = tuple(int(s) for s in base.integers(0, 2**63 - 1, size=trials))
        return cls(rows=rows, cols=cols, num_faulty=num_faulty, map_seeds=seeds,
                   bit_position=bit_position,
                   stuck_type=StuckAtType.from_value(stuck_type).short_name,
                   label=label, dataset=dataset,
                   fault_model=fault_model, fault_params=fault_params)

    def build_fault_maps(self, fmt: FixedPointFormat = DEFAULT_ACCUMULATOR_FORMAT
                         ) -> List[FaultMap]:
        """Materialise the point's fault maps (one per trial seed)."""

        if self.fault_model == "transient":
            raise ValueError(
                "transient points materialise schedules, not fault maps; "
                "use build_schedules()")
        builder = (random_weight_fault_map if self.fault_model == "sram"
                   else random_fault_map)
        return [
            builder(self.rows, self.cols, self.num_faulty,
                    bit_position=self.bit_position,
                    stuck_type=self.stuck_type, fmt=fmt, seed=seed)
            for seed in self.map_seeds
        ]

    def build_schedules(self, fmt: FixedPointFormat = DEFAULT_ACCUMULATOR_FORMAT
                        ) -> List[FaultSchedule]:
        """Materialise a transient point's fault schedules (one per trial)."""

        if self.fault_model != "transient":
            raise ValueError(
                f"fault_model='{self.fault_model}' points materialise fault "
                "maps, not schedules; use build_fault_maps()")
        params = dict(self.fault_params)
        process = params.pop("process", "bernoulli")
        num_steps = int(params.pop("num_steps"))
        return [
            schedule_from_process(process, self.rows, self.cols,
                                  self.num_faulty, num_steps,
                                  bit_position=self.bit_position,
                                  stuck_type=self.stuck_type, fmt=fmt,
                                  seed=seed, **params)
            for seed in self.map_seeds
        ]

    def as_payload(self) -> dict:
        """JSON-stable representation used in records and cache keys."""

        payload = {
            "rows": int(self.rows),
            "cols": int(self.cols),
            "num_faulty": int(self.num_faulty),
            "map_seeds": [int(s) for s in self.map_seeds],
            "bit_position": None if self.bit_position is None else int(self.bit_position),
            "stuck_type": self.stuck_type,
            "label": self.label,
            "dataset": self.dataset,
        }
        if self.fault_model != "stuck_at":
            # Stuck-at points keep their historic cache keys (the payload
            # above is byte-identical to pre-fault-model records); only the
            # new models extend the key.
            payload["fault_model"] = self.fault_model
            payload["fault_params"] = dict(self.fault_params)
        return payload


# ----------------------------------------------------------------------
# Caching / pooling helpers (shared with the experiment drivers)
# ----------------------------------------------------------------------
# The content-digest helpers (state_token / model_token / loader_token)
# live in repro.utils.hashing and are re-exported here because campaign
# cache keys are their primary consumer.


def _digest_payload(payload: dict) -> str:
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True, default=str).encode("utf-8")).hexdigest()


#: Keys every campaign record must carry to be usable as a cache hit.
#: An entry missing any of them (schema drift, torn write that still
#: parses) is treated as damaged and quarantined.
_REQUIRED_RECORD_KEYS = ("accuracies", "accuracy", "trials")


def _quarantine_cache_entry(path: Path) -> Optional[Path]:
    """Move a damaged cache entry to a ``*.quarantined`` sidecar.

    Keeps the bytes for post-mortem inspection while freeing the key for a
    clean recompute.  Returns the sidecar path (``None`` if even the rename
    failed -- e.g. the entry vanished or the filesystem is read-only, in
    which case the caller still recomputes, it just may re-trip later).
    """

    sidecar = path.with_name(path.name + ".quarantined")
    try:
        os.replace(path, sidecar)
    except OSError:
        return None
    return sidecar


def load_cached_record(path: Path, *,
                       required_keys: Sequence[str] = (),
                       on_event: Optional[Callable[[dict], None]] = None
                       ) -> Optional[dict]:
    """Validated cache read: a damaged entry quarantines to a miss.

    Returns the parsed record, or ``None`` when ``path`` does not exist or
    holds a damaged entry -- unparsable JSON (truncated or garbage bytes),
    a non-dict payload, or a dict missing any of ``required_keys``.  Damaged
    entries are moved to a ``*.quarantined`` sidecar (so the key recomputes
    cleanly and the bytes survive for inspection), a warning is logged, and
    ``on_event`` (if given) receives a ``{"kind": "cache-corrupt", ...}``
    dict describing the incident.
    """

    path = Path(path)
    if not path.exists():
        return None
    try:
        record = load_records(path)
    except (json.JSONDecodeError, UnicodeDecodeError, ValueError, OSError) as exc:
        detail = f"{type(exc).__name__}: {exc}"
        record = None
    else:
        if not isinstance(record, dict):
            detail = f"expected a JSON object, found {type(record).__name__}"
            record = None
        else:
            missing = [key for key in required_keys if key not in record]
            if missing:
                detail = f"missing required key(s): {', '.join(missing)}"
                record = None
    if record is not None:
        return record
    sidecar = _quarantine_cache_entry(path)
    logger.warning(
        "damaged cache entry %s (%s); quarantined to %s and recomputing",
        path.name, detail, sidecar.name if sidecar is not None else "<failed>")
    if on_event is not None:
        on_event({"kind": "cache-corrupt", "path": str(path), "detail": detail,
                  "quarantined_to": None if sidecar is None else str(sidecar)})
    return None


def _store_record(record, path: Path) -> None:
    """Write a cache record atomically (temp file + rename).

    An interrupted run must never leave a truncated JSON behind: a partial
    file would satisfy the existence check and poison every later lookup.
    The chaos harness's ``cache-store`` hook sits between the temp write
    and the rename -- exactly where a real torn write or full disk bites.
    """

    from ..testing.chaos import active_plan

    path.parent.mkdir(parents=True, exist_ok=True)
    temporary = path.with_name(path.name + f".tmp{os.getpid()}")
    try:
        save_records(record, temporary)
        plan = active_plan()
        if plan is not None:
            plan.consult("cache-store", key=path.name, path=temporary)
        os.replace(temporary, path)
    except BaseException:
        try:
            os.unlink(temporary)
        except OSError:
            pass
        raise


def store_record_safe(record, path: Path, *,
                      on_event: Optional[Callable[[dict], None]] = None) -> bool:
    """Best-effort atomic store: an ``OSError`` degrades to uncached compute.

    A full disk (``ENOSPC``), a permission flip or a vanished cache mount
    must not fail a sweep that already holds the computed record in memory:
    the failure is logged once per call, reported through ``on_event`` as a
    ``{"kind": "store-degraded", ...}`` dict, and the sweep continues --
    the record is simply recomputed next run.  Returns whether the store
    succeeded.
    """

    try:
        _store_record(record, path)
    except OSError as exc:
        logger.warning(
            "could not store cache record %s (%s); continuing uncached",
            path.name, exc)
        if on_event is not None:
            on_event({"kind": "store-degraded", "path": str(path),
                      "detail": f"{type(exc).__name__}: {exc}"})
        return False
    return True


def cached_record(cache_dir: Optional[Union[str, Path]], payload: dict,
                  compute: Callable[[], dict], *,
                  required_keys: Sequence[str] = (),
                  on_event: Optional[Callable[[dict], None]] = None) -> dict:
    """Return the cached record for ``payload``, computing and storing on miss.

    ``payload`` must be a JSON-stable dict uniquely identifying the work
    (model hash, grid point, seeds, ...).  Records are stored as pretty JSON
    via :mod:`repro.utils.serialization`, one file per key, so caches can be
    inspected and diffed by hand.

    The cache self-heals: a damaged entry (unparsable JSON or one missing
    ``required_keys``) is quarantined to a ``*.quarantined`` sidecar and
    recomputed instead of raising, and a failed store (e.g. ``ENOSPC``)
    degrades to returning the computed record uncached.  ``on_event``
    receives a dict per incident (``cache-corrupt`` / ``store-degraded``).
    """

    if cache_dir is None:
        return compute()
    path = Path(cache_dir) / f"{_digest_payload(payload)}.json"
    record = load_cached_record(path, required_keys=required_keys,
                                on_event=on_event)
    if record is not None:
        return record
    record = compute()
    store_record_safe(record, path, on_event=on_event)
    return record


def map_grid(fn: Callable, items: Sequence, workers: int = 1) -> list:
    """Apply ``fn`` to every item, optionally across a worker-process pool.

    Cross-cell parallelism for sweep and retraining grids: each item is
    independent, so the items fan out over the orchestrator's work-stealing
    pool (:func:`repro.faults.orchestrator.pool_map`) -- idle workers pull
    the next item, exceptions and worker deaths retry the item once on
    another worker, results come back in item order, and a cell that still
    fails re-raises its original exception (as the serial path does).  ``fn`` (which may
    close over a trained model and dataset) is inherited by the forked
    workers through copy-on-write memory; only the lightweight items travel
    through the task pipe.  Falls back to the serial path when
    ``workers <= 1``, when there is nothing to parallelise, or on platforms
    without the ``fork`` start method.
    """

    items = list(items)
    if workers and workers > 1 and len(items) > 1:
        from .orchestrator import pool_map

        return pool_map(fn, items, workers=int(workers))
    return [fn(item) for item in items]


# ----------------------------------------------------------------------
# Runner
# ----------------------------------------------------------------------
class CampaignRunner:
    """Evaluate fault-injection sweep grids against one trained model.

    Parameters
    ----------
    model:
        Trained :class:`~repro.snn.network.SpikingClassifier`.
    loader:
        Evaluation data loader (accuracy is measured over all its batches).
    fmt:
        Accumulator fixed-point format of the simulated arrays.
    engine:
        ``"fused"`` (default) lowers the model to the no-autograd inference
        plan and simulates all of a point's fault maps in one pass with
        clean-prefix sharing; ``"batched"`` is the autograd multi-map pass;
        ``"sequential"`` runs one autograd inference per map.  All three
        produce bit-identical float64 records.
    dtype:
        ``"float64"`` (default) or ``"float32"``; the latter requires the
        fused engine and trades bit-identity for speed (records then carry
        a ``dtype`` field in their cache key).
    bypass:
        Enable the bypass multiplexer of faulty PEs (mitigated hardware).
    cache_dir:
        Optional directory for on-disk JSON result caching.  Keys include the
        model hash, the data hash and the full grid point, so stale hits are
        impossible as long as those inputs define the result.
    workers:
        Worker processes for cross-unit parallelism (1 = serial).  With
        ``workers > 1`` the sweep runs on the
        :class:`~repro.faults.orchestrator.CampaignOrchestrator` pool:
        a work-stealing queue of (point, trial-chunk) units with crash
        retry and cache-key resume.
    max_batched_maps:
        Upper bound on how many fault maps one merged batched pass may fold
        into the batch axis (memory knob; points are never split).
    shard:
        Optional ``"i/N"`` string or
        :class:`~repro.faults.orchestrator.ShardSpec`: run only this
        shard's round-robin share of the work units (requires
        ``cache_dir`` -- the shared filesystem coordinates the shards).
    trial_chunk:
        Maximum trials per orchestrated work unit (``None`` keeps one unit
        per point, whose cache keys equal the plain per-point keys).
    unit_timeout:
        Optional per-unit soft deadline in seconds for orchestrated sweeps
        (CLI: ``--unit-timeout``): a worker whose unit exceeds it is killed
        by the watchdog and the unit retried elsewhere.  ``None`` (default)
        derives the deadline from observed unit timings.  Timings only --
        it cannot change records.
    progress:
        Optional callable receiving the orchestrator's structured progress
        events (per-unit timing, retries, ETA); parent process only.
    lane_threads:
        Fork-lane thread count of the fused engine: the per-step fork work
        of a pass's fault maps is split into that many thread-parallel
        lanes (bit-identical for every value, so it never enters cache
        keys).  ``None`` (default) resolves ``REPRO_LANE_THREADS`` -- but
        inside an orchestrated pool (``workers > 1``) an unset knob
        defaults to one lane per worker, so the fork pool and the thread
        pool compose without oversubscribing the machine.  An explicit
        value is honoured everywhere; ``0`` auto-sizes lanes per engine
        from the forked-map count and ``os.cpu_count()``.  Non-default
        values require the fused engine.
    backend:
        Kernel backend of the fused engine (``None`` resolves
        ``REPRO_BACKEND``, default ``"numpy"``).  Resolved once here in
        the parent process -- orchestrated workers inherit the resolved
        name, never re-consult the environment.  float64 records are
        byte-identical across backends (the numpy path is the oracle), so
        the backend never enters cache keys -- exactly the
        ``lane_threads`` rule.  Requires the fused engine.
    plan_cache:
        Per-process cache of the lowered inference plan, keyed by the
        model token.  ``True`` (default) uses the process-wide
        :func:`repro.snn.inference.default_plan_cache`; pass a
        :class:`~repro.snn.inference.PlanCache` to isolate, or
        ``False``/``None`` to re-lower per evaluation.  Orchestrated
        sweeps warm the cache before forking, so workers -- including
        replacements spawned after a crash -- inherit the lowered plan
        through copy-on-write memory instead of re-lowering per work
        unit.  The cache only affects *when* lowering happens, never the
        records.
    """

    def __init__(self, model, loader, *,
                 fmt: FixedPointFormat = DEFAULT_ACCUMULATOR_FORMAT,
                 engine: str = "fused",
                 bypass: bool = False,
                 cache_dir: Optional[Union[str, Path]] = None,
                 workers: int = 1,
                 max_batched_maps: int = 128,
                 dtype: str = "float64",
                 shard=None,
                 trial_chunk: Optional[int] = None,
                 unit_timeout: Optional[float] = None,
                 progress: Optional[Callable[[dict], None]] = None,
                 lane_threads: Optional[int] = None,
                 plan_cache=True,
                 backend: Optional[str] = None) -> None:
        if engine not in ENGINES:
            raise ValueError(f"unknown engine '{engine}'; options: {ENGINES}")
        if dtype not in DTYPES:
            raise ValueError(f"unknown dtype '{dtype}'; options: {DTYPES}")
        if dtype != "float64" and engine != "fused":
            raise ValueError("dtype='float32' requires the fused engine")
        if lane_threads is not None:
            lane_threads = int(lane_threads)
            if lane_threads < 0:
                raise ValueError(
                    "lane_threads must be >= 0 (0 = auto-size)")
            if lane_threads != 1 and engine != "fused":
                raise ValueError(
                    "lane_threads overrides require the fused engine")
        if backend is not None and engine != "fused":
            raise ValueError("backend overrides require the fused engine")
        if engine == "fused":
            # Resolve once (arg > REPRO_BACKEND > numpy) so orchestrated
            # workers inherit the parent's choice instead of re-reading
            # the environment; an unavailable explicit backend fails here,
            # before any work is scheduled.
            from ..snn.inference import resolve_backend_name

            backend = resolve_backend_name(backend)
        self.backend = backend
        self.model = model
        self.loader = loader
        self.fmt = fmt
        self.engine = engine
        self.dtype = dtype
        self.bypass = bool(bypass)
        self.cache_dir = None if cache_dir is None else Path(cache_dir)
        self.workers = int(workers)
        self.max_batched_maps = int(max_batched_maps)
        if shard is not None:
            from .orchestrator import ShardSpec

            shard = ShardSpec.parse(shard)
        self.shard = shard
        self.trial_chunk = None if trial_chunk is None else int(trial_chunk)
        self.unit_timeout = None if unit_timeout is None else float(unit_timeout)
        self.progress = progress
        self.lane_threads = lane_threads
        # Fork-pool composition: an *unset* knob must not resolve
        # REPRO_LANE_THREADS inside a pool whose workers already own the
        # cores -- forked workers then run one lane each.  Explicit values
        # pass through (workers x lane_threads is the user's call).
        self._effective_lane_threads = (
            1 if lane_threads is None and self.workers > 1 else lane_threads)
        if plan_cache is True:
            from ..snn.inference import default_plan_cache

            plan_cache = default_plan_cache()
        # Identity checks, not truthiness: an empty PlanCache has len() == 0
        # and must still count as "enabled".
        self.plan_cache = (None if plan_cache is None or plan_cache is False
                           else plan_cache)
        self._model_token = model_token(model)
        self._data_token = loader_token(loader)
        self._baseline: Optional[float] = None

    # ------------------------------------------------------------------
    def warm_plan_cache(self) -> None:
        """Lower the model into the plan cache now (no-op when disabled).

        Called by the orchestrator before forking its worker pool so every
        worker inherits the already-lowered plan via copy-on-write.
        """

        if self.plan_cache is not None and self.engine == "fused":
            self.plan_cache.get_plan(self.model, token=self._model_token)

    # ------------------------------------------------------------------
    def baseline_accuracy(self) -> float:
        """Fault-free accuracy of the model (cached).

        The fused engine evaluates through the lowered inference plan (in
        ``self.dtype``); float64 results are bit-identical to the autograd
        software forward used by the other engines.
        """

        if self._baseline is None:
            if self.engine == "fused":
                from ..snn.inference import FusedInferenceEngine

                self._baseline = FusedInferenceEngine(
                    self.model, dtype=self.dtype, plan_cache=self.plan_cache,
                    plan_token=self._model_token,
                    backend=self.backend).evaluate(self.loader)
            else:
                from .analysis import baseline_accuracy
                self._baseline = baseline_accuracy(self.model, self.loader)
        return self._baseline

    def _cache_payload(self, point: CampaignPoint) -> dict:
        payload = {
            "version": _CACHE_VERSION,
            "model": self._model_token,
            "data": self._data_token,
            "fmt": [self.fmt.total_bits, self.fmt.frac_bits],
            "bypass": self.bypass,
            "point": point.as_payload(),
        }
        if self.dtype != "float64":
            # float64 results are engine-independent and keep their historic
            # cache keys; only the tolerance-mode dtype changes the result.
            payload["dtype"] = self.dtype
        return payload

    def _record_for(self, point: CampaignPoint, accuracies: Sequence[float]) -> dict:
        record = point.as_payload()
        record.update({
            "trials": point.trials,
            "accuracies": [float(a) for a in accuracies],
            "accuracy": float(np.mean(accuracies)),
            "accuracy_std": float(np.std(accuracies)),
        })
        return record

    def _check_transient_point(self, point: CampaignPoint) -> None:
        if point.fault_model == "transient" and self.bypass:
            raise ValueError(
                "bypass mitigation is not defined for transient fault "
                "schedules (bypassing a PE for the whole inference would "
                "mask its clean steps too)")

    def _evaluate_transient(self, schedules: Sequence[FaultSchedule]
                            ) -> List[float]:
        return evaluate_with_transient_faults(
            self.model, self.loader, schedules, fmt=self.fmt,
            engine=self.engine, dtype=self.dtype,
            plan_cache=self.plan_cache, plan_token=self._model_token,
            lane_threads=self._effective_lane_threads,
            backend=self.backend)

    def _evaluate_point(self, point: CampaignPoint) -> dict:
        """Simulate one grid point (no cache) and return its record."""

        self._check_transient_point(point)
        if point.fault_model == "transient":
            accuracies = self._evaluate_transient(point.build_schedules(self.fmt))
        elif self.engine in ("fused", "batched"):
            maps = point.build_fault_maps(self.fmt)
            accuracies = evaluate_with_faults_batched(
                self.model, self.loader, fault_maps=maps,
                bypass=self.bypass, fmt=self.fmt,
                engine="fused" if self.engine == "fused" else "autograd",
                dtype=self.dtype, plan_cache=self.plan_cache,
                plan_token=self._model_token,
                lane_threads=self._effective_lane_threads,
                backend=self.backend)
        else:
            maps = point.build_fault_maps(self.fmt)
            accuracies = [
                evaluate_with_faults(self.model, self.loader, fault_map=fault_map,
                                     bypass=self.bypass, fmt=self.fmt,
                                     engine="autograd")
                for fault_map in maps
            ]
        return self._record_for(point, accuracies)

    def _evaluate_points_merged(self, points: Sequence[CampaignPoint]) -> List[dict]:
        """Batched evaluation of several points in as few passes as possible.

        Points sharing an array geometry are merged: all their fault maps are
        folded into one multi-map pass (up to ``max_batched_maps`` at a
        time), so an entire sweep costs a handful of inferences.  Each map's
        result is independent of its fold neighbours, so the per-point
        records equal the point-at-a-time ones.
        """

        results: List[Optional[dict]] = [None] * len(points)
        groups: Dict[Tuple, List[int]] = {}
        for index, point in enumerate(points):
            self._check_transient_point(point)
            # Only points with identical fault semantics may share a pass:
            # transient schedules need a common num_steps (and phase
            # structure costs grow with mixed schedules), so the model and
            # its params join the geometry in the group key.
            key = (point.rows, point.cols, point.fault_model, point.fault_params)
            groups.setdefault(key, []).append(index)

        for key, indices in groups.items():
            transient = key[2] == "transient"
            chunk: List[Tuple[int, list]] = []
            chunk_maps = 0

            def flush():
                nonlocal chunk, chunk_maps
                if not chunk:
                    return
                merged = [item for _, items in chunk for item in items]
                if transient:
                    accuracies = self._evaluate_transient(merged)
                else:
                    accuracies = evaluate_with_faults_batched(
                        self.model, self.loader, fault_maps=merged,
                        bypass=self.bypass, fmt=self.fmt,
                        engine="fused" if self.engine == "fused" else "autograd",
                        dtype=self.dtype, plan_cache=self.plan_cache,
                        plan_token=self._model_token,
                        lane_threads=self._effective_lane_threads,
                        backend=self.backend)
                offset = 0
                for index, items in chunk:
                    results[index] = self._record_for(
                        points[index], accuracies[offset:offset + len(items)])
                    offset += len(items)
                chunk = []
                chunk_maps = 0

            for index in indices:
                items = (points[index].build_schedules(self.fmt) if transient
                         else points[index].build_fault_maps(self.fmt))
                if chunk_maps and chunk_maps + len(items) > self.max_batched_maps:
                    flush()
                chunk.append((index, items))
                chunk_maps += len(items)
            flush()
        return [record for record in results if record is not None]

    def evaluate_point(self, point: CampaignPoint) -> dict:
        """Record for one grid point, going through the (self-healing) cache."""

        return cached_record(self.cache_dir, self._cache_payload(point),
                             lambda: self._evaluate_point(point),
                             required_keys=_REQUIRED_RECORD_KEYS)

    def run(self, points: Sequence[CampaignPoint]) -> List[dict]:
        """Records for all ``points``, in input order.

        Cached points are answered from disk and the remainder is computed.
        With ``workers > 1``, a ``shard`` or a ``trial_chunk``, the sweep is
        delegated to the :class:`~repro.faults.orchestrator
        .CampaignOrchestrator` (work-stealing unit queue, crash retry,
        cache-key resume); a sharded run whose sibling shards have not
        finished raises :class:`~repro.faults.orchestrator.PendingShardError`.
        The serial path merges points sharing an array geometry into
        multi-map passes; both paths produce byte-identical records.
        """

        points = list(points)
        if self.workers > 1 or self.shard is not None or self.trial_chunk is not None:
            return self._run_orchestrated(points)
        records: List[Optional[dict]] = [None] * len(points)
        missing: List[int] = []
        if self.cache_dir is not None:
            for index, point in enumerate(points):
                payload = self._cache_payload(point)
                path = self.cache_dir / f"{_digest_payload(payload)}.json"
                record = load_cached_record(
                    path, required_keys=_REQUIRED_RECORD_KEYS)
                if record is not None:
                    records[index] = record
                else:
                    missing.append(index)
        else:
            missing = list(range(len(points)))

        if missing:
            missing_points = [points[i] for i in missing]
            if self.engine in ("fused", "batched"):
                computed = self._evaluate_points_merged(missing_points)
            else:
                computed = [self._evaluate_point(point) for point in missing_points]
            for index, record in zip(missing, computed):
                records[index] = record
                if self.cache_dir is not None:
                    payload = self._cache_payload(points[index])
                    store_record_safe(
                        record,
                        self.cache_dir / f"{_digest_payload(payload)}.json")
        return [record for record in records if record is not None]

    def _run_orchestrated(self, points: Sequence[CampaignPoint]) -> List[dict]:
        """Sharded/parallel sweep via the campaign orchestrator."""

        from .orchestrator import CampaignOrchestrator, PendingShardError

        result = CampaignOrchestrator(
            self, workers=self.workers, shard=self.shard,
            trial_chunk=self.trial_chunk, unit_timeout=self.unit_timeout,
            progress=self.progress).run(points)
        if not result.complete:
            raise PendingShardError(result.pending, result.report)
        return list(result.records)
