"""Permanent-fault models for the systolicSNN accelerator.

The paper studies *stuck-at faults* in the accumulator output of PEs: a
manufacturing defect forces one output bit permanently to 0 (stuck-at-0) or
1 (stuck-at-1).  The fault is applied to the two's-complement fixed-point
code of the accumulator value in every execution cycle.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Union

import numpy as np

from ..systolic.fixed_point import FixedPointFormat


class StuckAtType(enum.Enum):
    """Polarity of a stuck-at fault."""

    STUCK_AT_0 = 0
    STUCK_AT_1 = 1

    @classmethod
    def from_value(cls, value: Union["StuckAtType", int, str]) -> "StuckAtType":
        """Coerce 0/1, "sa0"/"sa1" or an existing enum member into a :class:`StuckAtType`."""

        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            key = value.strip().lower()
            if key in ("sa0", "stuck_at_0", "0"):
                return cls.STUCK_AT_0
            if key in ("sa1", "stuck_at_1", "1"):
                return cls.STUCK_AT_1
            raise ValueError(f"unknown stuck-at type '{value}'")
        if value in (0, 1):
            return cls(value)
        raise ValueError(f"unknown stuck-at type {value!r}")

    @property
    def short_name(self) -> str:
        return "sa0" if self is StuckAtType.STUCK_AT_0 else "sa1"


@dataclasses.dataclass(frozen=True)
class StuckAtFault:
    """A stuck-at fault on one bit of a PE accumulator output.

    Parameters
    ----------
    bit_position:
        Index of the afflicted bit, 0 = least significant bit.  The most
        significant (sign) bit of a ``b``-bit format is ``b - 1``.
    stuck_type:
        :class:`StuckAtType` polarity (or anything accepted by
        :meth:`StuckAtType.from_value`).
    """

    bit_position: int
    stuck_type: StuckAtType = StuckAtType.STUCK_AT_1

    #: Hard ceiling on representable bit positions: the vectorised chain
    #: kernel builds its forcing masks as ``int64`` words, so a fault beyond
    #: bit 63 could never be applied by any accumulator format we simulate.
    MAX_BIT_POSITION = 63

    def __post_init__(self) -> None:
        if self.bit_position < 0:
            raise ValueError("bit_position must be non-negative")
        if self.bit_position > self.MAX_BIT_POSITION:
            raise ValueError(
                f"bit_position {self.bit_position} exceeds the "
                f"{self.MAX_BIT_POSITION + 1}-bit simulation word")
        object.__setattr__(self, "stuck_type", StuckAtType.from_value(self.stuck_type))

    @property
    def stuck_value(self) -> int:
        return self.stuck_type.value

    def apply(self, values: np.ndarray, fmt: FixedPointFormat) -> np.ndarray:
        """Apply this fault to real-valued accumulator contents.

        The values are quantised to ``fmt``, the afflicted bit is forced, and
        the corrupted codes are converted back to real values.
        """

        if self.bit_position >= fmt.total_bits:
            raise ValueError(
                f"bit {self.bit_position} outside the {fmt.total_bits}-bit accumulator")
        return fmt.apply_stuck_at(np.asarray(values, dtype=np.float64),
                                  self.bit_position, self.stuck_value)

    def describe(self) -> str:
        """Short human-readable description, e.g. ``"sa1@bit14"``."""

        return f"{self.stuck_type.short_name}@bit{self.bit_position}"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()


def msb_fault(fmt: FixedPointFormat, stuck_type: Union[StuckAtType, int, str] = 1
              ) -> StuckAtFault:
    """Worst-case fault used throughout the paper's Fig. 5b/5c: stuck-at in the MSB.

    "MSB" follows the paper's usage: the most significant *data* bit of the
    accumulator output (the paper sweeps bits 0-16 of a 32-bit accumulator,
    below the sign bit).  A stuck-at-1 here is the most perturbing fault.
    """

    return StuckAtFault(bit_position=fmt.magnitude_msb,
                        stuck_type=StuckAtType.from_value(stuck_type))


def lsb_fault(fmt: FixedPointFormat, stuck_type: Union[StuckAtType, int, str] = 1
              ) -> StuckAtFault:
    """Benign-end fault: stuck-at in the least significant bit."""

    return StuckAtFault(bit_position=0, stuck_type=StuckAtType.from_value(stuck_type))
