"""Fault models for the systolicSNN accelerator.

The paper studies *stuck-at faults* in the accumulator output of PEs: a
manufacturing defect forces one output bit permanently to 0 (stuck-at-0) or
1 (stuck-at-1).  The fault is applied to the two's-complement fixed-point
code of the accumulator value in every execution cycle.

Two further classes extend the paper's permanent datapath model:

* :class:`WeightSRAMFault` -- a stuck-at bit in a PE's *weight storage*
  instead of its accumulator datapath: the quantised weight tile held by
  the PE is corrupted once, ahead of the GEMM, and the (otherwise clean)
  accumulation then runs over the corrupted weights.
* :class:`TransientFault` -- a per-time-step (SEU-style) upset: the same
  stuck-at bit forcing, but live only on an explicit set of SNN time
  steps.  Schedules of transient faults live in
  :class:`repro.faults.fault_map.FaultSchedule`.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import FrozenSet, Iterable, Union

import numpy as np

from ..systolic.fixed_point import FixedPointFormat


class StuckAtType(enum.Enum):
    """Polarity of a stuck-at fault."""

    STUCK_AT_0 = 0
    STUCK_AT_1 = 1

    @classmethod
    def from_value(cls, value: Union["StuckAtType", int, str]) -> "StuckAtType":
        """Coerce 0/1, "sa0"/"sa1" or an existing enum member into a :class:`StuckAtType`."""

        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            key = value.strip().lower()
            if key in ("sa0", "stuck_at_0", "0"):
                return cls.STUCK_AT_0
            if key in ("sa1", "stuck_at_1", "1"):
                return cls.STUCK_AT_1
            raise ValueError(f"unknown stuck-at type '{value}'")
        if value in (0, 1):
            return cls(value)
        raise ValueError(f"unknown stuck-at type {value!r}")

    @property
    def short_name(self) -> str:
        return "sa0" if self is StuckAtType.STUCK_AT_0 else "sa1"


@dataclasses.dataclass(frozen=True)
class StuckAtFault:
    """A stuck-at fault on one bit of a PE accumulator output.

    Parameters
    ----------
    bit_position:
        Index of the afflicted bit, 0 = least significant bit.  The most
        significant (sign) bit of a ``b``-bit format is ``b - 1``.
    stuck_type:
        :class:`StuckAtType` polarity (or anything accepted by
        :meth:`StuckAtType.from_value`).
    """

    bit_position: int
    stuck_type: StuckAtType = StuckAtType.STUCK_AT_1

    #: Hard ceiling on representable bit positions: the vectorised chain
    #: kernel builds its forcing masks as ``int64`` words, so a fault beyond
    #: bit 63 could never be applied by any accumulator format we simulate.
    MAX_BIT_POSITION = 63

    #: Whether the fault corrupts the PE's stored weights (ahead of the
    #: GEMM) instead of its accumulator datapath.  The simulators dispatch
    #: on this flag, so subclasses do not need isinstance checks.
    corrupts_weights = False

    def __post_init__(self) -> None:
        if self.bit_position < 0:
            raise ValueError("bit_position must be non-negative")
        if self.bit_position > self.MAX_BIT_POSITION:
            raise ValueError(
                f"bit_position {self.bit_position} exceeds the "
                f"{self.MAX_BIT_POSITION + 1}-bit simulation word")
        object.__setattr__(self, "stuck_type", StuckAtType.from_value(self.stuck_type))

    @property
    def stuck_value(self) -> int:
        return self.stuck_type.value

    def apply(self, values: np.ndarray, fmt: FixedPointFormat) -> np.ndarray:
        """Apply this fault to real-valued accumulator contents.

        The values are quantised to ``fmt``, the afflicted bit is forced, and
        the corrupted codes are converted back to real values.
        """

        if self.bit_position >= fmt.total_bits:
            raise ValueError(
                f"bit {self.bit_position} outside the {fmt.total_bits}-bit accumulator")
        return fmt.apply_stuck_at(np.asarray(values, dtype=np.float64),
                                  self.bit_position, self.stuck_value)

    def describe(self) -> str:
        """Short human-readable description, e.g. ``"sa1@bit14"``."""

        return f"{self.stuck_type.short_name}@bit{self.bit_position}"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()


@dataclasses.dataclass(frozen=True)
class WeightSRAMFault(StuckAtFault):
    """A stuck-at bit in the weight SRAM of one PE.

    Unlike the datapath :class:`StuckAtFault`, which corrupts the partial
    sum flowing through the PE on *every* accumulation cycle, a weight-SRAM
    fault corrupts the quantised weight values stored in the PE exactly
    once, before the GEMM runs: every weight element mapped to the faulty
    PE has ``bit_position`` of its fixed-point code forced to the stuck
    value, and the (otherwise clean) column accumulation then uses the
    corrupted weights.  Bypassing the PE masks the fault (its weight
    contribution is skipped entirely), exactly as for datapath faults.
    """

    corrupts_weights = True

    def describe(self) -> str:
        return f"sram-{super().describe()}"


@dataclasses.dataclass(frozen=True)
class TransientFault:
    """A transient (SEU-style) stuck-at upset on one PE accumulator bit.

    The corruption applied while the fault is live is exactly the
    permanent :class:`StuckAtFault` bit forcing; ``active_steps`` pins the
    SNN time steps (0-based) on which the fault fires.  Outside those
    steps the PE behaves cleanly.

    Validation reuses the :class:`StuckAtFault` rules (non-negative bit
    position, ``> 63`` rejected at construction).
    """

    bit_position: int
    stuck_type: StuckAtType = StuckAtType.STUCK_AT_1
    active_steps: FrozenSet[int] = frozenset()

    def __post_init__(self) -> None:
        # Delegate bit/polarity validation to the permanent fault class so
        # the two models can never drift apart.
        probe = StuckAtFault(self.bit_position, self.stuck_type)
        object.__setattr__(self, "stuck_type", probe.stuck_type)
        steps = frozenset(int(step) for step in self.active_steps)
        if any(step < 0 for step in steps):
            raise ValueError("active_steps must be non-negative time steps")
        object.__setattr__(self, "active_steps", steps)

    @property
    def stuck_value(self) -> int:
        return self.stuck_type.value

    def is_active(self, step: int) -> bool:
        """Whether the fault is live at SNN time step ``step``."""

        return int(step) in self.active_steps

    def as_stuck_at(self) -> StuckAtFault:
        """The permanent fault applied on the steps this fault is live."""

        return StuckAtFault(self.bit_position, self.stuck_type)

    def describe(self) -> str:
        steps = ",".join(str(s) for s in sorted(self.active_steps))
        return (f"{self.stuck_type.short_name}@bit{self.bit_position}"
                f"@t[{steps}]")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()


def transient_fault(bit_position: int,
                    stuck_type: Union[StuckAtType, int, str],
                    active_steps: Iterable[int]) -> TransientFault:
    """Convenience constructor accepting any iterable of active steps."""

    return TransientFault(bit_position=bit_position,
                          stuck_type=StuckAtType.from_value(stuck_type),
                          active_steps=frozenset(int(s) for s in active_steps))


def msb_fault(fmt: FixedPointFormat, stuck_type: Union[StuckAtType, int, str] = 1
              ) -> StuckAtFault:
    """Worst-case fault used throughout the paper's Fig. 5b/5c: stuck-at in the MSB.

    "MSB" follows the paper's usage: the most significant *data* bit of the
    accumulator output (the paper sweeps bits 0-16 of a 32-bit accumulator,
    below the sign bit).  A stuck-at-1 here is the most perturbing fault.
    """

    return StuckAtFault(bit_position=fmt.magnitude_msb,
                        stuck_type=StuckAtType.from_value(stuck_type))


def lsb_fault(fmt: FixedPointFormat, stuck_type: Union[StuckAtType, int, str] = 1
              ) -> StuckAtFault:
    """Benign-end fault: stuck-at in the least significant bit."""

    return StuckAtFault(bit_position=0, stuck_type=StuckAtType.from_value(stuck_type))
