"""Fault-vulnerability sweep drivers (paper, Section V-C).

Three sweeps are provided, one per panel of the paper's Fig. 5:

* :func:`sweep_bit_locations` -- vary the stuck-at bit position and polarity
  (Fig. 5a).
* :func:`sweep_faulty_pe_count` -- vary the number of faulty PEs on a fixed
  array (Fig. 5b), averaging several distinct fault maps per point.
* :func:`sweep_array_sizes` -- vary the array size at a fixed number of
  faulty PEs (Fig. 5c).

Each sweep returns a list of plain-dict records so the experiment harness
and the benchmarks can print them as tables or series without further
processing.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..systolic.fixed_point import DEFAULT_ACCUMULATOR_FORMAT, FixedPointFormat
from ..utils.rng import derive_seed
from .fault_map import fault_maps_for_trials, single_bit_fault_map
from .fault_model import StuckAtType
from .injection import evaluate_with_faults


def baseline_accuracy(model, loader) -> float:
    """Fault-free accuracy of the model (uses the software forward path)."""

    from ..autograd import Tensor, no_grad

    was_training = model.training
    model.eval()
    correct = 0
    total = 0
    try:
        with no_grad():
            for inputs, labels in loader:
                rates = model(Tensor(inputs))
                correct += int(np.sum(np.argmax(rates.data, axis=1) == labels))
                total += labels.shape[0]
    finally:
        model.train(was_training)
    return correct / total if total else 0.0


def sweep_bit_locations(model, loader, *,
                        rows: int, cols: int,
                        bit_positions: Sequence[int],
                        stuck_types: Sequence[Union[StuckAtType, int, str]] = ("sa0", "sa1"),
                        num_faulty: int = 8,
                        trials: int = 2,
                        fmt: FixedPointFormat = DEFAULT_ACCUMULATOR_FORMAT,
                        dataset: str = "",
                        seed: int = 0) -> List[dict]:
    """Accuracy versus fault bit location and polarity (Fig. 5a).

    For each (bit position, stuck-at polarity) pair, ``trials`` random fault
    maps with ``num_faulty`` faulty PEs are generated and the mean accuracy
    under unmitigated fault injection is recorded.
    """

    records: List[dict] = []
    for stuck in stuck_types:
        stuck = StuckAtType.from_value(stuck)
        for bit in bit_positions:
            accuracies = []
            for trial in range(trials):
                trial_seed = derive_seed(seed, "bit_sweep", stuck.value, bit, trial)
                fault_map = single_bit_fault_map(rows, cols, num_faulty, bit_position=bit,
                                                 stuck_type=stuck, seed=trial_seed)
                accuracies.append(evaluate_with_faults(model, loader, fault_map=fault_map,
                                                       fmt=fmt))
            records.append({
                "dataset": dataset,
                "stuck_type": stuck.short_name,
                "bit_position": int(bit),
                "num_faulty_pes": int(num_faulty),
                "trials": int(trials),
                "accuracy": float(np.mean(accuracies)),
                "accuracy_std": float(np.std(accuracies)),
            })
    return records


def sweep_faulty_pe_count(model, loader, *,
                          rows: int, cols: int,
                          counts: Sequence[int],
                          trials: int = 8,
                          bit_position: Optional[int] = None,
                          stuck_type: Union[StuckAtType, int, str] = "sa1",
                          fmt: FixedPointFormat = DEFAULT_ACCUMULATOR_FORMAT,
                          dataset: str = "",
                          seed: int = 0) -> List[dict]:
    """Accuracy versus number of faulty PEs (Fig. 5b).

    Faults are injected in the higher-order accumulator bits (worst case), and
    each count is averaged over ``trials`` distinct fault maps, following the
    paper's methodology (8 iterations per experiment).
    """

    clean = baseline_accuracy(model, loader)
    if bit_position is None:
        bit_position = fmt.magnitude_msb
    records: List[dict] = []
    for count in counts:
        if count == 0:
            records.append({
                "dataset": dataset,
                "num_faulty_pes": 0,
                "fault_rate": 0.0,
                "trials": int(trials),
                "accuracy": float(clean),
                "accuracy_std": 0.0,
            })
            continue
        maps = fault_maps_for_trials(rows, cols, count, trials,
                                     bit_position=bit_position, stuck_type=stuck_type,
                                     fmt=fmt, seed=derive_seed(seed, "pe_count", count))
        accuracies = [evaluate_with_faults(model, loader, fault_map=m, fmt=fmt) for m in maps]
        records.append({
            "dataset": dataset,
            "num_faulty_pes": int(count),
            "fault_rate": count / (rows * cols),
            "trials": int(trials),
            "accuracy": float(np.mean(accuracies)),
            "accuracy_std": float(np.std(accuracies)),
        })
    return records


def sweep_array_sizes(model, loader, *,
                      sizes: Sequence[int],
                      num_faulty: int = 4,
                      trials: int = 4,
                      bit_position: Optional[int] = None,
                      stuck_type: Union[StuckAtType, int, str] = "sa1",
                      fmt: FixedPointFormat = DEFAULT_ACCUMULATOR_FORMAT,
                      dataset: str = "",
                      seed: int = 0) -> List[dict]:
    """Accuracy versus systolic array size at a fixed number of faulty PEs (Fig. 5c).

    Smaller arrays are reused more heavily (more weights per PE), so the same
    number of faults corrupts a larger fraction of the computation.
    """

    if bit_position is None:
        bit_position = fmt.magnitude_msb
    records: List[dict] = []
    for size in sizes:
        if num_faulty > size * size:
            raise ValueError(f"cannot place {num_faulty} faults in a {size}x{size} array")
        maps = fault_maps_for_trials(size, size, num_faulty, trials,
                                     bit_position=bit_position, stuck_type=stuck_type,
                                     fmt=fmt, seed=derive_seed(seed, "array_size", size))
        accuracies = [evaluate_with_faults(model, loader, fault_map=m, fmt=fmt) for m in maps]
        records.append({
            "dataset": dataset,
            "array_size": int(size),
            "total_pes": int(size * size),
            "num_faulty_pes": int(num_faulty),
            "trials": int(trials),
            "accuracy": float(np.mean(accuracies)),
            "accuracy_std": float(np.std(accuracies)),
        })
    return records
