"""Fault-vulnerability sweep drivers (paper, Section V-C).

Three sweeps are provided, one per panel of the paper's Fig. 5:

* :func:`sweep_bit_locations` -- vary the stuck-at bit position and polarity
  (Fig. 5a).
* :func:`sweep_faulty_pe_count` -- vary the number of faulty PEs on a fixed
  array (Fig. 5b), averaging several distinct fault maps per point.
* :func:`sweep_array_sizes` -- vary the array size at a fixed number of
  faulty PEs (Fig. 5c).

Each sweep returns a list of plain-dict records so the experiment harness
and the benchmarks can print them as tables or series without further
processing.

All three sweeps are thin wrappers over the
:class:`~repro.faults.campaign.CampaignRunner`: the grid is expressed as
:class:`~repro.faults.campaign.CampaignPoint` objects (with the same
deterministic seed derivation the sweeps have always used) and executed by
the selected engine.  The default ``"fused"`` engine simulates all of a
point's fault maps in one no-autograd pass with clean-prefix sharing; it
and the ``"batched"`` autograd pass produce records bit-identical to the
``"sequential"`` reference (``dtype="float32"`` relaxes that to a
tolerance for speed).  ``workers``, ``shard``, ``trial_chunk`` and
``progress`` route the sweep through the sharded orchestrator
(:mod:`repro.faults.orchestrator`) for parallel, resumable and
multi-machine execution with unchanged records.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

from ..systolic.fixed_point import DEFAULT_ACCUMULATOR_FORMAT, FixedPointFormat
from ..utils.rng import derive_seed
from .campaign import CampaignPoint, CampaignRunner
from .fault_model import StuckAtType


def baseline_accuracy(model, loader) -> float:
    """Fault-free accuracy of the model (uses the software forward path)."""

    from ..autograd import Tensor, no_grad

    was_training = model.training
    model.eval()
    correct = 0
    total = 0
    try:
        with no_grad():
            for inputs, labels in loader:
                rates = model(Tensor(inputs))
                correct += int(np.sum(np.argmax(rates.data, axis=1) == labels))
                total += labels.shape[0]
    finally:
        model.train(was_training)
    return correct / total if total else 0.0


def _make_runner(model, loader, fmt: FixedPointFormat, engine: str,
                 workers: int, cache_dir, dtype: str, shard, trial_chunk,
                 progress, lane_threads=None, plan_cache=True,
                 unit_timeout=None, bypass=False,
                 backend=None) -> CampaignRunner:
    return CampaignRunner(model, loader, fmt=fmt, engine=engine,
                          workers=workers, cache_dir=cache_dir, dtype=dtype,
                          bypass=bypass,
                          shard=shard, trial_chunk=trial_chunk,
                          unit_timeout=unit_timeout,
                          progress=progress, lane_threads=lane_threads,
                          plan_cache=plan_cache, backend=backend)


def _normalize_fault_model(fault_model: str, fault_params) -> tuple:
    """Shared sweep-driver normalisation of the fault-model selection."""

    return (str(fault_model), () if fault_params is None else fault_params)


# ----------------------------------------------------------------------
# Grid builders
# ----------------------------------------------------------------------
# The point grids are exposed separately from the sweep drivers so other
# consumers (the scenario registry, tests) can inspect or reuse the exact
# grid -- same deterministic seed derivations -- without evaluating it.

def bit_sweep_points(*, rows: int, cols: int, bit_positions: Sequence[int],
                     stuck_types: Sequence[Union[StuckAtType, int, str]] = ("sa0", "sa1"),
                     num_faulty: int = 8, trials: int = 2, dataset: str = "",
                     seed: int = 0, fault_model: str = "stuck_at",
                     fault_params=None) -> List[CampaignPoint]:
    """Grid of :func:`sweep_bit_locations` (one point per polarity x bit)."""

    fault_model, fault_params = _normalize_fault_model(fault_model, fault_params)
    points: List[CampaignPoint] = []
    for stuck in stuck_types:
        stuck = StuckAtType.from_value(stuck)
        for bit in bit_positions:
            map_seeds = tuple(
                derive_seed(seed, "bit_sweep", stuck.value, bit, trial)
                for trial in range(trials))
            points.append(CampaignPoint(
                rows=rows, cols=cols, num_faulty=num_faulty, map_seeds=map_seeds,
                bit_position=int(bit), stuck_type=stuck.short_name,
                label="bit_sweep", dataset=dataset,
                fault_model=fault_model, fault_params=fault_params))
    return points


def pe_count_points(*, rows: int, cols: int, counts: Sequence[int],
                    bit_position: int, trials: int = 8,
                    stuck_type: Union[StuckAtType, int, str] = "sa1",
                    dataset: str = "", seed: int = 0,
                    fault_model: str = "stuck_at",
                    fault_params=None) -> List[CampaignPoint]:
    """Grid of :func:`sweep_faulty_pe_count` (count 0 is the baseline row)."""

    fault_model, fault_params = _normalize_fault_model(fault_model, fault_params)
    return [
        CampaignPoint.for_trials(
            rows, cols, count, trials,
            bit_position=bit_position, stuck_type=stuck_type,
            seed=derive_seed(seed, "pe_count", count),
            label="pe_count", dataset=dataset,
            fault_model=fault_model, fault_params=fault_params)
        for count in counts if count != 0
    ]


def array_size_points(*, sizes: Sequence[int], bit_position: int,
                      num_faulty: int = 4, trials: int = 4,
                      stuck_type: Union[StuckAtType, int, str] = "sa1",
                      dataset: str = "", seed: int = 0,
                      fault_model: str = "stuck_at",
                      fault_params=None) -> List[CampaignPoint]:
    """Grid of :func:`sweep_array_sizes` (one point per array size)."""

    for size in sizes:
        if num_faulty > size * size:
            raise ValueError(f"cannot place {num_faulty} faults in a {size}x{size} array")
    fault_model, fault_params = _normalize_fault_model(fault_model, fault_params)
    return [
        CampaignPoint.for_trials(
            size, size, num_faulty, trials,
            bit_position=bit_position, stuck_type=stuck_type,
            seed=derive_seed(seed, "array_size", size),
            label="array_size", dataset=dataset,
            fault_model=fault_model, fault_params=fault_params)
        for size in sizes
    ]


def sweep_bit_locations(model, loader, *,
                        rows: int, cols: int,
                        bit_positions: Sequence[int],
                        stuck_types: Sequence[Union[StuckAtType, int, str]] = ("sa0", "sa1"),
                        num_faulty: int = 8,
                        trials: int = 2,
                        fmt: FixedPointFormat = DEFAULT_ACCUMULATOR_FORMAT,
                        dataset: str = "",
                        seed: int = 0,
                        engine: str = "fused",
                        workers: int = 1,
                        cache_dir=None,
                        dtype: str = "float64",
                        shard=None,
                        trial_chunk=None,
                        progress=None,
                        lane_threads=None,
                        plan_cache=True,
                        unit_timeout=None,
                        fault_model: str = "stuck_at",
                        fault_params=None,
                        bypass: bool = False,
                        backend=None) -> List[dict]:
    """Accuracy versus fault bit location and polarity (Fig. 5a).

    For each (bit position, stuck-at polarity) pair, ``trials`` random fault
    maps with ``num_faulty`` faulty PEs are generated and the mean accuracy
    under unmitigated fault injection is recorded.  ``fault_model`` /
    ``fault_params`` select the paper's permanent datapath stuck-at model
    (default), weight-SRAM faults or transient schedules; ``bypass=True``
    evaluates the mitigated hardware instead.
    """

    runner = _make_runner(model, loader, fmt, engine, workers, cache_dir,
                          dtype, shard, trial_chunk, progress, lane_threads,
                          plan_cache, unit_timeout, bypass, backend)
    points = bit_sweep_points(
        rows=rows, cols=cols, bit_positions=bit_positions,
        stuck_types=stuck_types, num_faulty=num_faulty, trials=trials,
        dataset=dataset, seed=seed,
        fault_model=fault_model, fault_params=fault_params)
    results = runner.run(points)
    return [{
        "dataset": dataset,
        "stuck_type": result["stuck_type"],
        "bit_position": int(result["bit_position"]),
        "num_faulty_pes": int(result["num_faulty"]),
        "trials": int(result["trials"]),
        "accuracy": result["accuracy"],
        "accuracy_std": result["accuracy_std"],
    } for result in results]


def sweep_faulty_pe_count(model, loader, *,
                          rows: int, cols: int,
                          counts: Sequence[int],
                          trials: int = 8,
                          bit_position: Optional[int] = None,
                          stuck_type: Union[StuckAtType, int, str] = "sa1",
                          fmt: FixedPointFormat = DEFAULT_ACCUMULATOR_FORMAT,
                          dataset: str = "",
                          seed: int = 0,
                          engine: str = "fused",
                          workers: int = 1,
                          cache_dir=None,
                          dtype: str = "float64",
                          shard=None,
                          trial_chunk=None,
                          progress=None,
                          lane_threads=None,
                          plan_cache=True,
                          unit_timeout=None,
                          fault_model: str = "stuck_at",
                          fault_params=None,
                          bypass: bool = False,
                          backend=None) -> List[dict]:
    """Accuracy versus number of faulty PEs (Fig. 5b).

    Faults are injected in the higher-order accumulator bits (worst case), and
    each count is averaged over ``trials`` distinct fault maps, following the
    paper's methodology (8 iterations per experiment).  ``fault_model`` /
    ``fault_params`` / ``bypass`` select the fault semantics and mitigation
    as in :func:`sweep_bit_locations`.
    """

    if bit_position is None:
        bit_position = fmt.magnitude_msb
    runner = _make_runner(model, loader, fmt, engine, workers, cache_dir,
                          dtype, shard, trial_chunk, progress, lane_threads,
                          plan_cache, unit_timeout, bypass, backend)
    points = pe_count_points(
        rows=rows, cols=cols, counts=counts, bit_position=bit_position,
        trials=trials, stuck_type=stuck_type, dataset=dataset, seed=seed,
        fault_model=fault_model, fault_params=fault_params)
    results = iter(runner.run(points))
    records: List[dict] = []
    for count in counts:
        if count == 0:
            records.append({
                "dataset": dataset,
                "num_faulty_pes": 0,
                "fault_rate": 0.0,
                "trials": int(trials),
                "accuracy": float(runner.baseline_accuracy()),
                "accuracy_std": 0.0,
            })
            continue
        result = next(results)
        records.append({
            "dataset": dataset,
            "num_faulty_pes": int(count),
            "fault_rate": count / (rows * cols),
            "trials": int(trials),
            "accuracy": result["accuracy"],
            "accuracy_std": result["accuracy_std"],
        })
    return records


def sweep_array_sizes(model, loader, *,
                      sizes: Sequence[int],
                      num_faulty: int = 4,
                      trials: int = 4,
                      bit_position: Optional[int] = None,
                      stuck_type: Union[StuckAtType, int, str] = "sa1",
                      fmt: FixedPointFormat = DEFAULT_ACCUMULATOR_FORMAT,
                      dataset: str = "",
                      seed: int = 0,
                      engine: str = "fused",
                      workers: int = 1,
                      cache_dir=None,
                      dtype: str = "float64",
                      shard=None,
                      trial_chunk=None,
                      progress=None,
                      lane_threads=None,
                      plan_cache=True,
                      unit_timeout=None,
                      fault_model: str = "stuck_at",
                      fault_params=None,
                      bypass: bool = False,
                      backend=None) -> List[dict]:
    """Accuracy versus systolic array size at a fixed number of faulty PEs (Fig. 5c).

    Smaller arrays are reused more heavily (more weights per PE), so the same
    number of faults corrupts a larger fraction of the computation.
    ``fault_model`` / ``fault_params`` / ``bypass`` select the fault
    semantics and mitigation as in :func:`sweep_bit_locations`.
    """

    if bit_position is None:
        bit_position = fmt.magnitude_msb
    runner = _make_runner(model, loader, fmt, engine, workers, cache_dir,
                          dtype, shard, trial_chunk, progress, lane_threads,
                          plan_cache, unit_timeout, bypass, backend)
    points = array_size_points(
        sizes=sizes, bit_position=bit_position, num_faulty=num_faulty,
        trials=trials, stuck_type=stuck_type, dataset=dataset, seed=seed,
        fault_model=fault_model, fault_params=fault_params)
    results = runner.run(points)
    return [{
        "dataset": dataset,
        "array_size": int(size),
        "total_pes": int(size * size),
        "num_faulty_pes": int(num_faulty),
        "trials": int(trials),
        "accuracy": result["accuracy"],
        "accuracy_std": result["accuracy_std"],
    } for size, result in zip(sizes, results)]
