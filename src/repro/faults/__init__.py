"""Fault-injection framework for systolicSNNs.

Fault models (permanent datapath stuck-at, weight-SRAM stuck-at, transient
per-time-step schedules), per-chip fault maps, injectors that attach a
faulty systolic array to a trained SNN, the vulnerability sweep drivers
that regenerate the paper's Fig. 5, the batched campaign engine, and the
sharded orchestrator that scales whole sweeps across worker processes and
machines (see ``docs/ARCHITECTURE.md``).
"""

from .fault_model import (
    StuckAtFault,
    StuckAtType,
    TransientFault,
    WeightSRAMFault,
    lsb_fault,
    msb_fault,
    transient_fault,
)
from .fault_map import (
    FaultMap,
    FaultSchedule,
    SCHEDULE_PROCESSES,
    bernoulli_schedule,
    burst_schedule,
    clustered_schedule,
    fault_map_from_rate,
    fault_maps_for_trials,
    random_fault_map,
    random_weight_fault_map,
    schedule_from_process,
    schedule_phases,
    single_bit_fault_map,
)
from .injection import (
    BatchedFaultInjector,
    BatchedTransientFaultInjector,
    FaultInjector,
    TransientFaultInjector,
    build_faulty_array,
    evaluate_with_faults,
    evaluate_with_faults_batched,
    evaluate_with_transient_faults,
)
from .campaign import (
    CampaignPoint,
    CampaignRunner,
    cached_record,
    load_cached_record,
    map_grid,
    store_record_safe,
)
from .orchestrator import (
    CampaignOrchestrator,
    OrchestratorResult,
    PendingShardError,
    ShardSpec,
    SweepReport,
    WorkUnit,
)
from .analysis import (
    array_size_points,
    baseline_accuracy,
    bit_sweep_points,
    pe_count_points,
    sweep_array_sizes,
    sweep_bit_locations,
    sweep_faulty_pe_count,
)
from .detection import (
    Diagnosis,
    TestVector,
    detect_fault_map,
    detection_coverage,
    generate_test_vectors,
    locate_faulty_columns,
    locate_faulty_rows_in_column,
    run_detection,
)

__all__ = [
    "StuckAtFault",
    "StuckAtType",
    "TransientFault",
    "WeightSRAMFault",
    "lsb_fault",
    "msb_fault",
    "transient_fault",
    "FaultMap",
    "FaultSchedule",
    "SCHEDULE_PROCESSES",
    "bernoulli_schedule",
    "burst_schedule",
    "clustered_schedule",
    "fault_map_from_rate",
    "fault_maps_for_trials",
    "random_fault_map",
    "random_weight_fault_map",
    "schedule_from_process",
    "schedule_phases",
    "single_bit_fault_map",
    "BatchedFaultInjector",
    "BatchedTransientFaultInjector",
    "FaultInjector",
    "TransientFaultInjector",
    "build_faulty_array",
    "evaluate_with_faults",
    "evaluate_with_faults_batched",
    "evaluate_with_transient_faults",
    "CampaignPoint",
    "CampaignRunner",
    "CampaignOrchestrator",
    "OrchestratorResult",
    "PendingShardError",
    "ShardSpec",
    "SweepReport",
    "WorkUnit",
    "map_grid",
    "cached_record",
    "load_cached_record",
    "store_record_safe",
    "array_size_points",
    "baseline_accuracy",
    "bit_sweep_points",
    "pe_count_points",
    "sweep_array_sizes",
    "sweep_bit_locations",
    "sweep_faulty_pe_count",
    "Diagnosis",
    "TestVector",
    "detect_fault_map",
    "detection_coverage",
    "generate_test_vectors",
    "locate_faulty_columns",
    "locate_faulty_rows_in_column",
    "run_detection",
]
