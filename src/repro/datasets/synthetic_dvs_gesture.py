"""Synthetic stand-in for the DVS128 Gesture dataset.

DVS128 Gesture (Amir et al., CVPR 2017) contains 11 hand-gesture classes
recorded with an event camera.  This module synthesises 11 visually distinct
*motion patterns* -- translating bars, rotating blobs, expanding and
contracting rings, and so on -- and converts the moving intensity frames into
ON/OFF event frames, producing samples of shape ``(T, 2, H, W)``.

The gestures differ only in their *motion over time*, not in any single
frame, so a classifier must integrate temporal information, mirroring the
property that makes the real DVS Gesture harder (and more fault sensitive)
than the static datasets in the paper's experiments.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from ..utils.rng import derive_seed, get_rng
from .base import ArrayDataset

NUM_GESTURE_CLASSES = 11


def _blob(center: Tuple[float, float], size: int, radius: float = 1.8) -> np.ndarray:
    """Gaussian blob centred at ``center`` on a ``size x size`` canvas."""

    ys, xs = np.mgrid[0:size, 0:size]
    cy, cx = center
    return np.exp(-(((ys - cy) ** 2 + (xs - cx) ** 2) / (2.0 * radius ** 2)))


def _bar(center: Tuple[float, float], size: int, horizontal: bool,
         thickness: float = 1.5, length: float = 5.0) -> np.ndarray:
    ys, xs = np.mgrid[0:size, 0:size]
    cy, cx = center
    if horizontal:
        return np.exp(-((ys - cy) ** 2 / (2 * thickness ** 2) + (xs - cx) ** 2 / (2 * length ** 2)))
    return np.exp(-((ys - cy) ** 2 / (2 * length ** 2) + (xs - cx) ** 2 / (2 * thickness ** 2)))


def _ring(center: Tuple[float, float], size: int, radius: float,
          width: float = 1.2) -> np.ndarray:
    ys, xs = np.mgrid[0:size, 0:size]
    cy, cx = center
    dist = np.sqrt((ys - cy) ** 2 + (xs - cx) ** 2)
    return np.exp(-((dist - radius) ** 2) / (2 * width ** 2))


def _gesture_frame(gesture: int, phase: float, size: int) -> np.ndarray:
    """Intensity frame of ``gesture`` at normalised time ``phase`` in [0, 1)."""

    center = (size / 2.0, size / 2.0)
    span = size / 2.0 - 3.0
    angle = 2.0 * math.pi * phase
    if gesture == 0:      # hand clap: two blobs meeting in the middle
        offset = span * abs(math.cos(angle))
        return (_blob((center[0], center[1] - offset), size)
                + _blob((center[0], center[1] + offset), size))
    if gesture == 1:      # right hand wave: horizontal oscillation, upper half
        return _blob((size * 0.3, center[1] + span * math.sin(angle)), size)
    if gesture == 2:      # left hand wave: horizontal oscillation, lower half
        return _blob((size * 0.7, center[1] + span * math.sin(angle)), size)
    if gesture == 3:      # right arm clockwise rotation
        return _blob((center[0] + span * math.sin(angle), center[1] + span * math.cos(angle)), size)
    if gesture == 4:      # right arm counter-clockwise rotation
        return _blob((center[0] + span * math.sin(-angle), center[1] + span * math.cos(-angle)), size)
    if gesture == 5:      # left arm clockwise: rotating bar
        return _bar((center[0] + 0.5 * span * math.sin(angle),
                     center[1] + 0.5 * span * math.cos(angle)), size, horizontal=True)
    if gesture == 6:      # left arm counter-clockwise: rotating bar, other direction
        return _bar((center[0] + 0.5 * span * math.sin(-angle),
                     center[1] + 0.5 * span * math.cos(-angle)), size, horizontal=False)
    if gesture == 7:      # arm roll: expanding ring
        return _ring(center, size, radius=1.0 + (span - 1.0) * phase)
    if gesture == 8:      # air drums: vertical oscillation
        return _blob((center[0] + span * math.sin(2 * angle), center[1]), size)
    if gesture == 9:      # air guitar: diagonal sweep
        return _blob((center[0] + span * math.sin(angle), center[1] + span * math.sin(angle)), size)
    if gesture == 10:     # other: contracting ring
        return _ring(center, size, radius=1.0 + (span - 1.0) * (1.0 - phase))
    raise ValueError(f"gesture class must be 0-{NUM_GESTURE_CLASSES - 1}, got {gesture}")


def gesture_events(gesture: int, time_steps: int, size: int,
                   rng: np.random.Generator, threshold: float = 0.12,
                   jitter: float = 0.02, phase_offset: float = 0.0) -> np.ndarray:
    """Event frames ``(time_steps, 2, size, size)`` for one gesture instance."""

    if time_steps <= 1:
        raise ValueError("gesture events need at least 2 time steps")
    frames = np.zeros((time_steps, 2, size, size))
    previous = _gesture_frame(gesture, phase_offset, size)
    for t in range(time_steps):
        phase = phase_offset + (t + 1) / time_steps
        current = _gesture_frame(gesture, phase % 1.0, size)
        current = np.clip(current + rng.normal(0.0, jitter, size=(size, size)), 0.0, 1.5)
        diff = current - previous
        frames[t, 0] = (diff > threshold).astype(np.float64)
        frames[t, 1] = (diff < -threshold).astype(np.float64)
        previous = current
    return frames


def generate_dvs_gesture(num_samples: int = 440, image_size: int = 16,
                         time_steps: int = 6, seed=None,
                         name: str = "synthetic-dvs-gesture") -> ArrayDataset:
    """Generate a balanced synthetic DVS-Gesture-like dataset (11 classes)."""

    if num_samples < NUM_GESTURE_CLASSES:
        raise ValueError("need at least one sample per gesture class")
    rng = get_rng(seed)
    inputs = np.zeros((num_samples, time_steps, 2, image_size, image_size))
    labels = np.zeros(num_samples, dtype=np.int64)
    for index in range(num_samples):
        gesture = index % NUM_GESTURE_CLASSES
        labels[index] = gesture
        phase_offset = float(rng.uniform(0.0, 1.0))
        inputs[index] = gesture_events(gesture, time_steps, image_size, rng,
                                       phase_offset=phase_offset)
    order = rng.permutation(num_samples)
    return ArrayDataset(inputs[order], labels[order],
                        num_classes=NUM_GESTURE_CLASSES, name=name)


def generate_dvs_gesture_splits(num_train: int = 330, num_test: int = 110,
                                image_size: int = 16, time_steps: int = 6,
                                seed=None, **kwargs) -> Tuple[ArrayDataset, ArrayDataset]:
    """Generate disjoint train and test synthetic DVS-Gesture datasets."""

    train = generate_dvs_gesture(num_train, image_size=image_size, time_steps=time_steps,
                                 seed=derive_seed(seed, "dvs_train"), **kwargs)
    test = generate_dvs_gesture(num_test, image_size=image_size, time_steps=time_steps,
                                seed=derive_seed(seed, "dvs_test"), **kwargs)
    return train, test
