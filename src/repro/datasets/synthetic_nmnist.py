"""Synthetic stand-in for the N-MNIST neuromorphic dataset.

N-MNIST (Orchard et al., 2015) was recorded by moving an event camera in
three saccades over the static MNIST digits; pixels emit ON/OFF events when
their brightness changes.  This module reproduces that structure
synthetically: the digit glyph from :mod:`synthetic_mnist` is translated
along a small saccade trajectory and the frame-to-frame brightness changes
are binned into two polarity channels, yielding event frames of shape
``(T, 2, H, W)`` per sample -- the same temporal, two-channel format the
paper's N-MNIST classifier consumes.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..utils.rng import derive_seed, get_rng
from .base import ArrayDataset
from .synthetic_mnist import render_digit

#: Default saccade trajectory: a small triangle, mimicking N-MNIST's three saccades.
_SACCADE_PATTERN = [(0, 0), (1, 1), (2, 0), (1, -1), (0, 0), (-1, 1), (-2, 0), (-1, -1)]


def events_from_motion(image: np.ndarray, time_steps: int,
                       rng: np.random.Generator,
                       threshold: float = 0.15,
                       jitter: float = 0.03) -> np.ndarray:
    """Convert a static image into ON/OFF event frames via simulated saccades.

    Returns an array of shape ``(time_steps, 2, H, W)`` where channel 0 holds
    ON events (brightness increases) and channel 1 holds OFF events.
    """

    if time_steps <= 0:
        raise ValueError("time_steps must be positive")
    height, width = image.shape
    frames = np.zeros((time_steps, 2, height, width))
    previous = image
    for t in range(time_steps):
        dy, dx = _SACCADE_PATTERN[(t + 1) % len(_SACCADE_PATTERN)]
        current = np.roll(np.roll(image, dy, axis=0), dx, axis=1)
        current = np.clip(current + rng.normal(0.0, jitter, size=image.shape), 0.0, 1.0)
        diff = current - previous
        frames[t, 0] = (diff > threshold).astype(np.float64)
        frames[t, 1] = (diff < -threshold).astype(np.float64)
        previous = current
    return frames


def generate_nmnist(num_samples: int = 400, image_size: int = 16,
                    time_steps: int = 4, max_shift: int = 2,
                    seed=None, name: str = "synthetic-nmnist") -> ArrayDataset:
    """Generate a balanced synthetic N-MNIST-like event dataset.

    Inputs have shape ``(num_samples, time_steps, 2, image_size, image_size)``.
    """

    if num_samples < 10:
        raise ValueError("need at least one sample per class")
    rng = get_rng(seed)
    templates = [render_digit(d, image_size) for d in range(10)]
    inputs = np.zeros((num_samples, time_steps, 2, image_size, image_size))
    labels = np.zeros(num_samples, dtype=np.int64)
    for index in range(num_samples):
        digit = index % 10
        labels[index] = digit
        base = templates[digit]
        if max_shift > 0:
            dy, dx = rng.integers(-max_shift, max_shift + 1, size=2)
            base = np.roll(np.roll(base, dy, axis=0), dx, axis=1)
        inputs[index] = events_from_motion(base, time_steps, rng)
    order = rng.permutation(num_samples)
    return ArrayDataset(inputs[order], labels[order], num_classes=10, name=name)


def generate_nmnist_splits(num_train: int = 300, num_test: int = 100,
                           image_size: int = 16, time_steps: int = 4,
                           seed=None, **kwargs) -> Tuple[ArrayDataset, ArrayDataset]:
    """Generate disjoint train and test synthetic N-MNIST datasets."""

    train = generate_nmnist(num_train, image_size=image_size, time_steps=time_steps,
                            seed=derive_seed(seed, "nmnist_train"), **kwargs)
    test = generate_nmnist(num_test, image_size=image_size, time_steps=time_steps,
                           seed=derive_seed(seed, "nmnist_test"), **kwargs)
    return train, test
