"""Synthetic stand-in for the MNIST handwritten-digit dataset.

The real MNIST images cannot be downloaded in this offline environment, so
this module procedurally renders digit glyphs (seven-segment style strokes on
a 16x16 canvas) and augments them with random translation, stroke-intensity
jitter and pixel noise.  The result is a 10-class static image classification
task that a small PLIF-SNN learns to ~99 % accuracy in a few epochs -- the
property the paper's experiments rely on -- while exercising exactly the same
code paths (static input, direct spike encoding) as real MNIST would.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..utils.rng import derive_seed, get_rng
from .base import ArrayDataset

#: Segments of a seven-segment display, as (row span, column span) in a
#: normalised 12x8 glyph box: (top, top-left, top-right, middle, bottom-left,
#: bottom-right, bottom).
_SEGMENTS = {
    "top": ((0, 2), (0, 8)),
    "top_left": ((0, 6), (0, 2)),
    "top_right": ((0, 6), (6, 8)),
    "middle": ((5, 7), (0, 8)),
    "bottom_left": ((6, 12), (0, 2)),
    "bottom_right": ((6, 12), (6, 8)),
    "bottom": ((10, 12), (0, 8)),
}

#: Which segments are lit for each digit 0-9.
_DIGIT_SEGMENTS: Dict[int, Tuple[str, ...]] = {
    0: ("top", "top_left", "top_right", "bottom_left", "bottom_right", "bottom"),
    1: ("top_right", "bottom_right"),
    2: ("top", "top_right", "middle", "bottom_left", "bottom"),
    3: ("top", "top_right", "middle", "bottom_right", "bottom"),
    4: ("top_left", "top_right", "middle", "bottom_right"),
    5: ("top", "top_left", "middle", "bottom_right", "bottom"),
    6: ("top", "top_left", "middle", "bottom_left", "bottom_right", "bottom"),
    7: ("top", "top_right", "bottom_right"),
    8: ("top", "top_left", "top_right", "middle", "bottom_left", "bottom_right", "bottom"),
    9: ("top", "top_left", "top_right", "middle", "bottom_right", "bottom"),
}

GLYPH_HEIGHT = 12
GLYPH_WIDTH = 8


def render_digit(digit: int, image_size: int = 16) -> np.ndarray:
    """Render the canonical glyph of ``digit`` centred on an ``image_size`` canvas."""

    if digit not in _DIGIT_SEGMENTS:
        raise ValueError(f"digit must be 0-9, got {digit}")
    if image_size < max(GLYPH_HEIGHT, GLYPH_WIDTH) + 2:
        raise ValueError("image_size too small for the digit glyph")
    glyph = np.zeros((GLYPH_HEIGHT, GLYPH_WIDTH))
    for segment in _DIGIT_SEGMENTS[digit]:
        (r0, r1), (c0, c1) = _SEGMENTS[segment]
        glyph[r0:r1, c0:c1] = 1.0
    canvas = np.zeros((image_size, image_size))
    top = (image_size - GLYPH_HEIGHT) // 2
    left = (image_size - GLYPH_WIDTH) // 2
    canvas[top:top + GLYPH_HEIGHT, left:left + GLYPH_WIDTH] = glyph
    return canvas


def _augment(image: np.ndarray, rng: np.random.Generator,
             max_shift: int, noise_std: float) -> np.ndarray:
    """Random translation, intensity jitter and additive noise."""

    shifted = image
    if max_shift > 0:
        dy, dx = rng.integers(-max_shift, max_shift + 1, size=2)
        shifted = np.roll(np.roll(image, dy, axis=0), dx, axis=1)
    intensity = rng.uniform(0.75, 1.0)
    noisy = shifted * intensity + rng.normal(0.0, noise_std, size=image.shape)
    return np.clip(noisy, 0.0, 1.0)


def generate_mnist(num_samples: int = 400, image_size: int = 16,
                   max_shift: int = 2, noise_std: float = 0.08,
                   seed=None, name: str = "synthetic-mnist") -> ArrayDataset:
    """Generate a balanced synthetic MNIST-like dataset.

    Returns an :class:`ArrayDataset` with inputs of shape
    ``(num_samples, 1, image_size, image_size)`` in [0, 1] and labels 0-9.
    """

    if num_samples < 10:
        raise ValueError("need at least one sample per class")
    rng = get_rng(seed)
    templates = {digit: render_digit(digit, image_size) for digit in range(10)}
    images = np.zeros((num_samples, 1, image_size, image_size))
    labels = np.zeros(num_samples, dtype=np.int64)
    for index in range(num_samples):
        digit = index % 10
        labels[index] = digit
        images[index, 0] = _augment(templates[digit], rng, max_shift, noise_std)
    order = rng.permutation(num_samples)
    return ArrayDataset(images[order], labels[order], num_classes=10, name=name)


def generate_mnist_splits(num_train: int = 300, num_test: int = 100,
                          image_size: int = 16, seed=None,
                          **kwargs) -> Tuple[ArrayDataset, ArrayDataset]:
    """Generate disjoint train and test synthetic MNIST datasets."""

    train = generate_mnist(num_train, image_size=image_size,
                           seed=derive_seed(seed, "mnist_train"), **kwargs)
    test = generate_mnist(num_test, image_size=image_size,
                          seed=derive_seed(seed, "mnist_test"), **kwargs)
    return train, test
