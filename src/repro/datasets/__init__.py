"""Synthetic datasets standing in for MNIST, N-MNIST and DVS128 Gesture.

The original datasets cannot be downloaded in this offline environment; the
generators here produce procedurally rendered equivalents that exercise the
same code paths (static images for MNIST, two-polarity event frames for the
neuromorphic datasets).  See DESIGN.md for the substitution rationale.
"""

from typing import Callable, Dict, Tuple

from .base import ArrayDataset, DataLoader
from .synthetic_mnist import generate_mnist, generate_mnist_splits, render_digit
from .synthetic_nmnist import events_from_motion, generate_nmnist, generate_nmnist_splits
from .synthetic_dvs_gesture import (
    NUM_GESTURE_CLASSES,
    generate_dvs_gesture,
    generate_dvs_gesture_splits,
    gesture_events,
)

#: name -> split-generator returning (train, test) ArrayDatasets.
DATASET_GENERATORS: Dict[str, Callable[..., Tuple[ArrayDataset, ArrayDataset]]] = {
    "mnist": generate_mnist_splits,
    "nmnist": generate_nmnist_splits,
    "dvs_gesture": generate_dvs_gesture_splits,
}


def load_dataset(name: str, **kwargs) -> Tuple[ArrayDataset, ArrayDataset]:
    """Generate the (train, test) split of a named dataset.

    ``name`` is one of ``"mnist"``, ``"nmnist"`` or ``"dvs_gesture"``;
    keyword arguments are forwarded to the generator (``num_train``,
    ``num_test``, ``image_size``, ``seed``, ...).
    """

    key = name.lower()
    if key not in DATASET_GENERATORS:
        raise KeyError(f"unknown dataset '{name}'; options: {sorted(DATASET_GENERATORS)}")
    return DATASET_GENERATORS[key](**kwargs)


__all__ = [
    "ArrayDataset",
    "DataLoader",
    "DATASET_GENERATORS",
    "load_dataset",
    "generate_mnist",
    "generate_mnist_splits",
    "render_digit",
    "events_from_motion",
    "generate_nmnist",
    "generate_nmnist_splits",
    "NUM_GESTURE_CLASSES",
    "generate_dvs_gesture",
    "generate_dvs_gesture_splits",
    "gesture_events",
]
