"""Dataset and data-loader abstractions.

The datasets in this reproduction are small enough to live in memory as
numpy arrays.  :class:`ArrayDataset` pairs an input array with labels;
:class:`DataLoader` produces shuffled mini-batches.  Event-based samples are
stored per-sample as ``(T, C, H, W)`` arrays and batched to
``(T, batch, C, H, W)``, the layout expected by
:class:`~repro.snn.network.SpikingClassifier`.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, Tuple

import numpy as np

from ..utils.rng import get_rng


@dataclasses.dataclass
class ArrayDataset:
    """In-memory dataset of inputs and integer labels.

    ``inputs`` has shape ``(n, C, H, W)`` for static data or
    ``(n, T, C, H, W)`` for event data.
    """

    inputs: np.ndarray
    labels: np.ndarray
    num_classes: int
    name: str = "dataset"

    def __post_init__(self) -> None:
        self.inputs = np.asarray(self.inputs, dtype=np.float64)
        self.labels = np.asarray(self.labels, dtype=np.int64)
        if self.inputs.shape[0] != self.labels.shape[0]:
            raise ValueError("inputs and labels must have the same length")
        if self.labels.size and (self.labels.min() < 0 or self.labels.max() >= self.num_classes):
            raise ValueError("labels out of range for num_classes")

    def __len__(self) -> int:
        return int(self.inputs.shape[0])

    def __getitem__(self, index) -> Tuple[np.ndarray, np.ndarray]:
        return self.inputs[index], self.labels[index]

    @property
    def is_event_data(self) -> bool:
        """True when samples carry a time dimension (``(n, T, C, H, W)``)."""

        return self.inputs.ndim == 5

    @property
    def sample_shape(self) -> tuple:
        return self.inputs.shape[1:]

    def subset(self, indices) -> "ArrayDataset":
        """Return a new dataset restricted to ``indices``."""

        indices = np.asarray(indices)
        return ArrayDataset(self.inputs[indices], self.labels[indices],
                            num_classes=self.num_classes, name=self.name)

    def split(self, train_fraction: float, seed=None) -> Tuple["ArrayDataset", "ArrayDataset"]:
        """Shuffle and split into (train, test) datasets."""

        if not 0.0 < train_fraction < 1.0:
            raise ValueError("train_fraction must be in (0, 1)")
        rng = get_rng(seed)
        order = rng.permutation(len(self))
        cut = int(round(train_fraction * len(self)))
        return self.subset(order[:cut]), self.subset(order[cut:])

    def class_counts(self) -> np.ndarray:
        """Number of samples per class (length ``num_classes``)."""

        return np.bincount(self.labels, minlength=self.num_classes)


class DataLoader:
    """Mini-batch iterator over an :class:`ArrayDataset`.

    Event data is transposed so that batches have shape
    ``(T, batch, C, H, W)``; static data keeps ``(batch, C, H, W)``.
    """

    def __init__(self, dataset: ArrayDataset, batch_size: int = 32,
                 shuffle: bool = False, seed=None, drop_last: bool = False) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self._rng = get_rng(seed)

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return int(np.ceil(n / self.batch_size))

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        n = len(self.dataset)
        order = self._rng.permutation(n) if self.shuffle else np.arange(n)
        for start in range(0, n, self.batch_size):
            indices = order[start:start + self.batch_size]
            if self.drop_last and indices.shape[0] < self.batch_size:
                break
            inputs = self.dataset.inputs[indices]
            labels = self.dataset.labels[indices]
            if self.dataset.is_event_data:
                # (batch, T, C, H, W) -> (T, batch, C, H, W)
                inputs = np.transpose(inputs, (1, 0, 2, 3, 4))
            yield inputs, labels
