"""Numerical gradient checking utilities.

Used by the test-suite to validate every differentiable operation in the
engine against central finite differences.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .tensor import Tensor


def numerical_gradient(fn: Callable[..., Tensor], inputs: Sequence[Tensor],
                       index: int, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of ``sum(fn(*inputs))`` w.r.t. ``inputs[index]``."""

    target = inputs[index]
    grad = np.zeros_like(target.data)
    flat = target.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = float(fn(*inputs).data.sum())
        flat[i] = original - eps
        minus = float(fn(*inputs).data.sum())
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * eps)
    return grad


def check_gradients(fn: Callable[..., Tensor], inputs: Sequence[Tensor],
                    atol: float = 1e-4, rtol: float = 1e-3, eps: float = 1e-6) -> bool:
    """Compare autodiff gradients of ``sum(fn(*inputs))`` against finite differences.

    Raises ``AssertionError`` with a diagnostic message on mismatch; returns
    ``True`` when every input gradient matches.
    """

    for tensor in inputs:
        tensor.zero_grad()
    output = fn(*inputs)
    output.sum().backward()
    for index, tensor in enumerate(inputs):
        if not tensor.requires_grad:
            continue
        expected = numerical_gradient(fn, inputs, index, eps=eps)
        actual = tensor.grad if tensor.grad is not None else np.zeros_like(tensor.data)
        if not np.allclose(actual, expected, atol=atol, rtol=rtol):
            max_err = float(np.abs(actual - expected).max())
            raise AssertionError(
                f"gradient mismatch for input {index}: max abs error {max_err:.3e}"
            )
    return True
