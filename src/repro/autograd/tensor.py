"""Reverse-mode automatic differentiation on top of numpy.

This module provides the :class:`Tensor` class used throughout the
reproduction.  It is a deliberately small engine -- just enough machinery to
train spiking neural networks with surrogate-gradient backpropagation through
time -- but it is a *real* autodiff engine: every operation records a backward
closure, gradients broadcast correctly, and a topological sort drives the
backward pass.

Design notes
------------
* Data is always stored as ``float64`` numpy arrays.  Spiking networks are
  small in this reproduction, so we favour numerical robustness over memory.
* Gradients are accumulated (``+=``) so a tensor used in several places
  receives the sum of its downstream gradients, as expected.
* Broadcasting is handled by :func:`_unbroadcast`, which sums gradient axes
  that were expanded during the forward pass.
* Custom gradients (e.g. the Heaviside spike function with a surrogate
  derivative) are built with :class:`Function` in
  :mod:`repro.autograd.functional`.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Optional, Sequence, Union

import numpy as np

ArrayLike = Union["Tensor", np.ndarray, float, int, list, tuple]

_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph construction.

    Inside a ``with no_grad():`` block every operation produces tensors with
    ``requires_grad=False`` and no backward closures, which makes pure
    inference markedly faster and keeps memory flat.
    """

    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def is_grad_enabled() -> bool:
    """Return whether operations currently record gradients."""

    return _GRAD_ENABLED


def _as_array(value: ArrayLike) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    return np.asarray(value, dtype=np.float64)


def _unbroadcast(grad: np.ndarray, shape: tuple) -> np.ndarray:
    """Reduce ``grad`` so that it has ``shape``.

    When an operand was broadcast during the forward pass, the gradient
    flowing back has the broadcast shape; the contribution to the original
    operand is the sum over the broadcast axes.
    """

    if grad.shape == shape:
        return grad
    # Sum over leading axes that were added by broadcasting.
    extra_dims = grad.ndim - len(shape)
    if extra_dims > 0:
        grad = grad.sum(axis=tuple(range(extra_dims)))
    # Sum over axes that were of size 1 in the original shape.
    axes = tuple(
        axis for axis, size in enumerate(shape) if size == 1 and grad.shape[axis] != 1
    )
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed tensor that records operations for backpropagation."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")
    __array_priority__ = 100  # numpy defers binary ops to Tensor

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        name: Optional[str] = None,
    ) -> None:
        self.data = _as_array(data)
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self.grad: Optional[np.ndarray] = None
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: tuple = ()
        self.name = name

    # ------------------------------------------------------------------
    # Basic introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying numpy array (not a copy)."""

        return self.data

    def item(self) -> float:
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but detached from the graph."""

        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Graph construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = tuple(p for p in parents if p.requires_grad)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        grad = _unbroadcast(np.asarray(grad, dtype=np.float64), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Backpropagate from this tensor.

        ``grad`` defaults to ones (appropriate for scalar losses).
        """

        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            grad = np.ones_like(self.data)
        else:
            grad = _as_array(grad)
            if grad.shape != self.data.shape:
                grad = np.broadcast_to(grad, self.data.shape).astype(np.float64)

        # Topological ordering of the graph reachable from ``self``.
        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(order):
            if node._backward is None or node.grad is None:
                continue
            node._backward(node.grad)

    # ------------------------------------------------------------------
    # Arithmetic operators
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data + other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad)
            if other_t.requires_grad:
                other_t._accumulate(grad)

        return Tensor._make(data, (self, other_t), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        data = -self.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return Tensor._make(data, (self,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data - other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad)
            if other_t.requires_grad:
                other_t._accumulate(-grad)

        return Tensor._make(data, (self, other_t), backward)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other) - self

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data * other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * other_t.data)
            if other_t.requires_grad:
                other_t._accumulate(grad * self.data)

        return Tensor._make(data, (self, other_t), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data / other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / other_t.data)
            if other_t.requires_grad:
                other_t._accumulate(-grad * self.data / (other_t.data ** 2))

        return Tensor._make(data, (self, other_t), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("tensor exponents are not supported; use exp/log")
        data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(data, (self,), backward)

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data @ other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                if other_t.data.ndim == 1:
                    self._accumulate(np.outer(grad, other_t.data) if self.data.ndim == 2 else grad * other_t.data)
                else:
                    self._accumulate(grad @ np.swapaxes(other_t.data, -1, -2))
            if other_t.requires_grad:
                if self.data.ndim == 1:
                    other_t._accumulate(np.outer(self.data, grad))
                else:
                    other_t._accumulate(np.swapaxes(self.data, -1, -2) @ grad)

        return Tensor._make(data, (self, other_t), backward)

    # ------------------------------------------------------------------
    # Comparisons (produce plain numpy boolean arrays, no gradient)
    # ------------------------------------------------------------------
    def __gt__(self, other: ArrayLike) -> np.ndarray:
        return self.data > _as_array(other)

    def __lt__(self, other: ArrayLike) -> np.ndarray:
        return self.data < _as_array(other)

    def __ge__(self, other: ArrayLike) -> np.ndarray:
        return self.data >= _as_array(other)

    def __le__(self, other: ArrayLike) -> np.ndarray:
        return self.data <= _as_array(other)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original_shape = self.data.shape
        data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(original_shape))

        return Tensor._make(data, (self,), backward)

    def flatten_batch(self) -> "Tensor":
        """Flatten all dimensions except the first (batch) dimension."""

        batch = self.data.shape[0]
        return self.reshape(batch, -1)

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        data = np.transpose(self.data, axes)
        inverse = np.argsort(axes)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(np.transpose(grad, inverse))

        return Tensor._make(data, (self,), backward)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, index, grad)
                self._accumulate(full)

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)
        input_shape = self.data.shape

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                axes = tuple(a % len(input_shape) for a in axes)
                g = np.expand_dims(g, axis=tuple(sorted(axes)))
            self._accumulate(np.broadcast_to(g, input_shape))

        return Tensor._make(data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis=None, keepdims: bool = False, eps: float = 0.0) -> "Tensor":
        mean = self.mean(axis=axis, keepdims=True)
        centered = self - mean
        squared = centered * centered
        result = squared.mean(axis=axis, keepdims=keepdims)
        if eps:
            result = result + eps
        return result

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)
        mask_source = self.data.max(axis=axis, keepdims=True)
        mask = (self.data == mask_source).astype(np.float64)
        # Distribute gradient equally among ties.
        mask = mask / mask.sum(axis=axis, keepdims=True)
        input_shape = self.data.shape

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                axes = tuple(a % len(input_shape) for a in axes)
                g = np.expand_dims(g, axis=tuple(sorted(axes)))
            self._accumulate(np.broadcast_to(g, input_shape) * mask)

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------
    # Elementwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * data)

        return Tensor._make(data, (self,), backward)

    def log(self) -> "Tensor":
        data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return Tensor._make(data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * data * (1.0 - data))

        return Tensor._make(data, (self,), backward)

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - data ** 2))

        return Tensor._make(data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = (self.data > 0).astype(np.float64)
        data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor._make(data, (self,), backward)

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)
        data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * sign)

        return Tensor._make(data, (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        mask = ((self.data >= low) & (self.data <= high)).astype(np.float64)
        data = np.clip(self.data, low, high)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor._make(data, (self,), backward)

    def maximum(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = np.maximum(self.data, other_t.data)
        mask_self = (self.data >= other_t.data).astype(np.float64)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask_self)
            if other_t.requires_grad:
                other_t._accumulate(grad * (1.0 - mask_self))

        return Tensor._make(data, (self, other_t), backward)

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------
    @staticmethod
    def zeros(shape, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape), requires_grad=requires_grad)

    @staticmethod
    def ones(shape, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.ones(shape), requires_grad=requires_grad)

    @staticmethod
    def full(shape, value: float, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.full(shape, value, dtype=np.float64), requires_grad=requires_grad)

    @staticmethod
    def randn(shape, rng: Optional[np.random.Generator] = None, scale: float = 1.0,
              requires_grad: bool = False) -> "Tensor":
        rng = rng or np.random.default_rng()
        return Tensor(rng.normal(0.0, scale, size=shape), requires_grad=requires_grad)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis, differentiably."""

    tensors = list(tensors)
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        pieces = np.split(grad, len(tensors), axis=axis)
        for tensor, piece in zip(tensors, pieces):
            if tensor.requires_grad:
                tensor._accumulate(np.squeeze(piece, axis=axis))

    return Tensor._make(data, tensors, backward)


def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along an existing axis, differentiably."""

    tensors = list(tensors)
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                index = [slice(None)] * grad.ndim
                index[axis] = slice(start, stop)
                tensor._accumulate(grad[tuple(index)])

    return Tensor._make(data, tensors, backward)


def where(condition: ArrayLike, a: Tensor, b: Tensor) -> Tensor:
    """Differentiable ``where``: condition is treated as a constant mask."""

    cond = _as_array(condition).astype(bool)
    a_t = a if isinstance(a, Tensor) else Tensor(a)
    b_t = b if isinstance(b, Tensor) else Tensor(b)
    data = np.where(cond, a_t.data, b_t.data)

    def backward(grad: np.ndarray) -> None:
        if a_t.requires_grad:
            a_t._accumulate(grad * cond)
        if b_t.requires_grad:
            b_t._accumulate(grad * (~cond))

    return Tensor._make(data, (a_t, b_t), backward)


def as_tensor(value: ArrayLike) -> Tensor:
    """Return ``value`` as a :class:`Tensor` (no copy when already a tensor)."""

    if isinstance(value, Tensor):
        return value
    return Tensor(value)
