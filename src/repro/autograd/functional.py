"""Neural-network functional primitives built on :class:`repro.autograd.Tensor`.

The functions in this module implement the standard building blocks needed by
the spiking networks in this reproduction: dense and convolutional affine
transforms, pooling, batch normalisation, dropout and the custom-gradient
machinery used by the Heaviside spike function with a surrogate derivative.

Convolutions are implemented with im2col + matmul, which keeps the backward
pass simple (it reuses the matmul gradient plus a col2im scatter) and is fast
enough for the small networks used in the FalVolt experiments.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .tensor import Tensor


class Function:
    """Base class for operations with custom (non-autodiff) gradients.

    Subclasses implement :meth:`forward` returning the output array and any
    context needed by :meth:`backward`, which maps the output gradient to
    gradients of the inputs.  This is the hook used for the spike Heaviside
    step with a surrogate derivative.
    """

    @staticmethod
    def forward(ctx: dict, *arrays: np.ndarray, **kwargs) -> np.ndarray:
        raise NotImplementedError

    @staticmethod
    def backward(ctx: dict, grad: np.ndarray) -> Tuple[Optional[np.ndarray], ...]:
        raise NotImplementedError

    @classmethod
    def apply(cls, *inputs, **kwargs) -> Tensor:
        tensors = [x if isinstance(x, Tensor) else Tensor(x) for x in inputs]
        ctx: dict = {}
        data = cls.forward(ctx, *[t.data for t in tensors], **kwargs)

        def backward(grad: np.ndarray) -> None:
            grads = cls.backward(ctx, grad)
            if not isinstance(grads, tuple):
                grads = (grads,)
            for tensor, g in zip(tensors, grads):
                if tensor.requires_grad and g is not None:
                    tensor._accumulate(g)

        return Tensor._make(data, tensors, backward)


# ----------------------------------------------------------------------
# Dense / affine
# ----------------------------------------------------------------------
def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine transform ``x @ weight.T + bias``.

    Parameters
    ----------
    x:
        Input of shape ``(batch, in_features)``.
    weight:
        Weight of shape ``(out_features, in_features)``.
    bias:
        Optional bias of shape ``(out_features,)``.
    """

    out = x @ weight.T
    if bias is not None:
        out = out + bias
    return out


# ----------------------------------------------------------------------
# im2col helpers (shared by conv2d and its tests)
# ----------------------------------------------------------------------
def _conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    return (size + 2 * padding - kernel) // stride + 1


def im2col(x: np.ndarray, kernel: Tuple[int, int], stride: int, padding: int) -> np.ndarray:
    """Rearrange image patches into columns.

    Input shape ``(batch, channels, height, width)``; output shape
    ``(batch, out_h, out_w, channels * kh * kw)``.
    """

    batch, channels, height, width = x.shape
    kh, kw = kernel
    out_h = _conv_output_size(height, kh, stride, padding)
    out_w = _conv_output_size(width, kw, stride, padding)
    if padding > 0:
        # Zero-pad via a direct slice write: identical values to np.pad but
        # without its per-call Python overhead (this is a per-layer,
        # per-time-step hot path for the inference engines).
        padded = np.zeros(
            (batch, channels, height + 2 * padding, width + 2 * padding),
            dtype=x.dtype)
        padded[:, :, padding:padding + height, padding:padding + width] = x
        x = padded
    strides = x.strides
    shape = (batch, channels, out_h, out_w, kh, kw)
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=shape,
        strides=(strides[0], strides[1], strides[2] * stride, strides[3] * stride,
                 strides[2], strides[3]),
        writeable=False,
    )
    # (batch, out_h, out_w, channels, kh, kw) -> flatten channel/kernel dims
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(batch, out_h, out_w, channels * kh * kw)
    return np.ascontiguousarray(cols)


def col2im(cols: np.ndarray, input_shape: Tuple[int, int, int, int],
           kernel: Tuple[int, int], stride: int, padding: int) -> np.ndarray:
    """Inverse of :func:`im2col` (scatter-add), used for the conv backward pass."""

    batch, channels, height, width = input_shape
    kh, kw = kernel
    out_h = _conv_output_size(height, kh, stride, padding)
    out_w = _conv_output_size(width, kw, stride, padding)
    padded = np.zeros((batch, channels, height + 2 * padding, width + 2 * padding))
    cols = cols.reshape(batch, out_h, out_w, channels, kh, kw)
    for i in range(kh):
        for j in range(kw):
            padded[:, :, i:i + stride * out_h:stride, j:j + stride * out_w:stride] += (
                cols[:, :, :, :, i, j].transpose(0, 3, 1, 2)
            )
    if padding > 0:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded


class _Conv2dFunction(Function):
    """2D convolution with im2col; gradients for input, weight and bias."""

    @staticmethod
    def forward(ctx: dict, x: np.ndarray, weight: np.ndarray, bias: Optional[np.ndarray] = None,
                *, stride: int = 1, padding: int = 0) -> np.ndarray:
        out_channels, in_channels, kh, kw = weight.shape
        cols = im2col(x, (kh, kw), stride, padding)
        batch, out_h, out_w, _ = cols.shape
        flat_weight = weight.reshape(out_channels, -1)
        out = cols @ flat_weight.T
        if bias is not None:
            out = out + bias
        ctx.update(
            cols=cols, weight=weight, x_shape=x.shape, stride=stride,
            padding=padding, has_bias=bias is not None,
        )
        return out.transpose(0, 3, 1, 2)

    @staticmethod
    def backward(ctx: dict, grad: np.ndarray) -> Tuple[Optional[np.ndarray], ...]:
        cols = ctx["cols"]
        weight = ctx["weight"]
        out_channels = weight.shape[0]
        kh, kw = weight.shape[2], weight.shape[3]
        grad_flat = grad.transpose(0, 2, 3, 1)  # (batch, out_h, out_w, out_channels)
        flat_weight = weight.reshape(out_channels, -1)

        grad_cols = grad_flat @ flat_weight
        grad_x = col2im(grad_cols, ctx["x_shape"], (kh, kw), ctx["stride"], ctx["padding"])

        grad_weight = np.tensordot(grad_flat, cols, axes=([0, 1, 2], [0, 1, 2]))
        grad_weight = grad_weight.reshape(weight.shape)

        grad_bias = grad_flat.sum(axis=(0, 1, 2)) if ctx["has_bias"] else None
        return grad_x, grad_weight, grad_bias


def conv2d(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None,
           stride: int = 1, padding: int = 0) -> Tensor:
    """2D convolution over ``(batch, channels, height, width)`` input."""

    if bias is None:
        return _Conv2dFunction.apply(x, weight, stride=stride, padding=padding)
    return _Conv2dFunction.apply(x, weight, bias, stride=stride, padding=padding)


# ----------------------------------------------------------------------
# Pooling
# ----------------------------------------------------------------------
def avg_pool2d(x: Tensor, kernel_size: int) -> Tensor:
    """Non-overlapping average pooling with square windows.

    Requires the spatial dimensions to be divisible by ``kernel_size`` (the
    model builders in :mod:`repro.snn.models` guarantee this).
    """

    batch, channels, height, width = x.shape
    if height % kernel_size or width % kernel_size:
        raise ValueError(
            f"avg_pool2d requires spatial dims divisible by {kernel_size}, got {height}x{width}"
        )
    out_h, out_w = height // kernel_size, width // kernel_size
    reshaped = x.reshape(batch, channels, out_h, kernel_size, out_w, kernel_size)
    return reshaped.mean(axis=(3, 5))


class _MaxPool2dFunction(Function):
    @staticmethod
    def forward(ctx: dict, x: np.ndarray, *, kernel_size: int) -> np.ndarray:
        batch, channels, height, width = x.shape
        out_h, out_w = height // kernel_size, width // kernel_size
        reshaped = x.reshape(batch, channels, out_h, kernel_size, out_w, kernel_size)
        windows = reshaped.transpose(0, 1, 2, 4, 3, 5).reshape(
            batch, channels, out_h, out_w, kernel_size * kernel_size)
        argmax = windows.argmax(axis=-1)
        ctx.update(x_shape=x.shape, kernel_size=kernel_size, argmax=argmax)
        return windows.max(axis=-1)

    @staticmethod
    def backward(ctx: dict, grad: np.ndarray) -> Tuple[Optional[np.ndarray], ...]:
        batch, channels, height, width = ctx["x_shape"]
        k = ctx["kernel_size"]
        out_h, out_w = height // k, width // k
        argmax = ctx["argmax"]
        grad_windows = np.zeros((batch, channels, out_h, out_w, k * k))
        idx = np.indices(argmax.shape)
        grad_windows[idx[0], idx[1], idx[2], idx[3], argmax] = grad
        grad_x = grad_windows.reshape(batch, channels, out_h, out_w, k, k)
        grad_x = grad_x.transpose(0, 1, 2, 4, 3, 5).reshape(batch, channels, height, width)
        return (grad_x,)


def max_pool2d(x: Tensor, kernel_size: int) -> Tensor:
    """Non-overlapping max pooling with square windows."""

    height, width = x.shape[2], x.shape[3]
    if height % kernel_size or width % kernel_size:
        raise ValueError(
            f"max_pool2d requires spatial dims divisible by {kernel_size}, got {height}x{width}"
        )
    return _MaxPool2dFunction.apply(x, kernel_size=kernel_size)


# ----------------------------------------------------------------------
# Normalisation and regularisation
# ----------------------------------------------------------------------
def batch_norm(x: Tensor, gamma: Tensor, beta: Tensor,
               running_mean: np.ndarray, running_var: np.ndarray,
               training: bool, momentum: float = 0.1, eps: float = 1e-5) -> Tensor:
    """Batch normalisation over the channel dimension of a 2D or 4D tensor.

    ``running_mean`` / ``running_var`` are plain numpy arrays owned by the
    calling layer and are updated in place when ``training`` is true.
    """

    if x.ndim == 4:
        axes = (0, 2, 3)
        view = (1, -1, 1, 1)
    elif x.ndim == 2:
        axes = (0,)
        view = (1, -1)
    else:
        raise ValueError(f"batch_norm expects 2D or 4D input, got {x.ndim}D")

    if training:
        mean = x.mean(axis=axes, keepdims=True)
        var = x.var(axis=axes, keepdims=True)
        running_mean *= (1.0 - momentum)
        running_mean += momentum * mean.data.reshape(-1)
        running_var *= (1.0 - momentum)
        running_var += momentum * var.data.reshape(-1)
    else:
        mean = Tensor(running_mean.reshape(view))
        var = Tensor(running_var.reshape(view))

    inv_std = (var + eps) ** -0.5
    normalised = (x - mean) * inv_std
    return normalised * gamma.reshape(view) + beta.reshape(view)


def dropout(x: Tensor, p: float, training: bool, rng: np.random.Generator) -> Tensor:
    """Inverted dropout: zero activations with probability ``p`` during training."""

    if not training or p <= 0.0:
        return x
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    mask = (rng.random(x.shape) >= p).astype(np.float64) / (1.0 - p)
    return x * Tensor(mask)


# ----------------------------------------------------------------------
# Output heads / losses helpers
# ----------------------------------------------------------------------
def softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Return a ``(batch, num_classes)`` one-hot float array."""

    labels = np.asarray(labels, dtype=np.int64)
    if labels.ndim != 1:
        raise ValueError("labels must be a 1D array of class indices")
    if labels.min(initial=0) < 0 or (labels.size and labels.max() >= num_classes):
        raise ValueError("label out of range for one_hot")
    encoded = np.zeros((labels.shape[0], num_classes), dtype=np.float64)
    encoded[np.arange(labels.shape[0]), labels] = 1.0
    return encoded
