"""Minimal reverse-mode autodiff engine used by the FalVolt reproduction.

Public surface:

* :class:`Tensor` -- numpy-backed tensor with gradient tracking.
* :func:`no_grad` -- context manager disabling graph construction.
* :mod:`repro.autograd.functional` -- NN primitives (linear, conv2d, pooling,
  batch-norm, dropout, softmax) and the :class:`Function` custom-gradient hook.
* :mod:`repro.autograd.gradcheck` -- finite-difference gradient validation.
"""

from .tensor import Tensor, as_tensor, concatenate, is_grad_enabled, no_grad, stack, where
from .functional import (
    Function,
    avg_pool2d,
    batch_norm,
    conv2d,
    dropout,
    im2col,
    col2im,
    linear,
    log_softmax,
    max_pool2d,
    one_hot,
    softmax,
)
from .gradcheck import check_gradients, numerical_gradient

__all__ = [
    "Tensor",
    "as_tensor",
    "concatenate",
    "is_grad_enabled",
    "no_grad",
    "stack",
    "where",
    "Function",
    "avg_pool2d",
    "batch_norm",
    "conv2d",
    "dropout",
    "im2col",
    "col2im",
    "linear",
    "log_softmax",
    "max_pool2d",
    "one_hot",
    "softmax",
    "check_gradients",
    "numerical_gradient",
]
