"""Spiking neural network framework (PLIF/LIF neurons, surrogate-gradient BPTT).

This package is the software substrate the FalVolt paper trains on (PyTorch +
SpikingJelly in the original); here it is built from scratch on the
:mod:`repro.autograd` engine.
"""

from .module import Module, Parameter
from .surrogate import ATan, SigmoidSurrogate, SurrogateGradient, Triangle, get_surrogate
from .neurons import BaseNode, IFNode, LIFNode, PLIFNode, MIN_THRESHOLD, spiking_nodes
from .layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    Linear,
    MaxPool2d,
    Sequential,
)
from .network import SpikingClassifier
from .encoding import ConstantCurrentEncoder, LatencyEncoder, PoissonEncoder, rate_from_spikes
from .loss import accuracy, cross_entropy_loss, get_loss, rate_mse_loss
from .optim import Adam, Optimizer, SGD
from .training import Trainer, TrainingHistory
from .monitor import LayerActivity, SpikeMonitor, activity_drop, measure_firing_rates
from .models import (
    DATASET_CONFIGS,
    ModelConfig,
    build_model_for_dataset,
    build_plif_snn,
    compile_for_inference,
    dvs_gesture_config,
    mnist_config,
    nmnist_config,
)
from .inference import (
    FusedFaultEngine,
    FusedInferenceEngine,
    InferencePlan,
    LoweringError,
    lower_plan,
)

__all__ = [
    "Module",
    "Parameter",
    "ATan",
    "SigmoidSurrogate",
    "SurrogateGradient",
    "Triangle",
    "get_surrogate",
    "BaseNode",
    "IFNode",
    "LIFNode",
    "PLIFNode",
    "MIN_THRESHOLD",
    "spiking_nodes",
    "AvgPool2d",
    "BatchNorm2d",
    "Conv2d",
    "Dropout",
    "Flatten",
    "Linear",
    "MaxPool2d",
    "Sequential",
    "SpikingClassifier",
    "ConstantCurrentEncoder",
    "LatencyEncoder",
    "PoissonEncoder",
    "rate_from_spikes",
    "accuracy",
    "cross_entropy_loss",
    "get_loss",
    "rate_mse_loss",
    "Adam",
    "Optimizer",
    "SGD",
    "Trainer",
    "TrainingHistory",
    "LayerActivity",
    "SpikeMonitor",
    "activity_drop",
    "measure_firing_rates",
    "DATASET_CONFIGS",
    "ModelConfig",
    "build_model_for_dataset",
    "build_plif_snn",
    "compile_for_inference",
    "FusedFaultEngine",
    "FusedInferenceEngine",
    "InferencePlan",
    "LoweringError",
    "lower_plan",
    "dvs_gesture_config",
    "mnist_config",
    "nmnist_config",
]
