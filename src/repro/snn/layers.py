"""Non-spiking layers used inside the PLIF-SNN architectures.

These wrap the primitives from :mod:`repro.autograd.functional` in stateful
:class:`~repro.snn.module.Module` objects with named parameters, so the
mitigation code can address weights by layer name when mapping them onto the
systolic array.
"""

from __future__ import annotations

import math

import numpy as np

from ..autograd import Tensor
from ..autograd import functional as F
from ..utils.rng import get_rng
from .module import Module, Parameter


class Linear(Module):
    """Fully connected layer ``y = x W^T + b``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng=None, init_gain: float = 1.0) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("in_features and out_features must be positive")
        if init_gain <= 0:
            raise ValueError("init_gain must be positive")
        rng = get_rng(rng)
        self.in_features = in_features
        self.out_features = out_features
        # ``init_gain`` compensates for sparse binary-spike inputs: a layer fed
        # by spikes firing at rate r sees an input variance of roughly r, so a
        # gain of ~1/sqrt(r) restores a unit-variance membrane drive.
        scale = init_gain * math.sqrt(2.0 / in_features)
        self.weight = Parameter(rng.normal(0.0, scale, size=(out_features, in_features)))
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)

    def lower_inference(self, builder) -> None:
        builder.add_affine("linear", self.weight.data,
                           None if self.bias is None else self.bias.data)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Linear({self.in_features}, {self.out_features})"


class Conv2d(Module):
    """2D convolution with square kernels."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: int = 0, bias: bool = True, rng=None) -> None:
        super().__init__()
        if kernel_size <= 0:
            raise ValueError("kernel_size must be positive")
        rng = get_rng(rng)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        fan_in = in_channels * kernel_size * kernel_size
        scale = math.sqrt(2.0 / fan_in)
        self.weight = Parameter(
            rng.normal(0.0, scale, size=(out_channels, in_channels, kernel_size, kernel_size)))
        self.bias = Parameter(np.zeros(out_channels)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, self.bias, stride=self.stride, padding=self.padding)

    def lower_inference(self, builder) -> None:
        builder.add_affine("conv", self.weight.data,
                           None if self.bias is None else self.bias.data,
                           stride=self.stride, padding=self.padding)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Conv2d({self.in_channels}, {self.out_channels}, "
                f"k={self.kernel_size}, s={self.stride}, p={self.padding})")


class BatchNorm2d(Module):
    """Batch normalisation over the channel dimension of a 4D tensor."""

    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5) -> None:
        super().__init__()
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.gamma = Parameter(np.ones(num_features))
        self.beta = Parameter(np.zeros(num_features))
        self.register_buffer("running_mean", np.zeros(num_features))
        self.register_buffer("running_var", np.ones(num_features))

    def forward(self, x: Tensor) -> Tensor:
        return F.batch_norm(x, self.gamma, self.beta, self.running_mean, self.running_var,
                            training=self.training, momentum=self.momentum, eps=self.eps)

    def lower_inference(self, builder) -> None:
        builder.add_batch_norm(self.gamma.data, self.beta.data,
                               self.running_mean, self.running_var, self.eps)


class AvgPool2d(Module):
    """Non-overlapping average pooling."""

    def __init__(self, kernel_size: int = 2) -> None:
        super().__init__()
        self.kernel_size = kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel_size)

    def lower_inference(self, builder) -> None:
        builder.add_pool("avg", self.kernel_size)


class MaxPool2d(Module):
    """Non-overlapping max pooling."""

    def __init__(self, kernel_size: int = 2) -> None:
        super().__init__()
        self.kernel_size = kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel_size)

    def lower_inference(self, builder) -> None:
        builder.add_pool("max", self.kernel_size)


class Dropout(Module):
    """Inverted dropout; active only in training mode."""

    def __init__(self, p: float = 0.5, rng=None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout probability must be in [0, 1)")
        self.p = p
        self._rng = get_rng(rng)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, training=self.training, rng=self._rng)

    def lower_inference(self, builder) -> None:
        builder.add_identity()  # inverted dropout is the identity in eval mode


class Flatten(Module):
    """Flatten all dimensions except the batch dimension."""

    def forward(self, x: Tensor) -> Tensor:
        return x.flatten_batch()

    def lower_inference(self, builder) -> None:
        builder.add_flatten()


class Sequential(Module):
    """Ordered container executing children in registration order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._order: list[str] = []
        for index, module in enumerate(modules):
            name = f"layer{index}"
            setattr(self, name, module)
            self._order.append(name)

    def append(self, module: Module) -> "Sequential":
        name = f"layer{len(self._order)}"
        setattr(self, name, module)
        self._order.append(name)
        return self

    def __iter__(self):
        return (getattr(self, name) for name in self._order)

    def __len__(self) -> int:
        return len(self._order)

    def __getitem__(self, index: int) -> Module:
        return getattr(self, self._order[index])

    def forward(self, x: Tensor) -> Tensor:
        for name in self._order:
            x = getattr(self, name)(x)
        return x

    def lower_inference(self, builder) -> None:
        for module in self:
            builder.lower(module)
