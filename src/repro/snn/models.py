"""PLIF-SNN architecture builders following the paper's network descriptions.

For MNIST and N-MNIST the classifier is (Section V-A): a spike-encoding
convolutional block, two repetitions of {convolution, batch normalisation,
spiking neurons, pooling}, and two repetitions of {dropout, fully connected,
spiking neurons}.  For DVS128 Gesture the convolutional block is repeated
five times.  Channel counts and input resolution are scaled down so the
networks train in seconds on a CPU with the numpy backend; the structure and
the layer labels used in Fig. 6 (Conv1..ConvN, FC1, FC2) are preserved.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Optional, Tuple

from ..utils.rng import derive_seed, get_rng
from .layers import AvgPool2d, BatchNorm2d, Conv2d, Dropout, Flatten, Linear, Sequential
from .neurons import PLIFNode
from .network import SpikingClassifier
from .surrogate import SurrogateGradient, Triangle


@dataclasses.dataclass(frozen=True)
class ModelConfig:
    """Hyper-parameters for a PLIF-SNN classifier.

    The defaults are the scaled-down configuration used throughout the
    reproduction; ``channels`` / ``hidden_units`` / ``time_steps`` can be
    increased to approach the paper's full-size networks.
    """

    input_channels: int = 1
    input_size: int = 16
    num_classes: int = 10
    channels: int = 8
    hidden_units: int = 48
    conv_blocks: int = 2
    time_steps: int = 4
    dropout: float = 0.2
    init_threshold: float = 1.0
    # The PLIF paper initialises tau at 2.0, but that is tuned for long spike
    # trains (T >= 8).  At the scaled-down T=3..6 used here, a 0.5 leak factor
    # starves the membrane before it can reach threshold, leaving the deeper
    # layers silent at initialisation -- and the triangular surrogate (compact
    # support) then provides almost no gradient, so training stalls for the
    # first several epochs.  A gentler initial leak keeps every layer spiking
    # from the first step; tau remains learnable, so training is free to move
    # it afterwards.
    init_tau: float = 1.2
    learnable_threshold: bool = False
    seed: int = 0


def _plif(config: ModelConfig, surrogate: SurrogateGradient, label: Optional[str]) -> PLIFNode:
    return PLIFNode(
        init_tau=config.init_tau,
        v_threshold=config.init_threshold,
        surrogate=surrogate,
        learnable_threshold=config.learnable_threshold,
        layer_label=label,
    )


def build_plif_snn(config: ModelConfig,
                   surrogate: Optional[SurrogateGradient] = None) -> SpikingClassifier:
    """Build a PLIF-SNN classifier from a :class:`ModelConfig`.

    The layer stack is::

        [encoder conv + PLIF]
        conv_blocks x [conv + batch-norm + PLIF(ConvK) + (pool)]
        flatten
        [dropout + fc + PLIF(FC1)]
        [dropout + fc + PLIF(FC2)]

    Pooling halves the spatial size after each of the first blocks while the
    spatial size stays >= 2; later blocks keep the resolution, which is how a
    five-block DVS-Gesture network fits a 16x16 input.
    """

    surrogate = surrogate or Triangle()
    rng = get_rng(derive_seed(config.seed, "model"))
    layers = Sequential()

    # Spike-encoding block (Lee et al. 2020): learns the input spike code.
    # Batch normalisation keeps the membrane drive near unit variance so the
    # network spikes at initialisation (otherwise the triangular surrogate has
    # no support and training stalls).
    layers.append(Conv2d(config.input_channels, config.channels, kernel_size=3,
                         padding=1, rng=rng))
    layers.append(BatchNorm2d(config.channels))
    layers.append(_plif(config, surrogate, label=None))

    spatial = config.input_size
    for block in range(config.conv_blocks):
        layers.append(Conv2d(config.channels, config.channels, kernel_size=3,
                             padding=1, rng=rng))
        layers.append(BatchNorm2d(config.channels))
        layers.append(_plif(config, surrogate, label=f"Conv{block + 1}"))
        if spatial >= 4:
            layers.append(AvgPool2d(2))
            spatial //= 2

    layers.append(Flatten())
    flat_features = config.channels * spatial * spatial

    # The fully connected layers are fed by sparse spike trains and have no
    # batch normalisation (matching the paper's architecture), so their init
    # gain is raised to keep the membrane drive near the firing threshold.
    layers.append(Dropout(config.dropout, rng=rng))
    layers.append(Linear(flat_features, config.hidden_units, rng=rng, init_gain=1.5))
    layers.append(_plif(config, surrogate, label="FC1"))

    layers.append(Dropout(config.dropout, rng=rng))
    layers.append(Linear(config.hidden_units, config.num_classes, rng=rng, init_gain=1.5))
    layers.append(_plif(config, surrogate, label="FC2"))

    return SpikingClassifier(layers, time_steps=config.time_steps)


# ----------------------------------------------------------------------
# Per-dataset configurations (scaled-down counterparts of the paper's nets)
# ----------------------------------------------------------------------
def mnist_config(**overrides) -> ModelConfig:
    """Configuration for the (synthetic) MNIST classifier: 2 conv blocks."""

    defaults = dict(input_channels=1, input_size=16, num_classes=10,
                    conv_blocks=2, time_steps=4)
    defaults.update(overrides)
    return ModelConfig(**defaults)


def nmnist_config(**overrides) -> ModelConfig:
    """Configuration for the (synthetic) N-MNIST classifier: 2 conv blocks, 2-polarity input."""

    defaults = dict(input_channels=2, input_size=16, num_classes=10,
                    conv_blocks=2, time_steps=4)
    defaults.update(overrides)
    return ModelConfig(**defaults)


def dvs_gesture_config(**overrides) -> ModelConfig:
    """Configuration for the (synthetic) DVS128 Gesture classifier: 5 conv blocks, 11 classes."""

    defaults = dict(input_channels=2, input_size=16, num_classes=11,
                    conv_blocks=5, time_steps=6)
    defaults.update(overrides)
    return ModelConfig(**defaults)


DATASET_CONFIGS: Dict[str, Callable[..., ModelConfig]] = {
    "mnist": mnist_config,
    "nmnist": nmnist_config,
    "dvs_gesture": dvs_gesture_config,
}


def build_model_for_dataset(dataset: str, surrogate: Optional[SurrogateGradient] = None,
                            **overrides) -> Tuple[SpikingClassifier, ModelConfig]:
    """Build the paper's classifier for ``dataset`` (scaled down); returns (model, config)."""

    key = dataset.lower()
    if key not in DATASET_CONFIGS:
        raise KeyError(f"unknown dataset '{dataset}'; options: {sorted(DATASET_CONFIGS)}")
    config = DATASET_CONFIGS[key](**overrides)
    return build_plif_snn(config, surrogate=surrogate), config


def compile_for_inference(model: SpikingClassifier, dtype: str = "float64"):
    """Lower a built classifier into a fused no-autograd inference engine.

    Every layer the builders above emit (Conv2d / BatchNorm2d / PLIF /
    pooling / dropout / Linear) has a ``lower_inference`` hook, so any model
    from this module lowers cleanly.  ``dtype="float64"`` evaluates
    bit-identically to ``model(x)``; ``dtype="float32"`` is the fast mode
    with a documented tolerance (see the README).
    """

    return model.compile_inference(dtype=dtype)
