"""Training loop utilities (used for both baseline training and fault-aware retraining).

The :class:`Trainer` is deliberately small: it iterates a
:class:`~repro.datasets.base.DataLoader`, performs surrogate-gradient BPTT
updates, tracks per-epoch train/test accuracy and supports *callbacks* -- the
hook FalVolt and FaPIT use to re-zero pruned weights at the end of every
retraining epoch (Algorithm 1, line 13).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..autograd import Tensor, no_grad
from ..utils.logging import get_logger
from .loss import accuracy, rate_mse_loss
from .network import SpikingClassifier
from .optim import Optimizer

logger = get_logger("training")

#: Callback signature: ``callback(model, epoch, logs_dict)`` invoked after
#: every epoch (after the optimizer steps of that epoch).
EpochCallback = Callable[[SpikingClassifier, int, dict], None]


@dataclasses.dataclass
class TrainingHistory:
    """Per-epoch record of losses and accuracies produced by :class:`Trainer.fit`."""

    train_loss: List[float] = dataclasses.field(default_factory=list)
    train_accuracy: List[float] = dataclasses.field(default_factory=list)
    test_accuracy: List[float] = dataclasses.field(default_factory=list)

    @property
    def epochs(self) -> int:
        return len(self.train_loss)

    def best_test_accuracy(self) -> float:
        return max(self.test_accuracy) if self.test_accuracy else 0.0

    def epochs_to_reach(self, target_accuracy: float) -> Optional[int]:
        """First epoch (1-based) whose test accuracy reaches ``target_accuracy``.

        Returns ``None`` when the target is never reached -- used for the
        paper's "2x fewer retraining epochs" claim (Fig. 8).
        """

        for index, value in enumerate(self.test_accuracy):
            if value >= target_accuracy:
                return index + 1
        return None

    def as_dict(self) -> dict:
        return {
            "train_loss": list(self.train_loss),
            "train_accuracy": list(self.train_accuracy),
            "test_accuracy": list(self.test_accuracy),
        }


class Trainer:
    """Mini-batch surrogate-gradient trainer for :class:`SpikingClassifier`."""

    def __init__(self, model: SpikingClassifier, optimizer: Optimizer,
                 num_classes: int,
                 loss_fn: Callable = rate_mse_loss) -> None:
        self.model = model
        self.optimizer = optimizer
        self.num_classes = num_classes
        self.loss_fn = loss_fn

    # ------------------------------------------------------------------
    # Single steps
    # ------------------------------------------------------------------
    def train_step(self, inputs: np.ndarray, labels: np.ndarray) -> tuple:
        """One optimizer update; returns (loss value, batch accuracy)."""

        self.model.train()
        self.optimizer.zero_grad()
        rates = self.model(Tensor(inputs))
        loss = self.loss_fn(rates, labels, self.num_classes)
        loss.backward()
        self.optimizer.step()
        return float(loss.item()), accuracy(rates, labels)

    def evaluate(self, loader) -> float:
        """Classification accuracy over a data loader (inference mode)."""

        self.model.eval()
        correct = 0
        total = 0
        with no_grad():
            for inputs, labels in loader:
                rates = self.model(Tensor(inputs))
                predictions = np.argmax(rates.data, axis=1)
                correct += int(np.sum(predictions == labels))
                total += labels.shape[0]
        self.model.train()
        return correct / total if total else 0.0

    # ------------------------------------------------------------------
    # Full loop
    # ------------------------------------------------------------------
    def fit(self, train_loader, epochs: int, test_loader=None,
            callbacks: Optional[Sequence[EpochCallback]] = None,
            verbose: bool = False) -> TrainingHistory:
        """Train for ``epochs`` epochs and return the :class:`TrainingHistory`."""

        if epochs < 0:
            raise ValueError("epochs must be non-negative")
        callbacks = list(callbacks or [])
        history = TrainingHistory()
        for epoch in range(epochs):
            epoch_losses: List[float] = []
            epoch_accs: List[float] = []
            for inputs, labels in train_loader:
                loss_value, batch_acc = self.train_step(inputs, labels)
                epoch_losses.append(loss_value)
                epoch_accs.append(batch_acc)
            logs = {
                "epoch": epoch,
                "train_loss": float(np.mean(epoch_losses)) if epoch_losses else 0.0,
                "train_accuracy": float(np.mean(epoch_accs)) if epoch_accs else 0.0,
            }
            for callback in callbacks:
                callback(self.model, epoch, logs)
            if test_loader is not None:
                logs["test_accuracy"] = self.evaluate(test_loader)
            history.train_loss.append(logs["train_loss"])
            history.train_accuracy.append(logs["train_accuracy"])
            if "test_accuracy" in logs:
                history.test_accuracy.append(logs["test_accuracy"])
            if verbose:
                logger.info(
                    "epoch %d: loss=%.4f train_acc=%.3f test_acc=%s", epoch,
                    logs["train_loss"], logs["train_accuracy"],
                    f"{logs.get('test_accuracy', float('nan')):.3f}")
        return history
