"""Spike encoders converting dense inputs into spike trains.

The paper's networks use *direct* encoding: the static image (or event frame)
is fed to a first convolutional layer followed by spiking neurons, which
learns the spike encoding (Lee et al., Frontiers 2020).  A Poisson (rate)
encoder and a latency encoder are provided for completeness and for the
ablation benchmarks.
"""

from __future__ import annotations

import numpy as np

from ..utils.rng import get_rng


class ConstantCurrentEncoder:
    """Repeat a static input at every time step (direct coding).

    Output shape: ``(time_steps, batch, C, H, W)``.
    """

    def __init__(self, time_steps: int) -> None:
        if time_steps <= 0:
            raise ValueError("time_steps must be positive")
        self.time_steps = time_steps

    def __call__(self, images: np.ndarray) -> np.ndarray:
        images = np.asarray(images, dtype=np.float64)
        return np.broadcast_to(images, (self.time_steps, *images.shape)).copy()


class PoissonEncoder:
    """Bernoulli rate coding: pixel intensity is the per-step firing probability."""

    def __init__(self, time_steps: int, rng=None) -> None:
        if time_steps <= 0:
            raise ValueError("time_steps must be positive")
        self.time_steps = time_steps
        self._rng = get_rng(rng)

    def __call__(self, images: np.ndarray) -> np.ndarray:
        images = np.clip(np.asarray(images, dtype=np.float64), 0.0, 1.0)
        draws = self._rng.random((self.time_steps, *images.shape))
        return (draws < images).astype(np.float64)


class LatencyEncoder:
    """Time-to-first-spike coding: brighter pixels spike earlier, exactly once."""

    def __init__(self, time_steps: int) -> None:
        if time_steps <= 1:
            raise ValueError("latency coding needs at least 2 time steps")
        self.time_steps = time_steps

    def __call__(self, images: np.ndarray) -> np.ndarray:
        images = np.clip(np.asarray(images, dtype=np.float64), 0.0, 1.0)
        # Map intensity 1.0 -> step 0, intensity ~0 -> last step.
        spike_time = np.round((1.0 - images) * (self.time_steps - 1)).astype(np.int64)
        out = np.zeros((self.time_steps, *images.shape), dtype=np.float64)
        for t in range(self.time_steps):
            out[t] = (spike_time == t) & (images > 0)
        return out


def rate_from_spikes(spikes: np.ndarray) -> np.ndarray:
    """Average a spike train of shape ``(T, ...)`` over time."""

    spikes = np.asarray(spikes, dtype=np.float64)
    if spikes.ndim < 1:
        raise ValueError("spike train must have a leading time dimension")
    return spikes.mean(axis=0)
