"""Module / Parameter abstractions for the SNN framework.

A :class:`Module` owns named parameters (learnable tensors), named buffers
(non-learnable numpy arrays such as batch-norm running statistics) and child
modules, mirroring the familiar torch.nn API at a much smaller scale.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

import numpy as np

from ..autograd import Tensor


class Parameter(Tensor):
    """A tensor that is registered as a learnable parameter of a module."""

    def __init__(self, data, name: Optional[str] = None) -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all network components.

    Subclasses implement :meth:`forward`; calling the module invokes it.
    Attribute assignment automatically registers :class:`Parameter` and
    :class:`Module` instances so that :meth:`parameters`, :meth:`state_dict`
    and :meth:`reset_state` traverse the whole tree.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "_buffers", OrderedDict())
        object.__setattr__(self, "training", True)

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register a non-learnable array that belongs to the module state."""

        array = np.asarray(value, dtype=np.float64)
        self._buffers[name] = array
        object.__setattr__(self, name, array)

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def modules(self) -> Iterator["Module"]:
        """Yield this module and all descendants (depth-first)."""

        yield self
        for child in self._modules.values():
            yield from child.modules()

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for child_name, child in self._modules.items():
            yield from child.named_parameters(prefix=f"{prefix}{child_name}.")

    def parameters(self) -> List[Parameter]:
        return [param for _, param in self.named_parameters()]

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        for name, buffer in self._buffers.items():
            yield (f"{prefix}{name}", buffer)
        for child_name, child in self._modules.items():
            yield from child.named_buffers(prefix=f"{prefix}{child_name}.")

    # ------------------------------------------------------------------
    # Modes and state
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        for module in self.modules():
            object.__setattr__(module, "training", mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def reset_state(self) -> None:
        """Reset any temporal state (membrane potentials) in the subtree."""

        for module in self.modules():
            if module is not self and hasattr(module, "reset_state"):
                # Only call overridden implementations to avoid infinite recursion.
                if type(module).reset_state is not Module.reset_state:
                    module.reset_state()

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Return a flat mapping of parameter/buffer name to a copied array."""

        state: Dict[str, np.ndarray] = {}
        for name, param in self.named_parameters():
            state[name] = param.data.copy()
        for name, buffer in self.named_buffers():
            state[f"buffer.{name}"] = np.asarray(buffer).copy()
        return state

    def load_state_dict(self, state: Mapping[str, np.ndarray]) -> None:
        """Load parameters and buffers saved by :meth:`state_dict` (in place)."""

        params = dict(self.named_parameters())
        buffer_owners: Dict[str, Tuple[Module, str]] = {}

        def collect(module: "Module", prefix: str) -> None:
            for buf_name in module._buffers:
                buffer_owners[f"{prefix}{buf_name}"] = (module, buf_name)
            for child_name, child in module._modules.items():
                collect(child, f"{prefix}{child_name}.")

        collect(self, "")

        for name, value in state.items():
            if name.startswith("buffer."):
                key = name[len("buffer."):]
                if key not in buffer_owners:
                    raise KeyError(f"unknown buffer '{key}' in state dict")
                owner, buf_name = buffer_owners[key]
                owner._buffers[buf_name][...] = value
            else:
                if name not in params:
                    raise KeyError(f"unknown parameter '{name}' in state dict")
                if params[name].data.shape != np.asarray(value).shape:
                    raise ValueError(
                        f"shape mismatch for '{name}': "
                        f"{params[name].data.shape} vs {np.asarray(value).shape}"
                    )
                params[name].data[...] = value

    # ------------------------------------------------------------------
    # Fused inference lowering
    # ------------------------------------------------------------------
    def lower_inference(self, builder) -> None:
        """Append this module's fused-inference op spec(s) to ``builder``.

        Supported layer types override this to describe themselves to the
        :class:`repro.snn.inference.plan.PlanBuilder`; containers forward
        the call to their children.  The default raises, which the builder
        reports as a :class:`~repro.snn.inference.plan.LoweringError`.
        """

        raise NotImplementedError(
            f"{type(self).__name__} does not implement fused inference lowering")

    # ------------------------------------------------------------------
    # Forward
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        children = ", ".join(self._modules.keys())
        return f"{type(self).__name__}({children})"
