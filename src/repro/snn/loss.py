"""Loss functions and accuracy metrics for rate-coded SNN outputs.

The paper's loss is "the cross entropy loss function defined by the mean
square error" -- the standard SpikingJelly practice of regressing output
firing rates onto the one-hot label vector with MSE.  A conventional
cross-entropy on firing rates is also provided for the ablation study.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor, log_softmax, one_hot


def rate_mse_loss(rates: Tensor, labels: np.ndarray, num_classes: int) -> Tensor:
    """Mean squared error between output firing rates and one-hot labels."""

    target = Tensor(one_hot(labels, num_classes))
    diff = rates - target
    return (diff * diff).mean()


def cross_entropy_loss(rates: Tensor, labels: np.ndarray, num_classes: int) -> Tensor:
    """Cross entropy of softmax(firing rates) against integer labels."""

    labels = np.asarray(labels, dtype=np.int64)
    log_probs = log_softmax(rates, axis=1)
    picked = log_probs[np.arange(labels.shape[0]), labels]
    return -picked.mean()


def accuracy(rates, labels: np.ndarray) -> float:
    """Classification accuracy of the arg-max prediction, in [0, 1]."""

    data = rates.data if isinstance(rates, Tensor) else np.asarray(rates)
    labels = np.asarray(labels, dtype=np.int64)
    if data.shape[0] != labels.shape[0]:
        raise ValueError("rates and labels must have matching batch size")
    if labels.size == 0:
        return 0.0
    predictions = np.argmax(data, axis=1)
    return float(np.mean(predictions == labels))


LOSSES = {
    "rate_mse": rate_mse_loss,
    "cross_entropy": cross_entropy_loss,
}


def get_loss(name: str):
    """Look up a loss function by name (``rate_mse`` or ``cross_entropy``)."""

    key = name.lower()
    if key not in LOSSES:
        raise KeyError(f"unknown loss '{name}'; options: {sorted(LOSSES)}")
    return LOSSES[key]
