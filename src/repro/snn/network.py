"""Temporal wrapper that runs a layer stack over multiple time steps.

A :class:`SpikingClassifier` owns a :class:`~repro.snn.layers.Sequential`
stack of (conv / batch-norm / spiking-neuron / pool / dropout / fc) layers
and executes it for ``T`` time steps, accumulating output spikes.  The firing
rate of the output layer (spike count divided by ``T``) is the network's
prediction vector, as in the PLIF paper and the FalVolt experimental setup.

Static inputs of shape ``(batch, C, H, W)`` are presented identically at
every time step (direct / constant-current coding, with the first
convolutional block acting as a learned spike encoder).  Event-based inputs
of shape ``(T, batch, C, H, W)`` are consumed frame by frame.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..autograd import Tensor
from .layers import Sequential
from .module import Module
from .neurons import BaseNode, spiking_nodes


class SpikingClassifier(Module):
    """Run a layer stack over time and return class firing rates.

    Parameters
    ----------
    layers:
        The layer stack (including spiking neuron layers).
    time_steps:
        Number of simulation time steps ``T`` used for static inputs.  Event
        inputs provide their own leading time dimension, which takes
        precedence.
    """

    def __init__(self, layers: Sequential, time_steps: int = 4) -> None:
        super().__init__()
        if time_steps <= 0:
            raise ValueError("time_steps must be positive")
        self.layers = layers
        self.time_steps = time_steps

    # ------------------------------------------------------------------
    # Introspection helpers used by the mitigation code
    # ------------------------------------------------------------------
    def spiking_layers(self) -> List[BaseNode]:
        """All spiking neuron layers, in forward order."""

        return spiking_nodes(self.layers)

    def labelled_spiking_layers(self) -> List[BaseNode]:
        """Spiking layers with a ``layer_label`` (the hidden layers of Fig. 6)."""

        return [node for node in self.spiking_layers() if node.layer_label]

    def threshold_summary(self) -> dict:
        """Mapping of layer label -> current threshold voltage."""

        return {node.layer_label: node.v_threshold for node in self.labelled_spiking_layers()}

    # ------------------------------------------------------------------
    # Fused inference lowering
    # ------------------------------------------------------------------
    def lower_inference(self, builder) -> None:
        builder.lower(self.layers)

    def compile_inference(self, dtype: str = "float64"):
        """Lower this classifier into a fused no-autograd inference engine.

        The returned :class:`~repro.snn.inference.FusedInferenceEngine`
        evaluates with preallocated buffers and no graph construction;
        ``dtype="float64"`` is bit-identical to :meth:`forward` in eval
        mode.  Weights are captured by reference -- recompile after loading
        a new state dict.
        """

        from .inference import FusedInferenceEngine

        return FusedInferenceEngine(self, dtype=dtype)

    # ------------------------------------------------------------------
    # Forward
    # ------------------------------------------------------------------
    def _iter_frames(self, x: Tensor):
        # 5D = (T, batch, C, H, W) event frames; 4D = (batch, C, H, W) static
        # images repeated each step; 3D = (T, batch, features) temporal vectors;
        # 2D = (batch, features) static vectors (useful for toy FC-only nets).
        if x.ndim in (5, 3):
            for t in range(x.shape[0]):
                yield x[t]
        elif x.ndim in (4, 2):
            for _ in range(self.time_steps):
                yield x
        else:
            raise ValueError(
                "expected a 2D/4D static input or a 3D/5D time-major input, "
                f"got shape {x.shape}")

    def forward(self, x: Tensor) -> Tensor:
        """Return output firing rates of shape ``(batch, num_classes)``."""

        self.reset_state()
        accumulated: Optional[Tensor] = None
        steps = 0
        for frame in self._iter_frames(x):
            out = self.layers(frame)
            accumulated = out if accumulated is None else accumulated + out
            steps += 1
        return accumulated * (1.0 / steps)

    def predict(self, x) -> np.ndarray:
        """Return predicted class indices for a batch (no gradient tracking)."""

        from ..autograd import no_grad

        if not isinstance(x, Tensor):
            x = Tensor(x)
        was_training = self.training
        self.eval()
        try:
            with no_grad():
                rates = self.forward(x)
        finally:
            self.train(was_training)
        return np.argmax(rates.data, axis=1)
