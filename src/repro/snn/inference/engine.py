"""Fused no-autograd inference engines over a lowered plan.

Two engines execute an :class:`~repro.snn.inference.plan.InferencePlan`:

* :class:`FusedInferenceEngine` -- fault-free evaluation.  In ``float64``
  it is bit-identical to ``model(x)`` in eval mode under ``no_grad`` (same
  numpy operations, same order, same shapes); ``float32`` trades
  bit-identity for roughly half the memory traffic on the memory-bound
  elementwise neuron updates.

* :class:`FusedFaultEngine` -- evaluation under ``F`` systolic-array fault
  maps in one pass, with **clean-prefix sharing**: faults only corrupt
  specific affine layers' GEMMs (a map is corrupted by a layer only when
  one of its faulty PE columns actually holds output features of that
  layer, or a bypassed PE zeroes one of its weights), so each fault map's
  execution is bit-identical to the clean one up to the first affine layer
  its faults touch.  The engine runs a single shared *clean lane* plus a
  growing *fork lane*: a map is forked out of the clean lane exactly at its
  first corrupted layer, and all forked maps advance together with their
  fault-map axis folded into the batch axis.  Corrupted GEMMs are delegated
  to :class:`~repro.systolic.array.BatchedSystolicArray`, whose per-map
  arithmetic is bit-identical to the sequential oracle, so float64 results
  match the autograd fault-injection paths bit for bit.

Both engines additionally cache the *static prefix* (the stateless ops
before the first spiking layer) per batch: for static inputs those
activations are identical at every time step, so e.g. the spike-encoder
convolution runs once instead of ``T`` times.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ...systolic.array import BatchedSystolicArray, SystolicArray
from ...systolic.mapping import faulty_weight_mask
from .faulty_gemm import FaultyAffineRunner
from .kernels import NeuronKernel, make_kernel
from .plan import SUPPORTED_DTYPES, AffineSpec, InferencePlan, lower_plan

__all__ = ["FusedInferenceEngine", "FusedFaultEngine"]


def _check_dtype(dtype) -> np.dtype:
    resolved = np.dtype(dtype)
    if resolved.name not in SUPPORTED_DTYPES:
        raise ValueError(
            f"unsupported inference dtype '{dtype}'; options: {SUPPORTED_DTYPES}")
    return resolved


def _iter_frames(x: np.ndarray, time_steps: int):
    """Frame iteration with the semantics of ``SpikingClassifier._iter_frames``."""

    if x.ndim in (5, 3):
        for t in range(x.shape[0]):
            yield x[t]
    elif x.ndim in (4, 2):
        for _ in range(time_steps):
            yield x
    else:
        raise ValueError(
            "expected a 2D/4D static input or a 3D/5D time-major input, "
            f"got shape {x.shape}")


class FusedInferenceEngine:
    """Fault-free fused evaluation of a lowered spiking classifier.

    Parameters
    ----------
    model:
        A trained :class:`~repro.snn.network.SpikingClassifier` (anything
        with a ``lower_inference`` hook and ``time_steps``).  Weights are
        captured by reference at construction; rebuild the engine after
        loading new parameters.
    dtype:
        ``"float64"`` (bit-identical to the autograd forward) or
        ``"float32"`` (documented-tolerance fast mode).
    plan_cache:
        Optional :class:`~repro.snn.inference.plan_cache.PlanCache`: the
        lowered plan is fetched from (and stored into) the cache instead
        of re-lowering, keyed by the model's content token.
    plan_token:
        Optional precomputed model token, skipping the state hashing on a
        cache lookup (ignored without ``plan_cache``).
    """

    def __init__(self, model, dtype: str = "float64", plan_cache=None,
                 plan_token: Optional[str] = None) -> None:
        self.plan: InferencePlan = (
            plan_cache.get_plan(model, token=plan_token)
            if plan_cache is not None else lower_plan(model))
        self.dtype = _check_dtype(dtype)
        self._kernels = [make_kernel(op, self.dtype, affine_mode="software")
                         for op in self.plan.ops]
        self._prefix = self.plan.static_prefix

    def _reset_state(self) -> None:
        for kernel in self._kernels:
            if isinstance(kernel, NeuronKernel):
                kernel.reset()

    def run(self, inputs) -> np.ndarray:
        """Output firing rates of shape ``(batch, num_classes)``."""

        x0 = np.asarray(inputs, dtype=self.dtype)
        static = x0.ndim in (4, 2)
        self._reset_state()
        acc: Optional[np.ndarray] = None
        prefix_out: Optional[np.ndarray] = None
        steps = 0
        for frame in _iter_frames(x0, self.plan.time_steps):
            if static and prefix_out is not None:
                x = prefix_out
            else:
                x = frame
                for kernel in self._kernels[:self._prefix]:
                    x = kernel.run(x)
                if static:
                    prefix_out = x
            for kernel in self._kernels[self._prefix:]:
                x = kernel.run(x)
            if acc is None:
                acc = x.astype(self.dtype, copy=True)
            else:
                np.add(acc, x, out=acc)
            steps += 1
        np.multiply(acc, 1.0 / steps, out=acc)
        return acc

    def predict(self, inputs) -> np.ndarray:
        """Predicted class indices for a batch."""

        return np.argmax(self.run(inputs), axis=1)

    def evaluate(self, loader) -> float:
        """Classification accuracy over all batches of ``loader``."""

        correct = 0
        total = 0
        for inputs, labels in loader:
            predictions = np.argmax(self.run(inputs), axis=1)
            correct += int(np.sum(predictions == labels))
            total += labels.shape[0]
        return correct / total if total else 0.0


class _AffineExec:
    """Precomputed per-affine-layer execution state of the fault engine."""

    __slots__ = ("spec", "runner", "num_prev", "num_active", "clean_out_needed")

    def __init__(self, spec, runner, num_prev, num_active,
                 clean_out_needed) -> None:
        self.spec = spec
        self.runner = runner
        self.num_prev = num_prev
        self.num_active = num_active
        self.clean_out_needed = clean_out_needed


class FusedFaultEngine:
    """Fused evaluation under ``F`` fault maps with clean-prefix sharing.

    Parameters
    ----------
    model:
        Trained spiking classifier (lowered at construction).
    arrays:
        One (possibly faulty, possibly bypassed) :class:`SystolicArray` per
        fault map.  All must share grid dimensions and accumulator format.
        Fault/bypass state is snapshotted when the engine is built.
    dtype:
        ``"float64"`` reproduces the autograd fault-injection paths bit for
        bit; ``"float32"`` keeps the (fixed-point) fault arithmetic in
        float64 inside the array simulator but runs all elementwise SNN
        state in single precision.
    plan_cache:
        Optional :class:`~repro.snn.inference.plan_cache.PlanCache`; see
        :class:`FusedInferenceEngine`.
    plan_token:
        Optional precomputed model token for the cache lookup.
    """

    def __init__(self, model, arrays: Sequence[SystolicArray],
                 dtype: str = "float64", plan_cache=None,
                 plan_token: Optional[str] = None) -> None:
        arrays = list(arrays)
        if not arrays:
            raise ValueError("FusedFaultEngine needs at least one array")
        self.plan: InferencePlan = (
            plan_cache.get_plan(model, token=plan_token)
            if plan_cache is not None else lower_plan(model))
        self.dtype = _check_dtype(dtype)
        self.num_maps = len(arrays)
        affine_specs = self.plan.affine_specs

        # First affine ordinal whose GEMM each map's faults corrupt.  Each
        # map is probed through a single-map BatchedSystolicArray so the
        # chain-population rule is the simulator's own, not a re-derivation.
        self._divergence: List[Optional[int]] = [
            self._first_affected(array, BatchedSystolicArray([array]),
                                 affine_specs)
            for array in arrays]
        #: Forked maps in fork-lane order (divergence layer, then map index).
        self.fork_order: List[int] = sorted(
            (f for f in range(self.num_maps) if self._divergence[f] is not None),
            key=lambda f: (self._divergence[f], f))

        self._layers: List[_AffineExec] = []
        subset_cache = {}
        for spec in affine_specs:
            k = spec.index
            active = [f for f in self.fork_order if self._divergence[f] <= k]
            prev = sum(1 for f in self.fork_order if self._divergence[f] < k)
            runner = None
            if active:
                key = tuple(active)
                subset = subset_cache.get(key)
                if subset is None:
                    subset = BatchedSystolicArray([arrays[f] for f in active])
                    subset_cache[key] = subset
                runner = FaultyAffineRunner(subset,
                                            subset.prepare_weight(spec.weight),
                                            spec)
            clean_out_needed = any(d is None or d > k for d in self._divergence)
            self._layers.append(_AffineExec(spec, runner, prev,
                                            len(active), clean_out_needed))

        self._clean = [make_kernel(op, self.dtype, affine_mode="array")
                       for op in self.plan.ops]
        # Fork-lane activations keep an explicit leading fault-map axis
        # ((F_active, batch, ...)); elementwise arithmetic is unchanged but
        # the batched conv outputs never need a (costly) re-fold copy.
        self._fork = [None if isinstance(op, AffineSpec)
                      else make_kernel(op, self.dtype, batch_ndim=2)
                      for op in self.plan.ops]
        self._prefix = self.plan.static_prefix

    # ------------------------------------------------------------------
    @staticmethod
    def _first_affected(array: SystolicArray, probe: BatchedSystolicArray,
                        affine_specs: Sequence[AffineSpec]) -> Optional[int]:
        """First affine ordinal whose output the map's faults can alter.

        A layer is touched when the simulator would build at least one
        fault chain for it (asked of ``probe`` -- a single-map
        :class:`BatchedSystolicArray` -- so the feature-to-column mapping
        and active-fault filtering stay the simulator's own), or when a
        bypassed PE's weight mask covers any weight element.  Note a
        populated chain counts even when no fault row falls inside a tile:
        the simulator still *recomputes* those columns through the
        segment-GEMM path, so only maps reported clean here are guaranteed
        bit-identical to the dense product.
        """

        bypassed = array.bypassed_coordinates
        for spec in affine_specs:
            out_features, in_features = spec.weight_matrix_shape
            if probe._chain_tables(out_features):
                return spec.index
            if bypassed:
                mask = faulty_weight_mask(bypassed, (out_features, in_features),
                                          array.rows, array.cols)
                if mask.any():
                    return spec.index
        return None

    def _reset_state(self) -> None:
        for kernel in self._clean:
            if isinstance(kernel, NeuronKernel):
                kernel.reset()
        for kernel in self._fork:
            if isinstance(kernel, NeuronKernel):
                kernel.reset()

    # ------------------------------------------------------------------
    def _fork_affine(self, layer: _AffineExec, x_c: Optional[np.ndarray],
                     x_v: Optional[np.ndarray], batch: int) -> np.ndarray:
        """Run one corrupted affine layer for all maps forked so far.

        Maps forking *at* this layer enter with the clean activations; maps
        forked earlier carry their own slice of the fork lane.  The result
        keeps the leading ``(F_active, batch, ...)`` fault-map axis.
        """

        spec = layer.spec
        num_new = layer.num_active - layer.num_prev
        shared = layer.num_prev == 0
        if shared:
            # Everyone forks here: hand the runner the shared clean
            # activations so the dense product is computed once (the exact
            # fan-out semantics of the autograd batched injector).
            x_in = x_c
        else:
            x_in = x_v
            if num_new:
                x_in = np.concatenate(
                    [x_in, np.broadcast_to(x_c, (num_new,) + x_c.shape)])
        if spec.kind == "conv":
            out = layer.runner.conv2d(x_in, shared)
        else:
            out = layer.runner.matmul(x_in, shared)
        if out.dtype != self.dtype:
            out = out.astype(self.dtype)
        return out

    def _run_ops(self, x_c: Optional[np.ndarray], x_v: Optional[np.ndarray],
                 start: int, stop: int, batch: int
                 ) -> Tuple[Optional[np.ndarray], Optional[np.ndarray]]:
        ops = self.plan.ops
        for i in range(start, stop):
            op = ops[i]
            if isinstance(op, AffineSpec):
                layer = self._layers[op.index]
                new_x_v = x_v
                if layer.num_active:
                    new_x_v = self._fork_affine(layer, x_c, x_v, batch)
                x_c = self._clean[i].run(x_c) if layer.clean_out_needed else None
                x_v = new_x_v
            else:
                if x_c is not None:
                    x_c = self._clean[i].run(x_c)
                if x_v is not None:
                    x_v = self._fork[i].run(x_v)
        return x_c, x_v

    def run(self, inputs) -> np.ndarray:
        """Per-map firing rates of shape ``(F, batch, num_classes)``.

        ``result[f]`` is bit-identical (float64) to the autograd forward
        with the model's affine layers routed through ``arrays[f]``.
        """

        x0 = np.asarray(inputs, dtype=self.dtype)
        static = x0.ndim in (4, 2)
        batch = x0.shape[0] if static else x0.shape[1]
        self._reset_state()
        acc_c: Optional[np.ndarray] = None
        acc_v: Optional[np.ndarray] = None
        cached: Optional[Tuple] = None
        steps = 0
        for frame in _iter_frames(x0, self.plan.time_steps):
            if static and cached is not None:
                x_c, x_v = cached
            else:
                x_c, x_v = self._run_ops(frame, None, 0, self._prefix, batch)
                if static:
                    cached = (x_c, x_v)
            x_c, x_v = self._run_ops(x_c, x_v, self._prefix, len(self.plan.ops),
                                     batch)
            if steps == 0:
                acc_c = None if x_c is None else x_c.astype(self.dtype, copy=True)
                acc_v = None if x_v is None else x_v.astype(self.dtype, copy=True)
            else:
                if acc_c is not None:
                    np.add(acc_c, x_c, out=acc_c)
                if acc_v is not None:
                    np.add(acc_v, x_v, out=acc_v)
            steps += 1

        scale = 1.0 / steps
        num_classes = (acc_c if acc_c is not None else acc_v).shape[-1]
        rates = np.empty((self.num_maps, batch, num_classes), dtype=self.dtype)
        if acc_c is not None:
            np.multiply(acc_c, scale, out=acc_c)
        if acc_v is not None:
            np.multiply(acc_v, scale, out=acc_v)
        forked = set(self.fork_order)
        for position, map_index in enumerate(self.fork_order):
            rates[map_index] = acc_v[position]
        for map_index in range(self.num_maps):
            if map_index not in forked:
                rates[map_index] = acc_c
        return rates

    def evaluate(self, loader) -> List[float]:
        """Per-fault-map accuracies over all batches of ``loader``."""

        correct = np.zeros(self.num_maps, dtype=np.int64)
        total = 0
        for inputs, labels in loader:
            rates = self.run(inputs)
            predictions = np.argmax(rates, axis=2)
            correct += np.sum(predictions == labels[None, :], axis=1)
            total += labels.shape[0]
        if not total:
            return [0.0] * self.num_maps
        return [int(c) / total for c in correct]
