"""Fused no-autograd inference engines over a lowered plan.

Two engines execute an :class:`~repro.snn.inference.plan.InferencePlan`:

* :class:`FusedInferenceEngine` -- fault-free evaluation.  In ``float64``
  it is bit-identical to ``model(x)`` in eval mode under ``no_grad`` (same
  numpy operations, same order, same shapes); ``float32`` trades
  bit-identity for roughly half the memory traffic on the memory-bound
  elementwise neuron updates.

* :class:`FusedFaultEngine` -- evaluation under ``F`` systolic-array fault
  maps in one pass, with **clean-prefix sharing**: faults only corrupt
  specific affine layers' GEMMs (a map is corrupted by a layer only when
  one of its faulty PE columns actually holds output features of that
  layer, or a bypassed PE zeroes one of its weights), so each fault map's
  execution is bit-identical to the clean one up to the first affine layer
  its faults touch.  The engine runs a single shared *clean lane* plus a
  growing *fork lane*: a map is forked out of the clean lane exactly at its
  first corrupted layer, and all forked maps advance together with their
  fault-map axis folded into the batch axis.  Corrupted GEMMs are delegated
  to :class:`~repro.systolic.array.BatchedSystolicArray`, whose per-map
  arithmetic is bit-identical to the sequential oracle, so float64 results
  match the autograd fault-injection paths bit for bit.

Both engines additionally cache the *static prefix* (the stateless ops
before the first spiking layer) per batch: for static inputs those
activations are identical at every time step, so e.g. the spike-encoder
convolution runs once instead of ``T`` times.

**Lane parallelism.**  :class:`FusedFaultEngine` can split the forked maps
into ``lane_threads`` contiguous *lanes* of the fork order and execute the
per-step fork work of the lanes on a thread pool (numpy releases the GIL
inside its GEMMs, so lanes genuinely overlap).  This is bit-safe where
internal re-batching is not: a stacked ``(F, batch, k) @ (k, n)`` matmul
evaluates each leading slice as an independent 2D GEMM, every non-affine
kernel is elementwise over the leading axes, and fault chains scatter to
disjoint (map, column) slices -- so partitioning the fault-map axis into
lanes can never change any map's bits, whereas folding maps into the BLAS
row dimension would.  Each lane owns its kernels (and therefore its
preallocated neuron-state/scratch buffers -- no sharing, no false sharing)
and accumulates into its own rate buffer; the final reduction writes each
lane's rates into the map slots preassigned at construction, so thread
scheduling cannot reorder results.  ``lane_threads`` defaults to the
``REPRO_LANE_THREADS`` environment variable (falling back to 1 -- the
single-lane structure is exactly the serial engine).
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ...systolic.array import BatchedSystolicArray, SystolicArray
from ...systolic.mapping import faulty_weight_mask
from .backends import get_backend
from .backends.ops_numpy import NeuronKernel
from .faulty_gemm import FaultyAffineRunner
from .plan import SUPPORTED_DTYPES, AffineSpec, InferencePlan, lower_plan

__all__ = ["FusedInferenceEngine", "FusedFaultEngine", "resolve_lane_threads"]


def resolve_lane_threads(value: Optional[int] = None) -> int:
    """Resolve a lane-thread count, defaulting to ``REPRO_LANE_THREADS``.

    ``None`` reads the environment variable (default 1).  ``0`` is the
    *auto* sentinel: the fault engine sizes its lanes from the fork-order
    length and ``os.cpu_count()`` at construction (byte-identity holds at
    any lane count, so auto-sizing is always safe).  A non-integer or
    negative request raises.
    """

    if value is None:
        value = os.environ.get("REPRO_LANE_THREADS", "1")
    try:
        threads = int(value)
    except (TypeError, ValueError):
        raise ValueError(f"lane_threads must be an integer; got {value!r}") from None
    if threads < 0:
        raise ValueError(
            f"lane_threads must be >= 0 (0 = auto-size); got {threads}")
    return threads


def _check_dtype(dtype) -> np.dtype:
    resolved = np.dtype(dtype)
    if resolved.name not in SUPPORTED_DTYPES:
        raise ValueError(
            f"unsupported inference dtype '{dtype}'; options: {SUPPORTED_DTYPES}")
    return resolved


def _iter_frames(x: np.ndarray, time_steps: int):
    """Frame iteration with the semantics of ``SpikingClassifier._iter_frames``."""

    if x.ndim in (5, 3):
        for t in range(x.shape[0]):
            yield x[t]
    elif x.ndim in (4, 2):
        for _ in range(time_steps):
            yield x
    else:
        raise ValueError(
            "expected a 2D/4D static input or a 3D/5D time-major input, "
            f"got shape {x.shape}")


class FusedInferenceEngine:
    """Fault-free fused evaluation of a lowered spiking classifier.

    Parameters
    ----------
    model:
        A trained :class:`~repro.snn.network.SpikingClassifier` (anything
        with a ``lower_inference`` hook and ``time_steps``).  Weights are
        captured by reference at construction; rebuild the engine after
        loading new parameters.
    dtype:
        ``"float64"`` (bit-identical to the autograd forward) or
        ``"float32"`` (documented-tolerance fast mode).
    plan_cache:
        Optional :class:`~repro.snn.inference.plan_cache.PlanCache`: the
        lowered plan is fetched from (and stored into) the cache instead
        of re-lowering, keyed by the model's content token.
    plan_token:
        Optional precomputed model token, skipping the state hashing on a
        cache lookup (ignored without ``plan_cache``).
    backend:
        Kernel backend name (or :class:`~repro.snn.inference.backends
        .Backend` instance); ``None`` resolves ``REPRO_BACKEND`` falling
        back to ``"numpy"``.  Every backend's float64 output is
        byte-identical to the numpy oracle, so the choice never enters
        result semantics (or cache keys) -- only speed.
    """

    def __init__(self, model, dtype: str = "float64", plan_cache=None,
                 plan_token: Optional[str] = None, backend=None) -> None:
        self.plan: InferencePlan = (
            plan_cache.get_plan(model, token=plan_token)
            if plan_cache is not None else lower_plan(model))
        self.dtype = _check_dtype(dtype)
        self.backend = backend if hasattr(backend, "make_kernel") else get_backend(backend)
        self._kernels = [
            self.backend.make_kernel(op, self.dtype, affine_mode="software")
            for op in self.plan.ops]
        self._prefix = self.plan.static_prefix

    def _reset_state(self) -> None:
        for kernel in self._kernels:
            if isinstance(kernel, NeuronKernel):
                kernel.reset()

    def run(self, inputs) -> np.ndarray:
        """Output firing rates of shape ``(batch, num_classes)``."""

        x0 = np.asarray(inputs, dtype=self.dtype)
        static = x0.ndim in (4, 2)
        self._reset_state()
        acc: Optional[np.ndarray] = None
        prefix_out: Optional[np.ndarray] = None
        steps = 0
        for frame in _iter_frames(x0, self.plan.time_steps):
            if static and prefix_out is not None:
                x = prefix_out
            else:
                x = frame
                for kernel in self._kernels[:self._prefix]:
                    x = kernel.run(x)
                if static:
                    prefix_out = x
            for kernel in self._kernels[self._prefix:]:
                x = kernel.run(x)
            if acc is None:
                acc = x.astype(self.dtype, copy=True)
            else:
                np.add(acc, x, out=acc)
            steps += 1
        np.multiply(acc, 1.0 / steps, out=acc)
        return acc

    def predict(self, inputs) -> np.ndarray:
        """Predicted class indices for a batch."""

        return np.argmax(self.run(inputs), axis=1)

    def evaluate(self, loader) -> float:
        """Classification accuracy over all batches of ``loader``."""

        correct = 0
        total = 0
        for inputs, labels in loader:
            predictions = np.argmax(self.run(inputs), axis=1)
            correct += int(np.sum(predictions == labels))
            total += labels.shape[0]
        return correct / total if total else 0.0


class _AffineExec:
    """Precomputed per-affine-layer execution state of one fork lane."""

    __slots__ = ("spec", "runner", "num_prev", "num_active")

    def __init__(self, spec, runner, num_prev, num_active) -> None:
        self.spec = spec
        self.runner = runner
        self.num_prev = num_prev
        self.num_active = num_active


class _Lane:
    """One contiguous slice of the fork order, executed independently.

    A lane owns its affine runners (built on subset arrays holding only
    its maps), its fork-lane kernels (and therefore its preallocated
    neuron-state buffers -- per-lane scratch, nothing shared between
    threads) and the ``fork_order`` positions its rates are written to.
    """

    __slots__ = ("maps", "start", "layers", "kernels")

    def __init__(self, maps, start, layers, kernels) -> None:
        self.maps = maps          # global map indices, fork order
        self.start = start        # first op index with a fork in this lane
        self.layers = layers      # [phase][affine ordinal]: Optional[_AffineExec]
        self.kernels = kernels    # per op index: fork kernel or None


class FusedFaultEngine:
    """Fused evaluation under ``F`` fault maps with clean-prefix sharing.

    Parameters
    ----------
    model:
        Trained spiking classifier (lowered at construction).
    arrays:
        One (possibly faulty, possibly bypassed) :class:`SystolicArray` per
        fault map.  All must share grid dimensions and accumulator format.
        Fault/bypass state is snapshotted when the engine is built.
    dtype:
        ``"float64"`` reproduces the autograd fault-injection paths bit for
        bit; ``"float32"`` keeps the (fixed-point) fault arithmetic in
        float64 inside the array simulator but runs all elementwise SNN
        state in single precision.
    plan_cache:
        Optional :class:`~repro.snn.inference.plan_cache.PlanCache`; see
        :class:`FusedInferenceEngine`.
    plan_token:
        Optional precomputed model token for the cache lookup.
    lane_threads:
        Fork-lane thread count; ``None`` (default) resolves
        ``REPRO_LANE_THREADS`` (falling back to 1).  With ``n > 1`` the
        forked maps are split into ``min(n, forked)`` contiguous lanes of
        the fork order and each time step's lane work runs on a thread
        pool.  ``0`` auto-sizes: ``min(forked, os.cpu_count())`` lanes.
        Results are bit-identical for every thread count (see the
        module docstring); 1 keeps the engine single-threaded.
    schedules:
        One :class:`~repro.faults.fault_map.FaultSchedule` per map for
        *transient* faults, instead of ``arrays`` (exactly one of the two
        must be given).  The per-step live-fault signatures are deduped
        into phases; each map forks at the first layer its fault *union*
        can touch, and the lane runners are swapped per phase, so results
        stay bit-identical to the step-by-step sequential oracle.
    fmt:
        Accumulator format for the transient path; defaults to the
        schedules' pinned format (required when the schedules do not pin
        one).  Ignored with ``arrays``.
    backend:
        Kernel backend name (or instance); ``None`` resolves
        ``REPRO_BACKEND`` falling back to ``"numpy"``.  Float64 results
        are byte-identical across backends (the numpy path is the oracle),
        so the backend never enters campaign cache keys -- exactly the
        ``lane_threads`` rule.
    """

    def __init__(self, model, arrays: Optional[Sequence[SystolicArray]] = None,
                 dtype: str = "float64", plan_cache=None,
                 plan_token: Optional[str] = None,
                 lane_threads: Optional[int] = None,
                 schedules=None, fmt=None, backend=None) -> None:
        if (arrays is None) == (schedules is None):
            raise ValueError(
                "FusedFaultEngine needs exactly one of arrays (permanent "
                "faults) or schedules (transient faults)")
        self.plan: InferencePlan = (
            plan_cache.get_plan(model, token=plan_token)
            if plan_cache is not None else lower_plan(model))
        self.dtype = _check_dtype(dtype)
        self.backend = backend if hasattr(backend, "make_kernel") else get_backend(backend)
        self.lane_threads = resolve_lane_threads(lane_threads)
        affine_specs = self.plan.affine_specs
        ops = self.plan.ops

        if schedules is not None:
            # Transient path: dedup the joint per-step live-fault signatures
            # into phases.  Fork structure (divergence, lanes, stash points)
            # is computed on each schedule's *union* map -- every fault
            # treated as permanent -- so a map's fork point never moves
            # between phases; within a phase where a fault is dormant, the
            # simulator's per-slice dense product is the sequential clean
            # GEMM, keeping bits identical to the step-by-step oracle.
            from ...faults.fault_map import schedule_phases
            from ...systolic.fixed_point import DEFAULT_ACCUMULATOR_FORMAT

            schedules = list(schedules)
            if not schedules:
                raise ValueError("FusedFaultEngine needs at least one schedule")
            resolved_fmt = fmt if fmt is not None else schedules[0].fmt
            if resolved_fmt is None:
                resolved_fmt = DEFAULT_ACCUMULATOR_FORMAT
            step_phase, phase_maps = schedule_phases(schedules)
            self._step_phase: Optional[List[int]] = step_phase
            phase_arrays = [
                [self._array_from_map(fault_map, resolved_fmt)
                 for fault_map in maps]
                for maps in phase_maps]
            structure_arrays = [
                self._array_from_map(schedule.union_map(), resolved_fmt)
                for schedule in schedules]
        else:
            arrays = list(arrays)
            if not arrays:
                raise ValueError("FusedFaultEngine needs at least one array")
            self._step_phase = None
            phase_arrays = [arrays]
            structure_arrays = arrays
        self.num_maps = len(structure_arrays)
        num_phases = len(phase_arrays)

        # First affine ordinal whose GEMM each map's faults corrupt.  Each
        # map is probed through a single-map BatchedSystolicArray so the
        # chain-population rule is the simulator's own, not a re-derivation.
        self._divergence: List[Optional[int]] = [
            self._first_affected(array, BatchedSystolicArray([array]),
                                 affine_specs)
            for array in structure_arrays]
        #: Forked maps in fork-lane order (divergence layer, then map index).
        self.fork_order: List[int] = sorted(
            (f for f in range(self.num_maps) if self._divergence[f] is not None),
            key=lambda f: (self._divergence[f], f))

        # Clean-lane bookkeeping: which affine ordinals still need the clean
        # output afterwards, and at which op positions the clean input must
        # be stashed because some map forks exactly there.
        self._clean_out_needed: List[bool] = [
            any(d is None or d > spec.index for d in self._divergence)
            for spec in affine_specs]
        fork_ordinals = {d for d in self._divergence if d is not None}
        op_of_affine: Dict[int, int] = {
            op.index: i for i, op in enumerate(ops) if isinstance(op, AffineSpec)}
        self._stash_ops = {op_of_affine[k] for k in fork_ordinals}

        # Contiguous lane partition of the fork order.  One lane reproduces
        # the serial engine exactly; more lanes split the per-step fork work
        # into independent threads (per-slice GEMMs, elementwise kernels and
        # disjoint chain scatters make any partition bit-identical).  The
        # auto sentinel (0) sizes from the work actually available.
        requested = self.lane_threads
        if requested == 0:
            requested = max(1, min(len(self.fork_order), os.cpu_count() or 1))
            self.lane_threads = requested
        n_lanes = min(requested, len(self.fork_order))
        bounds = np.linspace(0, len(self.fork_order), n_lanes + 1).astype(int)
        subset_cache = {}
        self._lanes: List[_Lane] = []
        for lane_index in range(n_lanes):
            maps = self.fork_order[bounds[lane_index]:bounds[lane_index + 1]]
            # layers[phase][ordinal]: the fork structure (active maps and
            # their order) is phase-independent -- only the arrays backing
            # the runners change with the live-fault phase.
            layers: List[List[Optional[_AffineExec]]] = [
                [] for _ in range(num_phases)]
            for spec in affine_specs:
                k = spec.index
                active = [f for f in maps if self._divergence[f] <= k]
                if not active:
                    for phase in range(num_phases):
                        layers[phase].append(None)
                    continue
                prev = sum(1 for f in maps if self._divergence[f] < k)
                key = tuple(active)
                for phase in range(num_phases):
                    subset = subset_cache.get((phase, key))
                    if subset is None:
                        subset = BatchedSystolicArray(
                            [phase_arrays[phase][f] for f in active])
                        subset_cache[(phase, key)] = subset
                    runner = FaultyAffineRunner(
                        subset, subset.prepare_weight(spec.weight), spec,
                        backend=self.backend)
                    layers[phase].append(
                        _AffineExec(spec, runner, prev, len(active)))
            start = op_of_affine[min(self._divergence[f] for f in maps)]
            # Fork-lane activations keep an explicit leading fault-map axis
            # ((F_lane, batch, ...)); elementwise arithmetic is unchanged but
            # the batched conv outputs never need a (costly) re-fold copy.
            # Each lane gets its own kernels, so neuron state and scratch
            # buffers are lane-private -- threads never share a buffer.
            kernels = [None if isinstance(op, AffineSpec) or i < start
                       else self.backend.make_kernel(op, self.dtype,
                                                     batch_ndim=2)
                       for i, op in enumerate(ops)]
            self._lanes.append(_Lane(maps, start, layers, kernels))

        self._clean = [self.backend.make_kernel(op, self.dtype,
                                                affine_mode="array")
                       for op in ops]
        self._prefix = self.plan.static_prefix
        # Lane pool: lane 0 always runs on the calling thread, so the pool
        # only needs n_lanes - 1 workers.  Created lazily on the first
        # multi-lane run; close() (or garbage collection) reaps it.
        self._executor: Optional[ThreadPoolExecutor] = None

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut down the lane thread pool (idempotent; pool is rebuilt on use)."""

        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "FusedFaultEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        executor = getattr(self, "_executor", None)
        if executor is not None:
            executor.shutdown(wait=False)

    def _map_lanes(self, fn: Callable[[int], object]) -> List[object]:
        """Run ``fn`` over lane indices, threaded when more than one lane.

        Results come back indexed by lane, so callers' reductions are
        deterministic regardless of thread scheduling.
        """

        n_lanes = len(self._lanes)
        if n_lanes <= 1:
            return [fn(index) for index in range(n_lanes)]
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=n_lanes - 1, thread_name_prefix="repro-lane")
        futures = [self._executor.submit(fn, index)
                   for index in range(1, n_lanes)]
        results = [fn(0)]
        for future in futures:
            results.append(future.result())
        return results

    # ------------------------------------------------------------------
    @staticmethod
    def _array_from_map(fault_map, fmt) -> SystolicArray:
        """Build a :class:`SystolicArray` loaded with ``fault_map``."""

        array = SystolicArray(fault_map.rows, fault_map.cols, fmt=fmt)
        array.load_fault_map(fault_map)
        return array

    def _phase_for_step(self, step: int) -> int:
        """Live-fault phase of SNN time step ``step`` (0 when permanent)."""

        if self._step_phase is None:
            return 0
        if step >= len(self._step_phase):
            raise ValueError(
                f"model ran more than {len(self._step_phase)} time steps "
                "but the transient fault schedules only cover "
                f"{len(self._step_phase)}")
        return self._step_phase[step]

    @staticmethod
    def _first_affected(array: SystolicArray, probe: BatchedSystolicArray,
                        affine_specs: Sequence[AffineSpec]) -> Optional[int]:
        """First affine ordinal whose output the map's faults can alter.

        A layer is touched when the simulator would build at least one
        fault chain for it (asked of ``probe`` -- a single-map
        :class:`BatchedSystolicArray` -- so the feature-to-column mapping
        and active-fault filtering stay the simulator's own), when a
        bypassed PE's weight mask covers any weight element, or when a
        weight-SRAM-faulty PE holds any of the layer's weights.  Note a
        populated chain counts even when no fault row falls inside a tile:
        the simulator still *recomputes* those columns through the
        segment-GEMM path, so only maps reported clean here are guaranteed
        bit-identical to the dense product.
        """

        bypassed = array.bypassed_coordinates
        weight_faulty = {(site.row, site.col)
                         for site in array.weight_fault_sites()}
        for spec in affine_specs:
            out_features, in_features = spec.weight_matrix_shape
            if probe._chain_tables(out_features):
                return spec.index
            for coords in (bypassed, weight_faulty):
                if coords:
                    mask = faulty_weight_mask(coords, (out_features, in_features),
                                              array.rows, array.cols)
                    if mask.any():
                        return spec.index
        return None

    def _reset_state(self) -> None:
        for kernel in self._clean:
            if isinstance(kernel, NeuronKernel):
                kernel.reset()
        for lane in self._lanes:
            for kernel in lane.kernels:
                if isinstance(kernel, NeuronKernel):
                    kernel.reset()

    # ------------------------------------------------------------------
    def _fork_affine(self, layer: _AffineExec, x_c: Optional[np.ndarray],
                     x_v: Optional[np.ndarray]) -> np.ndarray:
        """Run one corrupted affine layer for a lane's maps forked so far.

        Maps forking *at* this layer enter with the clean activations; maps
        forked earlier carry their own slice of the fork lane.  The result
        keeps the leading ``(F_lane, batch, ...)`` fault-map axis.
        """

        spec = layer.spec
        num_new = layer.num_active - layer.num_prev
        shared = layer.num_prev == 0
        if shared:
            # Everyone forks here: hand the runner the shared clean
            # activations so the dense product is computed once (the exact
            # fan-out semantics of the autograd batched injector).
            x_in = x_c
        else:
            x_in = x_v
            if num_new:
                x_in = np.concatenate(
                    [x_in, np.broadcast_to(x_c, (num_new,) + x_c.shape)])
        if spec.kind == "conv":
            out = layer.runner.conv2d(x_in, shared)
        else:
            out = layer.runner.matmul(x_in, shared)
        if out.dtype != self.dtype:
            out = out.astype(self.dtype)
        return out

    def _run_clean(self, x_c: Optional[np.ndarray], start: int, stop: int,
                   stash: Dict[int, np.ndarray]) -> Optional[np.ndarray]:
        """Advance the clean lane, stashing fork-entry activations.

        ``stash[i]`` receives the clean *input* of every affine op ``i``
        some map forks at; the lanes read those activations afterwards.
        The references stay valid for the whole step: a clean kernel's
        output buffer is only overwritten the next time that kernel runs,
        and lanes are joined before the next step's clean pass starts.
        """

        ops = self.plan.ops
        for i in range(start, stop):
            op = ops[i]
            if isinstance(op, AffineSpec):
                if i in self._stash_ops:
                    stash[i] = x_c
                x_c = (self._clean[i].run(x_c)
                       if self._clean_out_needed[op.index] else None)
            elif x_c is not None:
                x_c = self._clean[i].run(x_c)
        return x_c

    def _run_lane(self, lane: _Lane, x_v: Optional[np.ndarray], start: int,
                  stop: int, stash: Dict[int, np.ndarray], phase: int
                  ) -> Optional[np.ndarray]:
        """Advance one lane's fork activations over ops ``[start, stop)``."""

        ops = self.plan.ops
        layers = lane.layers[phase]
        for i in range(max(start, lane.start), stop):
            op = ops[i]
            if isinstance(op, AffineSpec):
                layer = layers[op.index]
                if layer is not None:
                    x_v = self._fork_affine(layer, stash.get(i), x_v)
            elif x_v is not None:
                x_v = lane.kernels[i].run(x_v)
        return x_v

    def run(self, inputs) -> np.ndarray:
        """Per-map firing rates of shape ``(F, batch, num_classes)``.

        ``result[f]`` is bit-identical (float64) to the autograd forward
        with the model's affine layers routed through ``arrays[f]``,
        independent of ``lane_threads``.
        """

        x0 = np.asarray(inputs, dtype=self.dtype)
        static = x0.ndim in (4, 2)
        batch = x0.shape[0] if static else x0.shape[1]
        n_ops = len(self.plan.ops)
        self._reset_state()
        acc_c: Optional[np.ndarray] = None
        lane_accs: List[Optional[np.ndarray]] = [None] * len(self._lanes)
        cached_clean: Optional[Tuple] = None
        cached_lane: Dict[int, List] = {}
        steps = 0
        for frame in _iter_frames(x0, self.plan.time_steps):
            phase = self._phase_for_step(steps)
            if static and cached_clean is not None:
                x_c0, prefix_stash = cached_clean
            else:
                # The prefix is stateless, so for static inputs it runs
                # once (the clean prefix is phase-independent; lane prefix
                # outputs are cached per live-fault phase below).
                prefix_stash: Dict[int, np.ndarray] = {}
                x_c0 = self._run_clean(frame, 0, self._prefix, prefix_stash)
                if static:
                    cached_clean = (x_c0, prefix_stash)
            lane_x0 = cached_lane.get(phase) if static else None
            if lane_x0 is None:
                lane_x0 = self._map_lanes(
                    lambda index: self._run_lane(self._lanes[index], None, 0,
                                                 self._prefix, prefix_stash,
                                                 phase))
                if static:
                    cached_lane[phase] = lane_x0
            # Serial clean pass first (it produces the fork-entry
            # activations), then every lane's tail in parallel.  Each lane
            # accumulates into its own slot, so the reduction order is
            # fixed at construction, not by thread scheduling.
            stash: Dict[int, np.ndarray] = {}
            x_c = self._run_clean(x_c0, self._prefix, n_ops, stash)
            step = steps
            lane_inputs = lane_x0

            def lane_tail(index: int) -> None:
                x_v = self._run_lane(self._lanes[index], lane_inputs[index],
                                     self._prefix, n_ops, stash, phase)
                acc = lane_accs[index]
                if step == 0 or acc is None:
                    lane_accs[index] = x_v.astype(self.dtype, copy=True)
                else:
                    np.add(acc, x_v, out=acc)

            self._map_lanes(lane_tail)
            if x_c is not None:
                if steps == 0 or acc_c is None:
                    acc_c = x_c.astype(self.dtype, copy=True)
                else:
                    np.add(acc_c, x_c, out=acc_c)
            steps += 1

        scale = 1.0 / steps
        reference = acc_c if acc_c is not None else lane_accs[0]
        num_classes = reference.shape[-1]
        rates = self.backend.empty((self.num_maps, batch, num_classes),
                                   dtype=self.dtype)
        if acc_c is not None:
            np.multiply(acc_c, scale, out=acc_c)
        for lane, acc in zip(self._lanes, lane_accs):
            np.multiply(acc, scale, out=acc)
            for position, map_index in enumerate(lane.maps):
                rates[map_index] = acc[position]
        forked = set(self.fork_order)
        for map_index in range(self.num_maps):
            if map_index not in forked:
                rates[map_index] = acc_c
        return rates

    def evaluate(self, loader) -> List[float]:
        """Per-fault-map accuracies over all batches of ``loader``."""

        correct = np.zeros(self.num_maps, dtype=np.int64)
        total = 0
        for inputs, labels in loader:
            rates = self.run(inputs)
            predictions = np.argmax(rates, axis=2)
            correct += np.sum(predictions == labels[None, :], axis=1)
            total += labels.shape[0]
        if not total:
            return [0.0] * self.num_maps
        return [int(c) / total for c in correct]
