"""Overhead-trimmed faulty affine execution for the fused fault engine.

:class:`FaultyAffineRunner` re-implements the arithmetic of
:meth:`repro.systolic.array.BatchedSystolicArray.matmul_batched` /
``conv2d_batched`` for ONE prepared layer, hoisting every input-independent
decision out of the per-call path: chain chunking, per-level active masks,
stuck-at bit/polarity masks, scatter index arrays and fixed-point format
constants are all precomputed at construction.  The remaining per-call work
is exactly the sequence of numpy operations the shared simulator performs
-- the same GEMM shapes and operand layouts, the same quantise / force-bit
/ dequantise steps in the same order -- so results are bit-identical to the
:class:`~repro.systolic.array.BatchedSystolicArray` path (and therefore to
the sequential oracle), as the equivalence tests assert.

This matters because fault campaigns run in a streaming regime: tiny
batches, many time steps, hundreds of chain applications per evaluation.
At those sizes the shared path's per-call bookkeeping (rebuilding masks,
re-deriving chunk sizes, re-validating shapes) rivals the arithmetic
itself; the runner removes it without forking the simulator's semantics.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ...autograd.functional import im2col
from ...systolic import array as systolic_array
from ...systolic.array import BatchedSystolicArray

__all__ = ["FaultyAffineRunner"]


class _Level:
    """One stuck-at breakpoint level of a tile, with precomputed masks."""

    __slots__ = ("w_stack", "active", "active_all", "bit_mask", "stuck_one",
                 "all_sa1", "all_sa0")

    def __init__(self, w_stack, active, bit_mask, stuck_one) -> None:
        self.w_stack = w_stack                # (chains, tile_rows, n_out)
        self.active_all = bool(active.all())
        self.active = None if self.active_all else active[:, None, None]
        self.bit_mask = bit_mask              # (chains, 1, 1) int64
        self.stuck_one = stuck_one            # (chains, 1, 1) bool
        # Uniform-polarity levels (the common case: a sweep uses one stuck
        # type) skip the unused force branch and the where-select.
        self.all_sa1 = bool(stuck_one.all())
        self.all_sa0 = not stuck_one.any()


class _Tile:
    __slots__ = ("lo", "hi", "levels", "tail_stack", "applied",
                 "applied_all", "applied_any")

    def __init__(self, lo, hi, levels, tail_stack, n_sites) -> None:
        self.lo = lo
        self.hi = hi
        self.levels = levels
        self.tail_stack = tail_stack          # (chains, tile_rows, n_out)
        applied = n_sites > 0
        self.applied_all = bool(applied.all())
        self.applied_any = bool(applied.any())
        self.applied = applied[:, None, None]


class _Group:
    """One chain group (fixed outputs-per-column) with scatter indices."""

    __slots__ = ("map_ids", "tiles", "n_out", "map_sel", "out_sel", "n_chains")

    def __init__(self, table, tiles) -> None:
        self.map_ids = table.map_ids
        self.tiles = tiles
        self.n_out = table.n_out
        self.n_chains = len(table.chains)
        self.map_sel = table.map_ids[:, None, None]
        self.out_sel = table.out_idx2d[:, None, :]


class FaultyAffineRunner:
    """Execute one (conv or linear) layer under a subset array's faults.

    Parameters
    ----------
    subset:
        The :class:`BatchedSystolicArray` holding the forked maps' faults.
    prepared:
        ``subset.prepare_weight(spec.weight)`` for this layer.
    spec:
        The layer's :class:`~repro.snn.inference.plan.AffineSpec`.
    """

    def __init__(self, subset: BatchedSystolicArray, prepared, spec) -> None:
        self.num_maps = subset.num_maps
        self.spec = spec
        self.weight_matrix = prepared.weight_matrix
        self.weight_t = prepared.weight_matrix.T
        self.stacked_weights = prepared.stacked_weights
        self.bias = None if spec.bias is None else np.asarray(spec.bias,
                                                              dtype=np.float64)
        fmt = subset.fmt
        self.scale = fmt.scale
        self.min_code = fmt.min_code
        self.max_code = fmt.max_code
        self.word_mask = (1 << fmt.total_bits) - 1
        self.sign_mask = 1 << (fmt.total_bits - 1)
        self.full_range = 1 << fmt.total_bits
        self.rows = subset.rows

        self.groups: List[_Group] = []
        for plan in prepared.chain_plans:
            table = plan.table
            tiles = []
            for tile in plan.tiles:
                levels = []
                for index, w_stack in enumerate(tile.level_stacks):
                    active = index < tile.n_sites
                    bit_mask = np.left_shift(
                        np.int64(1), table.bits2d[:, index])[:, None, None]
                    stuck_one = (table.stuck2d[:, index] == 1)[:, None, None]
                    levels.append(_Level(w_stack, active, bit_mask, stuck_one))
                tiles.append(_Tile(tile.lo, tile.hi, levels, tile.tail_stack,
                                   tile.n_sites))
            self.groups.append(_Group(table, tiles))
        self._batch_idx: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def _apply_stuck(self, values: np.ndarray, level: _Level,
                     chunk: slice) -> np.ndarray:
        """Exact :meth:`BatchedSystolicArray._apply_stuck_block` arithmetic.

        In-place ufunc steps and uniform-polarity shortcuts change the
        number of temporaries, not any computed value.
        """

        codes = values / self.scale
        np.round(codes, out=codes)
        np.clip(codes, self.min_code, self.max_code, out=codes)
        raw = codes.astype(np.int64)
        raw &= self.word_mask
        bit_mask = level.bit_mask[chunk]
        if level.all_sa1:
            forced = raw
            forced |= bit_mask
        elif level.all_sa0:
            forced = raw
            forced &= ~bit_mask
        else:
            forced = np.where(level.stuck_one[chunk], raw | bit_mask,
                              raw & ~bit_mask)
        signed = np.where(forced & self.sign_mask, forced - self.full_range,
                          forced)
        return signed.astype(np.float64) * self.scale

    def _apply_group(self, group: _Group, inputs: np.ndarray,
                     output: np.ndarray, shared: bool) -> None:
        batch = inputs.shape[-2]
        n_out = group.n_out
        # Read the block cap through the module so tests can shrink it to
        # force the multi-chunk path.
        block = max(1, systolic_array._CHAIN_BLOCK_ELEMENTS
                    // max(1, batch * max(self.rows, n_out)))
        if self._batch_idx is None or self._batch_idx.shape[1] != batch:
            self._batch_idx = np.arange(batch)[None, :, None]
        for start in range(0, group.n_chains, block):
            chunk = slice(start, min(start + block, group.n_chains))
            size = chunk.stop - chunk.start
            col_out = np.zeros((size, batch, n_out))
            for tile in group.tiles:
                if shared:
                    x_stack = inputs[:, tile.lo:tile.hi]
                else:
                    x_stack = inputs[group.map_ids[chunk], :, tile.lo:tile.hi]
                acc = None  # identically zero until the first applied level
                for level in tile.levels:
                    active = None if level.active_all else level.active[chunk]
                    if active is not None and not active.any():
                        continue
                    segment = np.matmul(x_stack, level.w_stack[chunk])
                    if acc is None:
                        # 0 + segment differs from segment only in zero
                        # signs, which quantisation maps to the same codes.
                        vals = segment
                    else:
                        vals = np.add(acc, segment, out=segment)
                    candidate = self._apply_stuck(vals, level, chunk)
                    if active is None:
                        acc = candidate
                    else:
                        if acc is None:
                            acc = np.zeros((size, batch, n_out))
                        acc = np.where(active, candidate, acc)
                tails = np.matmul(x_stack, tile.tail_stack[chunk])
                # Applied flags must be evaluated per chunk: a chunk whose
                # chains all have zero sites in this tile is tail-only even
                # when other chunks of the group are not.
                if chunk.stop - chunk.start == group.n_chains:
                    applied_all, applied_any = tile.applied_all, tile.applied_any
                else:
                    applied = tile.applied[chunk]
                    applied_all = bool(applied.all())
                    applied_any = bool(applied.any())
                if applied_all:
                    col_out += acc + tails
                elif not applied_any:
                    col_out += tails
                else:
                    # Mixed chunk: level 0 is active exactly for the applied
                    # chains, so ``acc`` was materialised above.
                    col_out += np.where(tile.applied[chunk], acc + tails, tails)
            output[group.map_sel[chunk], self._batch_idx,
                   group.out_sel[chunk]] = col_out

    # ------------------------------------------------------------------
    def matmul(self, x: np.ndarray, shared: bool) -> np.ndarray:
        """Per-map ``x @ W.T + bias`` under the subset's faults.

        ``x`` is ``(batch, in)`` when ``shared`` (identical activations for
        every map -- the fork layer) or ``(F, batch, in)`` otherwise.
        Returns ``(F, batch, out)``.
        """

        if x.dtype != np.float64:
            x = x.astype(np.float64)
        if self.stacked_weights is not None:
            stacked_in = (np.broadcast_to(x, (self.num_maps,) + x.shape)
                          if shared else x)
            output = np.matmul(stacked_in, self.stacked_weights)
        elif shared:
            shared_prod = x @ self.weight_t
            output = np.repeat(shared_prod[np.newaxis], self.num_maps, axis=0)
        else:
            output = np.matmul(x, self.weight_t)
        for group in self.groups:
            self._apply_group(group, x, output, shared)
        if self.bias is not None:
            output = output + self.bias
        return output

    def conv2d(self, x: np.ndarray, shared: bool) -> np.ndarray:
        """Per-map convolution; ``x`` is 4D when ``shared``, else 5D.

        Returns ``(F, batch, out_channels, H_out, W_out)``.
        """

        spec = self.spec
        if x.dtype != np.float64:
            x = x.astype(np.float64)
        kh, kw = spec.weight.shape[2], spec.weight.shape[3]
        if shared:
            batch = x.shape[0]
            cols = im2col(x, (kh, kw), spec.stride, spec.padding)
            _, out_h, out_w, k = cols.shape
            flat = cols.reshape(batch * out_h * out_w, k)
        else:
            batch = x.shape[1]
            cols = im2col(x.reshape((self.num_maps * batch,) + x.shape[2:]),
                          (kh, kw), spec.stride, spec.padding)
            _, out_h, out_w, k = cols.shape
            flat = cols.reshape(self.num_maps, batch * out_h * out_w, k)
        flat_out = self.matmul(flat, shared)
        out_channels = self.weight_matrix.shape[0]
        return (flat_out.reshape(self.num_maps, batch, out_h, out_w, out_channels)
                .transpose(0, 1, 4, 2, 3))
