"""Faulty affine execution for the fused fault engine.

:class:`FaultyAffineRunner` executes one prepared (conv or linear) layer
under a subset array's faults.  Since the fault-chain fast path moved into
:mod:`repro.systolic.chain_kernel`, the runner is a thin wrapper: the dense
per-map product is computed exactly as
:meth:`repro.systolic.array.BatchedSystolicArray.matmul_batched` /
``conv2d_batched`` would, and chain application is delegated to the shared
uniform-tile kernel (:func:`~repro.systolic.chain_kernel
.apply_chain_plan`) over the weight's prepared
:class:`~repro.systolic.chain_kernel.UniformChainPlan` blocks -- the same
code path the batched simulator runs, so results are bit-identical to the
:class:`~repro.systolic.array.BatchedSystolicArray` path (and therefore to
the sequential oracle), as the equivalence tests assert.

This matters because fault campaigns run in a streaming regime: tiny
batches, many time steps, hundreds of chain applications per evaluation.
Everything input-independent -- chain grouping, per-level bit/polarity
masks, scatter index arrays, fixed-point constants -- is precomputed at
``prepare_weight`` time, so the per-call work is exactly the segment GEMMs
and fused stuck-at passes.

When ``chain_kernel.FASTPATH_ENABLED`` is off the runner routes chain
application through the untiled reference implementation on the subset
array instead, keeping the two paths comparable end to end.
"""

from __future__ import annotations

import numpy as np

from ...autograd.functional import im2col
from ...systolic import array as systolic_array
from ...systolic import chain_kernel
from ...systolic.array import BatchedSystolicArray
from ...systolic.chain_kernel import apply_chain_plan

__all__ = ["FaultyAffineRunner"]


class FaultyAffineRunner:
    """Execute one (conv or linear) layer under a subset array's faults.

    Parameters
    ----------
    subset:
        The :class:`BatchedSystolicArray` holding the forked maps' faults.
    prepared:
        ``subset.prepare_weight(spec.weight)`` for this layer.
    spec:
        The layer's :class:`~repro.snn.inference.plan.AffineSpec`.
    backend:
        Optional :class:`~repro.snn.inference.backends.Backend` supplying
        the stuck-at forcing kernel, the im2col gather and the chain
        driver; ``None`` keeps the shared numpy/chain-kernel paths.  The
        subset's own :class:`~repro.systolic.chain_kernel.StuckAtKernel`
        is replaced by ``backend.stuck_at_kernel`` over the same format,
        which must be (and for the in-tree backends is) bit-identical.
    """

    def __init__(self, subset: BatchedSystolicArray, prepared, spec,
                 backend=None) -> None:
        self.subset = subset
        self.prepared = prepared
        self.num_maps = subset.num_maps
        self.spec = spec
        self.weight_matrix = prepared.weight_matrix
        self.weight_t = prepared.weight_matrix.T
        self.stacked_weights = prepared.stacked_weights
        self.bias = None if spec.bias is None else np.asarray(spec.bias,
                                                              dtype=np.float64)
        self.rows = subset.rows
        if backend is None:
            self.kernel = subset._stuck_kernel
            self._im2col = im2col
            self._apply_plan = apply_chain_plan
        else:
            self.kernel = backend.stuck_at_kernel(subset.fmt)
            self._im2col = backend.im2col
            self._apply_plan = backend.apply_chain_plan

    # ------------------------------------------------------------------
    def _apply_chains(self, x: np.ndarray, output: np.ndarray,
                      shared: bool) -> None:
        if chain_kernel.FASTPATH_ENABLED:
            for plan in self.prepared.chain_plans:
                # Read the block cap through the module so tests can shrink
                # it to force the multi-chunk path.
                self._apply_plan(plan.uniform, x, output, shared, self.kernel,
                                 self.rows,
                                 systolic_array._CHAIN_BLOCK_ELEMENTS)
        else:
            ref_inputs = (np.broadcast_to(x, (self.num_maps,) + x.shape)
                          if shared else x)
            for plan in self.prepared.chain_plans:
                self.subset._apply_chain_plan_reference(plan, ref_inputs,
                                                        output, shared)

    # ------------------------------------------------------------------
    def matmul(self, x: np.ndarray, shared: bool) -> np.ndarray:
        """Per-map ``x @ W.T + bias`` under the subset's faults.

        ``x`` is ``(batch, in)`` when ``shared`` (identical activations for
        every map -- the fork layer) or ``(F, batch, in)`` otherwise.
        Returns ``(F, batch, out)``.
        """

        if x.dtype != np.float64:
            x = x.astype(np.float64)
        if self.stacked_weights is not None:
            stacked_in = (np.broadcast_to(x, (self.num_maps,) + x.shape)
                          if shared else x)
            output = np.matmul(stacked_in, self.stacked_weights)
        elif shared:
            shared_prod = x @ self.weight_t
            output = np.repeat(shared_prod[np.newaxis], self.num_maps, axis=0)
        else:
            output = np.matmul(x, self.weight_t)
        self._apply_chains(x, output, shared)
        if self.bias is not None:
            output = output + self.bias
        return output

    def conv2d(self, x: np.ndarray, shared: bool) -> np.ndarray:
        """Per-map convolution; ``x`` is 4D when ``shared``, else 5D.

        Returns ``(F, batch, out_channels, H_out, W_out)``.
        """

        spec = self.spec
        if x.dtype != np.float64:
            x = x.astype(np.float64)
        kh, kw = spec.weight.shape[2], spec.weight.shape[3]
        if shared:
            batch = x.shape[0]
            cols = self._im2col(x, (kh, kw), spec.stride, spec.padding)
            _, out_h, out_w, k = cols.shape
            flat = cols.reshape(batch * out_h * out_w, k)
        else:
            batch = x.shape[1]
            cols = self._im2col(x.reshape((self.num_maps * batch,) + x.shape[2:]),
                                (kh, kw), spec.stride, spec.padding)
            _, out_h, out_w, k = cols.shape
            flat = cols.reshape(self.num_maps, batch * out_h * out_w, k)
        flat_out = self.matmul(flat, shared)
        out_channels = self.weight_matrix.shape[0]
        return (flat_out.reshape(self.num_maps, batch, out_h, out_w, out_channels)
                .transpose(0, 1, 4, 2, 3))
