"""Compatibility shim: the numpy kernels moved to ``backends/ops_numpy.py``.

The fused runtime kernels are now owned by the default numpy backend of
the pluggable kernel-backend registry (:mod:`repro.snn.inference.backends`).
This module keeps the historical import path working; new code should go
through :func:`repro.snn.inference.backends.get_backend` and
``Backend.make_kernel`` instead of calling :func:`make_kernel` directly.
"""

from __future__ import annotations

from .backends.ops_numpy import (
    ArrayAffineKernel,
    BatchNormKernel,
    FlattenKernel,
    NeuronKernel,
    PoolKernel,
    SoftwareAffineKernel,
    make_kernel,
)

__all__ = [
    "NeuronKernel",
    "BatchNormKernel",
    "PoolKernel",
    "FlattenKernel",
    "SoftwareAffineKernel",
    "ArrayAffineKernel",
    "make_kernel",
]
