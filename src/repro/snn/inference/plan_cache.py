"""Per-process cache of lowered inference plans, keyed by model token.

Lowering a model into an :class:`~repro.snn.inference.plan.InferencePlan`
is cheap once, but the campaign orchestrator evaluates *many* work units
per process -- and every :class:`~repro.snn.inference.engine
.FusedFaultEngine` / :class:`~repro.snn.inference.engine
.FusedInferenceEngine` construction used to re-lower the same trained
model from scratch.  A :class:`PlanCache` removes that repetition:

* **Keyed by content, not identity.**  The cache key is the model token
  (:func:`repro.utils.hashing.model_token` -- a digest of every parameter
  and buffer) plus the wrapper's ``time_steps``, so a stale hit would
  require two different module trees with byte-identical state; mutating
  any weight changes the token and misses.  Callers that already hold the
  token (e.g. :class:`~repro.faults.campaign.CampaignRunner`) pass it to
  skip re-hashing.
* **Per process, fork-friendly.**  Entries are plain Python objects whose
  weight arrays are captured *by reference*, so a cache warmed in the
  orchestrator parent is inherited by every forked worker -- including
  replacement workers spawned after a crash -- through copy-on-write
  memory.  Workers therefore lower the plan zero times.
* **Reference semantics caveat.**  Like the engines themselves, a cached
  plan references the lowering-time weight arrays.  If parameters are
  mutated *in place* (not replaced), drop the cache (:meth:`clear`)
  exactly as you would rebuild an engine.

The module-level :func:`default_plan_cache` is the process-wide instance
used by :class:`~repro.faults.campaign.CampaignRunner` unless an explicit
cache (or ``plan_cache=False``) is configured.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ...utils.hashing import model_token
from .plan import InferencePlan, lower_plan

__all__ = ["PlanCache", "default_plan_cache"]


class PlanCache:
    """Bounded per-process cache of :class:`InferencePlan` objects.

    Parameters
    ----------
    max_entries:
        Entries kept before the oldest is evicted (insertion order).
        Plans hold weight *references*, so the bound limits bookkeeping,
        not tensor memory.
    """

    def __init__(self, max_entries: int = 8) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        self.max_entries = int(max_entries)
        self._plans: Dict[Tuple[str, int], InferencePlan] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._plans)

    def clear(self) -> None:
        """Drop every cached plan (required after in-place weight mutation)."""

        self._plans.clear()

    def token_for(self, model) -> str:
        """The cache token of ``model`` (content digest of its state)."""

        return model_token(model)

    def get_plan(self, model, token: Optional[str] = None) -> InferencePlan:
        """The lowered plan of ``model``, lowering at most once per content.

        ``token`` skips the state hashing when the caller already knows the
        model token (it must be :meth:`token_for` of the *current* state).
        """

        if token is None:
            token = model_token(model)
        key = (token, int(getattr(model, "time_steps", 0) or 0))
        plan = self._plans.get(key)
        if plan is None:
            self.misses += 1
            plan = lower_plan(model)
            if len(self._plans) >= self.max_entries:
                self._plans.pop(next(iter(self._plans)))
            self._plans[key] = plan
        else:
            self.hits += 1
        return plan

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"PlanCache({len(self._plans)}/{self.max_entries} entries, "
                f"{self.hits} hits, {self.misses} misses)")


#: Process-wide default instance (forked workers inherit its entries).
_DEFAULT_CACHE = PlanCache()


def default_plan_cache() -> PlanCache:
    """The process-wide :class:`PlanCache` shared by campaign runners."""

    return _DEFAULT_CACHE
