"""Fused no-autograd inference subsystem for trained spiking classifiers.

A trained :class:`~repro.snn.network.SpikingClassifier` is *lowered* into a
flat :class:`~repro.snn.inference.plan.InferencePlan` of pure-numpy op
specs, which the engines execute with preallocated state buffers, in-place
membrane updates and a single charge->fire->reset pass per spiking layer
per time step -- no autograd graph construction.

* :class:`FusedInferenceEngine` -- fault-free evaluation.  ``float64`` is
  bit-identical to the autograd forward; ``float32`` is a fast mode with a
  documented tolerance.
* :class:`FusedFaultEngine` -- multi-fault-map evaluation with clean-prefix
  sharing: each fault map forks off the shared clean lane at the first
  affine layer its faults actually corrupt.

Kernel execution is dispatched through the pluggable backend registry in
:mod:`repro.snn.inference.backends` (``--backend`` / ``REPRO_BACKEND``);
the numpy float64 path is the byte-identity oracle every other backend is
differentially tested against.

See the README's "Fused inference engine" section for the architecture and
the bit-identity guarantees.
"""

from .backends import (
    Backend,
    BackendUnavailableError,
    available_backends,
    get_backend,
    register_backend,
    resolve_backend_name,
)
from .engine import FusedFaultEngine, FusedInferenceEngine, resolve_lane_threads
from .plan_cache import PlanCache, default_plan_cache
from .plan import (
    AffineSpec,
    BatchNormSpec,
    FlattenSpec,
    InferencePlan,
    LoweringError,
    NeuronSpec,
    PlanBuilder,
    PoolSpec,
    lower_plan,
)

__all__ = [
    "AffineSpec",
    "Backend",
    "BackendUnavailableError",
    "BatchNormSpec",
    "FlattenSpec",
    "FusedFaultEngine",
    "FusedInferenceEngine",
    "InferencePlan",
    "LoweringError",
    "NeuronSpec",
    "PlanBuilder",
    "PlanCache",
    "PoolSpec",
    "available_backends",
    "default_plan_cache",
    "get_backend",
    "lower_plan",
    "register_backend",
    "resolve_backend_name",
    "resolve_lane_threads",
]
