"""The ``Backend`` protocol: everything a kernel backend can swap out.

A backend owns the *execution* of a lowered
:class:`~repro.snn.inference.plan.InferencePlan` -- the plan itself is
backend-agnostic IR (which is why :class:`~repro.snn.inference.plan_cache
.PlanCache` entries and campaign cache keys never mention the backend).
The swappable surface is deliberately small:

* :meth:`make_kernel` -- per-op runtime kernels (affine GEMMs in both
  geometries, fused charge->fire->reset neuron updates, batch norm,
  pooling, flatten);
* :meth:`im2col` -- the patch-gather feeding every convolution GEMM;
* :meth:`stuck_at_kernel` / :meth:`apply_chain_plan` -- the fused
  stuck-at quantise->force->dequantise pass and the chain-application
  driver of :mod:`repro.systolic.chain_kernel`;
* :meth:`empty` -- scratch/result buffer allocation.

The base class implements every hook with the shared numpy/chain-kernel
code paths, so a backend only overrides what it accelerates.  The bit
contract of :mod:`repro.snn.inference.backends` applies: in ``float64``
every override must keep per-element operation order, so results are
byte-identical to the numpy oracle (the differential identity suite in
``tests/test_backends.py`` enforces it).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ....autograd.functional import im2col as _numpy_im2col
from ....systolic import chain_kernel as _chain_kernel


class Backend:
    """Kernel-execution backend for the fused inference engines.

    Subclasses set :attr:`name` (the registry key, also the value accepted
    by ``REPRO_BACKEND`` / ``--backend``) and override the hooks they
    accelerate.  A backend whose runtime prerequisites may be missing
    (compiler, shared library, device) reports through :meth:`available` /
    :meth:`unavailable_reason` instead of raising at import time.
    """

    #: Registry key; subclasses must override.
    name: str = "abstract"

    # -- availability --------------------------------------------------
    def available(self) -> bool:
        """Whether the backend can execute on this machine (may build lazily)."""

        return True

    def unavailable_reason(self) -> Optional[str]:
        """Human-readable reason :meth:`available` is ``False`` (else ``None``)."""

        return None

    # -- kernel construction -------------------------------------------
    def make_kernel(self, spec: object, dtype: np.dtype,
                    affine_mode: str = "software", batch_ndim: int = 1):
        """Instantiate the runtime kernel for one plan spec.

        Same contract as the historical ``kernels.make_kernel``:
        ``affine_mode`` selects the GEMM geometry for affine ops
        (``"software"`` = autograd-identical, ``"array"`` = fault-free
        systolic array), ``batch_ndim`` the number of leading batch-like
        axes (2 in the fault engine's fork lane).
        """

        raise NotImplementedError

    # -- shared primitives ---------------------------------------------
    def im2col(self, x: np.ndarray, kernel: Tuple[int, int], stride: int,
               padding: int) -> np.ndarray:
        """Patch gather with the exact layout of ``autograd.functional.im2col``."""

        return _numpy_im2col(x, kernel, stride, padding)

    def stuck_at_kernel(self, fmt) -> "_chain_kernel.StuckAtKernel":
        """Fused stuck-at forcing kernel for one fixed-point format."""

        return _chain_kernel.StuckAtKernel(fmt)

    def apply_chain_plan(self, plan, inputs: np.ndarray, output: np.ndarray,
                         shared: bool, kernel, rows: int,
                         block_elements: int) -> None:
        """Chain-application driver (segment GEMMs + ``kernel`` forcing).

        The default delegates to :func:`repro.systolic.chain_kernel
        .apply_chain_plan`; a backend typically customises the *forcing*
        via :meth:`stuck_at_kernel` and keeps the GEMMs on numpy/BLAS,
        whose summation order the bit-identity contract is pinned to.
        """

        _chain_kernel.apply_chain_plan(plan, inputs, output, shared, kernel,
                                       rows, block_elements)

    def empty(self, shape, dtype=np.float64) -> np.ndarray:
        """Allocate an uninitialised result/scratch buffer."""

        return np.empty(shape, dtype=dtype)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} name={self.name!r}>"
