"""Compiled C backend (cffi): fused im2col + stuck-at + neuron kernels.

The campaign hot paths this backend compiles are exactly the ones the
ROADMAP names as the numpy frontier -- and, crucially, the *bit-safe*
ones:

* **im2col** is a pure gather/copy (plus zero padding), so a C loop
  producing the same ``(batch, out_h, out_w, C*kh*kw)`` C-contiguous
  layout yields byte-identical columns, and therefore byte-identical GEMM
  results.  The numpy version pays an ``as_strided`` -> transpose ->
  ``ascontiguousarray`` copy with terrible locality; the C version writes
  the destination sequentially.
* **The stuck-at quantise -> force -> dequantise pass** is elementwise:
  per element it performs divide, ``rint`` (round-half-to-even -- C
  ``rint()`` under the default rounding mode, the same operation numpy's
  ``np.rint`` performs), clip via comparisons (NaN-propagating, matching
  ``np.maximum``/``np.minimum``), an exact int64 cast, exact bit logic and
  the two's-complement ``xor``/``sub`` sign extension, then one multiply.
  One C pass replaces the ~10 full-buffer ufunc sweeps of
  :class:`~repro.systolic.chain_kernel.StuckAtKernel.force`.
* **The charge -> fire -> reset neuron update** is elementwise too: each
  element's update is an independent chain of IEEE-754 ops, so fusing the
  per-array ufunc sweeps into one per-element sequence (same ops, same
  order) cannot change any bit.  In the streaming regime (tiny batches,
  many time steps) this also collapses ~8 ufunc dispatches per layer-step
  into one FFI call.

What this backend deliberately does NOT touch: the GEMMs.  They stay on
numpy/BLAS -- reimplementing them in C would change the summation order
and break the float64 byte-identity contract the whole campaign stack is
pinned on.

The shared library is built lazily on first use with ``cffi`` and a C
compiler, compiled with ``-ffp-contract=off`` (no FMA contraction -- a
fused multiply-add rounds once where the oracle rounds twice) and cached
under ``$REPRO_CFFI_CACHE`` (default ``~/.cache/repro/cffi``) keyed by a
source hash, so later processes just ``dlopen`` the cached ``.so``.  A
missing compiler makes the backend report "not available" instead of
raising; requesting it explicitly then raises, selecting it via
``REPRO_BACKEND`` degrades to numpy with a logged notice.
"""

from __future__ import annotations

import hashlib
import importlib.util
import os
import threading
from pathlib import Path
from typing import Optional

import numpy as np

# A missing cffi marks the backend unavailable via the registry's
# ImportError discovery protocol.
import cffi  # noqa: F401

from ....systolic.chain_kernel import StuckAtKernel
from ..plan import AffineSpec, NeuronSpec
from . import register_backend
from .ops_numpy import (
    ArrayAffineKernel,
    NeuronKernel,
    NumpyBackend,
    SoftwareAffineKernel,
)

__all__ = [
    "CffiBackend",
    "CffiNeuronKernel",
    "CffiStuckAtKernel",
]

_CDEF = """
void repro_im2col(const double *x, double *cols, long batch, long channels,
                  long height, long width, long kh, long kw, long out_h,
                  long out_w, long stride, long padding);
void repro_stuck_force(double *values, long chains, long inner,
                       const int64_t *bit_mask, const int64_t *inv_mask,
                       const unsigned char *stuck_one, int mode, double scale,
                       double min_code, double max_code, int64_t word_mask,
                       int64_t sign_mask);
void repro_neuron_step(double *v, const double *x, double *spike, long n,
                       int has_tau, double inv_tau, double rest,
                       double threshold, int soft, double v_reset);
"""

_SOURCE = r"""
#include <stdint.h>
#include <math.h>

/* Patch gather with the exact output layout of autograd.functional.im2col:
 * (batch, out_h, out_w, channels*kh*kw), C-contiguous, zero padding.  The
 * destination is written strictly sequentially. */
void repro_im2col(const double *x, double *cols, long batch, long channels,
                  long height, long width, long kh, long kw, long out_h,
                  long out_w, long stride, long padding)
{
    long idx = 0;
    for (long b = 0; b < batch; b++) {
        const double *xb = x + b * channels * height * width;
        for (long oh = 0; oh < out_h; oh++) {
            long base_r = oh * stride - padding;
            for (long ow = 0; ow < out_w; ow++) {
                long base_c = ow * stride - padding;
                for (long c = 0; c < channels; c++) {
                    const double *xc = xb + c * height * width;
                    for (long i = 0; i < kh; i++) {
                        long r = base_r + i;
                        if (r < 0 || r >= height) {
                            for (long j = 0; j < kw; j++)
                                cols[idx++] = 0.0;
                            continue;
                        }
                        const double *xr = xc + r * width;
                        for (long j = 0; j < kw; j++) {
                            long cc = base_c + j;
                            cols[idx++] = (cc >= 0 && cc < width)
                                ? xr[cc] : 0.0;
                        }
                    }
                }
            }
        }
    }
}

/* Fused quantise -> force-bit -> dequantise over a (chains, inner) block.
 * Per element this is step-for-step StuckAtKernel.force: divide, rint
 * (round half to even under the default rounding mode, = np.rint), clip
 * via NaN-propagating comparisons (= np.maximum/np.minimum), truncating
 * int64 cast (= np.copyto casting="unsafe"), masked bit force, xor/sub
 * sign extension, multiply.  mode: 0 = per-chain stuck_one flags,
 * 1 = all stuck-at-1, 2 = all stuck-at-0. */
void repro_stuck_force(double *values, long chains, long inner,
                       const int64_t *bit_mask, const int64_t *inv_mask,
                       const unsigned char *stuck_one, int mode, double scale,
                       double min_code, double max_code, int64_t word_mask,
                       int64_t sign_mask)
{
    for (long c = 0; c < chains; c++) {
        const int64_t bm = bit_mask[c];
        const int64_t im = inv_mask[c];
        const int sa1 = (mode == 1) || (mode == 0 && stuck_one[c]);
        double *v = values + c * inner;
        for (long i = 0; i < inner; i++) {
            double q = v[i] / scale;
            q = rint(q);
            q = (q > min_code || isnan(q)) ? q : min_code;
            q = (q < max_code || isnan(q)) ? q : max_code;
            int64_t w = (int64_t)q;
            w &= word_mask;
            if (sa1)
                w |= bm;
            else
                w &= im;
            w ^= sign_mask;
            w -= sign_mask;
            v[i] = (double)w * scale;
        }
    }
}

/* Fused charge -> fire -> reset for one spiking layer.  Per element the
 * statement sequence mirrors NeuronKernel.run's ufunc sequence exactly
 * (compiled with -ffp-contract=off, so no op pair fuses into an FMA). */
void repro_neuron_step(double *v, const double *x, double *spike, long n,
                       int has_tau, double inv_tau, double rest,
                       double threshold, int soft, double v_reset)
{
    for (long i = 0; i < n; i++) {
        double h = v[i];
        if (has_tau) {
            double t = h - rest;
            t = x[i] - t;
            t = t * inv_tau;
            h = h + t;
        } else {
            h = h + x[i];
        }
        double z = h / threshold;
        z = z - 1.0;
        double s = (z > 0.0) ? 1.0 : 0.0;
        spike[i] = s;
        if (soft) {
            double d = s * threshold;
            h = h - d;
        } else if (s > 0.5) {
            h = v_reset;
        }
        v[i] = h;
    }
}
"""


class _CffiState:
    """Process-wide lazy build state (one compile attempt per process)."""

    lock = threading.Lock()
    attempted = False
    ffi = None
    lib = None
    error: Optional[str] = None


def _cache_dir() -> Path:
    root = os.environ.get("REPRO_CFFI_CACHE")
    if root:
        return Path(root)
    base = os.environ.get("XDG_CACHE_HOME")
    return (Path(base) if base else Path.home() / ".cache") / "repro" / "cffi"


def _build():
    """Compile (or reuse) the cached extension module and load it."""

    digest = hashlib.sha256((_CDEF + _SOURCE).encode("utf-8")).hexdigest()[:16]
    modname = f"_repro_cffi_{digest}"
    cache = _cache_dir()
    cache.mkdir(parents=True, exist_ok=True)

    def _find_so():
        return sorted(cache.glob(modname + "*.so"))

    existing = _find_so()
    if not existing:
        lockfile = cache / (modname + ".lock")
        with open(lockfile, "w") as handle:
            try:
                import fcntl

                fcntl.flock(handle, fcntl.LOCK_EX)
            except ImportError:  # pragma: no cover - non-POSIX
                pass
            existing = _find_so()
            if not existing:
                builder = cffi.FFI()
                builder.cdef(_CDEF)
                # -ffp-contract=off: an FMA rounds once where the numpy
                # oracle rounds twice; contraction would break byte-identity.
                builder.set_source(
                    modname, _SOURCE,
                    extra_compile_args=["-O3", "-ffp-contract=off"],
                    libraries=["m"])
                builder.compile(tmpdir=str(cache))
                existing = _find_so()
    if not existing:  # pragma: no cover - compiler produced nothing
        raise RuntimeError(f"cffi build produced no extension in {cache}")
    spec = importlib.util.spec_from_file_location(modname, str(existing[0]))
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module.ffi, module.lib


def _load() -> None:
    with _CffiState.lock:
        if _CffiState.attempted:
            return
        _CffiState.attempted = True
        try:
            _CffiState.ffi, _CffiState.lib = _build()
        except Exception as exc:  # missing compiler, read-only cache, ...
            _CffiState.error = f"{type(exc).__name__}: {exc}"


def _lib():
    """The loaded ``(ffi, lib)`` pair, building lazily; ``lib`` may be None."""

    if not _CffiState.attempted:
        _load()
    return _CffiState.ffi, _CffiState.lib


def _cffi_im2col(x: np.ndarray, kernel, stride: int, padding: int) -> np.ndarray:
    from ....autograd.functional import im2col as numpy_im2col

    ffi, lib = _lib()
    if x.dtype != np.float64 or x.ndim != 4 or lib is None:
        return numpy_im2col(x, kernel, stride, padding)
    kh, kw = kernel
    # A contiguous copy preserves values exactly, so the gathered columns
    # (and everything downstream) keep their bits.
    x = np.ascontiguousarray(x)
    batch, channels, height, width = x.shape
    out_h = (height + 2 * padding - kh) // stride + 1
    out_w = (width + 2 * padding - kw) // stride + 1
    cols = np.empty((batch, out_h, out_w, channels * kh * kw))
    lib.repro_im2col(ffi.cast("double *", x.ctypes.data),
                     ffi.cast("double *", cols.ctypes.data),
                     batch, channels, height, width, kh, kw, out_h, out_w,
                     int(stride), int(padding))
    return cols


class CffiSoftwareAffineKernel(SoftwareAffineKernel):
    """Autograd-geometry affine kernel with the C im2col gather."""

    _im2col = staticmethod(_cffi_im2col)


class CffiArrayAffineKernel(ArrayAffineKernel):
    """Array-geometry affine kernel with the C im2col gather."""

    _im2col = staticmethod(_cffi_im2col)


class CffiNeuronKernel(NeuronKernel):
    """One FFI call per time step instead of ~8 full-buffer ufunc sweeps."""

    def run(self, x: np.ndarray) -> np.ndarray:
        ffi, lib = _lib()
        if x.dtype != np.float64 or lib is None:
            return super().run(x)
        if self.v is None or self.v.shape != x.shape:
            self._init_buffers(x.shape)
        x = np.ascontiguousarray(x)
        lib.repro_neuron_step(
            ffi.cast("double *", self.v.ctypes.data),
            ffi.cast("double *", x.ctypes.data),
            ffi.cast("double *", self._spike.ctypes.data),
            self.v.size,
            0 if self.inv_tau is None else 1,
            0.0 if self.inv_tau is None else float(self.inv_tau),
            float(self.rest),
            float(self.threshold),
            1 if self.v_reset is None else 0,
            0.0 if self.v_reset is None else float(self.v_reset))
        return self._spike


class CffiStuckAtKernel(StuckAtKernel):
    """Fused C stuck-at forcing; falls back to numpy off the fast path."""

    __slots__ = ("_c_ok",)

    def __init__(self, fmt) -> None:
        super().__init__(fmt)
        # word_mask must fit an int64 argument; >= 64 total bits falls back.
        self._c_ok = int(fmt.total_bits) < 64

    def force(self, values: np.ndarray, level, chunk: slice,
              raw: np.ndarray) -> np.ndarray:
        ffi, lib = _lib()
        bit_mask = level.bit_mask[chunk]
        inv_mask = level.inv_mask[chunk]
        stuck_one = None if level.stuck_one is None else level.stuck_one[chunk]
        if (lib is None
                or not self._c_ok
                or values.dtype != np.float64
                or not values.flags.c_contiguous
                or not bit_mask.flags.c_contiguous
                or not inv_mask.flags.c_contiguous
                or (stuck_one is not None
                    and not stuck_one.flags.c_contiguous)):
            return super().force(values, level, chunk, raw)
        chains = values.shape[0]
        inner = 0 if chains == 0 else values.size // chains
        mode = 1 if level.all_sa1 else (2 if level.all_sa0 else 0)
        lib.repro_stuck_force(
            ffi.cast("double *", values.ctypes.data),
            chains, inner,
            ffi.cast("int64_t *", bit_mask.ctypes.data),
            ffi.cast("int64_t *", inv_mask.ctypes.data),
            (ffi.NULL if stuck_one is None
             else ffi.cast("unsigned char *", stuck_one.ctypes.data)),
            mode, float(self.scale), float(self.min_code),
            float(self.max_code), self.word_mask, self.sign_mask)
        return values


class CffiBackend(NumpyBackend):
    """Compiled backend: C im2col + stuck-at force + neuron update.

    GEMMs, batch norm and pooling stay on the numpy kernels; only the
    bit-safe copy/elementwise hot spots run in C.  ``float32`` mode (and
    any spec the C path does not cover) delegates to the numpy kernels, so
    selecting this backend is always safe.
    """

    name = "cffi"

    def available(self) -> bool:
        _load()
        return _CffiState.error is None

    def unavailable_reason(self) -> Optional[str]:
        _load()
        return _CffiState.error

    def make_kernel(self, spec: object, dtype: np.dtype,
                    affine_mode: str = "software", batch_ndim: int = 1):
        if np.dtype(dtype) != np.dtype(np.float64):
            return super().make_kernel(spec, dtype, affine_mode=affine_mode,
                                       batch_ndim=batch_ndim)
        if isinstance(spec, AffineSpec):
            if affine_mode == "software":
                return CffiSoftwareAffineKernel(spec, np.dtype(dtype))
            if affine_mode == "array":
                return CffiArrayAffineKernel(spec, np.dtype(dtype))
            raise ValueError(f"unknown affine mode '{affine_mode}'")
        if isinstance(spec, NeuronSpec):
            return CffiNeuronKernel(spec, np.dtype(dtype))
        return super().make_kernel(spec, dtype, affine_mode=affine_mode,
                                   batch_ndim=batch_ndim)

    def im2col(self, x: np.ndarray, kernel, stride: int,
               padding: int) -> np.ndarray:
        return _cffi_im2col(x, kernel, stride, padding)

    def stuck_at_kernel(self, fmt) -> CffiStuckAtKernel:
        return CffiStuckAtKernel(fmt)


register_backend(CffiBackend())
