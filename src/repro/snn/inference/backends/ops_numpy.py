"""Default numpy backend: the fused pure-numpy runtime kernels.

Each kernel executes one :mod:`repro.snn.inference.plan` spec on plain
numpy arrays: no ``Tensor`` wrappers, no backward closures, and state
buffers (membrane potentials, scratch arrays) preallocated per shape and
updated in place.  A whole neuron time step -- charge, fire, reset -- runs
as a handful of ``out=``-style ufunc calls over the same buffers.

Bit-identity contract (``float64``): every kernel performs *exactly* the
elementwise/GEMM operations of its autograd counterpart, in the same order
and on arrays of the same shape and memory layout.  IEEE-754 arithmetic is
deterministic given that, so fused float64 outputs match the autograd
forward bit for bit (the property tests in
``tests/test_inference_engine.py`` assert it).  In ``float32`` mode the
same expressions are evaluated in single precision; results agree with the
float64 path to rounding tolerance, except near the spike threshold where a
rounding flip changes a spike (see the README's inference-engine section).

This module is also the reference every other backend is differentially
tested against: the float64 numpy path is the byte-identity *oracle* (see
``docs/ARCHITECTURE.md``, "Kernel backends").

Affine kernels come in two flavours:

* ``software`` -- the autograd forward's geometry (4D ``cols @ W.T`` for
  convolutions), bit-identical to ``model(x)`` in eval mode.
* ``array`` -- the systolic-array simulator's geometry (flattened 2D GEMM
  via :func:`~repro.systolic.mapping.as_weight_matrix`), bit-identical to a
  fault-free :meth:`~repro.systolic.array.SystolicArray.matmul` /
  ``conv2d`` and therefore to the clean columns of a faulty pass.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ....autograd.functional import im2col
from ..plan import (
    AffineSpec,
    BatchNormSpec,
    FlattenSpec,
    NeuronSpec,
    PoolSpec,
)
from .base import Backend

__all__ = [
    "NeuronKernel",
    "BatchNormKernel",
    "PoolKernel",
    "FlattenKernel",
    "SoftwareAffineKernel",
    "ArrayAffineKernel",
    "NumpyBackend",
    "make_kernel",
]


class NeuronKernel:
    """Fused charge -> fire -> reset update for one spiking layer.

    The membrane potential lives in ``self.v`` and is updated in place:
    after :meth:`run` it holds the post-reset potential, exactly like
    ``BaseNode.forward`` leaves ``self.v``.
    """

    def __init__(self, spec: NeuronSpec, dtype: np.dtype) -> None:
        self.inv_tau = spec.inv_tau
        self.threshold = spec.v_threshold
        self.v_reset = spec.v_reset
        self.rest = 0.0 if spec.v_reset is None else float(spec.v_reset)
        self.dtype = dtype
        self.v: Optional[np.ndarray] = None

    def reset(self) -> None:
        self.v = None

    def _init_buffers(self, shape: tuple) -> None:
        fill = 0.0 if self.v_reset is None else float(self.v_reset)
        self.v = np.full(shape, fill, dtype=self.dtype)
        self._scratch = np.empty(shape, dtype=self.dtype)
        self._z = np.empty(shape, dtype=self.dtype)
        self._spike = np.empty(shape, dtype=self.dtype)
        self._mask = np.empty(shape, dtype=bool)

    def run(self, x: np.ndarray) -> np.ndarray:
        if self.v is None or self.v.shape != x.shape:
            self._init_buffers(x.shape)
        v = self.v
        # Charge: H_t = v + x (IF) or v + (x - (v - rest)) * inv_tau
        # (LIF/PLIF); ``v`` holds H_t afterwards.
        if self.inv_tau is None:
            np.add(v, x, out=v)
        else:
            t = self._scratch
            np.subtract(v, self.rest, out=t)
            np.subtract(x, t, out=t)
            np.multiply(t, self.inv_tau, out=t)
            np.add(v, t, out=v)
        # Fire: spike = Heaviside(H / V_th - 1).  Writing the comparison
        # straight into the float buffer yields exactly the 0.0/1.0 values
        # of the autograd path's bool->float64 astype.
        z = self._z
        np.divide(v, self.threshold, out=z)
        np.subtract(z, 1.0, out=z)
        spike = self._spike
        np.greater(z, 0.0, out=spike, casting="unsafe")
        # Reset: soft subtracts V_th from firing neurons, hard pins them to
        # v_reset; ``v`` holds the next membrane potential afterwards.
        if self.v_reset is None:
            np.multiply(spike, self.threshold, out=z)
            np.subtract(v, z, out=v)
        else:
            np.greater(spike, 0.5, out=self._mask)
            np.copyto(v, self.v_reset, where=self._mask)
        return spike


class BatchNormKernel:
    """Eval-mode batch normalisation from frozen running statistics.

    ``batch_ndim`` is the number of leading batch-like axes: 1 for the
    plain lane, 2 in the fork lane of the fault engine, where activations
    carry a leading fault-map axis (``(F, batch, C, H, W)``).  The extra
    axis only changes broadcasting shapes, not per-element arithmetic.
    """

    def __init__(self, spec: BatchNormSpec, dtype: np.dtype,
                 batch_ndim: int = 1) -> None:
        self.spec = spec
        self.dtype = dtype
        self.batch_ndim = batch_ndim
        self._views = None
        self._out: Optional[np.ndarray] = None

    def _build_views(self, ndim: int):
        if ndim == self.batch_ndim + 3:
            view = (1,) * self.batch_ndim + (-1, 1, 1)
        elif ndim == self.batch_ndim + 1:
            view = (1,) * self.batch_ndim + (-1,)
        else:
            raise ValueError(
                f"batch norm expects {self.batch_ndim + 1}D or "
                f"{self.batch_ndim + 3}D input, got {ndim}D")
        spec = self.spec
        mean = spec.running_mean.reshape(view).astype(self.dtype)
        # Same expression as the autograd eval branch: (var + eps) ** -0.5.
        inv_std = ((spec.running_var.reshape(view).astype(self.dtype)
                    + self.dtype.type(spec.eps)) ** -0.5)
        gamma = spec.gamma.reshape(view).astype(self.dtype)
        beta = spec.beta.reshape(view).astype(self.dtype)
        return mean, inv_std, gamma, beta

    def run(self, x: np.ndarray) -> np.ndarray:
        if self._views is None or self._views[0].ndim != x.ndim:
            self._views = self._build_views(x.ndim)
        mean, inv_std, gamma, beta = self._views
        if self._out is None or self._out.shape != x.shape:
            self._out = np.empty(x.shape, dtype=self.dtype)
        out = self._out
        np.subtract(x, mean, out=out)
        np.multiply(out, inv_std, out=out)
        np.multiply(out, gamma, out=out)
        np.add(out, beta, out=out)
        return out


class PoolKernel:
    """Non-overlapping average/max pooling with square windows.

    Window reductions touch the same elements in the same order regardless
    of how many leading batch-like axes (``batch_ndim``) precede the
    ``(C, H, W)`` block, so per-element results match the single-batch-axis
    autograd path bit for bit.
    """

    def __init__(self, spec: PoolSpec, dtype: np.dtype, batch_ndim: int = 1) -> None:
        self.kind = spec.kind
        self.k = spec.kernel_size
        self.batch_ndim = batch_ndim

    def run(self, x: np.ndarray) -> np.ndarray:
        lead = x.shape[:self.batch_ndim]
        channels, height, width = x.shape[self.batch_ndim:]
        k = self.k
        out_h, out_w = height // k, width // k
        windows_shape = lead + (channels, out_h, k, out_w, k)
        base = self.batch_ndim
        if self.kind == "avg":
            # Matches Tensor.mean: a sum reduction scaled by 1/count (NOT
            # np.mean, whose division is a different rounding).
            reshaped = x.reshape(windows_shape)
            return reshaped.sum(axis=(base + 2, base + 4)) * (1.0 / (k * k))
        reshaped = x.reshape(windows_shape)
        perm = tuple(range(base)) + (base, base + 1, base + 3, base + 2, base + 4)
        windows = reshaped.transpose(perm).reshape(
            lead + (channels, out_h, out_w, k * k))
        return windows.max(axis=-1)


class FlattenKernel:
    def __init__(self, spec: FlattenSpec, dtype: np.dtype, batch_ndim: int = 1) -> None:
        self.batch_ndim = batch_ndim

    def run(self, x: np.ndarray) -> np.ndarray:
        return x.reshape(x.shape[:self.batch_ndim] + (-1,))


class SoftwareAffineKernel:
    """Conv/FC with the autograd forward's exact GEMM geometry.

    ``_im2col`` is the backend hook for the patch gather: a compiled
    backend overrides it with an implementation producing byte-identical
    columns (im2col is a pure copy, so any faithful layout-preserving
    implementation keeps the GEMM operands -- and therefore the result
    bits -- unchanged).
    """

    _im2col = staticmethod(im2col)

    def __init__(self, spec: AffineSpec, dtype: np.dtype) -> None:
        self.spec = spec
        if dtype == np.dtype(np.float64):
            self.weight = spec.weight
            self.bias = spec.bias
        else:
            self.weight = spec.weight.astype(dtype)
            self.bias = None if spec.bias is None else spec.bias.astype(dtype)

    def run(self, x: np.ndarray) -> np.ndarray:
        spec = self.spec
        if spec.kind == "linear":
            out = x @ self.weight.T
            if self.bias is not None:
                out = out + self.bias
            return out
        out_channels = self.weight.shape[0]
        kh, kw = self.weight.shape[2], self.weight.shape[3]
        cols = self._im2col(x, (kh, kw), spec.stride, spec.padding)
        out = cols @ self.weight.reshape(out_channels, -1).T
        if self.bias is not None:
            out = out + self.bias
        return out.transpose(0, 3, 1, 2)


class ArrayAffineKernel:
    """Fault-free Conv/FC with the systolic-array simulator's geometry.

    Convolutions flatten the im2col patches to a 2D ``(batch * out_h *
    out_w, k)`` GEMM operand, exactly like
    :meth:`~repro.systolic.array.SystolicArray.conv2d`, so the output of
    this kernel is bit-identical (float64) to running the layer through a
    fault-free array -- which is what the clean lane of a multi-fault-map
    pass must reproduce.
    """

    _im2col = staticmethod(im2col)

    def __init__(self, spec: AffineSpec, dtype: np.dtype) -> None:
        from ....systolic.mapping import as_weight_matrix

        self.spec = spec
        # .astype always copies, matching SystolicArray.matmul's weight prep
        # (same C-contiguous layout for the GEMM's B operand).
        self.weight_matrix = as_weight_matrix(spec.weight).astype(dtype)
        self.bias = None if spec.bias is None else np.asarray(spec.bias, dtype=dtype)

    def run(self, x: np.ndarray) -> np.ndarray:
        spec = self.spec
        if spec.kind == "linear":
            out = x @ self.weight_matrix.T
            if self.bias is not None:
                out = out + self.bias
            return out
        kh, kw = spec.weight.shape[2], spec.weight.shape[3]
        cols = self._im2col(x, (kh, kw), spec.stride, spec.padding)
        batch, out_h, out_w, k = cols.shape
        flat = cols.reshape(batch * out_h * out_w, k)
        out = flat @ self.weight_matrix.T
        if self.bias is not None:
            out = out + self.bias
        out_channels = self.weight_matrix.shape[0]
        return out.reshape(batch, out_h, out_w, out_channels).transpose(0, 3, 1, 2)


_KERNELS = {
    BatchNormSpec: BatchNormKernel,
    PoolSpec: PoolKernel,
    FlattenSpec: FlattenKernel,
}


def make_kernel(spec: object, dtype: np.dtype, affine_mode: str = "software",
                batch_ndim: int = 1):
    """Instantiate the numpy runtime kernel for one plan spec.

    ``affine_mode`` selects the GEMM geometry for :class:`AffineSpec` ops:
    ``"software"`` (autograd-identical) or ``"array"`` (fault-free systolic
    array, used for the clean lane of faulty passes).  ``batch_ndim`` is
    the number of leading batch-like axes of the lane's activations (2 in
    the fork lane, which carries a fault-map axis).
    """

    if isinstance(spec, AffineSpec):
        if affine_mode == "software":
            return SoftwareAffineKernel(spec, dtype)
        if affine_mode == "array":
            return ArrayAffineKernel(spec, dtype)
        raise ValueError(f"unknown affine mode '{affine_mode}'")
    if isinstance(spec, NeuronSpec):
        return NeuronKernel(spec, dtype)
    try:
        factory = _KERNELS[type(spec)]
    except KeyError:
        raise TypeError(f"no runtime kernel for spec {type(spec).__name__}")
    return factory(spec, dtype, batch_ndim=batch_ndim)


class NumpyBackend(Backend):
    """The default backend: pure-numpy kernels, float64 = the oracle."""

    name = "numpy"

    def make_kernel(self, spec: object, dtype: np.dtype,
                    affine_mode: str = "software", batch_ndim: int = 1):
        return make_kernel(spec, dtype, affine_mode=affine_mode,
                           batch_ndim=batch_ndim)


def _register() -> None:
    from . import register_backend

    register_backend(NumpyBackend())


_register()
