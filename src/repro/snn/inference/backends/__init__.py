"""Pluggable kernel-backend registry for the fused inference engines.

The fused engines execute a backend-agnostic
:class:`~repro.snn.inference.plan.InferencePlan`; *how* each op executes is
dispatched through this registry (the tinygrad ``Device``/``llops`` shape:
one IR, swappable runtimes discovered from ``ops_*.py`` modules).

* :func:`get_backend` resolves a backend instance: explicit argument >
  ``REPRO_BACKEND`` environment variable > ``"numpy"``.  An unknown name
  raises listing the available backends; a known backend whose runtime
  prerequisites are missing (e.g. no C compiler for the cffi backend)
  raises when requested explicitly but *degrades to numpy with a logged
  notice* when requested via the environment, so an exported
  ``REPRO_BACKEND`` can never break a box that lacks the toolchain.
* :func:`register_backend` adds a backend (third-party code can register
  its own without touching this package).
* Discovery: every ``ops_*.py`` module in this package is imported on
  first use; a module that fails to import (missing optional dependency)
  is recorded as "not available" instead of propagating the
  ``ImportError``.

Bit contract: the numpy float64 path is the byte-identity *oracle*.  Every
backend's float64 results must equal it ``tobytes()``-for-``tobytes()``
(enforced by the differential suite in ``tests/test_backends.py`` and the
CI backend job), which is why the backend name never enters float64
campaign cache keys -- exactly the ``lane_threads`` rule.
"""

from __future__ import annotations

import importlib
import os
from pathlib import Path
from typing import Dict, List, Optional

from ....utils.logging import get_logger
from .base import Backend

__all__ = [
    "Backend",
    "BackendUnavailableError",
    "available_backends",
    "get_backend",
    "register_backend",
    "resolve_backend_name",
]

logger = get_logger("snn.inference.backends")

#: Name of the default backend (always registered, always available).
DEFAULT_BACKEND = "numpy"

_REGISTRY: Dict[str, Backend] = {}
#: Import failures of ``ops_*`` modules, keyed by the backend name the
#: module's filename implies (``ops_cffi.py`` -> ``"cffi"``).
_IMPORT_ERRORS: Dict[str, str] = {}
_DISCOVERED = False


class BackendUnavailableError(RuntimeError):
    """An explicitly requested backend cannot run on this machine."""


def register_backend(backend: Backend) -> None:
    """Register ``backend`` under its :attr:`~Backend.name` (last wins)."""

    name = str(backend.name).strip().lower()
    if not name:
        raise ValueError("backend name must be non-empty")
    _REGISTRY[name] = backend


def _discover() -> None:
    """Import every ``ops_*.py`` module once, degrading on ImportError."""

    global _DISCOVERED
    if _DISCOVERED:
        return
    _DISCOVERED = True
    package_dir = Path(__file__).resolve().parent
    for path in sorted(package_dir.glob("ops_*.py")):
        name = path.stem[len("ops_"):]
        try:
            importlib.import_module(f"{__name__}.{path.stem}")
        except ImportError as exc:
            _IMPORT_ERRORS[name] = str(exc)
            logger.info("kernel backend '%s' not available: %s", name, exc)


def available_backends() -> List[str]:
    """Sorted names of the backends that can run on this machine."""

    _discover()
    return sorted(name for name, backend in _REGISTRY.items()
                  if backend.available())


def get_backend(name: Optional[str] = None) -> Backend:
    """Resolve a backend instance: argument > ``REPRO_BACKEND`` > numpy.

    An unknown name raises :class:`ValueError` listing the available
    backends.  A known-but-unavailable backend (failed import or missing
    runtime prerequisites) raises :class:`BackendUnavailableError` when
    requested via the ``name`` argument, but falls back to the numpy
    default with a logged notice when selected through the environment
    variable -- an exported ``REPRO_BACKEND`` must never break evaluation.
    """

    _discover()
    explicit = name is not None
    if name is None:
        name = os.environ.get("REPRO_BACKEND") or DEFAULT_BACKEND
    name = str(name).strip().lower() or DEFAULT_BACKEND
    backend = _REGISTRY.get(name)
    if backend is not None and backend.available():
        return backend
    if backend is None and name not in _IMPORT_ERRORS:
        raise ValueError(
            f"unknown backend '{name}'; available: {available_backends()}")
    reason = (_IMPORT_ERRORS.get(name, "import failed") if backend is None
              else backend.unavailable_reason() or "unavailable")
    if explicit:
        raise BackendUnavailableError(
            f"backend '{name}' is not available on this machine: {reason}")
    logger.warning(
        "REPRO_BACKEND=%s requested but the backend is not available (%s); "
        "falling back to '%s'", name, reason, DEFAULT_BACKEND)
    return _REGISTRY[DEFAULT_BACKEND]


def resolve_backend_name(name: Optional[str] = None) -> str:
    """Canonical name of the backend :func:`get_backend` would return.

    Campaign runners resolve once in the parent process (building a lazy
    backend if needed) and hand the resolved name to engines and forked
    workers, so every worker uses the parent's choice.
    """

    return get_backend(name).name
