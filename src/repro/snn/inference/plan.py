"""Lowering a trained module tree into a flat fused-inference plan.

The autograd :class:`~repro.snn.module.Module` tree is convenient for
training but expensive for pure evaluation: every elementwise membrane
update allocates ``Tensor`` objects, backward closures and fresh numpy
temporaries.  The inference subsystem *lowers* a trained network into an
:class:`InferencePlan` -- a flat list of small declarative op specs -- which
the engines in :mod:`repro.snn.inference.engine` execute with fused,
buffer-reusing numpy kernels and no graph construction.

Lowering is driven by the modules themselves: every supported layer class
implements a ``lower_inference(builder)`` hook that appends its spec(s) to a
:class:`PlanBuilder` (see :mod:`repro.snn.layers` and
:mod:`repro.snn.neurons`).  Containers forward the call to their children,
so new layer types only need a hook, not engine changes.  Weight arrays are
captured *by reference*: build the plan after training/loading and rebuild
it if parameters are replaced.

Affine (Conv/FC) ops carry their forward-order ordinal in
``AffineSpec.index``; the faulty multi-map engine keys per-map divergence
and clean-prefix sharing on that ordinal (see ``engine.FusedFaultEngine``).
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

import numpy as np

__all__ = [
    "LoweringError",
    "AffineSpec",
    "BatchNormSpec",
    "PoolSpec",
    "FlattenSpec",
    "NeuronSpec",
    "InferencePlan",
    "PlanBuilder",
    "lower_plan",
]

#: dtype names accepted by the inference engines.
SUPPORTED_DTYPES = ("float64", "float32")


class LoweringError(TypeError):
    """A module in the tree has no fused-inference lowering."""


# ----------------------------------------------------------------------
# Op specs (declarative; runtime kernels are built from these)
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class AffineSpec:
    """A Conv2d/Linear layer: the ops faults can corrupt on the array.

    ``index`` is the affine ordinal within the plan (0-based, forward
    order); the fault engines key divergence and weight preparation on it.
    """

    kind: str                       # "conv" | "linear"
    weight: np.ndarray              # reference to the layer's parameter data
    bias: Optional[np.ndarray]
    stride: int = 1
    padding: int = 0
    index: int = -1

    @property
    def weight_matrix_shape(self) -> tuple:
        """Shape of the 2D (out_features, in_features) view of ``weight``."""

        if self.weight.ndim == 2:
            return self.weight.shape
        out_channels = self.weight.shape[0]
        return (out_channels, int(np.prod(self.weight.shape[1:])))


@dataclasses.dataclass(frozen=True)
class BatchNormSpec:
    """Batch normalisation in eval mode (running statistics, no updates)."""

    gamma: np.ndarray
    beta: np.ndarray
    running_mean: np.ndarray
    running_var: np.ndarray
    eps: float


@dataclasses.dataclass(frozen=True)
class PoolSpec:
    kind: str                       # "avg" | "max"
    kernel_size: int


@dataclasses.dataclass(frozen=True)
class FlattenSpec:
    pass


@dataclasses.dataclass(frozen=True)
class NeuronSpec:
    """One spiking neuron layer's update constants.

    ``inv_tau`` is ``None`` for IF dynamics (``H = v + x``) and the scalar
    reciprocal time constant for LIF/PLIF (``H = v + (x - (v - rest)) *
    inv_tau``).  ``v_reset`` is ``None`` for soft reset (subtract the
    threshold), a float for hard reset to that value.
    """

    inv_tau: Optional[float]
    v_threshold: float
    v_reset: Optional[float]


#: Specs that carry no temporal state (safe to cache for static inputs).
_STATELESS_SPECS = (AffineSpec, BatchNormSpec, PoolSpec, FlattenSpec)


# ----------------------------------------------------------------------
# Plan
# ----------------------------------------------------------------------
@dataclasses.dataclass
class InferencePlan:
    """Flat lowering of a spiking classifier.

    Attributes
    ----------
    ops:
        Op specs in forward order (dropout layers lower to nothing: they
        are identity in eval mode).
    num_affine:
        Total number of affine ops.
    time_steps:
        Simulation steps ``T`` for static inputs (time-major inputs carry
        their own step count).
    static_prefix:
        Number of leading stateless ops.  For static inputs their outputs
        are identical at every time step, so the engines compute this
        prefix once per batch.
    """

    ops: List[object]
    num_affine: int
    time_steps: int

    @property
    def static_prefix(self) -> int:
        count = 0
        for op in self.ops:
            if not isinstance(op, _STATELESS_SPECS):
                break
            count += 1
        return count

    @property
    def affine_specs(self) -> List[AffineSpec]:
        return [op for op in self.ops if isinstance(op, AffineSpec)]


class PlanBuilder:
    """Accumulates op specs while walking a module tree.

    Layer hooks call the ``add_*`` methods; :meth:`lower` drives a module's
    ``lower_inference`` hook and converts missing hooks into
    :class:`LoweringError` with the offending module named.
    """

    def __init__(self) -> None:
        self._ops: List[object] = []
        self._num_affine = 0

    # ------------------------------------------------------------------
    def _append(self, spec: object) -> None:
        self._ops.append(spec)

    def add_affine(self, kind: str, weight: np.ndarray, bias: Optional[np.ndarray],
                   stride: int = 1, padding: int = 0) -> None:
        if kind not in ("conv", "linear"):
            raise ValueError(f"unknown affine kind '{kind}'")
        spec = AffineSpec(kind=kind, weight=weight, bias=bias, stride=int(stride),
                          padding=int(padding), index=self._num_affine)
        self._append(spec)
        self._num_affine += 1

    def add_batch_norm(self, gamma: np.ndarray, beta: np.ndarray,
                       running_mean: np.ndarray, running_var: np.ndarray,
                       eps: float) -> None:
        self._append(BatchNormSpec(gamma, beta, running_mean, running_var, float(eps)))

    def add_pool(self, kind: str, kernel_size: int) -> None:
        if kind not in ("avg", "max"):
            raise ValueError(f"unknown pool kind '{kind}'")
        self._append(PoolSpec(kind, int(kernel_size)))

    def add_flatten(self) -> None:
        self._append(FlattenSpec())

    def add_identity(self) -> None:
        """Lower to nothing (eval-mode dropout and friends)."""

    def add_neuron(self, inv_tau: Optional[float], v_threshold: float,
                   v_reset: Optional[float]) -> None:
        self._append(NeuronSpec(
            inv_tau=None if inv_tau is None else float(inv_tau),
            v_threshold=float(v_threshold),
            v_reset=None if v_reset is None else float(v_reset)))

    # ------------------------------------------------------------------
    def lower(self, module) -> None:
        """Lower ``module`` (and its subtree) into this builder."""

        hook = getattr(module, "lower_inference", None)
        if hook is None:
            raise LoweringError(
                f"{type(module).__name__} has no lower_inference hook; "
                "fused inference supports Conv2d/Linear/BatchNorm2d/pooling/"
                "Dropout/Flatten/Sequential and the spiking neuron layers")
        try:
            hook(self)
        except NotImplementedError as exc:
            raise LoweringError(
                f"{type(module).__name__} does not support fused inference "
                f"lowering") from exc

    def build(self, time_steps: int) -> InferencePlan:
        if time_steps <= 0:
            raise ValueError("time_steps must be positive")
        return InferencePlan(ops=list(self._ops), num_affine=self._num_affine,
                             time_steps=int(time_steps))


def lower_plan(model) -> InferencePlan:
    """Lower a :class:`~repro.snn.network.SpikingClassifier`-like model.

    ``model`` must provide a ``lower_inference`` hook and a ``time_steps``
    attribute (the temporal wrapper's step count for static inputs).
    """

    time_steps = getattr(model, "time_steps", None)
    if time_steps is None:
        raise LoweringError(
            f"{type(model).__name__} has no time_steps attribute; lower the "
            "temporal wrapper (SpikingClassifier), not a bare layer stack")
    builder = PlanBuilder()
    builder.lower(model)
    return builder.build(time_steps)
