"""Spiking neuron models: IF, LIF and PLIF (parametric LIF).

All neurons follow the formulation of the paper (Section IV):

* The membrane potential ``v`` integrates the input charge.
* A spike ``o = Heaviside(z)`` is emitted when ``z = v / V_th - 1 > 0``
  (Eq. 1), i.e. when ``v`` exceeds the threshold voltage ``V_th``.
* The discontinuous derivative ``do/dz`` is replaced by a surrogate
  (Eq. 2, the triangular surrogate by default).
* After a spike the membrane is reset (hard reset to ``v_reset`` or soft
  reset by subtracting ``V_th``).

Threshold-voltage optimization (the core of FalVolt) is realised by making
``V_th`` a learnable per-layer parameter: because the spike condition is
computed as ``z = v / V_th - 1`` inside the autodiff graph, backpropagation
produces exactly the ``dz/dV = -v / V_th^2`` factor of the paper's Eq. (4).
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..autograd import Tensor, where
from .module import Module, Parameter
from .surrogate import SurrogateGradient, Triangle

#: Lower bound applied to a learnable threshold voltage.  Keeps the spike
#: condition well defined if gradient descent drives the raw parameter toward
#: zero or below.
MIN_THRESHOLD = 0.05


class BaseNode(Module):
    """Common machinery for stateful spiking neuron layers.

    Parameters
    ----------
    v_threshold:
        Initial threshold voltage ``V_th``.
    v_reset:
        Reset potential.  ``None`` selects a *soft* reset (subtract
        ``V_th``), a float selects a *hard* reset to that value.
    surrogate:
        Surrogate gradient used in the backward pass (default: triangular,
        matching Eq. 2 of the paper).
    learnable_threshold:
        When true, ``V_th`` becomes a learnable scalar parameter for this
        layer (the FalVolt mechanism).
    layer_label:
        Human-readable label (e.g. ``"Conv1"``) used when reporting
        per-layer optimized thresholds (Fig. 6).
    """

    def __init__(
        self,
        v_threshold: float = 1.0,
        v_reset: Optional[float] = 0.0,
        surrogate: Optional[SurrogateGradient] = None,
        learnable_threshold: bool = False,
        layer_label: Optional[str] = None,
    ) -> None:
        super().__init__()
        if v_threshold <= 0:
            raise ValueError("v_threshold must be positive")
        self.surrogate = surrogate if surrogate is not None else Triangle()
        self.v_reset = v_reset
        self.learnable_threshold = bool(learnable_threshold)
        self.layer_label = layer_label
        if self.learnable_threshold:
            self.v_threshold_param = Parameter(np.array(float(v_threshold)))
        else:
            self.v_threshold_param = None
            self._fixed_threshold = float(v_threshold)
        self.v: Optional[Tensor] = None
        # Cached constants reused across time steps: the fixed-threshold
        # scalar tensor (invalidated by set/freeze) and the hard-reset fill
        # tensor as a (value, tensor) pair keyed by state shape.
        self._threshold_cache: Optional[Tensor] = None
        self._reset_cache = None

    # ------------------------------------------------------------------
    # Threshold handling
    # ------------------------------------------------------------------
    def threshold_tensor(self) -> Tensor:
        """Return the current threshold voltage as a tensor (learnable or fixed)."""

        if self.learnable_threshold:
            return self.v_threshold_param.maximum(MIN_THRESHOLD)
        if self._threshold_cache is None:
            self._threshold_cache = Tensor(np.array(self._fixed_threshold))
        return self._threshold_cache

    @property
    def v_threshold(self) -> float:
        """Current threshold voltage as a plain float (for reporting)."""

        if self.learnable_threshold:
            return float(max(self.v_threshold_param.data, MIN_THRESHOLD))
        return self._fixed_threshold

    def set_threshold(self, value: float) -> None:
        """Set the threshold voltage (works for both fixed and learnable modes)."""

        if value <= 0:
            raise ValueError("threshold voltage must be positive")
        if self.learnable_threshold:
            self.v_threshold_param.data[...] = float(value)
        else:
            self._fixed_threshold = float(value)
            self._threshold_cache = None

    def make_threshold_learnable(self, initial: Optional[float] = None) -> None:
        """Convert a fixed threshold into a learnable parameter (used by FalVolt)."""

        if self.learnable_threshold:
            if initial is not None:
                self.v_threshold_param.data[...] = float(initial)
            return
        value = float(initial) if initial is not None else self._fixed_threshold
        self.learnable_threshold = True
        self.v_threshold_param = Parameter(np.array(value))

    def freeze_threshold(self) -> None:
        """Convert a learnable threshold back into a fixed value."""

        if not self.learnable_threshold:
            return
        value = self.v_threshold
        self.learnable_threshold = False
        self._parameters.pop("v_threshold_param", None)
        object.__setattr__(self, "v_threshold_param", None)
        self._fixed_threshold = value
        self._threshold_cache = None

    # ------------------------------------------------------------------
    # State handling
    # ------------------------------------------------------------------
    def reset_state(self) -> None:
        """Forget the membrane potential (call between input sequences)."""

        self.v = None

    def _init_state(self, x: Tensor) -> None:
        if self.v is None or self.v.shape != x.shape:
            fill = 0.0 if self.v_reset is None else float(self.v_reset)
            self.v = Tensor(np.full(x.shape, fill))

    # ------------------------------------------------------------------
    # Neuron dynamics (template methods)
    # ------------------------------------------------------------------
    def _charge(self, x: Tensor) -> Tensor:
        """Integrate input ``x`` into the membrane potential and return it."""

        raise NotImplementedError

    def _fire(self, h: Tensor) -> Tensor:
        threshold = self.threshold_tensor()
        z = h / threshold - 1.0
        return self.surrogate(z)

    def _reset(self, h: Tensor, spike: Tensor) -> Tensor:
        if self.v_reset is None:
            # Soft reset: subtract the threshold from neurons that fired.
            return h - spike * self.threshold_tensor()
        # Hard reset: spiking neurons return to v_reset.  The fill tensor is
        # constant per (state shape, reset value), so it is cached rather
        # than re-allocated at every time step; the value check covers
        # direct ``node.v_reset = ...`` mutation (e.g. the reset-mode
        # ablation).
        value = float(self.v_reset)
        cached = self._reset_cache
        if cached is None or cached[0] != value or cached[1].shape != h.shape:
            self._reset_cache = cached = (value, Tensor(np.full(h.shape, value)))
        return where(spike.data > 0.5, cached[1], h)

    def forward(self, x: Tensor) -> Tensor:
        """Advance the neuron by a single time step and return the spike output."""

        self._init_state(x)
        h = self._charge(x)
        spike = self._fire(h)
        self.v = self._reset(h, spike)
        return spike

    # ------------------------------------------------------------------
    # Fused inference lowering
    # ------------------------------------------------------------------
    def _inference_inv_tau(self) -> Optional[float]:
        """Scalar reciprocal time constant of the charge step (None = IF)."""

        raise NotImplementedError(
            f"{type(self).__name__} does not define its fused charge dynamics")

    def lower_inference(self, builder) -> None:
        builder.add_neuron(self._inference_inv_tau(), self.v_threshold, self.v_reset)


class IFNode(BaseNode):
    """Integrate-and-fire neuron (no leak): ``H_t = v_{t-1} + x_t``."""

    def _charge(self, x: Tensor) -> Tensor:
        return self.v + x

    def _inference_inv_tau(self) -> Optional[float]:
        return None


class LIFNode(BaseNode):
    """Leaky integrate-and-fire neuron with a fixed membrane time constant.

    The discrete-time update follows the standard LIF form used by the PLIF
    paper: ``H_t = v_{t-1} + (x_t - (v_{t-1} - v_rest)) / tau``.
    """

    def __init__(self, tau: float = 2.0, **kwargs) -> None:
        super().__init__(**kwargs)
        if tau < 1.0:
            raise ValueError("tau must be >= 1 for a stable LIF update")
        self.tau = float(tau)

    def _charge(self, x: Tensor) -> Tensor:
        rest = 0.0 if self.v_reset is None else float(self.v_reset)
        return self.v + (x - (self.v - rest)) * (1.0 / self.tau)

    def _inference_inv_tau(self) -> Optional[float]:
        return 1.0 / self.tau


class PLIFNode(BaseNode):
    """Parametric LIF neuron (Fang et al., ICCV 2021) with a learnable time constant.

    The reciprocal time constant is parameterised as ``1/tau = sigmoid(w)``
    with ``w`` learnable, which keeps ``tau > 1`` for any ``w`` and makes the
    network far less sensitive to initialisation -- the property the paper
    relies on for fast fault-aware retraining.
    """

    def __init__(self, init_tau: float = 2.0, **kwargs) -> None:
        super().__init__(**kwargs)
        if init_tau <= 1.0:
            raise ValueError("init_tau must be > 1")
        # sigmoid(w) = 1 / init_tau  =>  w = -log(init_tau - 1)
        init_w = -math.log(init_tau - 1.0)
        self.w = Parameter(np.array(init_w))

    @property
    def tau(self) -> float:
        """Current membrane time constant implied by the learnable parameter.

        ``tau = 1 / sigmoid(w)`` simplifies to ``1 + exp(-w)``.
        """

        return float(1.0 + np.exp(-self.w.data))

    def _charge(self, x: Tensor) -> Tensor:
        rest = 0.0 if self.v_reset is None else float(self.v_reset)
        reciprocal_tau = self.w.sigmoid()
        return self.v + (x - (self.v - rest)) * reciprocal_tau

    def _inference_inv_tau(self) -> Optional[float]:
        # Identical expression to Tensor.sigmoid so the fused charge step
        # multiplies by the exact same scalar as the autograd forward.
        return float(1.0 / (1.0 + np.exp(-self.w.data)))


def spiking_nodes(module: Module) -> list[BaseNode]:
    """Return all spiking neuron layers inside ``module`` in traversal order."""

    return [m for m in module.modules() if isinstance(m, BaseNode)]
