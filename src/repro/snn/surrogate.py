"""Surrogate gradient functions for the non-differentiable spike step.

A spiking neuron fires ``o = Heaviside(z)`` where ``z = v / V_th - 1``
(Eq. 1 of the paper).  During backpropagation the derivative of the step is
replaced by a smooth surrogate; the paper (Eq. 2) uses the triangular
surrogate ``do/dz = gamma * max(0, 1 - |z|)``.  ATan and sigmoid surrogates
are provided for the ablation study.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Function, Tensor


class _SpikeFunction(Function):
    """Heaviside step forward, surrogate derivative backward."""

    @staticmethod
    def forward(ctx: dict, z: np.ndarray, *, surrogate: "SurrogateGradient") -> np.ndarray:
        ctx["z"] = z
        ctx["surrogate"] = surrogate
        return (z > 0.0).astype(np.float64)

    @staticmethod
    def backward(ctx: dict, grad: np.ndarray):
        derivative = ctx["surrogate"].derivative(ctx["z"])
        return (grad * derivative,)


class SurrogateGradient:
    """Base class: callable that maps a pre-activation tensor to spikes."""

    def derivative(self, z: np.ndarray) -> np.ndarray:
        """Return the surrogate derivative evaluated element-wise at ``z``."""

        raise NotImplementedError

    def __call__(self, z: Tensor) -> Tensor:
        return _SpikeFunction.apply(z, surrogate=self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        params = ", ".join(f"{k}={v}" for k, v in sorted(vars(self).items()))
        return f"{type(self).__name__}({params})"


class Triangle(SurrogateGradient):
    """Triangular surrogate of the paper's Eq. (2): ``gamma * max(0, 1 - |z|)``."""

    def __init__(self, gamma: float = 1.0) -> None:
        if gamma <= 0:
            raise ValueError("gamma must be positive")
        self.gamma = float(gamma)

    def derivative(self, z: np.ndarray) -> np.ndarray:
        return self.gamma * np.maximum(0.0, 1.0 - np.abs(z))


class ATan(SurrogateGradient):
    """ATan surrogate used by the PLIF paper (Fang et al., ICCV 2021)."""

    def __init__(self, alpha: float = 2.0) -> None:
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        self.alpha = float(alpha)

    def derivative(self, z: np.ndarray) -> np.ndarray:
        return self.alpha / (2.0 * (1.0 + (np.pi / 2.0 * self.alpha * z) ** 2))


class SigmoidSurrogate(SurrogateGradient):
    """Sigmoid-shaped surrogate: derivative of ``sigmoid(alpha * z)``."""

    def __init__(self, alpha: float = 4.0) -> None:
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        self.alpha = float(alpha)

    def derivative(self, z: np.ndarray) -> np.ndarray:
        s = 1.0 / (1.0 + np.exp(-self.alpha * z))
        return self.alpha * s * (1.0 - s)


_SURROGATES = {
    "triangle": Triangle,
    "atan": ATan,
    "sigmoid": SigmoidSurrogate,
}


def get_surrogate(name: str, **kwargs) -> SurrogateGradient:
    """Look up a surrogate by name (``triangle``, ``atan`` or ``sigmoid``)."""

    key = name.lower()
    if key not in _SURROGATES:
        raise KeyError(f"unknown surrogate '{name}'; options: {sorted(_SURROGATES)}")
    return _SURROGATES[key](**kwargs)
