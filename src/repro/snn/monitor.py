"""Spike-activity monitoring for trained SNNs.

FalVolt works because pruning the weights mapped to faulty PEs reduces the
synaptic drive into every layer, so the original threshold voltage becomes
too high and the network falls silent; lowering the per-layer threshold
restores the firing rates.  This module provides the instrumentation used to
*see* that effect: a :class:`SpikeMonitor` that records per-layer firing
rates (and spike counts) during inference, plus helpers to compare the
activity of a healthy, a pruned, and a FalVolt-repaired network.
"""

from __future__ import annotations

import contextlib
import dataclasses
from typing import Dict, List

import numpy as np

from ..autograd import Tensor, no_grad
from .network import SpikingClassifier
from .neurons import BaseNode


@dataclasses.dataclass
class LayerActivity:
    """Aggregated spiking statistics of one neuron layer."""

    label: str
    total_spikes: float = 0.0
    total_neurons: float = 0.0
    time_steps: int = 0

    @property
    def firing_rate(self) -> float:
        """Average spikes per neuron per time step, in [0, 1]."""

        denominator = self.total_neurons
        return self.total_spikes / denominator if denominator else 0.0


class SpikeMonitor(contextlib.AbstractContextManager):
    """Context manager recording per-layer firing rates of a spiking model.

    Example
    -------
    >>> with SpikeMonitor(model) as monitor:          # doctest: +SKIP
    ...     model.predict(test_images)
    >>> monitor.firing_rates()                        # doctest: +SKIP
    {'Conv1': 0.12, 'Conv2': 0.08, 'FC1': 0.05, 'FC2': 0.03}
    """

    def __init__(self, model: SpikingClassifier, labelled_only: bool = False) -> None:
        self.model = model
        self.labelled_only = labelled_only
        self._records: Dict[int, LayerActivity] = {}
        self._nodes: List[BaseNode] = []

    # ------------------------------------------------------------------
    def _target_nodes(self) -> List[BaseNode]:
        nodes = self.model.spiking_layers()
        if self.labelled_only:
            nodes = [n for n in nodes if n.layer_label]
        return nodes

    def __enter__(self) -> "SpikeMonitor":
        self._nodes = self._target_nodes()
        for index, node in enumerate(self._nodes):
            label = node.layer_label or f"spiking-{index}"
            self._records[index] = LayerActivity(label=label)
            original = type(node).forward

            def make_wrapper(node=node, index=index, original=original):
                def wrapped(x: Tensor) -> Tensor:
                    spikes = original(node, x)
                    record = self._records[index]
                    record.total_spikes += float(spikes.data.sum())
                    record.total_neurons += float(spikes.data.size)
                    record.time_steps += 1
                    return spikes
                return wrapped

            object.__setattr__(node, "forward", make_wrapper())
        return self

    def __exit__(self, *exc_info) -> None:
        for node in self._nodes:
            if "forward" in node.__dict__:
                object.__delattr__(node, "forward")
        self._nodes = []

    # ------------------------------------------------------------------
    def activities(self) -> List[LayerActivity]:
        """Per-layer activity records in forward order."""

        return [self._records[index] for index in sorted(self._records)]

    def firing_rates(self) -> Dict[str, float]:
        """Mapping of layer label -> average firing rate."""

        return {record.label: record.firing_rate for record in self.activities()}

    def total_spike_count(self) -> float:
        """Total number of spikes emitted by all monitored layers."""

        return float(sum(record.total_spikes for record in self.activities()))


def measure_firing_rates(model: SpikingClassifier, inputs: np.ndarray,
                         labelled_only: bool = True) -> Dict[str, float]:
    """Run one inference pass and return per-layer firing rates."""

    was_training = model.training
    model.eval()
    try:
        with SpikeMonitor(model, labelled_only=labelled_only) as monitor, no_grad():
            model(Tensor(np.asarray(inputs, dtype=np.float64)))
    finally:
        model.train(was_training)
    return monitor.firing_rates()


def activity_drop(before: Dict[str, float], after: Dict[str, float]) -> Dict[str, float]:
    """Relative drop in firing rate per layer between two measurements.

    Values in [0, 1]; 0 means unchanged, 1 means the layer went completely
    silent.  Layers missing from either measurement are skipped.
    """

    drops: Dict[str, float] = {}
    for label, rate_before in before.items():
        if label not in after:
            continue
        if rate_before <= 0:
            drops[label] = 0.0
        else:
            drops[label] = max(0.0, 1.0 - after[label] / rate_before)
    return drops
