"""Command-line interface for the FalVolt reproduction.

Exposes the experiment registry so every figure of the paper can be
regenerated from the shell::

    python -m repro list                      # list all registered experiments
    python -m repro run fig7 --dataset mnist  # regenerate one figure
    python -m repro run fig5b --dataset dvs_gesture --out fig5b.json
    python -m repro info                      # package / configuration summary

Fault-injection campaigns run directly on the campaign engine::

    python -m repro campaign counts --counts 0,4,8,16 --trials 8
    python -m repro campaign bits --bits 0,4,8,14 --engine sequential
    python -m repro campaign counts --engine fused --dtype float32
    python -m repro campaign sizes --sizes 8,16,32 --workers 4 --cache-dir .cache

Named scenarios bundle dataset, sweep axis, fault model and mitigation
into one registry entry (:mod:`repro.experiments.scenarios`)::

    python -m repro campaign --list-scenarios
    python -m repro campaign --scenario nmnist-transient-bernoulli
    python -m repro campaign --scenario dvs-gesture-transient-burst --engine sequential

Sweeps scale out through the campaign orchestrator: ``--workers K`` pulls
work units from a crash-tolerant work-stealing queue, ``--resume``
persists unit results so an interrupted sweep continues where it stopped,
and ``--shard i/N`` splits one sweep across N machines sharing a cache
directory::

    python -m repro campaign counts --trials 8 --workers 4 --resume
    python -m repro campaign counts --shard 0/2 --cache-dir sweep-cache
    python -m repro campaign counts --shard 1/2 --cache-dir sweep-cache
    python -m repro campaign counts --cache-dir sweep-cache  # merge

The CLI is a thin layer over :mod:`repro.experiments` and
:mod:`repro.faults`; anything it can do is also available programmatically.
"""

from __future__ import annotations

import argparse
import inspect
import sys
from typing import List, Optional, Sequence

from . import __version__
from .experiments import (
    EXPERIMENTS,
    default_config,
    format_table,
    get_experiment,
    list_experiments,
)
from .experiments.config import PAPER_DATASETS, SCALES
from .utils import configure_logging, save_records


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Improving Reliability of Spiking Neural Networks "
                    "through Fault Aware Threshold Voltage Optimization' (FalVolt, DATE 2023)")
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    subparsers = parser.add_subparsers(dest="command")

    list_parser = subparsers.add_parser("list", help="list registered experiments")
    list_parser.set_defaults(handler=_cmd_list)

    info_parser = subparsers.add_parser("info", help="show package and preset information")
    info_parser.set_defaults(handler=_cmd_info)

    run_parser = subparsers.add_parser("run", help="run one registered experiment")
    run_parser.add_argument("experiment", choices=sorted(EXPERIMENTS),
                            help="experiment id (e.g. fig7)")
    run_parser.add_argument("--dataset", choices=PAPER_DATASETS, default="mnist")
    run_parser.add_argument("--scale", choices=sorted(SCALES), default="small")
    run_parser.add_argument("--seed", type=int, default=None,
                            help="override the preset seed")
    run_parser.add_argument("--out", default=None,
                            help="optional JSON path for the raw records")
    _add_engine_arguments(run_parser)
    run_parser.set_defaults(handler=_cmd_run)

    campaign_parser = subparsers.add_parser(
        "campaign", help="run a fault-injection sweep on the campaign engine")
    campaign_parser.add_argument("sweep", nargs="?", default=None,
                                 choices=("bits", "counts", "sizes"),
                                 help="grid axis: bit positions, faulty-PE counts "
                                      "or array sizes (Fig. 5a/5b/5c); omit when "
                                      "using --scenario")
    campaign_parser.add_argument("--scenario", default=None, metavar="NAME",
                                 help="run a named scenario from the registry "
                                      "(dataset x sweep x fault model x "
                                      "mitigation); see --list-scenarios")
    campaign_parser.add_argument("--list-scenarios", action="store_true",
                                 help="list registered scenarios and exit")
    campaign_parser.add_argument("--dataset", choices=PAPER_DATASETS, default="mnist")
    campaign_parser.add_argument("--scale", choices=sorted(SCALES), default="small")
    campaign_parser.add_argument("--seed", type=int, default=None)
    campaign_parser.add_argument("--bits", type=_int_list, default=None,
                                 help="comma-separated bit positions (bits sweep)")
    campaign_parser.add_argument("--counts", type=_int_list, default=None,
                                 help="comma-separated faulty-PE counts (counts sweep)")
    campaign_parser.add_argument("--sizes", type=_int_list, default=None,
                                 help="comma-separated array sizes (sizes sweep)")
    campaign_parser.add_argument("--trials", type=int, default=4,
                                 help="fault maps per grid point")
    campaign_parser.add_argument("--stuck", choices=("sa0", "sa1"), default="sa1")
    campaign_parser.add_argument("--out", default=None,
                                 help="optional JSON path for the raw records")
    _add_engine_arguments(campaign_parser)
    campaign_parser.set_defaults(handler=_cmd_campaign)
    return parser


def _int_list(text: str) -> List[int]:
    return [int(part) for part in text.split(",") if part.strip()]


def _shard_spec(text: str):
    from .faults import ShardSpec

    try:
        return ShardSpec.parse(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


#: Cache directory used when ``--resume``/``--shard`` are given without an
#: explicit ``--cache-dir``.
DEFAULT_CACHE_DIR = ".repro-cache"


def _add_engine_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--engine", choices=("fused", "batched", "sequential"),
                        default="fused",
                        help="campaign execution engine (float64 records are "
                             "identical across engines; 'fused' is the "
                             "no-autograd default)")
    parser.add_argument("--dtype", choices=("float64", "float32"), default="float64",
                        help="fused-engine evaluation dtype (float32 trades "
                             "bit-identity for speed)")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes pulling sweep units from the "
                             "orchestrator's work-stealing queue (1 = serial)")
    parser.add_argument("--lane-threads", type=int, default=None, metavar="N",
                        help="fused-engine fork-lane threads per evaluation "
                             "(default: $REPRO_LANE_THREADS or 1; inside a "
                             "--workers pool an unset value stays 1 so the "
                             "pools compose; 0 auto-sizes from the forked-"
                             "map count and the CPU count).  Records are "
                             "byte-identical for every value")
    parser.add_argument("--backend", default=None, metavar="NAME",
                        help="fused-engine kernel backend (default: "
                             "$REPRO_BACKEND or 'numpy'; 'cffi' compiles the "
                             "fused C kernels on first use).  float64 "
                             "records are byte-identical across backends")
    parser.add_argument("--cache-dir", default=None,
                        help="directory for on-disk result caching (doubles "
                             "as the shard coordination layer)")
    parser.add_argument("--shard", type=_shard_spec, default=None, metavar="i/N",
                        help="run only shard i of an N-way sweep split "
                             "(0-based); shards pointed at the same cache "
                             "directory partition the work units exactly "
                             "(sweep experiments only)")
    parser.add_argument("--trial-chunk", type=int, default=None, metavar="K",
                        help="split each sweep point into work units of at "
                             "most K trials (default: one unit per point); "
                             "per-map accuracies are independent of the "
                             "split, so merged float64 records are "
                             "byte-identical to an unchunked run")
    parser.add_argument("--unit-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-unit soft deadline for orchestrated sweeps: "
                             "a worker whose unit runs longer is killed and "
                             "the unit retried on another worker (default: "
                             "derived from observed unit timings).  A timing "
                             "knob only -- records are unchanged")
    parser.add_argument("--resume", action="store_true",
                        help=f"cache results under {DEFAULT_CACHE_DIR}/ (when "
                             "no --cache-dir is given) so an interrupted "
                             "sweep continues where it stopped")
    parser.add_argument("--no-plan-cache", action="store_true",
                        help="disable the per-process lowered-plan cache "
                             "(the fused engine then re-lowers the "
                             "inference plan per evaluation; results are "
                             "unchanged either way)")


def _resolve_cache_dir(args: argparse.Namespace) -> Optional[str]:
    """Cache directory implied by --cache-dir / --resume / --shard."""

    if args.cache_dir:
        return args.cache_dir
    if args.resume or args.shard is not None:
        return DEFAULT_CACHE_DIR
    return None


def _print_progress(event: dict) -> None:
    kind = event.get("kind")
    if kind == "unit-done":
        position = (f"{event['completed']}/{event['total']}"
                    if "completed" in event else f"point {event.get('point_index')}")
        eta = event.get("eta_seconds")
        eta_text = f", eta {eta:.0f}s" if eta is not None else ""
        print(f"  unit {position} done: point {event.get('point_index')} "
              f"chunk {event.get('chunk_index')} in {event.get('seconds', 0.0):.2f}s"
              f"{eta_text}")
    elif kind == "unit-failed":
        print(f"  unit for point {event.get('point_index')} failed on attempt "
              f"{event.get('attempt')}: {event.get('error')}")
    elif kind == "worker-crash":
        print(f"  worker {event.get('pid')} died (exit {event.get('exitcode')}); "
              f"rescheduling its unit if attempts remain")
    elif kind == "worker-hung":
        print(f"  worker {event.get('pid')} hung ({event.get('error')}); "
              f"killed and replaced, rescheduling its unit if attempts remain")
    elif kind == "cache-corrupt":
        print(f"  damaged cache entry quarantined to "
              f"{event.get('quarantined_to')}; recomputing "
              f"({event.get('detail')})")
    elif kind == "store-degraded":
        print(f"  could not store cache record ({event.get('detail')}); "
              f"continuing uncached")


def _cmd_list(args: argparse.Namespace) -> int:
    rows = [{
        "id": spec.experiment_id,
        "paper artifact": spec.paper_artifact,
        "description": spec.description,
    } for spec in list_experiments()]
    print(format_table(rows, columns=["id", "paper artifact", "description"],
                       title="Registered experiments"))
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    print(f"repro {__version__} -- FalVolt (DATE 2023) reproduction")
    print(f"datasets: {', '.join(PAPER_DATASETS)}")
    print(f"scales:   {', '.join(sorted(SCALES))}")
    rows = []
    for dataset in PAPER_DATASETS:
        config = default_config(dataset)
        rows.append({
            "dataset": dataset,
            "train/test": f"{config.num_train}/{config.num_test}",
            "channels": config.channels,
            "time steps": config.time_steps,
            "array": f"{config.array_rows}x{config.array_cols}",
            "baseline epochs": config.baseline_epochs,
        })
    print(format_table(rows, columns=["dataset", "train/test", "channels", "time steps",
                                      "array", "baseline epochs"],
                       title="Small-scale presets"))
    return 0


def _engine_kwargs_for(runner, args: argparse.Namespace) -> dict:
    """Engine options accepted by ``runner`` (not every experiment sweeps)."""

    accepted = inspect.signature(runner).parameters
    options = {"engine": args.engine, "workers": args.workers,
               "cache_dir": _resolve_cache_dir(args), "dtype": args.dtype,
               "shard": args.shard, "trial_chunk": args.trial_chunk,
               "unit_timeout": args.unit_timeout,
               "lane_threads": args.lane_threads,
               "backend": args.backend,
               "plan_cache": not args.no_plan_cache}
    if args.workers > 1 or args.shard is not None:
        options["progress"] = _print_progress
    return {key: value for key, value in options.items() if key in accepted}


def _report_pending_shard(exc, args: argparse.Namespace) -> int:
    """Explain a sharded sweep that is waiting on its sibling shards."""

    cache_dir = _resolve_cache_dir(args)
    print(f"shard {args.shard} finished its work units; "
          f"{len(exc.pending)} sweep point(s) still need units from other "
          f"shards.")
    print(f"run the remaining shards against --cache-dir {cache_dir}, then "
          f"re-run this command without --shard (or with --resume) to merge "
          f"the records from the cache.")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from .faults import PendingShardError

    spec = get_experiment(args.experiment)
    overrides = {}
    if args.seed is not None:
        overrides["seed"] = args.seed
    config = default_config(args.dataset, scale=args.scale, **overrides)
    print(f"running {spec.experiment_id} ({spec.paper_artifact}) on {args.dataset} "
          f"[{args.scale} scale]")
    try:
        records = spec.runner(config, **_engine_kwargs_for(spec.runner, args))
    except PendingShardError as exc:
        return _report_pending_shard(exc, args)
    if records and isinstance(records, list) and isinstance(records[0], dict):
        print(format_table(records, title=f"{spec.experiment_id} records"))
    if args.out:
        save_records(records, args.out)
        print(f"records saved to {args.out}")
    return 0


#: Record columns printed per sweep axis (shared by sweeps and scenarios).
_CAMPAIGN_COLUMNS = {
    "bits": ["dataset", "stuck_type", "bit_position", "accuracy", "accuracy_std"],
    "counts": ["dataset", "num_faulty_pes", "fault_rate", "accuracy", "accuracy_std"],
    "sizes": ["dataset", "array_size", "num_faulty_pes", "accuracy", "accuracy_std"],
}


def _cmd_campaign_scenario(args: argparse.Namespace) -> int:
    """Resolve and run a registered scenario (``campaign --scenario NAME``)."""

    from .experiments.scenarios import get_scenario, run_scenario
    from .faults import PendingShardError

    try:
        scenario = get_scenario(args.scenario)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    cache_dir = _resolve_cache_dir(args)
    engine_options = dict(engine=args.engine, workers=args.workers,
                          cache_dir=cache_dir, dtype=args.dtype,
                          shard=args.shard, trial_chunk=args.trial_chunk,
                          unit_timeout=args.unit_timeout,
                          lane_threads=args.lane_threads,
                          backend=args.backend,
                          plan_cache=not args.no_plan_cache)
    if args.workers > 1 or args.shard is not None:
        engine_options["progress"] = _print_progress
    config_overrides = {"seed": args.seed} if args.seed is not None else None
    cache_text = f", cache {cache_dir}" if cache_dir else ""
    print(f"campaign scenario '{scenario.name}' -- {scenario.describe()} "
          f"[{scenario.scale} scale, {args.engine} engine, "
          f"dtype={args.dtype}, workers={args.workers}{cache_text}]")
    try:
        records = run_scenario(scenario, config_overrides=config_overrides,
                               **engine_options)
    except PendingShardError as exc:
        return _report_pending_shard(exc, args)
    print(format_table(records, columns=_CAMPAIGN_COLUMNS[scenario.sweep],
                       title=f"scenario {scenario.name} records"))
    if args.out:
        save_records(records, args.out)
        print(f"records saved to {args.out}")
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    from .experiments import prepare_baseline
    from .faults import (
        PendingShardError,
        sweep_array_sizes,
        sweep_bit_locations,
        sweep_faulty_pe_count,
    )
    from .systolic import DEFAULT_ACCUMULATOR_FORMAT
    from .utils.rng import derive_seed

    if args.list_scenarios:
        from .experiments.scenarios import list_scenarios

        rows = [{
            "name": scenario.name,
            "dataset": scenario.dataset,
            "sweep": scenario.sweep,
            "fault model": scenario.fault_model,
            "mitigation": scenario.mitigation,
            "description": scenario.description,
        } for scenario in list_scenarios()]
        print(format_table(rows, columns=["name", "dataset", "sweep", "fault model",
                                          "mitigation", "description"],
                           title="Registered scenarios"))
        return 0
    if (args.sweep is None) == (args.scenario is None):
        print("error: give exactly one of a sweep axis (bits/counts/sizes) "
              "or --scenario NAME", file=sys.stderr)
        return 2
    if args.scenario is not None:
        return _cmd_campaign_scenario(args)

    overrides = {}
    if args.seed is not None:
        overrides["seed"] = args.seed
    config = default_config(args.dataset, scale=args.scale, **overrides)
    baseline = prepare_baseline(config)
    model = baseline.model_factory()
    cache_dir = _resolve_cache_dir(args)
    engine_options = dict(engine=args.engine, workers=args.workers,
                          cache_dir=cache_dir, dtype=args.dtype,
                          shard=args.shard, trial_chunk=args.trial_chunk,
                          unit_timeout=args.unit_timeout,
                          lane_threads=args.lane_threads,
                          backend=args.backend,
                          plan_cache=not args.no_plan_cache)
    if args.workers > 1 or args.shard is not None:
        engine_options["progress"] = _print_progress
    shard_text = f", shard {args.shard}" if args.shard is not None else ""
    cache_text = f", cache {cache_dir}" if cache_dir else ""
    print(f"campaign '{args.sweep}' on {args.dataset} [{args.scale} scale, "
          f"{args.engine} engine, dtype={args.dtype}, workers={args.workers}"
          f"{shard_text}{cache_text}]")

    try:
        if args.sweep == "bits":
            top = DEFAULT_ACCUMULATOR_FORMAT.magnitude_msb
            bits = args.bits if args.bits is not None else sorted(set(range(0, top + 1, 2)) | {top})
            records = sweep_bit_locations(
                model, baseline.test_loader,
                rows=config.array_rows, cols=config.array_cols,
                bit_positions=bits, trials=args.trials, stuck_types=(args.stuck,),
                dataset=config.dataset, seed=derive_seed(config.seed, "fig5a"),
                **engine_options)
        elif args.sweep == "counts":
            counts = args.counts if args.counts is not None else [0, 2, 4, 8, 16]
            records = sweep_faulty_pe_count(
                model, baseline.test_loader,
                rows=config.array_rows, cols=config.array_cols,
                counts=counts, trials=args.trials, stuck_type=args.stuck,
                dataset=config.dataset, seed=derive_seed(config.seed, "fig5b"),
                **engine_options)
        else:
            sizes = args.sizes if args.sizes is not None else [4, 8, 16, 32]
            records = sweep_array_sizes(
                model, baseline.test_loader,
                sizes=sizes, num_faulty=4, trials=args.trials, stuck_type=args.stuck,
                dataset=config.dataset, seed=derive_seed(config.seed, "fig5c"),
                **engine_options)
    except PendingShardError as exc:
        return _report_pending_shard(exc, args)

    print(format_table(records, columns=_CAMPAIGN_COLUMNS[args.sweep],
                       title=f"campaign {args.sweep} records"))
    if args.out:
        save_records(records, args.out)
        print(f"records saved to {args.out}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""

    configure_logging()
    parser = build_parser()
    args = parser.parse_args(argv)
    if not getattr(args, "handler", None):
        parser.print_help()
        return 2
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())
