"""Command-line interface for the FalVolt reproduction.

Exposes the experiment registry so every figure of the paper can be
regenerated from the shell::

    python -m repro list                      # list all registered experiments
    python -m repro run fig7 --dataset mnist  # regenerate one figure
    python -m repro run fig5b --dataset dvs_gesture --out fig5b.json
    python -m repro info                      # package / configuration summary

The CLI is a thin layer over :mod:`repro.experiments`; anything it can do is
also available programmatically.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from . import __version__
from .experiments import (
    EXPERIMENTS,
    default_config,
    format_table,
    get_experiment,
    list_experiments,
)
from .experiments.config import PAPER_DATASETS, SCALES
from .utils import configure_logging, save_records


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Improving Reliability of Spiking Neural Networks "
                    "through Fault Aware Threshold Voltage Optimization' (FalVolt, DATE 2023)")
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    subparsers = parser.add_subparsers(dest="command")

    list_parser = subparsers.add_parser("list", help="list registered experiments")
    list_parser.set_defaults(handler=_cmd_list)

    info_parser = subparsers.add_parser("info", help="show package and preset information")
    info_parser.set_defaults(handler=_cmd_info)

    run_parser = subparsers.add_parser("run", help="run one registered experiment")
    run_parser.add_argument("experiment", choices=sorted(EXPERIMENTS),
                            help="experiment id (e.g. fig7)")
    run_parser.add_argument("--dataset", choices=PAPER_DATASETS, default="mnist")
    run_parser.add_argument("--scale", choices=sorted(SCALES), default="small")
    run_parser.add_argument("--seed", type=int, default=None,
                            help="override the preset seed")
    run_parser.add_argument("--out", default=None,
                            help="optional JSON path for the raw records")
    run_parser.set_defaults(handler=_cmd_run)
    return parser


def _cmd_list(args: argparse.Namespace) -> int:
    rows = [{
        "id": spec.experiment_id,
        "paper artifact": spec.paper_artifact,
        "description": spec.description,
    } for spec in list_experiments()]
    print(format_table(rows, columns=["id", "paper artifact", "description"],
                       title="Registered experiments"))
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    print(f"repro {__version__} -- FalVolt (DATE 2023) reproduction")
    print(f"datasets: {', '.join(PAPER_DATASETS)}")
    print(f"scales:   {', '.join(sorted(SCALES))}")
    rows = []
    for dataset in PAPER_DATASETS:
        config = default_config(dataset)
        rows.append({
            "dataset": dataset,
            "train/test": f"{config.num_train}/{config.num_test}",
            "channels": config.channels,
            "time steps": config.time_steps,
            "array": f"{config.array_rows}x{config.array_cols}",
            "baseline epochs": config.baseline_epochs,
        })
    print(format_table(rows, columns=["dataset", "train/test", "channels", "time steps",
                                      "array", "baseline epochs"],
                       title="Small-scale presets"))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    spec = get_experiment(args.experiment)
    overrides = {}
    if args.seed is not None:
        overrides["seed"] = args.seed
    config = default_config(args.dataset, scale=args.scale, **overrides)
    print(f"running {spec.experiment_id} ({spec.paper_artifact}) on {args.dataset} "
          f"[{args.scale} scale]")
    records = spec.runner(config)
    if records and isinstance(records, list) and isinstance(records[0], dict):
        print(format_table(records, title=f"{spec.experiment_id} records"))
    if args.out:
        save_records(records, args.out)
        print(f"records saved to {args.out}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""

    configure_logging()
    parser = build_parser()
    args = parser.parse_args(argv)
    if not getattr(args, "handler", None):
        parser.print_help()
        return 2
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())
