"""Fault-aware pruning with retraining, no threshold optimization (FaPIT).

FaPIT is the stronger ANN-style baseline of the paper (Fig. 7 and Fig. 8):
after pruning the weights mapped to faulty PEs, the remaining weights are
retrained with surrogate-gradient backpropagation, but the threshold voltage
of every layer stays fixed at its initial-training value (1.0).  FalVolt
differs only in additionally optimizing the per-layer threshold, which is
what buys its ~2x faster convergence.
"""

from __future__ import annotations

from ..snn.network import SpikingClassifier
from .base import FaultMitigation


class FaultAwarePruningWithRetraining(FaultMitigation):
    """FaPIT baseline: prune + retrain weights with a fixed threshold voltage."""

    method_name = "FaPIT"

    def __init__(self, retraining_epochs: int = 10, fixed_threshold: float = 1.0,
                 **kwargs) -> None:
        if retraining_epochs <= 0:
            raise ValueError("FaPIT requires at least one retraining epoch")
        super().__init__(retraining_epochs=retraining_epochs, **kwargs)
        if fixed_threshold <= 0:
            raise ValueError("fixed_threshold must be positive")
        self.fixed_threshold = fixed_threshold

    def prepare_model(self, model: SpikingClassifier) -> None:
        """Pin every spiking layer's threshold to the fixed (non-learnable) value."""

        for node in model.spiking_layers():
            node.freeze_threshold()
            node.set_threshold(self.fixed_threshold)
