"""Common scaffolding shared by the FaP, FaPIT and FalVolt mitigation methods."""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Optional


from ..datasets.base import DataLoader
from ..faults.fault_map import FaultMap
from ..snn.loss import rate_mse_loss
from ..snn.network import SpikingClassifier
from ..snn.optim import Adam
from ..snn.training import Trainer, TrainingHistory
from .pruning import (
    PruningMaskCallback,
    find_pruned_weight_indices,
    pruned_fraction,
    set_pruned_weights_to_zero,
)


@dataclasses.dataclass
class MitigationResult:
    """Outcome of one mitigation run (Algorithm 1's outputs plus bookkeeping).

    Attributes
    ----------
    method:
        ``"FaP"``, ``"FaPIT"`` or ``"FalVolt"``.
    accuracy:
        Test accuracy of the mitigated model (bypassed faulty PEs).
    baseline_accuracy:
        Fault-free accuracy of the pre-trained model, for reference.
    thresholds:
        Final per-layer threshold voltages (layer label -> V_th).
    history:
        Per-retraining-epoch accuracy trace (used for Fig. 8).
    pruned_fraction:
        Fraction of weights zeroed by the fault-aware pruning step.
    retraining_epochs:
        Number of retraining epochs actually executed.
    fault_rate:
        Fraction of faulty PEs in the fault map.
    """

    method: str
    accuracy: float
    baseline_accuracy: float
    thresholds: Dict[str, float]
    history: TrainingHistory
    pruned_fraction: float
    retraining_epochs: int
    fault_rate: float
    dataset: str = ""

    @property
    def accuracy_drop(self) -> float:
        """Accuracy lost relative to the fault-free baseline (>= 0 when degraded)."""

        return self.baseline_accuracy - self.accuracy

    def epochs_to_baseline(self, tolerance: float = 0.01) -> Optional[int]:
        """Retraining epochs needed to come within ``tolerance`` of the baseline."""

        return self.history.epochs_to_reach(self.baseline_accuracy - tolerance)

    def as_dict(self) -> dict:
        return {
            "method": self.method,
            "dataset": self.dataset,
            "accuracy": self.accuracy,
            "baseline_accuracy": self.baseline_accuracy,
            "accuracy_drop": self.accuracy_drop,
            "thresholds": dict(self.thresholds),
            "history": self.history.as_dict(),
            "pruned_fraction": self.pruned_fraction,
            "retraining_epochs": self.retraining_epochs,
            "fault_rate": self.fault_rate,
        }


class FaultMitigation:
    """Base class for fault-aware mitigation strategies.

    The common flow (Algorithm 1) is:

    1. locate the weights mapped to faulty PEs and zero them,
    2. optionally retrain the remaining weights (and, for FalVolt, the
       per-layer threshold voltages), re-zeroing pruned weights after every
       epoch,
    3. report the test accuracy of the mitigated network.

    Subclasses customise step 2 through :meth:`prepare_model` (e.g. making
    thresholds learnable) and the ``retraining_epochs`` default.
    """

    method_name = "base"

    def __init__(self, retraining_epochs: int = 10, learning_rate: float = 5e-3,
                 loss_fn: Callable = rate_mse_loss,
                 optimizer_factory: Optional[Callable] = None) -> None:
        if retraining_epochs < 0:
            raise ValueError("retraining_epochs must be non-negative")
        self.retraining_epochs = retraining_epochs
        self.learning_rate = learning_rate
        self.loss_fn = loss_fn
        self.optimizer_factory = optimizer_factory or (
            lambda params, lr: Adam(params, lr=lr))

    # ------------------------------------------------------------------
    # Hooks for subclasses
    # ------------------------------------------------------------------
    def prepare_model(self, model: SpikingClassifier) -> None:
        """Adjust the model before retraining (default: nothing)."""

    # ------------------------------------------------------------------
    # Main entry point
    # ------------------------------------------------------------------
    def run(self, model: SpikingClassifier, fault_map: FaultMap,
            train_loader: DataLoader, test_loader: DataLoader,
            num_classes: int, baseline_accuracy: Optional[float] = None,
            verbose: bool = False) -> MitigationResult:
        """Execute the mitigation on ``model`` (modified in place) and return the result."""

        trainer_probe = Trainer(model, optimizer=_NullOptimizer(model), num_classes=num_classes,
                                loss_fn=self.loss_fn)
        if baseline_accuracy is None:
            baseline_accuracy = trainer_probe.evaluate(test_loader)

        masks = find_pruned_weight_indices(model, fault_map)
        set_pruned_weights_to_zero(model, masks)
        self.prepare_model(model)

        history = TrainingHistory()
        if self.retraining_epochs > 0:
            optimizer = self.optimizer_factory(model.parameters(), self.learning_rate)
            trainer = Trainer(model, optimizer, num_classes=num_classes, loss_fn=self.loss_fn)
            history = trainer.fit(train_loader, epochs=self.retraining_epochs,
                                  test_loader=test_loader,
                                  callbacks=[PruningMaskCallback(masks)],
                                  verbose=verbose)
        # Ensure the pruned weights are zero for the final evaluation.
        set_pruned_weights_to_zero(model, masks)
        final_accuracy = trainer_probe.evaluate(test_loader)

        return MitigationResult(
            method=self.method_name,
            accuracy=final_accuracy,
            baseline_accuracy=baseline_accuracy,
            thresholds=model.threshold_summary(),
            history=history,
            pruned_fraction=pruned_fraction(masks),
            retraining_epochs=self.retraining_epochs,
            fault_rate=fault_map.fault_rate,
        )


class _NullOptimizer:
    """Placeholder optimizer used when only evaluation is needed."""

    def __init__(self, model: SpikingClassifier) -> None:
        self.parameters = model.parameters()
        self.lr = 0.0

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:  # pragma: no cover - never used for updates
        pass
