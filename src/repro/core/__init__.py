"""Fault-mitigation methods: FaP, FaPIT and FalVolt (the paper's contribution)."""

from typing import Dict, Type

from .pruning import (
    PruningMaskCallback,
    affine_layers,
    find_pruned_weight_indices,
    pruned_fraction,
    set_pruned_weights_to_zero,
)
from .base import FaultMitigation, MitigationResult
from .fap import FaultAwarePruning
from .fapit import FaultAwarePruningWithRetraining
from .falvolt import FalVolt, run_falvolt
from .threshold_search import best_threshold, search_cost_epochs, threshold_grid_search

#: Registry of mitigation strategies by their paper names.
MITIGATIONS: Dict[str, Type[FaultMitigation]] = {
    "fap": FaultAwarePruning,
    "fapit": FaultAwarePruningWithRetraining,
    "falvolt": FalVolt,
}


def get_mitigation(name: str, **kwargs) -> FaultMitigation:
    """Instantiate a mitigation by name (``fap``, ``fapit`` or ``falvolt``)."""

    key = name.lower()
    if key not in MITIGATIONS:
        raise KeyError(f"unknown mitigation '{name}'; options: {sorted(MITIGATIONS)}")
    return MITIGATIONS[key](**kwargs)


__all__ = [
    "PruningMaskCallback",
    "affine_layers",
    "find_pruned_weight_indices",
    "pruned_fraction",
    "set_pruned_weights_to_zero",
    "FaultMitigation",
    "MitigationResult",
    "FaultAwarePruning",
    "FaultAwarePruningWithRetraining",
    "FalVolt",
    "run_falvolt",
    "best_threshold",
    "search_cost_epochs",
    "threshold_grid_search",
    "MITIGATIONS",
    "get_mitigation",
]
