"""FalVolt: fault-aware retraining with per-layer threshold voltage optimization.

This module implements the paper's primary contribution (Algorithm 1):

1. ``FindPrunedWeightsIndices`` / ``SetPrunedWeightsToZero`` -- the weights
   mapped onto faulty PEs (from the post-fabrication fault map) are zeroed,
   modelling the hardware bypass of Fig. 3b.
2. The unpruned weights *and one threshold voltage per spiking layer* are
   retrained jointly with surrogate-gradient backpropagation.  The spike
   condition is ``z = v / V_th - 1`` (Eq. 1); the surrogate (Eq. 2)
   approximates ``do/dz``; and the gradient of the loss with respect to
   ``V_th`` follows Eq. (3)-(4) through the autodiff graph.
3. The pruned weights are re-zeroed at the end of every retraining epoch
   (line 13), because gradient updates would otherwise move them away from
   the value the bypassed hardware can realise.

Setting ``retraining_epochs=0`` makes FalVolt degenerate to plain
fault-aware pruning, as noted in the paper.
"""

from __future__ import annotations

from typing import Optional

from ..snn.network import SpikingClassifier
from .base import FaultMitigation


class FalVolt(FaultMitigation):
    """Fault-aware threshold-voltage optimization in retraining (the paper's method)."""

    method_name = "FalVolt"

    def __init__(self, retraining_epochs: int = 10,
                 initial_threshold: Optional[float] = None,
                 threshold_learning_rate: Optional[float] = None,
                 **kwargs) -> None:
        """Create a FalVolt mitigation.

        Parameters
        ----------
        retraining_epochs:
            Maximum retraining epochs (Algorithm 1's ``trEpochs``).
        initial_threshold:
            Starting value for the learnable per-layer threshold voltages;
            ``None`` keeps each layer's current threshold.
        threshold_learning_rate:
            Reserved for a separate threshold learning rate; the default
            uses the same optimizer for weights and thresholds, which is the
            formulation of Algorithm 1 (one learning rate ``eta``).
        """

        super().__init__(retraining_epochs=retraining_epochs, **kwargs)
        self.initial_threshold = initial_threshold
        self.threshold_learning_rate = threshold_learning_rate

    def prepare_model(self, model: SpikingClassifier) -> None:
        """Make the threshold voltage of every spiking layer a learnable parameter."""

        for node in model.spiking_layers():
            node.make_threshold_learnable(initial=self.initial_threshold)


def run_falvolt(model: SpikingClassifier, fault_map, train_loader, test_loader,
                num_classes: int, retraining_epochs: int = 10,
                learning_rate: float = 5e-3, **kwargs):
    """Convenience wrapper: build a :class:`FalVolt` and run it on ``model``.

    Returns the :class:`~repro.core.base.MitigationResult` with the retrained
    weights left in ``model`` (Algorithm 1 returns ``nWts``, ``nVth`` and the
    accuracy; here the weights and thresholds live in the model object).
    """

    mitigation = FalVolt(retraining_epochs=retraining_epochs, learning_rate=learning_rate,
                         **kwargs)
    return mitigation.run(model, fault_map, train_loader, test_loader, num_classes=num_classes)
