"""Fault-aware pruning (FaP): bypass faulty PEs, no retraining.

The paper uses FaP as the weakest baseline (Fig. 7): the weights mapped to
faulty PEs are zeroed (equivalent to the hardware bypass of Fig. 3b) and the
network is deployed as-is.  As the fault rate grows the accumulated pruning
destroys accuracy.  FaP is exactly FalVolt with zero retraining epochs
(paper, Section IV).
"""

from __future__ import annotations

from .base import FaultMitigation


class FaultAwarePruning(FaultMitigation):
    """FaP baseline: prune weights mapped to faulty PEs and stop."""

    method_name = "FaP"

    def __init__(self, **kwargs) -> None:
        kwargs.setdefault("retraining_epochs", 0)
        if kwargs.get("retraining_epochs", 0) != 0:
            raise ValueError("FaP performs no retraining; use FaPIT or FalVolt instead")
        super().__init__(**kwargs)
