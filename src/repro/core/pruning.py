"""Fault-aware weight pruning (Algorithm 1, lines 1-2 and 13).

Given a per-chip fault map, the weights that the weight-stationary dataflow
would place on faulty PEs are located (``FindPrunedWeightsIndices``) and set
to zero (``SetPrunedWeightsToZero``).  Zeroing a weight is the software
counterpart of bypassing the faulty PE with the multiplexer of Fig. 3b: the
PE's contribution to the column sum is skipped.

Because the array is reused across tiles and across layers, one faulty PE
generally prunes several weights in every layer.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..faults.fault_map import FaultMap
from ..snn.layers import Conv2d, Linear
from ..snn.module import Module
from ..systolic.mapping import faulty_mask_for_layer_weight


def affine_layers(model: Module) -> List[Tuple[str, Module]]:
    """Return (name, layer) for every Conv2d / Linear layer mapped to the array.

    Names are the fully qualified parameter prefixes (e.g.
    ``layers.layer3``) so masks can be stored and re-applied by name.
    """

    found: List[Tuple[str, Module]] = []

    def visit(module: Module, prefix: str) -> None:
        for child_name, child in module._modules.items():
            qualified = f"{prefix}{child_name}"
            if isinstance(child, (Conv2d, Linear)):
                found.append((qualified, child))
            visit(child, f"{qualified}.")

    visit(model, "")
    return found


def find_pruned_weight_indices(model: Module, fault_map: FaultMap) -> Dict[str, np.ndarray]:
    """``FindPrunedWeightsIndices``: boolean prune-mask per affine layer.

    The mask has the shape of the layer's weight tensor; ``True`` marks
    weights mapped onto a faulty PE.
    """

    coords = fault_map.coordinates()
    masks: Dict[str, np.ndarray] = {}
    for name, layer in affine_layers(model):
        masks[name] = faulty_mask_for_layer_weight(layer.weight.data, coords,
                                                   fault_map.rows, fault_map.cols)
    return masks


def set_pruned_weights_to_zero(model: Module, masks: Dict[str, np.ndarray]) -> int:
    """``SetPrunedWeightsToZero``: zero every masked weight in place.

    Returns the total number of weights zeroed.
    """

    layers = dict(affine_layers(model))
    zeroed = 0
    for name, mask in masks.items():
        if name not in layers:
            raise KeyError(f"layer '{name}' not found in model")
        layer = layers[name]
        if mask.shape != layer.weight.data.shape:
            raise ValueError(f"mask shape {mask.shape} does not match weight "
                             f"shape {layer.weight.data.shape} for layer '{name}'")
        layer.weight.data[mask] = 0.0
        zeroed += int(mask.sum())
    return zeroed


def pruned_fraction(masks: Dict[str, np.ndarray]) -> float:
    """Fraction of all mapped weights that are pruned, in [0, 1]."""

    total = sum(int(np.asarray(mask).size) for mask in masks.values())
    pruned = sum(int(np.asarray(mask).sum()) for mask in masks.values())
    return pruned / total if total else 0.0


class PruningMaskCallback:
    """Epoch callback that re-zeroes pruned weights (Algorithm 1, line 13).

    Gradient updates during retraining would otherwise move the pruned
    weights away from zero, which the bypassed hardware cannot realise.
    """

    def __init__(self, masks: Dict[str, np.ndarray]) -> None:
        self.masks = masks

    def __call__(self, model: Module, epoch: int, logs: dict) -> None:
        set_pruned_weights_to_zero(model, self.masks)
