"""Exhaustive threshold-voltage search (the paper's motivational study, Fig. 2).

Before proposing FalVolt the paper shows that the *right* fixed threshold
voltage can recover accuracy of a faulty systolicSNN, but that finding it
requires a grid of expensive retraining runs -- one per candidate threshold.
This module implements that grid search so the motivational figure can be
regenerated and so the cost of the exhaustive search can be compared with a
single FalVolt run.
"""

from __future__ import annotations

from typing import List, Sequence


from ..datasets.base import DataLoader
from ..faults.fault_map import FaultMap
from ..snn.network import SpikingClassifier
from .fapit import FaultAwarePruningWithRetraining


def threshold_grid_search(model_factory, fault_map: FaultMap,
                          train_loader: DataLoader, test_loader: DataLoader,
                          num_classes: int,
                          thresholds: Sequence[float] = (0.45, 0.5, 0.55, 0.7),
                          retraining_epochs: int = 5,
                          learning_rate: float = 5e-3,
                          dataset: str = "") -> List[dict]:
    """Retrain with each candidate fixed threshold and record the final accuracy.

    Parameters
    ----------
    model_factory:
        Zero-argument callable returning a *fresh copy* of the pre-trained
        model (each candidate threshold retrains from the same starting
        weights, as in the paper's parallel retraining simulations).
    fault_map:
        The chip's fault map (same map for every candidate).
    thresholds:
        Candidate threshold voltages; the paper sweeps {0.45, 0.5, 0.55, 0.7}.

    Returns a list of records ``{"threshold", "accuracy", "fault_rate", ...}``.
    """

    if not thresholds:
        raise ValueError("at least one candidate threshold is required")
    records: List[dict] = []
    for threshold in thresholds:
        model: SpikingClassifier = model_factory()
        mitigation = FaultAwarePruningWithRetraining(
            retraining_epochs=retraining_epochs, fixed_threshold=float(threshold),
            learning_rate=learning_rate)
        result = mitigation.run(model, fault_map, train_loader, test_loader,
                                num_classes=num_classes)
        records.append({
            "dataset": dataset,
            "threshold": float(threshold),
            "fault_rate": fault_map.fault_rate,
            "accuracy": result.accuracy,
            "baseline_accuracy": result.baseline_accuracy,
            "retraining_epochs": retraining_epochs,
        })
    return records


def best_threshold(records: Sequence[dict]) -> dict:
    """Return the grid-search record with the highest accuracy."""

    if not records:
        raise ValueError("records must not be empty")
    return max(records, key=lambda record: record["accuracy"])


def search_cost_epochs(records: Sequence[dict]) -> int:
    """Total retraining epochs consumed by the exhaustive search.

    This is the cost FalVolt avoids by optimizing the threshold inside a
    single retraining run.
    """

    return int(sum(record["retraining_epochs"] for record in records))
