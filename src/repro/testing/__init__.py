"""Deterministic failure-injection utilities for robustness testing.

The campaign runtime promises to degrade gracefully under worker crashes,
worker hangs, slow units, corrupt cache entries and full disks.  This
package provides the harness that *proves* those guarantees instead of
asserting them: :class:`~repro.testing.chaos.ChaosPlan` describes a seeded,
reproducible set of failures which the orchestrator and the campaign cache
consult at well-defined hook points (see ``docs/ARCHITECTURE.md``,
"Failure modes and guarantees").
"""

from .chaos import (
    CHAOS_ENV_VAR,
    ChaosError,
    ChaosPlan,
    ChaosRule,
    active_plan,
    clear_plan,
    install_plan,
)

__all__ = [
    "CHAOS_ENV_VAR",
    "ChaosError",
    "ChaosPlan",
    "ChaosRule",
    "active_plan",
    "clear_plan",
    "install_plan",
]
