"""Deterministic chaos-injection plans for the campaign runtime.

A :class:`ChaosPlan` is an explicit, reproducible list of failures to
inject into a sweep: *this* unit hangs, *that* unit crashes, the first
cache store writes garbage, the next one hits a full disk.  The campaign
runtime consults the plan at two hook points --

* ``"unit"``: inside the orchestrator worker, immediately before a work
  unit is evaluated (:meth:`CampaignOrchestrator._compute_unit`).  Actions:
  ``hang`` (sleep far past any deadline, optionally ignoring ``SIGTERM``),
  ``crash`` (``os._exit``), ``slow`` (bounded sleep) and ``raise`` (a
  :class:`ChaosError`, exercising the poisoned-unit path).
* ``"cache-store"``: inside :func:`repro.faults.campaign._store_record`,
  after the temp file is written but before it is atomically renamed.
  Actions: ``corrupt`` (truncate or garble the bytes that will land in the
  cache) and ``enospc`` (raise ``OSError(ENOSPC)``, exercising the
  degrade-to-uncached path).

Three properties make plans usable as *test oracles* rather than fuzzers:

* **Deterministic.**  Rules name their victims explicitly (a unit ordinal,
  a cache-file substring), and :meth:`ChaosPlan.sample` derives a rule set
  from a seed via ``numpy``'s PCG64 -- the same seed always injects the
  same failures.  Chaos only perturbs scheduling and IO, never arithmetic,
  so float64 sweep records must come back byte-identical to a clean run.
* **Cross-process.**  Workers are forked, so each process holds its own
  copy of the plan; ``once`` semantics therefore live on the filesystem: a
  rule fires only for the process that wins the ``O_CREAT | O_EXCL``
  marker race in ``state_dir``.  A retried unit thus fails exactly the
  planned number of times and then succeeds.
* **Injectable from outside.**  ``REPRO_CHAOS`` (inline JSON or
  ``@path/to/plan.json``) installs a process-wide plan resolved lazily by
  :func:`active_plan`, which is how the CI chaos-smoke job drives the
  stock CLI through a failure storm without new flags.
"""

from __future__ import annotations

import dataclasses
import errno
import json
import os
import signal
import tempfile
import time
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

from ..utils.logging import get_logger

__all__ = [
    "CHAOS_ENV_VAR",
    "ChaosError",
    "ChaosPlan",
    "ChaosRule",
    "active_plan",
    "clear_plan",
    "install_plan",
]

logger = get_logger("testing.chaos")

#: Environment variable consulted by :func:`active_plan` (inline JSON spec,
#: or ``@path`` to a JSON file).
CHAOS_ENV_VAR = "REPRO_CHAOS"

#: Hook points the runtime exposes to plans.
SITES = ("unit", "cache-store")

#: Injectable failure actions, per site.
ACTIONS = {
    "unit": ("hang", "crash", "slow", "raise"),
    "cache-store": ("corrupt", "enospc"),
}

#: How a ``corrupt`` rule damages the staged cache bytes.
CORRUPT_MODES = ("truncate", "garbage")

#: Exit code of ``crash``-action workers (distinctive in pool logs).
CRASH_EXIT_CODE = 66


class ChaosError(RuntimeError):
    """Exception raised by a ``raise``-action rule (a poisoned unit)."""


@dataclasses.dataclass(frozen=True)
class ChaosRule:
    """One injected failure: *where* (site/key), *what* (action), *how often*.

    ``key`` selects the victim: for ``"unit"`` rules an exact unit ordinal
    (``None`` matches every unit); for ``"cache-store"`` rules a substring
    of the cache file name (``None`` matches every store).  ``once`` rules
    fire a single time across *all* processes sharing the plan's state
    directory -- the semantics a retried unit needs to eventually succeed.
    """

    site: str
    action: str
    key: Optional[Union[int, str]] = None
    seconds: float = 0.05
    once: bool = True
    uninterruptible: bool = False
    mode: str = "truncate"

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise ValueError(f"unknown chaos site {self.site!r}; options: {SITES}")
        if self.action not in ACTIONS[self.site]:
            raise ValueError(
                f"action {self.action!r} is not valid at site {self.site!r}; "
                f"options: {ACTIONS[self.site]}")
        if self.mode not in CORRUPT_MODES:
            raise ValueError(
                f"unknown corrupt mode {self.mode!r}; options: {CORRUPT_MODES}")
        if self.seconds < 0:
            raise ValueError("seconds must be non-negative")

    def matches(self, site: str, key) -> bool:
        if site != self.site:
            return False
        if self.key is None:
            return True
        if self.site == "unit":
            return key == self.key
        return str(self.key) in str(key or "")

    def as_payload(self) -> dict:
        payload = dataclasses.asdict(self)
        return {name: value for name, value in payload.items() if value is not None}


class ChaosPlan:
    """A reproducible failure plan consulted by the campaign runtime.

    Parameters
    ----------
    rules:
        :class:`ChaosRule` instances (or plain dicts with the same keys).
    state_dir:
        Directory holding the cross-process ``once`` markers.  Defaults to
        a fresh temporary directory; processes must share the directory
        (forked workers inherit it automatically) for ``once`` semantics
        to span the pool.
    hang_seconds:
        Upper bound on how long a ``hang`` rule sleeps (a safety net so an
        unwatched hang cannot block a run forever); the watchdog is
        expected to kill the worker long before this expires.
    """

    def __init__(self, rules: Sequence[Union[ChaosRule, dict]], *,
                 state_dir: Optional[Union[str, Path]] = None,
                 hang_seconds: float = 600.0) -> None:
        self.rules: Tuple[ChaosRule, ...] = tuple(
            rule if isinstance(rule, ChaosRule) else ChaosRule(**rule)
            for rule in rules)
        if state_dir is None:
            state_dir = tempfile.mkdtemp(prefix="repro-chaos-")
        self.state_dir = Path(state_dir)
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self.hang_seconds = float(hang_seconds)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_spec(cls, spec: Union[str, dict, "ChaosPlan"]) -> "ChaosPlan":
        """Build a plan from a dict, an inline JSON string or ``@file`` path."""

        if isinstance(spec, ChaosPlan):
            return spec
        if isinstance(spec, str):
            text = spec.strip()
            if text.startswith("@"):
                text = Path(text[1:]).read_text(encoding="utf-8")
            spec = json.loads(text)
        if not isinstance(spec, dict) or "rules" not in spec:
            raise ValueError("chaos spec must be a dict with a 'rules' list")
        return cls(spec["rules"], state_dir=spec.get("state_dir"),
                   hang_seconds=float(spec.get("hang_seconds", 600.0)))

    @classmethod
    def sample(cls, seed: int, unit_ordinals: Sequence[int], *,
               hangs: int = 0, crashes: int = 0, slows: int = 0,
               raises: int = 0, corrupt_stores: int = 0,
               enospc_stores: int = 0, seconds: float = 0.05,
               state_dir: Optional[Union[str, Path]] = None,
               hang_seconds: float = 600.0) -> "ChaosPlan":
        """Derive a plan from a seed: pick distinct victim units per action.

        The victims are drawn without replacement from ``unit_ordinals``
        with numpy's PCG64, so the same ``(seed, unit_ordinals, counts)``
        always yields the same plan -- a seeded failure mix for property
        tests and CI sweeps.
        """

        import numpy as np

        wanted = hangs + crashes + slows + raises
        ordinals = list(dict.fromkeys(int(o) for o in unit_ordinals))
        if wanted > len(ordinals):
            raise ValueError(
                f"cannot pick {wanted} distinct victim units from "
                f"{len(ordinals)} ordinals")
        rng = np.random.default_rng(int(seed))
        victims = [ordinals[i] for i in
                   rng.permutation(len(ordinals))[:wanted]]
        rules: List[ChaosRule] = []
        for action, count in (("hang", hangs), ("crash", crashes),
                              ("slow", slows), ("raise", raises)):
            for _ in range(count):
                rules.append(ChaosRule(site="unit", action=action,
                                       key=victims.pop(0), seconds=seconds))
        for _ in range(corrupt_stores):
            rules.append(ChaosRule(site="cache-store", action="corrupt"))
        for _ in range(enospc_stores):
            rules.append(ChaosRule(site="cache-store", action="enospc"))
        return cls(rules, state_dir=state_dir, hang_seconds=hang_seconds)

    def as_payload(self) -> dict:
        """JSON spec round-trippable through :meth:`from_spec`."""

        return {
            "state_dir": str(self.state_dir),
            "hang_seconds": self.hang_seconds,
            "rules": [rule.as_payload() for rule in self.rules],
        }

    # ------------------------------------------------------------------
    # Firing state (filesystem markers: shared by forked workers)
    # ------------------------------------------------------------------
    def _marker(self, rule_index: int) -> Path:
        rule = self.rules[rule_index]
        return self.state_dir / f"fired-{rule_index}-{rule.site}-{rule.action}"

    def _claim(self, rule_index: int) -> bool:
        """Atomically claim a ``once`` rule; False if it already fired."""

        rule = self.rules[rule_index]
        if not rule.once:
            return True
        try:
            fd = os.open(self._marker(rule_index),
                         os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        with os.fdopen(fd, "w") as handle:
            handle.write(f"pid={os.getpid()} time={time.time()}\n")
        return True

    def fired(self) -> List[str]:
        """Marker names of the ``once`` rules that have fired so far."""

        return sorted(path.name for path in self.state_dir.glob("fired-*"))

    def reset(self) -> None:
        """Forget all firing state (the next consult starts fresh)."""

        for path in self.state_dir.glob("fired-*"):
            path.unlink(missing_ok=True)

    # ------------------------------------------------------------------
    # The hook the runtime calls
    # ------------------------------------------------------------------
    def consult(self, site: str, key=None, path: Optional[Path] = None) -> None:
        """Fire every matching, unclaimed rule at ``site`` for ``key``.

        ``path`` is the staged temp file for ``cache-store`` consults (the
        bytes a ``corrupt`` rule damages).  May sleep, raise
        :class:`ChaosError`/``OSError`` or terminate the process, exactly
        as the planned failure dictates.
        """

        for rule_index, rule in enumerate(self.rules):
            if not rule.matches(site, key):
                continue
            if not self._claim(rule_index):
                continue
            logger.warning("chaos: firing %s at %s (key=%r)",
                           rule.action, site, key)
            self._fire(rule, path)

    def _fire(self, rule: ChaosRule, path: Optional[Path]) -> None:
        if rule.action == "crash":
            os._exit(CRASH_EXIT_CODE)
        if rule.action == "hang":
            if rule.uninterruptible and hasattr(signal, "SIGTERM"):
                signal.signal(signal.SIGTERM, signal.SIG_IGN)
            deadline = time.monotonic() + self.hang_seconds
            while time.monotonic() < deadline:
                time.sleep(min(0.5, max(0.0, deadline - time.monotonic())))
            return
        if rule.action == "slow":
            time.sleep(rule.seconds)
            return
        if rule.action == "raise":
            raise ChaosError("chaos-injected unit failure")
        if rule.action == "enospc":
            raise OSError(errno.ENOSPC, "chaos-injected: no space left on device")
        if rule.action == "corrupt":
            if path is not None:
                _corrupt_file(Path(path), rule.mode)
            return
        raise AssertionError(f"unhandled chaos action {rule.action!r}")


def _corrupt_file(path: Path, mode: str) -> None:
    """Damage ``path`` in place: truncate mid-token or overwrite with noise."""

    data = path.read_bytes()
    if mode == "truncate":
        path.write_bytes(data[:max(1, len(data) // 2)])
    else:
        path.write_bytes(b"\x00\xffnot json{{{" + data[: len(data) // 4])


# ----------------------------------------------------------------------
# Process-wide active plan (env-driven; inherited by forked workers)
# ----------------------------------------------------------------------
_ACTIVE: Optional[ChaosPlan] = None
_ENV_RESOLVED = False


def install_plan(plan: Optional[Union[ChaosPlan, dict, str]]) -> Optional[ChaosPlan]:
    """Install ``plan`` as the process-wide chaos plan (None clears it)."""

    global _ACTIVE, _ENV_RESOLVED
    _ACTIVE = None if plan is None else ChaosPlan.from_spec(plan)
    _ENV_RESOLVED = True
    return _ACTIVE


def clear_plan() -> None:
    """Remove the active plan and forget any cached env resolution."""

    global _ACTIVE, _ENV_RESOLVED
    _ACTIVE = None
    _ENV_RESOLVED = False


def active_plan() -> Optional[ChaosPlan]:
    """The process-wide plan: installed explicitly, or from ``REPRO_CHAOS``.

    The environment is resolved once per process (workers forked afterwards
    inherit the resolved plan object, so its once-markers are shared); an
    unparsable spec is a hard error -- silently running *without* the
    requested chaos would turn a failing robustness test into a false pass.
    """

    global _ACTIVE, _ENV_RESOLVED
    if not _ENV_RESOLVED:
        _ENV_RESOLVED = True
        spec = os.environ.get(CHAOS_ENV_VAR)
        if spec:
            _ACTIVE = ChaosPlan.from_spec(spec)
            logger.warning("chaos plan active from $%s: %d rule(s)",
                           CHAOS_ENV_VAR, len(_ACTIVE.rules))
    return _ACTIVE
