"""Reproduction of "Improving Reliability of Spiking Neural Networks through
Fault Aware Threshold Voltage Optimization" (FalVolt, DATE 2023).

Subpackages
-----------
``repro.autograd``
    Reverse-mode autodiff engine on numpy.
``repro.snn``
    PLIF/LIF spiking neural network framework (surrogate-gradient BPTT).
``repro.systolic``
    Functional simulator of the weight-stationary systolic-array accelerator.
``repro.faults``
    Stuck-at fault models, fault maps, injectors and vulnerability sweeps.
``repro.core``
    The mitigation methods: FaP, FaPIT and FalVolt (the paper's contribution).
``repro.datasets``
    Synthetic stand-ins for MNIST, N-MNIST and DVS128 Gesture.
``repro.experiments``
    One driver per paper figure, plus ablations and reporting helpers.
"""

__version__ = "1.0.0"

from . import autograd, core, datasets, faults, snn, systolic, utils

__all__ = [
    "autograd",
    "core",
    "datasets",
    "faults",
    "snn",
    "systolic",
    "utils",
    "__version__",
]
