"""Mapping of layer weights onto the PE grid (weight-stationary dataflow).

A layer's weight tensor is viewed as a 2D matrix of shape
``(out_features, in_features)`` -- convolutional weights are reshaped to
``(out_channels, in_channels * kh * kw)`` -- and tiled over the ``R x C``
array with the *input* dimension along rows and the *output* dimension along
columns: weight element ``(o, i)`` is pre-stored in PE ``(i mod R, o mod C)``.

Because the array is reused for every tile (and for every layer), a single
faulty PE touches many weight elements; this reuse is what makes small
arrays more vulnerable (paper, Fig. 5c) and what forces fault-aware pruning
to zero out several weights per faulty PE (paper, Section IV).
"""

from __future__ import annotations

from typing import Iterable, Tuple

import numpy as np


def as_weight_matrix(weight: np.ndarray) -> np.ndarray:
    """View a layer weight tensor as a 2D (out_features, in_features) matrix.

    Linear weights pass through; 4D convolutional weights are reshaped so the
    output-channel dimension maps to array columns.
    """

    weight = np.asarray(weight)
    if weight.ndim == 2:
        return weight
    if weight.ndim == 4:
        return weight.reshape(weight.shape[0], -1)
    raise ValueError(f"unsupported weight rank {weight.ndim}; expected 2 or 4")


def pe_coordinates(weight_shape: Tuple[int, int], rows: int, cols: int
                   ) -> Tuple[np.ndarray, np.ndarray]:
    """Return (row, col) PE coordinates for every element of a 2D weight matrix.

    The returned arrays have the same shape as the weight matrix.
    """

    if rows <= 0 or cols <= 0:
        raise ValueError("array dimensions must be positive")
    out_features, in_features = weight_shape
    in_index = np.arange(in_features)
    out_index = np.arange(out_features)
    row_map = np.broadcast_to(in_index % rows, (out_features, in_features))
    col_map = np.broadcast_to((out_index % cols)[:, None], (out_features, in_features))
    return row_map, col_map


def faulty_weight_mask(fault_coords: Iterable[Tuple[int, int]],
                       weight_shape: Tuple[int, int],
                       rows: int, cols: int) -> np.ndarray:
    """Boolean mask of weight elements that map onto any faulty PE.

    ``fault_coords`` is an iterable of (row, col) PE coordinates.  The mask
    has the shape of the 2D weight matrix; ``True`` marks weights that must be
    pruned (set to zero) when the corresponding PE is bypassed.
    """

    coords = list(fault_coords)
    mask = np.zeros(weight_shape, dtype=bool)
    if not coords:
        return mask
    row_map, col_map = pe_coordinates(weight_shape, rows, cols)
    faulty_grid = np.zeros((rows, cols), dtype=bool)
    for row, col in coords:
        if not (0 <= row < rows and 0 <= col < cols):
            raise ValueError(f"fault coordinate {(row, col)} outside {rows}x{cols} array")
        faulty_grid[row, col] = True
    return faulty_grid[row_map, col_map]


def faulty_mask_for_layer_weight(weight: np.ndarray,
                                 fault_coords: Iterable[Tuple[int, int]],
                                 rows: int, cols: int) -> np.ndarray:
    """Like :func:`faulty_weight_mask` but accepts 2D or 4D weights and
    returns a mask with the weight's original shape."""

    matrix = as_weight_matrix(weight)
    mask = faulty_weight_mask(fault_coords, matrix.shape, rows, cols)
    return mask.reshape(np.asarray(weight).shape)


def count_mapped_weights(weight_shape: Tuple[int, int], rows: int, cols: int,
                         pe: Tuple[int, int]) -> int:
    """Number of weight elements of a layer mapped onto a single PE.

    Useful for reasoning about reuse: a 4x4 array holding a 64x64 weight
    matrix maps 256 weights per PE, whereas a 256x256 array maps at most one.
    """

    out_features, in_features = weight_shape
    row, col = pe
    rows_hit = len(range(row, in_features, rows)) if row < in_features else 0
    cols_hit = len(range(col, out_features, cols)) if col < out_features else 0
    return rows_hit * cols_hit


def tile_counts(weight_shape: Tuple[int, int], rows: int, cols: int) -> Tuple[int, int]:
    """Number of (input, output) tiles needed to map a weight matrix on the array."""

    out_features, in_features = weight_shape
    tiles_in = int(np.ceil(in_features / rows))
    tiles_out = int(np.ceil(out_features / cols))
    return tiles_in, tiles_out
