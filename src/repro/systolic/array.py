"""Functional simulator of an NxN systolic-array SNN accelerator.

The simulator reproduces, in vectorised numpy, the arithmetic a
weight-stationary systolic array performs when a spiking layer is executed:

* The layer's 2D weight matrix is tiled over the ``R x C`` PE grid
  (see :mod:`repro.systolic.mapping`).
* Inside one tile, partial sums flow down a column: PE ``(r, c)`` adds its
  stored weight (gated by the input spike) onto the partial sum coming from
  PE ``(r-1, c)``.
* A stuck-at fault in the accumulator output of PE ``(r, c)`` corrupts the
  partial sum at that position of the chain, and the corrupted value
  propagates through the rest of the column (prefix-sum fault model).
* Tile outputs are accumulated off-array, so a fault affects every tile that
  passes through the faulty PE -- the reuse effect responsible for the
  catastrophic accuracy drops in the paper's Fig. 5.
* A *bypassed* PE (mitigated design, Fig. 3b) forwards the incoming partial
  sum unchanged: its weight contribution is skipped and its fault is masked.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..autograd.functional import _conv_output_size, im2col
from .fixed_point import DEFAULT_ACCUMULATOR_FORMAT, FixedPointFormat
from .mapping import as_weight_matrix, tile_counts
from .pe import ProcessingElement


@dataclasses.dataclass(frozen=True)
class FaultSite:
    """A fault attached to a PE: grid coordinates plus the stuck-at fault object."""

    row: int
    col: int
    fault: object  # StuckAtFault (duck-typed: needs .apply(values, fmt))


class SystolicArray:
    """A weight-stationary ``rows x cols`` systolic array with optional faults.

    Parameters
    ----------
    rows, cols:
        Grid dimensions (the paper uses 256x256; vulnerability experiments
        sweep 4x4 .. 256x256).
    fmt:
        Fixed-point format of the PE accumulators.
    """

    def __init__(self, rows: int, cols: int,
                 fmt: FixedPointFormat = DEFAULT_ACCUMULATOR_FORMAT) -> None:
        if rows <= 0 or cols <= 0:
            raise ValueError("array dimensions must be positive")
        self.rows = rows
        self.cols = cols
        self.fmt = fmt
        self._fault_sites: List[FaultSite] = []
        self._bypassed: set[Tuple[int, int]] = set()

    # ------------------------------------------------------------------
    # Fault / bypass management
    # ------------------------------------------------------------------
    @property
    def num_pes(self) -> int:
        return self.rows * self.cols

    @property
    def fault_sites(self) -> List[FaultSite]:
        return list(self._fault_sites)

    @property
    def faulty_coordinates(self) -> List[Tuple[int, int]]:
        return [(site.row, site.col) for site in self._fault_sites]

    def clear_faults(self) -> None:
        self._fault_sites = []
        self._bypassed = set()

    def inject_fault(self, row: int, col: int, fault) -> None:
        """Attach a stuck-at fault to the accumulator output of PE ``(row, col)``."""

        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise ValueError(f"PE coordinate {(row, col)} outside {self.rows}x{self.cols} array")
        self._fault_sites.append(FaultSite(row, col, fault))

    def load_fault_map(self, fault_map) -> None:
        """Load all faults from a :class:`repro.faults.fault_map.FaultMap`-like object.

        The object must provide ``items()`` yielding ``((row, col), fault)``.
        """

        self.clear_faults()
        for (row, col), fault in fault_map.items():
            self.inject_fault(row, col, fault)

    def bypass_faulty_pes(self) -> None:
        """Enable the bypass multiplexer of every faulty PE (mitigated mode)."""

        self._bypassed = {(site.row, site.col) for site in self._fault_sites}

    def set_bypass(self, coordinates: Iterable[Tuple[int, int]]) -> None:
        """Explicitly set the collection of bypassed PEs."""

        self._bypassed = {(int(r), int(c)) for r, c in coordinates}

    @property
    def bypassed_coordinates(self) -> set:
        return set(self._bypassed)

    def build_pe_grid(self) -> List[List[ProcessingElement]]:
        """Materialise :class:`ProcessingElement` objects (used by the cycle model)."""

        fault_lookup = {(s.row, s.col): s.fault for s in self._fault_sites}
        grid = []
        for r in range(self.rows):
            row_list = []
            for c in range(self.cols):
                row_list.append(ProcessingElement(
                    row=r, col=c, fmt=self.fmt,
                    fault=fault_lookup.get((r, c)),
                    bypassed=(r, c) in self._bypassed))
            grid.append(row_list)
        return grid

    # ------------------------------------------------------------------
    # Faulty linear algebra
    # ------------------------------------------------------------------
    def _active_faults_by_column(self) -> Dict[int, List[FaultSite]]:
        """Faults that are not masked by a bypass, grouped by column, sorted by row."""

        by_col: Dict[int, List[FaultSite]] = {}
        for site in self._fault_sites:
            if (site.row, site.col) in self._bypassed:
                continue
            by_col.setdefault(site.col, []).append(site)
        for sites in by_col.values():
            sites.sort(key=lambda s: s.row)
        return by_col

    def _bypass_mask_for_weight(self, weight_matrix: np.ndarray) -> Optional[np.ndarray]:
        """Mask of weight elements whose PE is bypassed (contribution skipped)."""

        if not self._bypassed:
            return None
        from .mapping import faulty_weight_mask

        return faulty_weight_mask(self._bypassed, weight_matrix.shape, self.rows, self.cols)

    def matmul(self, weight: np.ndarray, inputs: np.ndarray,
               bias: Optional[np.ndarray] = None) -> np.ndarray:
        """Compute ``inputs @ weight.T + bias`` with the array's fault semantics.

        Parameters
        ----------
        weight:
            Layer weight of shape ``(out_features, in_features)`` (or a 4D
            convolution weight, reshaped internally).
        inputs:
            Activations of shape ``(batch, in_features)``.
        bias:
            Optional bias added off-array (the bias unit is not part of the
            PE grid and is assumed fault-free).
        """

        weight_matrix = as_weight_matrix(weight).astype(np.float64)
        inputs = np.asarray(inputs, dtype=np.float64)
        if inputs.ndim != 2:
            raise ValueError("inputs must be 2D (batch, in_features)")
        out_features, in_features = weight_matrix.shape
        if inputs.shape[1] != in_features:
            raise ValueError(
                f"input feature mismatch: weight expects {in_features}, got {inputs.shape[1]}")

        effective_weight = weight_matrix
        bypass_mask = self._bypass_mask_for_weight(weight_matrix)
        if bypass_mask is not None:
            effective_weight = np.where(bypass_mask, 0.0, weight_matrix)

        faults_by_col = self._active_faults_by_column()
        if not faults_by_col:
            output = inputs @ effective_weight.T
        else:
            output = self._faulty_matmul(effective_weight, inputs, faults_by_col)

        if bias is not None:
            output = output + np.asarray(bias, dtype=np.float64)
        return output

    def _faulty_matmul(self, weight: np.ndarray, inputs: np.ndarray,
                       faults_by_col: Dict[int, List[FaultSite]]) -> np.ndarray:
        """Tile-by-tile matmul applying stuck-at corruption inside column chains."""

        out_features, in_features = weight.shape
        batch = inputs.shape[0]
        rows, cols = self.rows, self.cols
        tiles_in, _ = tile_counts(weight.shape, rows, cols)
        output = np.zeros((batch, out_features))

        # Column index of every output feature (constant across input tiles).
        out_cols = np.arange(out_features) % cols
        faulty_cols = sorted(faults_by_col)
        clean_out_mask = ~np.isin(out_cols, faulty_cols)

        for tile in range(tiles_in):
            lo = tile * rows
            hi = min(lo + rows, in_features)
            w_tile = weight[:, lo:hi]           # (out, tile_rows)
            x_tile = inputs[:, lo:hi]           # (batch, tile_rows)
            tile_rows = hi - lo

            # Fault-free columns: plain matmul.
            if clean_out_mask.any():
                output[:, clean_out_mask] += x_tile @ w_tile[clean_out_mask].T

            # Faulty columns: walk the accumulation chain with corruption.
            for col in faulty_cols:
                out_idx = np.nonzero(out_cols == col)[0]
                if out_idx.size == 0:
                    continue
                # Contribution of each row of the chain: (batch, n_out, tile_rows)
                products = x_tile[:, None, :] * w_tile[out_idx][None, :, :]
                prefix = np.cumsum(products, axis=2)
                total = prefix[:, :, -1] if tile_rows else np.zeros((batch, out_idx.size))

                acc = np.zeros((batch, out_idx.size))
                prev_prefix = np.zeros((batch, out_idx.size))
                applied_any = False
                for site in faults_by_col[col]:
                    if site.row >= tile_rows:
                        continue
                    upto = prefix[:, :, site.row]
                    acc = acc + (upto - prev_prefix)
                    acc = site.fault.apply(acc, self.fmt)
                    prev_prefix = upto
                    applied_any = True
                if applied_any:
                    acc = acc + (total - prev_prefix)
                    output[:, out_idx] += acc
                else:
                    output[:, out_idx] += total
        return output

    # ------------------------------------------------------------------
    # Convolution via im2col on the faulty array
    # ------------------------------------------------------------------
    def conv2d(self, weight: np.ndarray, x: np.ndarray,
               bias: Optional[np.ndarray] = None,
               stride: int = 1, padding: int = 0) -> np.ndarray:
        """Convolve ``x`` with ``weight`` on the (possibly faulty) array.

        ``x`` has shape ``(batch, in_channels, H, W)``; the result has shape
        ``(batch, out_channels, H_out, W_out)``.
        """

        weight = np.asarray(weight, dtype=np.float64)
        x = np.asarray(x, dtype=np.float64)
        out_channels, in_channels, kh, kw = weight.shape
        cols = im2col(x, (kh, kw), stride, padding)
        batch, out_h, out_w, k = cols.shape
        flat_inputs = cols.reshape(batch * out_h * out_w, k)
        flat_out = self.matmul(weight.reshape(out_channels, -1), flat_inputs, bias=bias)
        return flat_out.reshape(batch, out_h, out_w, out_channels).transpose(0, 3, 1, 2)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"SystolicArray({self.rows}x{self.cols}, faults={len(self._fault_sites)}, "
                f"bypassed={len(self._bypassed)})")
