"""Functional simulator of an NxN systolic-array SNN accelerator.

The simulator reproduces, in vectorised numpy, the arithmetic a
weight-stationary systolic array performs when a spiking layer is executed:

* The layer's 2D weight matrix is tiled over the ``R x C`` PE grid
  (see :mod:`repro.systolic.mapping`).
* Inside one tile, partial sums flow down a column: PE ``(r, c)`` adds its
  stored weight (gated by the input spike) onto the partial sum coming from
  PE ``(r-1, c)``.
* A stuck-at fault in the accumulator output of PE ``(r, c)`` corrupts the
  partial sum at that position of the chain, and the corrupted value
  propagates through the rest of the column (prefix-sum fault model).
* Tile outputs are accumulated off-array, so a fault affects every tile that
  passes through the faulty PE -- the reuse effect responsible for the
  catastrophic accuracy drops in the paper's Fig. 5.
* A *bypassed* PE (mitigated design, Fig. 3b) forwards the incoming partial
  sum unchanged: its weight contribution is skipped and its fault is masked.

Two execution paths are provided:

* :meth:`SystolicArray.matmul` -- the sequential reference oracle: one array,
  one fault map, one matmul.
* :class:`BatchedSystolicArray` / :func:`matmul_batched` -- the campaign
  path: ``F`` fault maps are simulated in a single vectorised pass by
  stacking the prefix-sum fault chains of every (map, column) pair along a
  leading axis instead of re-running the tile loop once per map.  The
  arithmetic is ordered exactly as in the sequential path, so per-map
  results are **bit-identical** to ``F`` separate :meth:`SystolicArray.matmul`
  calls (a property the equivalence tests assert).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..autograd.functional import im2col
from . import chain_kernel
from .chain_kernel import StuckAtKernel, apply_chain_plan, build_uniform_plan
from .fixed_point import DEFAULT_ACCUMULATOR_FORMAT, FixedPointFormat
from .mapping import as_weight_matrix, tile_counts
from .pe import ProcessingElement


@dataclasses.dataclass(frozen=True)
class FaultSite:
    """A fault attached to a PE: grid coordinates plus the stuck-at fault object."""

    row: int
    col: int
    fault: object  # StuckAtFault (duck-typed: needs .apply(values, fmt))


def apply_weight_faults(weight_matrix: np.ndarray, sites: Sequence[FaultSite],
                        rows: int, cols: int,
                        fmt: FixedPointFormat) -> np.ndarray:
    """Corrupt the weight elements stored in weight-SRAM-faulty PEs.

    Every weight element mapped to a faulty PE (weight-stationary mapping:
    element ``(o, i)`` lives in PE ``(i % rows, o % cols)``) is quantised
    to ``fmt``, has the fault's bit forced, and is dequantised -- once,
    before the GEMM.  Sites are applied in ``(row, col)`` order; their
    element masks are disjoint (one PE per site), so the order cannot
    change the result, but pinning it keeps every execution path
    byte-identical by construction.  This single function is the one
    implementation shared by the sequential oracle and the batched /
    fused engines.
    """

    if not sites:
        return weight_matrix
    from .mapping import faulty_weight_mask

    effective = weight_matrix
    for site in sorted(sites, key=lambda s: (s.row, s.col)):
        mask = faulty_weight_mask({(site.row, site.col)}, weight_matrix.shape,
                                  rows, cols)
        if mask.any():
            effective = np.where(mask, site.fault.apply(effective, fmt), effective)
    return effective


class SystolicArray:
    """A weight-stationary ``rows x cols`` systolic array with optional faults.

    Parameters
    ----------
    rows, cols:
        Grid dimensions (the paper uses 256x256; vulnerability experiments
        sweep 4x4 .. 256x256).
    fmt:
        Fixed-point format of the PE accumulators.
    """

    def __init__(self, rows: int, cols: int,
                 fmt: FixedPointFormat = DEFAULT_ACCUMULATOR_FORMAT) -> None:
        if rows <= 0 or cols <= 0:
            raise ValueError("array dimensions must be positive")
        self.rows = rows
        self.cols = cols
        self.fmt = fmt
        self._fault_sites: List[FaultSite] = []
        self._bypassed: set[Tuple[int, int]] = set()

    # ------------------------------------------------------------------
    # Fault / bypass management
    # ------------------------------------------------------------------
    @property
    def num_pes(self) -> int:
        return self.rows * self.cols

    @property
    def fault_sites(self) -> List[FaultSite]:
        return list(self._fault_sites)

    @property
    def faulty_coordinates(self) -> List[Tuple[int, int]]:
        return [(site.row, site.col) for site in self._fault_sites]

    def clear_faults(self) -> None:
        self._fault_sites = []
        self._bypassed = set()

    def inject_fault(self, row: int, col: int, fault) -> None:
        """Attach a stuck-at fault to the accumulator output of PE ``(row, col)``."""

        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise ValueError(f"PE coordinate {(row, col)} outside {self.rows}x{self.cols} array")
        self._fault_sites.append(FaultSite(row, col, fault))

    def load_fault_map(self, fault_map) -> None:
        """Load all faults from a :class:`repro.faults.fault_map.FaultMap`-like object.

        The object must provide ``items()`` yielding ``((row, col), fault)``.
        """

        self.clear_faults()
        for (row, col), fault in fault_map.items():
            self.inject_fault(row, col, fault)

    def bypass_faulty_pes(self) -> None:
        """Enable the bypass multiplexer of every faulty PE (mitigated mode)."""

        self._bypassed = {(site.row, site.col) for site in self._fault_sites}

    def set_bypass(self, coordinates: Iterable[Tuple[int, int]]) -> None:
        """Explicitly set the collection of bypassed PEs."""

        self._bypassed = {(int(r), int(c)) for r, c in coordinates}

    @property
    def bypassed_coordinates(self) -> set:
        return set(self._bypassed)

    def build_pe_grid(self) -> List[List[ProcessingElement]]:
        """Materialise :class:`ProcessingElement` objects (used by the cycle model)."""

        fault_lookup = {(s.row, s.col): s.fault for s in self._fault_sites}
        grid = []
        for r in range(self.rows):
            row_list = []
            for c in range(self.cols):
                row_list.append(ProcessingElement(
                    row=r, col=c, fmt=self.fmt,
                    fault=fault_lookup.get((r, c)),
                    bypassed=(r, c) in self._bypassed))
            grid.append(row_list)
        return grid

    # ------------------------------------------------------------------
    # Faulty linear algebra
    # ------------------------------------------------------------------
    def _active_faults_by_column(self) -> Dict[int, List[FaultSite]]:
        """Active *datapath* faults, grouped by column, sorted by row.

        Bypassed PEs are masked, and weight-SRAM faults are excluded: they
        corrupt the stored weights ahead of the GEMM (see
        :meth:`weight_fault_sites`), not the accumulation chains.
        """

        by_col: Dict[int, List[FaultSite]] = {}
        for site in self._fault_sites:
            if (site.row, site.col) in self._bypassed:
                continue
            if getattr(site.fault, "corrupts_weights", False):
                continue
            by_col.setdefault(site.col, []).append(site)
        for sites in by_col.values():
            sites.sort(key=lambda s: s.row)
        return by_col

    def weight_fault_sites(self) -> List[FaultSite]:
        """Active weight-SRAM fault sites (bypass masks them), sorted by PE."""

        sites = [site for site in self._fault_sites
                 if getattr(site.fault, "corrupts_weights", False)
                 and (site.row, site.col) not in self._bypassed]
        return sorted(sites, key=lambda s: (s.row, s.col))

    def _bypass_mask_for_weight(self, weight_matrix: np.ndarray) -> Optional[np.ndarray]:
        """Mask of weight elements whose PE is bypassed (contribution skipped)."""

        if not self._bypassed:
            return None
        from .mapping import faulty_weight_mask

        return faulty_weight_mask(self._bypassed, weight_matrix.shape, self.rows, self.cols)

    def matmul(self, weight: np.ndarray, inputs: np.ndarray,
               bias: Optional[np.ndarray] = None) -> np.ndarray:
        """Compute ``inputs @ weight.T + bias`` with the array's fault semantics.

        Parameters
        ----------
        weight:
            Layer weight of shape ``(out_features, in_features)`` (or a 4D
            convolution weight, reshaped internally).
        inputs:
            Activations of shape ``(batch, in_features)``.
        bias:
            Optional bias added off-array (the bias unit is not part of the
            PE grid and is assumed fault-free).
        """

        weight_matrix = as_weight_matrix(weight).astype(np.float64)
        inputs = np.asarray(inputs, dtype=np.float64)
        if inputs.ndim != 2:
            raise ValueError("inputs must be 2D (batch, in_features)")
        out_features, in_features = weight_matrix.shape
        if inputs.shape[1] != in_features:
            raise ValueError(
                f"input feature mismatch: weight expects {in_features}, got {inputs.shape[1]}")

        # Weight-SRAM corruption first (stored weights are corrupted before
        # anything flows through the array), then bypass zeroing on top.
        effective_weight = apply_weight_faults(weight_matrix,
                                               self.weight_fault_sites(),
                                               self.rows, self.cols, self.fmt)
        bypass_mask = self._bypass_mask_for_weight(weight_matrix)
        if bypass_mask is not None:
            effective_weight = np.where(bypass_mask, 0.0, effective_weight)

        faults_by_col = self._active_faults_by_column()
        if not faults_by_col:
            output = inputs @ effective_weight.T
        else:
            output = self._faulty_matmul(effective_weight, inputs, faults_by_col)

        if bias is not None:
            output = output + np.asarray(bias, dtype=np.float64)
        return output

    def _faulty_matmul(self, weight: np.ndarray, inputs: np.ndarray,
                       faults_by_col: Dict[int, List[FaultSite]]) -> np.ndarray:
        """Matmul applying stuck-at corruption inside column accumulation chains.

        Fault-free columns are untouched by the fault model, so the output
        starts as one dense matmul and only the faulty columns are replaced
        by their corrupted chain values.  Inside a chain, the partial sum
        entering a fault site equals the dense product of the segment
        accumulated since the previous fault, so each (tile, column) chain is
        ``k + 1`` segment matmuls with the stuck-at bit forced at every
        breakpoint -- the prefix-sum fault model without materialising
        per-row products.
        """

        out_features, in_features = weight.shape
        rows, cols = self.rows, self.cols
        tiles_in, _ = tile_counts(weight.shape, rows, cols)
        output = inputs @ weight.T

        out_cols = np.arange(out_features) % cols
        for col in sorted(faults_by_col):
            out_idx = np.nonzero(out_cols == col)[0]
            if out_idx.size == 0:
                continue
            sites = faults_by_col[col]
            col_out = np.zeros((inputs.shape[0], out_idx.size))
            for tile in range(tiles_in):
                lo = tile * rows
                hi = min(lo + rows, in_features)
                tile_rows = hi - lo
                x_tile = inputs[:, lo:hi]        # (batch, tile_rows)
                w_sel = weight[out_idx, lo:hi]   # (n_out, tile_rows)
                acc = np.zeros_like(col_out)
                start = 0
                applied_any = False
                for site in sites:
                    if site.row >= tile_rows:
                        continue
                    stop = site.row + 1
                    # Segment selected by zeroing the complement: every
                    # segment product keeps the full (batch, tile_rows) GEMM
                    # geometry, so the batched engine can evaluate stacked
                    # chains with one matmul and stay bit-identical.
                    w_segment = np.zeros((tile_rows, out_idx.size))
                    w_segment[start:stop] = w_sel[:, start:stop].T
                    acc = acc + x_tile @ w_segment
                    acc = site.fault.apply(acc, self.fmt)
                    start = stop
                    applied_any = True
                w_segment = np.zeros((tile_rows, out_idx.size))
                w_segment[start:] = w_sel[:, start:].T
                if applied_any:
                    col_out += acc + x_tile @ w_segment
                else:
                    # No fault fell inside this tile: the tail covers the
                    # whole tile.  A contiguous copy (not a transposed view)
                    # keeps the GEMM layout identical to the batched stacks.
                    col_out += x_tile @ w_segment
            output[:, out_idx] = col_out
        return output

    # ------------------------------------------------------------------
    # Convolution via im2col on the faulty array
    # ------------------------------------------------------------------
    def conv2d(self, weight: np.ndarray, x: np.ndarray,
               bias: Optional[np.ndarray] = None,
               stride: int = 1, padding: int = 0) -> np.ndarray:
        """Convolve ``x`` with ``weight`` on the (possibly faulty) array.

        ``x`` has shape ``(batch, in_channels, H, W)``; the result has shape
        ``(batch, out_channels, H_out, W_out)``.
        """

        weight = np.asarray(weight, dtype=np.float64)
        x = np.asarray(x, dtype=np.float64)
        out_channels, in_channels, kh, kw = weight.shape
        cols = im2col(x, (kh, kw), stride, padding)
        batch, out_h, out_w, k = cols.shape
        flat_inputs = cols.reshape(batch * out_h * out_w, k)
        flat_out = self.matmul(weight.reshape(out_channels, -1), flat_inputs, bias=bias)
        return flat_out.reshape(batch, out_h, out_w, out_channels).transpose(0, 3, 1, 2)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"SystolicArray({self.rows}x{self.cols}, faults={len(self._fault_sites)}, "
                f"bypassed={len(self._bypassed)})")


# ----------------------------------------------------------------------
# Batched multi-fault-map simulation
# ----------------------------------------------------------------------
#: Soft cap on the number of float64 elements a single stacked chain block may
#: allocate (products tensor of shape (chains, batch, n_out, tile_rows)).
#: Blocks larger than this are processed in chunks.
_CHAIN_BLOCK_ELEMENTS = 4_000_000


@dataclasses.dataclass
class _FaultChain:
    """One (fault map, array column) accumulation chain with >= 1 active fault."""

    map_index: int
    out_idx: np.ndarray     # output features living in this column
    rows: np.ndarray        # fault rows, sorted ascending
    bits: np.ndarray        # bit position per fault
    stuck: np.ndarray       # stuck value (0/1) per fault


@dataclasses.dataclass
class _ChainTable:
    """A group of chains sharing one ``n_out`` (outputs per column) value.

    Grouping by ``n_out`` keeps every stacked GEMM free of padding columns,
    so each slice has exactly the geometry of its sequential counterpart.
    """

    chains: List[_FaultChain]
    map_ids: np.ndarray     # (chains,) fault-map index per chain
    rows2d: np.ndarray      # (chains, max_sites) fault rows, padded with 0
    bits2d: np.ndarray      # (chains, max_sites) bit positions, padded with 0
    stuck2d: np.ndarray     # (chains, max_sites) stuck values, padded with 0
    out_idx2d: np.ndarray   # (chains, n_out) output features per chain
    n_out: int


@dataclasses.dataclass
class _ChainTilePlan:
    """Input-independent per-tile chain data: masked segment/tail weights."""

    lo: int
    hi: int
    n_sites: np.ndarray             # (chains,) active sites in this tile
    level_stacks: List[np.ndarray]  # per level: (chains, tile_rows, n_out)
    tail_stack: np.ndarray          # (chains, tile_rows, n_out)


@dataclasses.dataclass
class _ChainPlan:
    """One chain group's precomputed weight stacks across all tiles.

    ``tiles`` is the ragged (chunked-reference) layout; ``uniform`` is the
    uniform-tile regrouping of the same chains consumed by the shared fast
    path in :mod:`repro.systolic.chain_kernel`.
    """

    table: _ChainTable
    tiles: List[_ChainTilePlan]
    uniform: chain_kernel.UniformChainPlan


@dataclasses.dataclass
class _PreparedWeight:
    """Output of :meth:`BatchedSystolicArray.prepare_weight`."""

    weight_matrix: np.ndarray               # float64 (out, in)
    stacked_weights: Optional[np.ndarray]   # (F, in, out) when bypass differs per map
    chain_plans: List[_ChainPlan]


class BatchedSystolicArray:
    """``F`` same-sized systolic arrays executed in one vectorised pass.

    The batched pass reproduces, per fault map, the exact arithmetic of the
    sequential :meth:`SystolicArray.matmul` path: the dense product of every
    map is computed by one stacked matmul (numpy performs the same 2D GEMM
    per slice, so each slice is bit-identical to the standalone product), and
    the fault chains of all maps -- one per (map, faulty column) pair -- are
    stacked along a leading chain axis and corrupted together.  Per-map
    results therefore match ``F`` separate :meth:`SystolicArray.matmul` calls
    exactly, which is the property the campaign engine relies on when it
    swaps one execution path for the other.

    Fault and bypass state is *snapshotted at construction*: later mutations
    of the underlying :class:`SystolicArray` objects are not reflected.

    Parameters
    ----------
    arrays:
        The per-fault-map arrays.  All must share grid dimensions and
        accumulator format.
    """

    def __init__(self, arrays: Sequence[SystolicArray]) -> None:
        arrays = list(arrays)
        if not arrays:
            raise ValueError("BatchedSystolicArray needs at least one array")
        first = arrays[0]
        for array in arrays[1:]:
            if (array.rows, array.cols) != (first.rows, first.cols):
                raise ValueError("all arrays must share the same grid dimensions")
            if array.fmt != first.fmt:
                raise ValueError("all arrays must share the same accumulator format")
        self.arrays = arrays
        self.rows = first.rows
        self.cols = first.cols
        self.fmt = first.fmt
        self._stuck_kernel = StuckAtKernel(first.fmt)
        # Immutable snapshot of each map's active (non-bypassed) faults.
        self._faults_by_col = [array._active_faults_by_column() for array in arrays]
        self._bypassed = [array.bypassed_coordinates for array in arrays]
        self._weight_faults = [array.weight_fault_sites() for array in arrays]
        self._any_bypass = any(self._bypassed)
        self._any_weight_faults = any(self._weight_faults)
        self._any_faults = any(self._faults_by_col)
        # Shape-keyed caches of the static chain structure.
        self._out_idx_cache: Dict[int, List[np.ndarray]] = {}
        self._chain_cache: Dict[int, Optional[_ChainTable]] = {}
        self._site_count_cache: Dict[Tuple[int, int], Tuple[np.ndarray, np.ndarray]] = {}
        self._bypass_mask_cache: Dict[Tuple[int, Tuple[int, int]], Optional[np.ndarray]] = {}

    @classmethod
    def from_fault_maps(cls, fault_maps: Sequence[object],
                        fmt: FixedPointFormat = DEFAULT_ACCUMULATOR_FORMAT,
                        bypass: bool = False) -> "BatchedSystolicArray":
        """Build one array per fault map (optionally with bypass enabled)."""

        arrays = []
        for fault_map in fault_maps:
            array = SystolicArray(fault_map.rows, fault_map.cols, fmt=fmt)
            array.load_fault_map(fault_map)
            if bypass:
                array.bypass_faulty_pes()
            arrays.append(array)
        return cls(arrays)

    @property
    def num_maps(self) -> int:
        return len(self.arrays)

    # ------------------------------------------------------------------
    # Static structure caches
    # ------------------------------------------------------------------
    def _out_indices_by_column(self, out_features: int) -> List[np.ndarray]:
        """Output feature indices per array column (cached per out_features)."""

        cached = self._out_idx_cache.get(out_features)
        if cached is None:
            out_cols = np.arange(out_features) % self.cols
            cached = [np.nonzero(out_cols == col)[0] for col in range(self.cols)]
            self._out_idx_cache[out_features] = cached
        return cached

    def _chain_tables(self, out_features: int) -> List[_ChainTable]:
        """All maps' fault chains for a layer, grouped by outputs-per-column."""

        if out_features in self._chain_cache:
            return self._chain_cache[out_features]
        out_idx_by_col = self._out_indices_by_column(out_features)
        chains: List[_FaultChain] = []
        for map_index, faults_by_col in enumerate(self._faults_by_col):
            for col in sorted(faults_by_col):
                out_idx = out_idx_by_col[col]
                if out_idx.size == 0:
                    continue
                sites = faults_by_col[col]
                chains.append(_FaultChain(
                    map_index=map_index,
                    out_idx=out_idx,
                    rows=np.array([site.row for site in sites], dtype=np.int64),
                    bits=np.array([site.fault.bit_position for site in sites],
                                  dtype=np.int64),
                    stuck=np.array([site.fault.stuck_value for site in sites],
                                   dtype=np.int64),
                ))
        tables: List[_ChainTable] = []
        for n_out in sorted({chain.out_idx.size for chain in chains}):
            group = [chain for chain in chains if chain.out_idx.size == n_out]
            max_sites = max(chain.rows.size for chain in group)
            rows2d = np.zeros((len(group), max_sites), dtype=np.int64)
            bits2d = np.zeros_like(rows2d)
            stuck2d = np.zeros_like(rows2d)
            for c, chain in enumerate(group):
                rows2d[c, :chain.rows.size] = chain.rows
                bits2d[c, :chain.rows.size] = chain.bits
                stuck2d[c, :chain.rows.size] = chain.stuck
            tables.append(_ChainTable(
                chains=group,
                map_ids=np.array([chain.map_index for chain in group], dtype=np.int64),
                rows2d=rows2d, bits2d=bits2d, stuck2d=stuck2d,
                out_idx2d=np.stack([chain.out_idx for chain in group]),
                n_out=n_out))
        self._chain_cache[out_features] = tables
        return tables

    def _site_counts(self, out_features: int, in_features: int
                     ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Per-group (full-tile, last-tile) active-site counts per chain.

        A site is active in a tile when its row index falls inside the tile
        (mirrors the sequential skip of ``site.row >= tile_rows``); only the
        last, possibly partial, tile can exclude sites.
        """

        key = (out_features, in_features)
        cached = self._site_count_cache.get(key)
        if cached is None:
            last_rows = in_features - ((in_features - 1) // self.rows) * self.rows
            cached = []
            for table in self._chain_tables(out_features):
                full = np.array([chain.rows.size for chain in table.chains],
                                dtype=np.int64)
                last = np.array([int(np.sum(chain.rows < last_rows))
                                 for chain in table.chains], dtype=np.int64)
                cached.append((full, last))
            self._site_count_cache[key] = cached
        return cached

    def _bypass_mask(self, map_index: int, shape: Tuple[int, int]) -> Optional[np.ndarray]:
        """Bypassed-weight mask of one map for a given 2D weight shape (cached)."""

        key = (map_index, shape)
        if key not in self._bypass_mask_cache:
            if not self._bypassed[map_index]:
                mask = None
            else:
                from .mapping import faulty_weight_mask

                mask = faulty_weight_mask(self._bypassed[map_index], shape,
                                          self.rows, self.cols)
            self._bypass_mask_cache[key] = mask
        return self._bypass_mask_cache[key]

    # ------------------------------------------------------------------
    # Weight preparation
    # ------------------------------------------------------------------
    def prepare_weight(self, weight: np.ndarray) -> "_PreparedWeight":
        """Precompute everything about ``weight`` the batched pass reuses.

        The masked segment/tail weight stacks of every chain are functions of
        the weight and the fault structure only -- not of the activations --
        so an evaluation that calls the same layer repeatedly (time steps x
        batches) can build them once.  Returns an opaque handle accepted by
        :meth:`matmul_batched` / :meth:`conv2d_batched`.
        """

        weight_matrix = as_weight_matrix(weight).astype(np.float64)
        out_features, in_features = weight_matrix.shape

        if self._any_bypass or self._any_weight_faults:
            effective_weights = []
            for index in range(self.num_maps):
                # Same order as the sequential oracle: weight-SRAM
                # corruption first, bypass zeroing on top.
                effective = apply_weight_faults(weight_matrix,
                                                self._weight_faults[index],
                                                self.rows, self.cols, self.fmt)
                mask = self._bypass_mask(index, weight_matrix.shape)
                effective_weights.append(
                    effective if mask is None else np.where(mask, 0.0, effective))
            # Kept as a transposed view: the GEMM's B operand must have the
            # same memory order as the sequential ``inputs @ w.T`` for the
            # per-slice results to be bit-identical.
            stacked_weights = np.stack(effective_weights).transpose(0, 2, 1)
        else:
            effective_weights = None
            stacked_weights = None

        chain_plans: List[_ChainPlan] = []
        if self._any_faults:
            counts = self._site_counts(out_features, in_features)
            tiles_in = int(np.ceil(in_features / self.rows))
            for table, (full_counts, last_counts) in zip(self._chain_tables(out_features),
                                                         counts):
                w_rows = [
                    (weight_matrix if effective_weights is None
                     else effective_weights[chain.map_index])[chain.out_idx]
                    for chain in table.chains
                ]
                n_chains = len(table.chains)
                tiles = []
                for tile in range(tiles_in):
                    lo = tile * self.rows
                    hi = min(lo + self.rows, in_features)
                    tile_rows = hi - lo
                    n_sites = full_counts if tile < tiles_in - 1 else last_counts
                    max_sites = int(n_sites.max(initial=0))
                    starts = np.zeros(n_chains, dtype=np.int64)
                    level_stacks = []
                    for level in range(max_sites):
                        w_stack = np.zeros((n_chains, tile_rows, table.n_out))
                        for c in np.flatnonzero(level < n_sites):
                            stop = int(table.rows2d[c, level]) + 1
                            w_stack[c, starts[c]:stop] = \
                                w_rows[c][:, lo + starts[c]:lo + stop].T
                            starts[c] = stop
                        level_stacks.append(w_stack)
                    tail_stack = np.zeros((n_chains, tile_rows, table.n_out))
                    for c in range(n_chains):
                        tail_stack[c, starts[c]:] = w_rows[c][:, lo + starts[c]:hi].T
                    tiles.append(_ChainTilePlan(lo, hi, n_sites, level_stacks, tail_stack))
                chain_plans.append(_ChainPlan(table, tiles,
                                              build_uniform_plan(table, tiles)))

        return _PreparedWeight(weight_matrix, stacked_weights, chain_plans)

    # ------------------------------------------------------------------
    # Batched linear algebra
    # ------------------------------------------------------------------
    def matmul_batched(self, weight: np.ndarray, inputs: np.ndarray,
                       bias: Optional[np.ndarray] = None,
                       prepared: Optional["_PreparedWeight"] = None) -> np.ndarray:
        """Per-map ``inputs[f] @ weight.T + bias`` under each map's faults.

        Parameters
        ----------
        weight:
            Shared layer weight, shape ``(out_features, in_features)`` (or 4D
            convolutional, reshaped internally).
        inputs:
            Either ``(batch, in_features)`` (the same activations presented
            to every map) or ``(F, batch, in_features)`` with one activation
            set per map (the usual case after the first faulty layer).
        prepared:
            Optional handle from :meth:`prepare_weight` for ``weight``; built
            on the fly when omitted.

        Returns
        -------
        ``(F, batch, out_features)`` with ``result[f]`` bit-identical to
        ``self.arrays[f].matmul(weight, inputs[f], bias)``.
        """

        if prepared is None:
            prepared = self.prepare_weight(weight)
        weight_matrix = prepared.weight_matrix
        inputs = np.asarray(inputs, dtype=np.float64)
        num_maps = self.num_maps
        shared_inputs = inputs.ndim == 2
        if shared_inputs:
            inputs = np.broadcast_to(inputs, (num_maps,) + inputs.shape)
        if inputs.ndim != 3 or inputs.shape[0] != num_maps:
            raise ValueError(
                f"inputs must be (batch, in) or ({num_maps}, batch, in), got {inputs.shape}")
        out_features, in_features = weight_matrix.shape
        if inputs.shape[2] != in_features:
            raise ValueError(
                f"input feature mismatch: weight expects {in_features}, got {inputs.shape[2]}")

        if prepared.stacked_weights is not None:
            # Per-map effective weights (bypassed PEs contribute zero).
            output = np.matmul(inputs, prepared.stacked_weights)
        elif shared_inputs:
            # Identical activations for every map (the fan-out layer of an
            # evaluation): every sequential run performs this exact 2D GEMM,
            # so computing it once and replicating is bit-identical.
            shared = inputs[0] @ weight_matrix.T
            output = np.repeat(shared[np.newaxis], num_maps, axis=0)
        else:
            output = np.matmul(inputs, weight_matrix.T)

        for plan in prepared.chain_plans:
            self._apply_chain_plan(plan, inputs, output, shared_inputs)

        if bias is not None:
            output = output + np.asarray(bias, dtype=np.float64)
        return output

    def conv2d_batched(self, weight: np.ndarray, x: np.ndarray,
                       bias: Optional[np.ndarray] = None,
                       stride: int = 1, padding: int = 0,
                       prepared: Optional["_PreparedWeight"] = None) -> np.ndarray:
        """Per-map convolution; ``x`` is ``(batch, C, H, W)`` or ``(F, batch, C, H, W)``.

        Returns ``(F, batch, out_channels, H_out, W_out)`` with each map's
        slice bit-identical to the sequential :meth:`SystolicArray.conv2d`.
        """

        weight = np.asarray(weight, dtype=np.float64)
        x = np.asarray(x, dtype=np.float64)
        num_maps = self.num_maps
        out_channels, in_channels, kh, kw = weight.shape
        if x.ndim == 4:
            # Shared activations: one im2col, and matmul_batched's shared-input
            # path computes the clean product once for all maps.
            batch = x.shape[0]
            cols = im2col(x, (kh, kw), stride, padding)
            _, out_h, out_w, k = cols.shape
            flat_inputs = cols.reshape(batch * out_h * out_w, k)
        elif x.ndim == 5 and x.shape[0] == num_maps:
            batch = x.shape[1]
            # One im2col over the folded (F * batch) axis; the transform is a
            # pure gather, so each map's slice equals its standalone im2col.
            cols = im2col(x.reshape((num_maps * batch,) + x.shape[2:]),
                          (kh, kw), stride, padding)
            _, out_h, out_w, k = cols.shape
            flat_inputs = cols.reshape(num_maps, batch * out_h * out_w, k)
        else:
            raise ValueError(
                f"x must be (batch, C, H, W) or ({num_maps}, batch, C, H, W), got {x.shape}")
        flat_out = self.matmul_batched(weight.reshape(out_channels, -1), flat_inputs,
                                       bias=bias, prepared=prepared)
        return (flat_out.reshape(num_maps, batch, out_h, out_w, out_channels)
                .transpose(0, 1, 4, 2, 3))

    # ------------------------------------------------------------------
    def _apply_chain_plan(self, plan: "_ChainPlan", inputs: np.ndarray,
                          output: np.ndarray, shared_inputs: bool) -> None:
        """Replace the faulty columns of ``output`` with their chain values.

        Dispatches to the shared uniform-tile fast path
        (:func:`repro.systolic.chain_kernel.apply_chain_plan`) unless
        ``chain_kernel.FASTPATH_ENABLED`` is off, in which case the untiled
        chunked reference below runs.  Both are bit-identical to
        :meth:`SystolicArray._faulty_matmul` (pinned by the equivalence and
        hypothesis tests).
        """

        if chain_kernel.FASTPATH_ENABLED:
            apply_chain_plan(plan.uniform,
                             inputs[0] if shared_inputs else inputs,
                             output, shared_inputs, self._stuck_kernel,
                             self.rows, _CHAIN_BLOCK_ELEMENTS)
        else:
            self._apply_chain_plan_reference(plan, inputs, output, shared_inputs)

    def _apply_chain_plan_reference(self, plan: "_ChainPlan", inputs: np.ndarray,
                                    output: np.ndarray,
                                    shared_inputs: bool) -> None:
        """Untiled (ragged-chunk) chain application: the fast path's oracle.

        Each chain segment is a full-tile-width GEMM against a weight whose
        complement rows are zeroed (exactly the sequential formulation), so
        one stacked matmul evaluates the current segment of every chain at
        once, and the stuck-at bit forcing at each breakpoint level is also
        applied to all chains together.  Both steps preserve per-chain
        bit-identity with :meth:`SystolicArray._faulty_matmul`.  Kept as the
        property-test oracle for the uniform-tile fast path.
        """

        table = plan.table
        batch = inputs.shape[1]
        n_chains = len(table.chains)
        n_out = table.n_out

        # Chunk the chain axis so the gathered (chains, batch, tile_rows)
        # stacks stay bounded for wide (e.g. folded convolution) batches.
        block = max(1, _CHAIN_BLOCK_ELEMENTS // max(1, batch * max(self.rows, n_out)))
        batch_idx = np.arange(batch)[None, :, None]
        for start in range(0, n_chains, block):
            chunk = slice(start, min(start + block, n_chains))
            size = chunk.stop - chunk.start
            col_out = np.zeros((size, batch, n_out))
            for tile in plan.tiles:
                if shared_inputs:
                    # A 2D x broadcasts across the weight stack: numpy performs
                    # the same per-slice GEMM, bit-identical to the gathered form.
                    x_stack = inputs[0][:, tile.lo:tile.hi]
                else:
                    x_stack = inputs[table.map_ids[chunk], :, tile.lo:tile.hi]
                n_sites = tile.n_sites[chunk]
                acc = np.zeros((size, batch, n_out))
                for level, w_stack in enumerate(tile.level_stacks):
                    active = level < n_sites
                    if not active.any():
                        continue
                    segment = np.matmul(x_stack, w_stack[chunk])
                    candidate = self._apply_stuck_block(acc + segment,
                                                        table.bits2d[chunk, level],
                                                        table.stuck2d[chunk, level])
                    if active.all():
                        acc = candidate
                    else:
                        acc = np.where(active[:, None, None], candidate, acc)
                tails = np.matmul(x_stack, tile.tail_stack[chunk])
                applied = n_sites > 0
                if applied.all():
                    col_out += acc + tails
                elif not applied.any():
                    col_out += tails
                else:
                    col_out += np.where(applied[:, None, None], acc + tails, tails)

            # One fancy-indexed scatter for the whole chunk: every chain's
            # columns land in its own map's output slice.
            output[table.map_ids[chunk][:, None, None], batch_idx,
                   table.out_idx2d[chunk][:, None, :]] = col_out

    def _apply_stuck_block(self, values: np.ndarray, bits: np.ndarray,
                           stuck: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`FixedPointFormat.apply_stuck_at` with per-chain bits.

        Performs the same elementwise quantise / force-bit / dequantise steps
        as the scalar path, broadcasting the (per-chain) bit position and
        polarity over the trailing axes.
        """

        fmt = self.fmt
        codes = fmt.to_code(values)
        word_mask = (1 << fmt.total_bits) - 1
        raw = codes & word_mask
        bit_mask = np.left_shift(np.int64(1), bits)[:, None, None]
        forced = np.where((stuck == 1)[:, None, None], raw | bit_mask, raw & ~bit_mask)
        sign_mask = 1 << (fmt.total_bits - 1)
        full = 1 << fmt.total_bits
        signed = np.where(forced & sign_mask, forced - full, forced)
        return fmt.from_code(signed)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"BatchedSystolicArray({self.num_maps} maps, "
                f"{self.rows}x{self.cols})")


def matmul_batched(arrays: Sequence[SystolicArray], weight: np.ndarray,
                   inputs: np.ndarray, bias: Optional[np.ndarray] = None) -> np.ndarray:
    """Convenience wrapper: one vectorised matmul over ``len(arrays)`` fault maps."""

    return BatchedSystolicArray(arrays).matmul_batched(weight, inputs, bias=bias)
