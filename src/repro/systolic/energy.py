"""First-order energy and area model of the systolicSNN accelerator.

The paper's background section argues that systolicSNN PEs are cheaper than
systolic-array ANN PEs because spikes are binary: the PE only needs a
fixed-point adder-subtractor (plus a small counter), not a full multiplier-
and-accumulate (MAC) unit.  It also reports that the bypass circuitry used
for fault mitigation costs only ~8 % extra area.

This module provides a parametric energy/area model so the examples and
ablation benchmarks can quantify those claims for the reproduction's layer
shapes: per-operation energies are taken from published 45 nm estimates
(Horowitz, ISSCC 2014 -- integer add ~0.03 pJ/bit-pair-normalised, integer
multiply growing quadratically with width) and scaled by operation counts
from the dataflow model in :mod:`repro.systolic.scheduler`.

The absolute numbers are indicative only; the *ratios* (SNN accumulate vs
ANN MAC, bypass overhead) are what the benchmarks report.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Sequence


from .scheduler import LayerWorkload, schedule_network


#: Energy of a 32-bit integer addition at 45 nm (Horowitz, ISSCC 2014), picojoules.
INT32_ADD_PJ = 0.1
#: Energy of a 32-bit integer multiplication at 45 nm, picojoules.
INT32_MUL_PJ = 3.1
#: Energy of reading one 32-bit word from a small (8 KiB) SRAM, picojoules.
SRAM_READ_32_PJ = 5.0
#: Relative area of one fixed-point adder-subtractor PE (arbitrary units).
ADDER_PE_AREA = 1.0
#: Relative area of a MAC-based PE (multiplier dominates).
MAC_PE_AREA = 4.0
#: Area overhead of the bypass multiplexer per PE, as reported by the paper (8 %).
BYPASS_AREA_OVERHEAD = 0.08


def _scale_by_width(energy_32bit: float, bits: int, quadratic: bool = False) -> float:
    """Scale a 32-bit reference energy to ``bits`` (linear for adders, quadratic for multipliers)."""

    if bits <= 0:
        raise ValueError("bits must be positive")
    ratio = bits / 32.0
    return energy_32bit * (ratio ** 2 if quadratic else ratio)


@dataclasses.dataclass(frozen=True)
class EnergyModel:
    """Per-operation energy/area parameters for a given accumulator width."""

    accumulator_bits: int = 16
    weight_bits: int = 16
    sram_read_pj: float = SRAM_READ_32_PJ

    def __post_init__(self) -> None:
        if self.accumulator_bits <= 0 or self.weight_bits <= 0:
            raise ValueError("bit widths must be positive")

    @property
    def snn_accumulate_pj(self) -> float:
        """Energy of one spike-gated accumulate (the systolicSNN PE operation)."""

        return _scale_by_width(INT32_ADD_PJ, self.accumulator_bits)

    @property
    def ann_mac_pj(self) -> float:
        """Energy of one multiply-accumulate (the systolic ANN PE operation)."""

        return (_scale_by_width(INT32_MUL_PJ, self.weight_bits, quadratic=True)
                + _scale_by_width(INT32_ADD_PJ, self.accumulator_bits))

    @property
    def pe_energy_ratio(self) -> float:
        """ANN MAC energy divided by SNN accumulate energy (>1 means SNN is cheaper)."""

        return self.ann_mac_pj / self.snn_accumulate_pj

    # ------------------------------------------------------------------
    # Network-level estimates
    # ------------------------------------------------------------------
    def layer_energy_pj(self, workload: LayerWorkload, spike_rate: float = 1.0,
                        style: str = "snn") -> float:
        """Energy of one layer's worth of PE operations plus weight reads.

        ``spike_rate`` is the fraction of input spikes that are 1 (SNN PEs
        only accumulate when the incoming spike is asserted, so sparse
        activity directly saves energy); ANN MACs always fire.
        """

        if not 0.0 <= spike_rate <= 1.0:
            raise ValueError("spike_rate must be in [0, 1]")
        if style not in ("snn", "ann"):
            raise ValueError("style must be 'snn' or 'ann'")
        operations = workload.out_features * workload.in_features * workload.vectors
        weight_reads = workload.out_features * workload.in_features
        read_energy = weight_reads * self.sram_read_pj * (self.weight_bits / 32.0)
        if style == "snn":
            return operations * spike_rate * self.snn_accumulate_pj + read_energy
        return operations * self.ann_mac_pj + read_energy

    def network_energy_pj(self, workloads: Sequence[LayerWorkload],
                          spike_rates: Sequence[float] | None = None,
                          style: str = "snn") -> float:
        """Total energy of all layers; ``spike_rates`` defaults to dense (1.0)."""

        if spike_rates is None:
            spike_rates = [1.0] * len(workloads)
        if len(spike_rates) != len(workloads):
            raise ValueError("spike_rates must match the number of workloads")
        return float(sum(self.layer_energy_pj(w, r, style=style)
                         for w, r in zip(workloads, spike_rates)))

    # ------------------------------------------------------------------
    # Area estimates
    # ------------------------------------------------------------------
    def array_area(self, rows: int, cols: int, style: str = "snn",
                   with_bypass: bool = False) -> float:
        """Relative area of an ``rows x cols`` PE array (arbitrary units)."""

        if rows <= 0 or cols <= 0:
            raise ValueError("array dimensions must be positive")
        if style not in ("snn", "ann"):
            raise ValueError("style must be 'snn' or 'ann'")
        per_pe = ADDER_PE_AREA if style == "snn" else MAC_PE_AREA
        if with_bypass:
            per_pe *= (1.0 + BYPASS_AREA_OVERHEAD)
        return rows * cols * per_pe

    def bypass_area_overhead(self, rows: int, cols: int) -> float:
        """Fractional area cost of adding bypass muxes to every PE (paper: ~8 %)."""

        plain = self.array_area(rows, cols, with_bypass=False)
        protected = self.array_area(rows, cols, with_bypass=True)
        return (protected - plain) / plain


def compare_snn_vs_ann(workloads: Sequence[LayerWorkload], rows: int, cols: int,
                       spike_rates: Sequence[float] | None = None,
                       model: EnergyModel | None = None) -> Dict[str, float]:
    """Summary dictionary comparing the systolicSNN against a MAC-based ANN array.

    Returns energies (pJ), the energy ratio, cycle counts from the dataflow
    model and the bypass area overhead -- the quantities quoted in the
    paper's background and implementation sections.
    """

    model = model or EnergyModel()
    snn_energy = model.network_energy_pj(workloads, spike_rates, style="snn")
    ann_energy = model.network_energy_pj(workloads, None, style="ann")
    schedule = schedule_network(workloads, rows, cols)
    return {
        "snn_energy_pj": snn_energy,
        "ann_energy_pj": ann_energy,
        "energy_ratio_ann_over_snn": ann_energy / snn_energy if snn_energy else float("inf"),
        "total_cycles": float(schedule["total_cycles"]),
        "average_utilization": float(schedule["average_utilization"]),
        "bypass_area_overhead": model.bypass_area_overhead(rows, cols),
        "pe_energy_ratio": model.pe_energy_ratio,
    }
