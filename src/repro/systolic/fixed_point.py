"""Signed fixed-point arithmetic and bit-level stuck-at manipulation.

The PEs of the systolicSNN accumulate 32-bit fixed-point weights under binary
spikes (paper, Section II).  Stuck-at faults are injected into individual
output bits of the PE accumulator, so the simulator needs to move between the
real-valued domain used by the SNN software model and the two's-complement
integer codes held in the hardware accumulator.  This module provides that
conversion plus vectorised stuck-at application.
"""

from __future__ import annotations

import dataclasses

import numpy as np


@dataclasses.dataclass(frozen=True)
class FixedPointFormat:
    """A signed two's-complement fixed-point format.

    Parameters
    ----------
    total_bits:
        Word length, including the sign bit.  The paper's PEs use 32-bit
        accumulators; the default here is 16 bits which keeps the dynamic
        range of the scaled-down networks while making MSB faults just as
        catastrophic as in the paper.
    frac_bits:
        Number of fractional bits.
    """

    total_bits: int = 16
    frac_bits: int = 8

    def __post_init__(self) -> None:
        if self.total_bits < 2 or self.total_bits > 62:
            raise ValueError("total_bits must be in [2, 62]")
        if not 0 <= self.frac_bits < self.total_bits:
            raise ValueError("frac_bits must be in [0, total_bits)")

    # ------------------------------------------------------------------
    # Derived properties
    # ------------------------------------------------------------------
    @property
    def int_bits(self) -> int:
        """Number of integer bits (excluding the sign bit)."""

        return self.total_bits - self.frac_bits - 1

    @property
    def scale(self) -> float:
        """Value of one least-significant bit."""

        return 2.0 ** (-self.frac_bits)

    @property
    def max_code(self) -> int:
        return 2 ** (self.total_bits - 1) - 1

    @property
    def min_code(self) -> int:
        return -(2 ** (self.total_bits - 1))

    @property
    def max_value(self) -> float:
        return self.max_code * self.scale

    @property
    def min_value(self) -> float:
        return self.min_code * self.scale

    @property
    def sign_bit(self) -> int:
        """Bit index of the sign bit (the most significant bit)."""

        return self.total_bits - 1

    @property
    def magnitude_msb(self) -> int:
        """Bit index of the most significant *magnitude* bit (below the sign bit).

        The paper's fault-location sweep (Fig. 5a) injects into the data bits
        of the accumulator output, and its worst-case experiments use the
        higher-order data bits; a stuck-at-1 here adds half the full-scale
        range to almost every accumulator value.
        """

        return self.total_bits - 2

    # ------------------------------------------------------------------
    # Real <-> code conversion
    # ------------------------------------------------------------------
    def to_code(self, values: np.ndarray) -> np.ndarray:
        """Quantise real values into saturating two's-complement integer codes."""

        values = np.asarray(values, dtype=np.float64)
        codes = np.round(values / self.scale)
        codes = np.clip(codes, self.min_code, self.max_code)
        return codes.astype(np.int64)

    def from_code(self, codes: np.ndarray) -> np.ndarray:
        """Convert integer codes back to real values."""

        return np.asarray(codes, dtype=np.int64).astype(np.float64) * self.scale

    def quantize(self, values: np.ndarray) -> np.ndarray:
        """Round-trip real values through the fixed-point representation."""

        return self.from_code(self.to_code(values))

    # ------------------------------------------------------------------
    # Bit manipulation on codes (two's complement held in int64)
    # ------------------------------------------------------------------
    def _to_unsigned(self, codes: np.ndarray) -> np.ndarray:
        mask = (1 << self.total_bits) - 1
        return np.asarray(codes, dtype=np.int64) & mask

    def _from_unsigned(self, raw: np.ndarray) -> np.ndarray:
        raw = np.asarray(raw, dtype=np.int64)
        sign_mask = 1 << (self.total_bits - 1)
        full = 1 << self.total_bits
        return np.where(raw & sign_mask, raw - full, raw)

    def get_bit(self, codes: np.ndarray, bit: int) -> np.ndarray:
        """Return bit ``bit`` (0 = LSB) of each code as 0/1 integers."""

        self._validate_bit(bit)
        return (self._to_unsigned(codes) >> bit) & 1

    def set_bit(self, codes: np.ndarray, bit: int, value: int) -> np.ndarray:
        """Return codes with bit ``bit`` forced to ``value`` (0 or 1)."""

        self._validate_bit(bit)
        if value not in (0, 1):
            raise ValueError("bit value must be 0 or 1")
        raw = self._to_unsigned(codes)
        if value == 1:
            raw = raw | (1 << bit)
        else:
            raw = raw & ~np.int64(1 << bit)
        return self._from_unsigned(raw)

    def apply_stuck_at(self, values: np.ndarray, bit: int, stuck_value: int) -> np.ndarray:
        """Apply a stuck-at fault to real values: quantise, force the bit, dequantise."""

        codes = self.to_code(values)
        faulty = self.set_bit(codes, bit, stuck_value)
        return self.from_code(faulty)

    def _validate_bit(self, bit: int) -> None:
        if not 0 <= bit < self.total_bits:
            raise ValueError(f"bit index {bit} out of range for {self.total_bits}-bit format")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"Q{self.int_bits}.{self.frac_bits} ({self.total_bits} bits)"


#: Default accumulator format used by the systolic array simulator.
DEFAULT_ACCUMULATOR_FORMAT = FixedPointFormat(total_bits=16, frac_bits=8)
