"""Bit-safe fault-chain fast path shared by every campaign engine.

Fault-chain application -- the per-level segment GEMMs plus stuck-at
quantisation of :meth:`repro.systolic.array.BatchedSystolicArray
._apply_chain_plan` -- is the dominant cold cost of campaign sweeps (see
ROADMAP "next perf frontier").  This module hoists the two bit-safe levers
identified there into one implementation that both the batched simulator
and the fused inference engine's :class:`~repro.snn.inference.faulty_gemm
.FaultyAffineRunner` import:

* **Uniform tiles.**  Chains are regrouped at *prepare time* by their
  per-tile active-site signature (the number of stuck-at breakpoint levels
  a chain has in each weight tile) and *permuted so every group is a
  contiguous slice* of the chain axis.  Inside one group every chain has
  the same level count and the same tail layout, so the per-level segment
  GEMM and bit forcing run once per group with **no** per-level ``active``
  masks, no ``np.where`` selects and no zero-filled accumulators for
  not-yet-applied chains -- the ragged bookkeeping the chunked reference
  path pays on every call.  Because groups are contiguous, the per-call
  memory behaviour is identical to the reference path (one activation
  gather per chunk and tile, one scatter per chunk); all per-group work
  happens on views.

* **Prefix-level batching.**  A chain's non-last tiles all share one site
  count (the same physical PE-row faults repeat in every full weight tile),
  so uniform-tile signatures have the form ``(full, ..., full, last)``.
  Sorting the groups by *descending* signature therefore makes the chains
  active at any breakpoint level a **prefix** of the permuted chain axis on
  full tiles -- and a handful of contiguous runs on the (possibly partial)
  last tile.  The per-call path issues one stacked segment GEMM and one
  fused force per *(level, run)* instead of one per *(group, level)*, and a
  single whole-chunk tail GEMM per tile instead of one per group: with many
  small groups sharing a full-tile site count this collapses the dispatch
  count by the group count.  The run stacks are the primary storage; the
  per-group blocks below alias them as views, so carrying both layouts
  costs no extra memory.  Set ``REPRO_CHAIN_PREFIX_BATCH=0`` (or flip
  :data:`PREFIX_BATCH_ENABLED`) to fall back to per-group application.

* **Fused stuck-at kernel.**  :class:`StuckAtKernel` performs the
  quantise -> force-bit -> dequantise sequence as one in-place pass over
  the chain block: the float buffer is divided, rounded and clipped in
  place, cast into a reusable ``int64`` scratch, bit-forced with
  precomputed (per-chain) masks, sign-extended with the two's-complement
  ``xor``/``sub`` identity instead of a ``np.where`` select, and written
  back into the same float buffer.  No per-level temporaries survive the
  call.

Bit-identity rules (why this is safe):

* A stacked ``(G, batch, k) @ (G, k, n)`` matmul evaluates each leading
  slice as an independent 2D GEMM, so permuting chains along the stack
  axis cannot change any chain's result -- the same property the chunked
  reference path already relies on (and the equivalence tests pin).
* Every arithmetic step keeps the exact operand geometry of the
  sequential oracle: per-chain segment GEMMs of shape
  ``(batch, tile_rows) @ (tile_rows, n_out)``, the same quantise / force /
  dequantise order, and the same ``0 +`` normalisation of the *unquantised*
  tail sums (negative zeros produced by a tail GEMM must collapse to
  ``+0.0`` exactly as they do when the oracle accumulates into a
  zero-initialised buffer).  Skipping the ``0 +`` before the *first
  quantised* level is safe because quantisation maps ``-0.0`` and ``+0.0``
  to the same code -- the documented property the fused runner has pinned
  since PR 2.
* The in-place sign extension ``raw ^= S; raw -= S`` (with ``S`` the sign
  bit) equals ``where(raw & S, raw - 2S, raw)`` for every value in
  ``[0, 2S)`` -- exact int64 arithmetic, no rounding anywhere.
* Chains scatter to disjoint (map, column) output slices, so neither the
  permutation nor the group processing order can affect the result.

Set ``REPRO_CHAIN_FASTPATH=0`` (or flip :data:`FASTPATH_ENABLED`) to route
chain application through the untiled reference implementation
(:meth:`~repro.systolic.array.BatchedSystolicArray
._apply_chain_plan_reference`); the property tests and the recorded
benchmark drive both paths and assert ``tobytes()`` equality.
"""

from __future__ import annotations

import bisect
import dataclasses
import os
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = [
    "FASTPATH_ENABLED",
    "PREFIX_BATCH_ENABLED",
    "GroupBlock",
    "LevelBlock",
    "LevelRun",
    "PrefixTile",
    "StuckAtKernel",
    "TileBlock",
    "UniformChainPlan",
    "apply_chain_plan",
    "build_uniform_plan",
]

#: Route chain application through the uniform-tile fast path.  Initialised
#: from ``REPRO_CHAIN_FASTPATH`` (default on); tests and the recorded
#: benchmark flip it to compare against the untiled reference path.
FASTPATH_ENABLED = os.environ.get("REPRO_CHAIN_FASTPATH", "1").lower() not in (
    "0", "false", "off")

#: Apply chains per (level, contiguous run) across group boundaries instead
#: of per (group, level).  Initialised from ``REPRO_CHAIN_PREFIX_BATCH``
#: (default on); only consulted when :data:`FASTPATH_ENABLED` is on.  The
#: identity suites drive both settings and assert ``tobytes()`` equality.
PREFIX_BATCH_ENABLED = os.environ.get(
    "REPRO_CHAIN_PREFIX_BATCH", "1").lower() not in ("0", "false", "off")


class StuckAtKernel:
    """Fused vectorised stuck-at forcing for one fixed-point format.

    One :meth:`force` call performs the whole quantise -> force-bit ->
    dequantise sequence of :meth:`FixedPointFormat.apply_stuck_at` over a
    ``(chains, batch, n_out)`` block, in place, broadcasting per-chain bit
    positions and polarities.  The arithmetic is step-for-step identical to
    the scalar path (same division, same round-half-to-even, same clip,
    same two's-complement bit logic), so results are bit-identical; only
    the number of temporaries changes.
    """

    __slots__ = ("scale", "min_code", "max_code", "word_mask", "sign_mask")

    def __init__(self, fmt) -> None:
        self.scale = fmt.scale
        self.min_code = fmt.min_code
        self.max_code = fmt.max_code
        self.word_mask = (1 << fmt.total_bits) - 1
        self.sign_mask = 1 << (fmt.total_bits - 1)

    def force(self, values: np.ndarray, level: "LevelBlock", chunk: slice,
              raw: np.ndarray) -> np.ndarray:
        """Force ``level``'s stuck bits into ``values`` (overwritten), in place.

        ``values`` must be an owned float64 buffer of shape
        ``(size, batch, n_out)``; ``raw`` an int64 scratch of the same
        shape, reused across levels and tiles of one chunk.  ``chunk``
        selects the group-local chain range of the per-chain masks.
        """

        np.divide(values, self.scale, out=values)
        # rint == round(decimals=0) bitwise (both round half to even) and
        # minimum(maximum(.)) == clip bitwise (incl. NaN propagation); the
        # raw ufuncs skip the fromnumeric wrapper overhead on this hot path.
        np.rint(values, out=values)
        np.maximum(values, self.min_code, out=values)
        np.minimum(values, self.max_code, out=values)
        # Exact: post-clip values are integers in [min_code, max_code].
        np.copyto(raw, values, casting="unsafe")
        raw &= self.word_mask
        if level.all_sa1:
            raw |= level.bit_mask[chunk]
        elif level.all_sa0:
            raw &= level.inv_mask[chunk]
        else:
            np.copyto(raw, np.where(level.stuck_one[chunk],
                                    raw | level.bit_mask[chunk],
                                    raw & level.inv_mask[chunk]))
        # Two's-complement sign extension without a where-select.
        raw ^= self.sign_mask
        raw -= self.sign_mask
        return np.multiply(raw, self.scale, out=values)


@dataclasses.dataclass
class LevelBlock:
    """One stuck-at breakpoint level of a uniform group, with fused masks."""

    w_stack: np.ndarray             # (group, tile_rows, n_out) segment weights
    bit_mask: np.ndarray            # (group, 1, 1) int64
    inv_mask: np.ndarray            # (group, 1, 1) int64, ~bit_mask
    stuck_one: Optional[np.ndarray]  # (group, 1, 1) bool; None when uniform
    all_sa1: bool
    all_sa0: bool


@dataclasses.dataclass
class TileBlock:
    """One weight tile of a uniform group: its levels plus the tail segment."""

    levels: List[LevelBlock]        # exactly the group's site count here
    tail_stack: np.ndarray          # (group, tile_rows, n_out)


@dataclasses.dataclass
class GroupBlock:
    """Chains sharing one per-tile site-count signature (the tiling rule).

    ``start``/``end`` locate the group on the *permuted* chain axis of its
    :class:`UniformChainPlan`; within the group every chain applies the
    same number of breakpoint levels in every tile, so application needs
    no activity masks at all.  ``map_runs`` lists the group's maximal runs
    of consecutive chains sharing one fault map (group-relative
    ``(start, end, map_index)``): the wide-batch path issues one broadcast
    GEMM per run instead of gathering activations per chain.
    """

    start: int
    end: int
    tiles: List[TileBlock]          # one entry per weight tile
    map_runs: List[Tuple[int, int, int]]


@dataclasses.dataclass
class LevelRun(LevelBlock):
    """One maximal contiguous run of chains active at one breakpoint level.

    ``start``/``end`` locate the run on the permuted chain axis.  With the
    descending-signature sort a full tile has exactly one run per level (a
    prefix of the axis); the last, possibly partial, tile may split into a
    few runs.  The run's stacks and masks are the *owning* storage -- the
    per-group :class:`LevelBlock` views alias slices of them.
    """

    start: int = 0
    end: int = 0


@dataclasses.dataclass
class PrefixTile:
    """One weight tile laid out for prefix-level application.

    ``levels[k]`` lists the contiguous runs of chains whose site count in
    this tile exceeds ``k``; ``tail_stack`` covers the *whole* permuted
    chain axis (every chain has a tail segment in every tile), so the tail
    GEMM runs once per (chunk, tile) regardless of the group count.
    """

    levels: List[List[LevelRun]]
    tail_stack: np.ndarray          # (chains, tile_rows, n_out)


@dataclasses.dataclass
class UniformChainPlan:
    """One chain table regrouped into contiguous uniform-tile groups."""

    map_ids: np.ndarray             # (chains,) fault-map index, permuted
    map_sel: np.ndarray             # (chains, 1, 1) scatter index
    out_sel: np.ndarray             # (chains, 1, n_out) scatter index
    n_out: int
    tile_bounds: List[Tuple[int, int]]  # (lo, hi) input rows per weight tile
    groups: List[GroupBlock]
    has_levels: bool
    prefix_tiles: List[PrefixTile]
    run_starts: np.ndarray          # (map_runs,) whole-axis same-map runs
    run_ends: np.ndarray            # (map_runs,)
    run_maps: np.ndarray            # (map_runs,) fault-map index per run


def build_uniform_plan(table, tiles) -> UniformChainPlan:
    """Regroup a chain table into uniform-tile blocks (prepare time).

    ``table`` / ``tiles`` are the ragged
    :class:`~repro.systolic.array._ChainTable` /
    :class:`~repro.systolic.array._ChainTilePlan` structures; the returned
    plan holds the chains permuted so that every signature group is a
    contiguous slice, ordered by *descending* signature so each level's
    active chains form contiguous runs spanning group boundaries (a single
    prefix on full tiles).  The prefix-level run stacks own the contiguous
    segment copies and precomputed bit/polarity masks; the per-group blocks
    alias slices of them, so the per-call path does no mask derivation and
    carrying both layouts costs no extra memory.  The sort is deterministic,
    and chains scatter to disjoint output columns, so neither the
    permutation nor the application order can affect results.
    """

    n_chains = len(table.map_ids)
    signatures = np.stack(
        [np.asarray(tile.n_sites, dtype=np.int64) for tile in tiles], axis=1)
    by_signature: Dict[tuple, List[int]] = {}
    for chain in range(n_chains):
        by_signature.setdefault(
            tuple(int(s) for s in signatures[chain]), []).append(chain)

    # Descending signature order.  Non-last tiles all carry the chain's
    # full-tile site count, so signatures are (full, ..., full, last) and
    # the lexicographic sort orders by full count first: every full tile's
    # level-k active set becomes the prefix of chains with full > k.
    ordered = sorted(by_signature.items(), key=lambda kv: kv[0], reverse=True)
    permutation: List[int] = []
    group_bounds: List[Tuple[int, int, tuple]] = []
    for signature, members in ordered:
        start = len(permutation)
        permutation.extend(members)
        group_bounds.append((start, len(permutation), signature))
    perm = np.asarray(permutation, dtype=np.int64)
    map_ids = table.map_ids[perm]

    # Prefix-level run stacks: the owning storage for segment/tail copies
    # and masks.  Runs are maximal contiguous spans of chains active at one
    # level; a run's uniformity flags cover the whole run, group views
    # recompute their own below.
    prefix_tiles: List[PrefixTile] = []
    has_levels = False
    for tile in tiles:
        sites = np.asarray(tile.n_sites, dtype=np.int64)[perm]
        level_runs: List[List[LevelRun]] = []
        for level in range(int(sites.max(initial=0))):
            has_levels = True
            runs: List[LevelRun] = []
            run_start = None
            for position in range(n_chains + 1):
                active = position < n_chains and sites[position] > level
                if active and run_start is None:
                    run_start = position
                elif not active and run_start is not None:
                    idx = perm[run_start:position]
                    stuck_one = (table.stuck2d[idx, level] == 1)
                    bit_mask = np.left_shift(
                        np.int64(1), table.bits2d[idx, level])[:, None, None]
                    all_sa1 = bool(stuck_one.all())
                    all_sa0 = not stuck_one.any()
                    runs.append(LevelRun(
                        w_stack=np.ascontiguousarray(
                            tile.level_stacks[level][idx]),
                        bit_mask=bit_mask,
                        inv_mask=np.bitwise_not(bit_mask),
                        stuck_one=(None if all_sa1 or all_sa0
                                   else stuck_one[:, None, None]),
                        all_sa1=all_sa1,
                        all_sa0=all_sa0,
                        start=run_start,
                        end=position))
                    run_start = None
            level_runs.append(runs)
        prefix_tiles.append(PrefixTile(
            levels=level_runs,
            tail_stack=np.ascontiguousarray(tile.tail_stack[perm])))

    # Per-group blocks: views into the run stacks (a uniform group is
    # entirely inside one run at every level it participates in).
    groups: List[GroupBlock] = []
    for start, end, signature in group_bounds:
        tile_blocks: List[TileBlock] = []
        for tile_index in range(len(tiles)):
            levels: List[LevelBlock] = []
            for level in range(int(signature[tile_index])):
                runs = prefix_tiles[tile_index].levels[level]
                run = runs[bisect.bisect_right(
                    [r.start for r in runs], start) - 1]
                member = slice(start - run.start, end - run.start)
                stuck_one = run.stuck_one
                if stuck_one is None:
                    all_sa1, all_sa0 = run.all_sa1, run.all_sa0
                else:
                    stuck_one = stuck_one[member]
                    all_sa1 = bool(stuck_one.all())
                    all_sa0 = not stuck_one.any()
                    if all_sa1 or all_sa0:
                        stuck_one = None
                levels.append(LevelBlock(
                    w_stack=run.w_stack[member],
                    bit_mask=run.bit_mask[member],
                    inv_mask=run.inv_mask[member],
                    stuck_one=stuck_one,
                    all_sa1=all_sa1,
                    all_sa0=all_sa0))
            tile_blocks.append(TileBlock(
                levels=levels,
                tail_stack=prefix_tiles[tile_index].tail_stack[start:end]))
        # Chains arrive map-ascending from the chain tables, so a signature
        # subset keeps consecutive same-map chains adjacent: record the
        # maximal runs for the broadcast-GEMM path.
        map_runs: List[Tuple[int, int, int]] = []
        group_maps = map_ids[start:end].tolist()
        run_start = 0
        for position in range(1, len(group_maps) + 1):
            if (position == len(group_maps)
                    or group_maps[position] != group_maps[run_start]):
                map_runs.append((run_start, position, group_maps[run_start]))
                run_start = position
        groups.append(GroupBlock(start=start, end=end,
                                 tiles=tile_blocks, map_runs=map_runs))

    # Whole-axis same-map runs for the prefix path's broadcast-GEMM strategy.
    if n_chains:
        edges = np.flatnonzero(np.diff(map_ids)) + 1
        run_starts = np.concatenate(([0], edges)).astype(np.int64)
        run_ends = np.concatenate((edges, [n_chains])).astype(np.int64)
        run_maps = map_ids[run_starts]
    else:
        run_starts = run_ends = run_maps = np.zeros(0, dtype=np.int64)

    return UniformChainPlan(
        map_ids=map_ids,
        map_sel=map_ids[:, None, None],
        out_sel=table.out_idx2d[perm][:, None, :],
        n_out=table.n_out,
        tile_bounds=[(tile.lo, tile.hi) for tile in tiles],
        groups=groups,
        has_levels=has_levels,
        prefix_tiles=prefix_tiles,
        run_starts=run_starts,
        run_ends=run_ends,
        run_maps=run_maps)


#: Batch size from which the non-shared path switches from one gathered
#: activation copy per (chunk, tile) to per-chain 2D GEMMs on input views.
#: The gather costs ``chains x batch x tile_rows`` bytes of traffic, the
#: view loop ``~(levels + 1) x chains`` numpy dispatches; wide folded
#: convolution batches are gather-bound, tiny streaming batches
#: dispatch-bound.  Both strategies run the exact per-chain GEMM geometry
#: of the sequential oracle (a 2D product on a strided view IS what the
#: oracle executes), so the choice cannot affect results.
PER_CHAIN_GEMM_BATCH = 64

#: Cache of ``arange(batch)[None, :, None]`` scatter indices per batch size.
_BATCH_IDX_CACHE: Dict[int, np.ndarray] = {}


def _batch_idx(batch: int) -> np.ndarray:
    cached = _BATCH_IDX_CACHE.get(batch)
    if cached is None:
        if len(_BATCH_IDX_CACHE) > 64:
            _BATCH_IDX_CACHE.clear()
        cached = _BATCH_IDX_CACHE[batch] = np.arange(batch)[None, :, None]
    return cached


def apply_chain_plan(plan: UniformChainPlan, inputs: np.ndarray,
                     output: np.ndarray, shared: bool, kernel: StuckAtKernel,
                     rows: int, block_elements: int) -> None:
    """Replace the faulty columns of ``output`` with their chain values.

    ``inputs`` is ``(batch, in_features)`` when ``shared`` (identical
    activations for every map) or ``(F, batch, in_features)`` otherwise;
    ``output`` is the dense ``(F, batch, out_features)`` product, corrected
    in place.  Chain chunks are bounded by ``block_elements`` exactly as in
    the reference path so wide (folded convolution) batches stay within the
    memory envelope.  Dispatches to the prefix-level run layout unless
    :data:`PREFIX_BATCH_ENABLED` is off, in which case chains apply one
    uniform group at a time; both walk the same arithmetic per chain, so the
    choice cannot affect results.
    """

    if PREFIX_BATCH_ENABLED:
        _apply_prefix_batched(plan, inputs, output, shared, kernel, rows,
                              block_elements)
    else:
        _apply_grouped(plan, inputs, output, shared, kernel, rows,
                       block_elements)


def _apply_prefix_batched(plan: UniformChainPlan, inputs: np.ndarray,
                          output: np.ndarray, shared: bool,
                          kernel: StuckAtKernel, rows: int,
                          block_elements: int) -> None:
    """Prefix-level application: one GEMM + force per (level, run).

    Per chain the arithmetic is step-for-step the grouped path's: the
    level-0 segment GEMM writes straight into the chunk accumulator (the
    grouped path's fresh ``segment`` buffer, relocated), level ``k >= 1``
    adds ``acc + segment`` in the same operand order, every level forces in
    place, and the tail adds ``acc + tails``.  Only the *stacking* of
    independent per-chain GEMMs changes -- per-slice results of a stacked
    matmul are independent 2D products, so crossing group boundaries cannot
    change bits.
    """

    batch = inputs.shape[-2]
    batch_idx = _batch_idx(batch)
    n_chains = plan.map_ids.shape[0]
    n_out = plan.n_out
    map_ids = plan.map_ids
    by_view = not shared and batch >= PER_CHAIN_GEMM_BATCH
    if by_view:
        # One slice view per (map, tile), hoisted out of the chain loops.
        tile_views = [
            [inputs[m, :, lo:hi] for m in range(inputs.shape[0])]
            for lo, hi in plan.tile_bounds
        ]
        run_starts, run_ends, run_maps = (plan.run_starts, plan.run_ends,
                                          plan.run_maps)
    block = max(1, block_elements // max(1, batch * max(rows, n_out)))
    for start in range(0, n_chains, block):
        stop = min(start + block, n_chains)
        size = stop - start
        col_out = np.empty((size, batch, n_out))
        acc = np.empty((size, batch, n_out)) if plan.has_levels else None
        raw = (np.empty((size, batch, n_out), dtype=np.int64)
               if plan.has_levels else None)
        for tile_index, (lo, hi) in enumerate(plan.tile_bounds):
            tile = plan.prefix_tiles[tile_index]
            if shared:
                x_chunk = inputs[:, lo:hi]
            elif by_view:
                x_chunk = None     # per-map-run views below, no gather
            else:
                # One gather per (chunk, tile); runs below take views.
                x_chunk = inputs[map_ids[start:stop], :, lo:hi]

            def product(w_stack, lo_c, hi_c, out=None):
                # ``w_stack`` is already sliced to the chunk-active span
                # [lo_c, hi_c) of the permuted chain axis.
                if shared:
                    return np.matmul(x_chunk, w_stack, out=out)
                if not by_view:
                    return np.matmul(x_chunk[lo_c - start:hi_c - start],
                                     w_stack, out=out)
                # One broadcast GEMM per same-map chain run (the whole-axis
                # runs, intersected with this span): per-slice 2D GEMMs on
                # activation views, exactly the sequential oracle's operands.
                result = (np.empty((hi_c - lo_c, batch, n_out))
                          if out is None else out)
                views = tile_views[tile_index]
                r = int(np.searchsorted(run_starts, lo_c, side="right")) - 1
                while r < run_starts.shape[0] and run_starts[r] < hi_c:
                    s = max(int(run_starts[r]), lo_c)
                    e = min(int(run_ends[r]), hi_c)
                    if s < e:
                        np.matmul(views[int(run_maps[r])],
                                  w_stack[s - lo_c:e - lo_c],
                                  out=result[s - lo_c:e - lo_c])
                    r += 1
                return result

            for level_index, runs in enumerate(tile.levels):
                for run in runs:
                    lo_c = max(run.start, start)
                    hi_c = min(run.end, stop)
                    if lo_c >= hi_c:
                        continue
                    local = slice(lo_c - start, hi_c - start)
                    member = slice(lo_c - run.start, hi_c - run.start)
                    if level_index == 0:
                        product(run.w_stack[member], lo_c, hi_c,
                                out=acc[local])
                    else:
                        segment = product(run.w_stack[member], lo_c, hi_c)
                        # In-place accumulate; 0 + segment is skipped at the
                        # first level because quantisation maps the zero
                        # signs to the same codes.
                        np.add(acc[local], segment, out=acc[local])
                    kernel.force(acc[local], run, member, raw[local])
            tails = product(tile.tail_stack[start:stop], start, stop)
            if tile.levels:
                # Chains with any level in this tile are exactly the level-0
                # runs; the rest contribute their tail alone.
                for run in tile.levels[0]:
                    lo_c = max(run.start, start)
                    hi_c = min(run.end, stop)
                    if lo_c >= hi_c:
                        continue
                    local = slice(lo_c - start, hi_c - start)
                    np.add(acc[local], tails[local], out=tails[local])
            if tile_index == 0:
                # 0 + tails: collapse any -0.0 the (unquantised) tail GEMM
                # produced, exactly as the oracle's zero-initialised
                # accumulator does.
                np.add(tails, 0.0, out=col_out)
            else:
                np.add(col_out, tails, out=col_out)
        output[plan.map_sel[start:stop], batch_idx,
               plan.out_sel[start:stop]] = col_out


def _apply_grouped(plan: UniformChainPlan, inputs: np.ndarray,
                   output: np.ndarray, shared: bool, kernel: StuckAtKernel,
                   rows: int, block_elements: int) -> None:
    """Per-group application (the :data:`PREFIX_BATCH_ENABLED` = off path)."""

    batch = inputs.shape[-2]
    batch_idx = _batch_idx(batch)
    n_chains = plan.map_ids.shape[0]
    n_out = plan.n_out
    map_ids = plan.map_ids
    by_view = not shared and batch >= PER_CHAIN_GEMM_BATCH
    if by_view:
        # One slice view per (map, tile), hoisted out of the chain loops.
        tile_views = [
            [inputs[m, :, lo:hi] for m in range(inputs.shape[0])]
            for lo, hi in plan.tile_bounds
        ]
    block = max(1, block_elements // max(1, batch * max(rows, n_out)))
    for start in range(0, n_chains, block):
        stop = min(start + block, n_chains)
        size = stop - start
        col_out = np.empty((size, batch, n_out))
        raw = (np.empty((size, batch, n_out), dtype=np.int64)
               if plan.has_levels else None)
        for tile_index, (lo, hi) in enumerate(plan.tile_bounds):
            if shared:
                x_chunk = inputs[:, lo:hi]
            elif by_view:
                x_chunk = None     # per-chain views below, no gather
            else:
                # One gather per (chunk, tile); groups below take views.
                x_chunk = inputs[map_ids[start:stop], :, lo:hi]
            for group in plan.groups:
                lo_c = max(group.start, start)
                hi_c = min(group.end, stop)
                if lo_c >= hi_c:
                    continue
                local = slice(lo_c - start, hi_c - start)   # chunk-relative
                member = slice(lo_c - group.start, hi_c - group.start)
                tile = group.tiles[tile_index]

                def product(w_stack):
                    if shared:
                        return np.matmul(x_chunk, w_stack[member])
                    if not by_view:
                        return np.matmul(x_chunk[local], w_stack[member])
                    # One broadcast GEMM per same-map chain run: the 2D
                    # activation view broadcasts across the run's weight
                    # stack (per-slice 2D GEMMs, exactly the sequential
                    # oracle's operands) -- no gathered activation copy.
                    out = np.empty((hi_c - lo_c, batch, n_out))
                    views = tile_views[tile_index]
                    for run_lo, run_hi, map_index in group.map_runs:
                        s = max(run_lo, member.start)
                        e = min(run_hi, member.stop)
                        if s < e:
                            np.matmul(views[map_index], w_stack[s:e],
                                      out=out[s - member.start:e - member.start])
                    return out

                acc: Optional[np.ndarray] = None
                for level in tile.levels:
                    segment = product(level.w_stack)
                    if acc is not None:
                        # In-place accumulate; 0 + segment is skipped at the
                        # first level because quantisation maps the zero
                        # signs to the same codes.
                        np.add(acc, segment, out=segment)
                    acc = kernel.force(segment, level, member, raw[local])
                tails = product(tile.tail_stack)
                tile_out = tails if acc is None else np.add(acc, tails,
                                                            out=tails)
                dest = col_out[local]
                if tile_index == 0:
                    # 0 + tile_out: collapse any -0.0 the (unquantised) tail
                    # GEMM produced, exactly as the oracle's zero-initialised
                    # accumulator does.
                    np.add(tile_out, 0.0, out=dest)
                else:
                    np.add(dest, tile_out, out=dest)
        output[plan.map_sel[start:stop], batch_idx,
               plan.out_sel[start:stop]] = col_out
