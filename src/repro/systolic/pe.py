"""Processing-element (PE) model of the systolicSNN accelerator.

A PE (paper, Fig. 3a) holds a pre-stored 32-bit weight, accumulates it onto
the incoming partial sum when the 1-bit input spike is asserted (using an
adder-subtractor for signed weights), counts output spikes, and -- in the
fault-mitigated design (Fig. 3b) -- can be *bypassed* by a multiplexer so a
faulty PE forwards the incoming partial sum unchanged.

The cycle-accurate behaviour lives here for unit testing and for the latency
model; the vectorised functional simulation used for whole-network inference
lives in :mod:`repro.systolic.array` and reproduces exactly the same
arithmetic.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Optional

import numpy as np

from .fixed_point import DEFAULT_ACCUMULATOR_FORMAT, FixedPointFormat

if TYPE_CHECKING:  # pragma: no cover - import used for type hints only
    from ..faults.fault_model import StuckAtFault


@dataclasses.dataclass
class ProcessingElement:
    """One processing element of the systolic array.

    Parameters
    ----------
    row, col:
        Grid coordinates of the PE.
    fmt:
        Fixed-point format of the accumulator output.
    fault:
        Optional stuck-at fault afflicting the accumulator output.
    bypassed:
        When true the PE is skipped (Fig. 3b): its contribution to the
        column sum is dropped and the fault no longer corrupts the output.
    """

    row: int
    col: int
    fmt: FixedPointFormat = DEFAULT_ACCUMULATOR_FORMAT
    fault: Optional["StuckAtFault"] = None
    bypassed: bool = False
    weight: float = 0.0
    spike_count: int = 0

    def __post_init__(self) -> None:
        if self.row < 0 or self.col < 0:
            raise ValueError("PE coordinates must be non-negative")

    @property
    def is_faulty(self) -> bool:
        return self.fault is not None

    def load_weight(self, weight: float) -> None:
        """Pre-store a weight into the PE (weight-stationary dataflow)."""

        self.weight = float(self.fmt.quantize(np.array(weight)))

    def reset(self) -> None:
        """Clear the spike counter (between inference passes)."""

        self.spike_count = 0

    def process(self, spike: int, partial_sum_in: float) -> float:
        """Advance the PE by one cycle.

        The incoming ``partial_sum_in`` flows down the column; when the input
        ``spike`` is asserted the stored weight is added (or subtracted,
        handled by the signed fixed-point representation).  The accumulator
        output then passes through the stuck-at fault, if any.  A bypassed PE
        simply forwards ``partial_sum_in``.
        """

        if spike not in (0, 1):
            raise ValueError("spike input must be binary")
        if self.bypassed:
            return float(partial_sum_in)
        if spike:
            self.spike_count += 1
        accumulated = partial_sum_in + (self.weight if spike else 0.0)
        accumulated = float(self.fmt.quantize(np.array(accumulated)))
        if self.fault is not None:
            accumulated = float(self.fault.apply(np.array(accumulated), self.fmt))
        return accumulated
