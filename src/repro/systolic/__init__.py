"""Systolic-array SNN accelerator (systolicSNN) simulator.

Functional, bit-accurate-at-the-accumulator model of the weight-stationary
PE grid the paper evaluates, plus fixed-point arithmetic, weight-to-PE
mapping and a first-order latency model.
"""

from .fixed_point import DEFAULT_ACCUMULATOR_FORMAT, FixedPointFormat
from .pe import ProcessingElement
from .mapping import (
    as_weight_matrix,
    count_mapped_weights,
    faulty_mask_for_layer_weight,
    faulty_weight_mask,
    pe_coordinates,
    tile_counts,
)
from .array import BatchedSystolicArray, FaultSite, SystolicArray, matmul_batched
from . import chain_kernel
from .chain_kernel import StuckAtKernel
from .scheduler import (
    LayerSchedule,
    LayerWorkload,
    reexecution_overhead,
    schedule_layer,
    schedule_network,
)
from .energy import BYPASS_AREA_OVERHEAD, EnergyModel, compare_snn_vs_ann

__all__ = [
    "DEFAULT_ACCUMULATOR_FORMAT",
    "FixedPointFormat",
    "ProcessingElement",
    "as_weight_matrix",
    "count_mapped_weights",
    "faulty_mask_for_layer_weight",
    "faulty_weight_mask",
    "pe_coordinates",
    "tile_counts",
    "BatchedSystolicArray",
    "FaultSite",
    "StuckAtKernel",
    "SystolicArray",
    "chain_kernel",
    "matmul_batched",
    "LayerSchedule",
    "LayerWorkload",
    "reexecution_overhead",
    "schedule_layer",
    "schedule_network",
    "BYPASS_AREA_OVERHEAD",
    "EnergyModel",
    "compare_snn_vs_ann",
]
