"""Latency / utilisation model of the systolicSNN dataflow.

The paper motivates systolic arrays with throughput; this module provides a
first-order analytical model of the cycles needed to run a spiking layer on
the array (spike inputs streamed row-wise, one time step per wavefront) so
that the examples and ablation benchmarks can report utilisation and the
cost of re-execution-based fault tolerance that the paper argues against.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Sequence

import numpy as np

from .mapping import as_weight_matrix, tile_counts


@dataclasses.dataclass(frozen=True)
class LayerWorkload:
    """Shape summary of one spiking layer executed on the array.

    ``vectors`` is the number of input vectors streamed through the array for
    one forward pass (batch size x spatial output positions x time steps).
    """

    name: str
    out_features: int
    in_features: int
    vectors: int

    @staticmethod
    def from_weight(name: str, weight: np.ndarray, vectors: int) -> "LayerWorkload":
        matrix = as_weight_matrix(weight)
        return LayerWorkload(name=name, out_features=matrix.shape[0],
                             in_features=matrix.shape[1], vectors=vectors)


@dataclasses.dataclass(frozen=True)
class LayerSchedule:
    """Cycle count breakdown for one layer on a given array size."""

    name: str
    tiles: int
    cycles: int
    mac_operations: int
    utilization: float


def schedule_layer(workload: LayerWorkload, rows: int, cols: int) -> LayerSchedule:
    """Estimate cycles for one layer with output-stationary wavefront timing.

    Per tile the pipeline needs ``rows + cols - 1`` cycles to fill/drain plus
    one cycle per streamed vector; tiles are executed back to back.
    """

    if rows <= 0 or cols <= 0:
        raise ValueError("array dimensions must be positive")
    tiles_in, tiles_out = tile_counts((workload.out_features, workload.in_features), rows, cols)
    tiles = tiles_in * tiles_out
    per_tile = rows + cols - 1 + workload.vectors
    cycles = tiles * per_tile
    mac_ops = workload.out_features * workload.in_features * workload.vectors
    peak = rows * cols * cycles
    utilization = mac_ops / peak if peak else 0.0
    return LayerSchedule(name=workload.name, tiles=tiles, cycles=cycles,
                         mac_operations=mac_ops, utilization=min(1.0, utilization))


def schedule_network(workloads: Sequence[LayerWorkload], rows: int, cols: int
                     ) -> Dict[str, object]:
    """Schedule every layer and return totals plus the per-layer breakdown."""

    layers = [schedule_layer(w, rows, cols) for w in workloads]
    total_cycles = int(sum(l.cycles for l in layers))
    total_macs = int(sum(l.mac_operations for l in layers))
    return {
        "layers": layers,
        "total_cycles": total_cycles,
        "total_macs": total_macs,
        "average_utilization": float(np.mean([l.utilization for l in layers])) if layers else 0.0,
    }


def reexecution_overhead(total_cycles: int, redundancy: int = 2) -> int:
    """Cycles required by redundant execution (the baseline the paper rejects)."""

    if redundancy < 1:
        raise ValueError("redundancy must be >= 1")
    return total_cycles * redundancy
