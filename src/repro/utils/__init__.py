"""Shared utilities: deterministic RNG management, logging, serialization."""

from .rng import DEFAULT_SEED, derive_seed, get_rng, spawn_rngs
from .hashing import loader_token, model_token, state_token
from .logging import Timer, configure_logging, get_logger
from .serialization import load_records, load_state_dict, save_records, save_state_dict

__all__ = [
    "DEFAULT_SEED",
    "derive_seed",
    "get_rng",
    "spawn_rngs",
    "loader_token",
    "model_token",
    "state_token",
    "Timer",
    "configure_logging",
    "get_logger",
    "load_records",
    "load_state_dict",
    "save_records",
    "save_state_dict",
]
