"""Stable content digests of models and datasets.

These tokens key every cross-process cache in the campaign stack: the
on-disk sweep records of :mod:`repro.faults.campaign`, the retraining
caches of :mod:`repro.experiments.mitigation` and the per-process lowered
inference-plan cache of :mod:`repro.snn.inference.plan_cache`.  They hash
content (names, shapes, dtypes and raw bytes), never object identity, so
two models with identical parameters produce identical tokens in any
process -- and a single mutated weight changes the token.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np

__all__ = ["loader_token", "model_token", "state_token"]


def state_token(state: Dict[str, np.ndarray]) -> str:
    """Stable digest of a model state dict (name, shape, dtype and bytes)."""

    digest = hashlib.sha256()
    for name in sorted(state):
        value = np.ascontiguousarray(state[name])
        digest.update(name.encode("utf-8"))
        digest.update(str(value.shape).encode("utf-8"))
        digest.update(str(value.dtype).encode("utf-8"))
        digest.update(value.tobytes())
    return digest.hexdigest()


def model_token(model) -> str:
    """Stable digest of a model's parameters and buffers."""

    return state_token(model.state_dict())


def loader_token(loader) -> str:
    """Stable digest of a data loader's dataset (inputs, labels, batching)."""

    dataset = loader.dataset
    digest = hashlib.sha256()
    inputs = np.ascontiguousarray(dataset.inputs)
    labels = np.ascontiguousarray(dataset.labels)
    digest.update(str(inputs.shape).encode("utf-8"))
    digest.update(inputs.tobytes())
    digest.update(labels.tobytes())
    digest.update(str(loader.batch_size).encode("utf-8"))
    return digest.hexdigest()
