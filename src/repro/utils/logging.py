"""Lightweight logging helpers for experiments and examples."""

from __future__ import annotations

import logging
import sys
import time
from typing import Optional

_LOGGER_NAME = "repro"


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """Return the package logger (or a child logger for ``name``)."""

    logger = logging.getLogger(_LOGGER_NAME if name is None else f"{_LOGGER_NAME}.{name}")
    return logger


def configure_logging(level: int = logging.INFO, stream=sys.stderr) -> logging.Logger:
    """Configure the package logger once with a concise format."""

    logger = logging.getLogger(_LOGGER_NAME)
    if not logger.handlers:
        handler = logging.StreamHandler(stream)
        handler.setFormatter(logging.Formatter("[%(asctime)s] %(name)s %(levelname)s: %(message)s",
                                                datefmt="%H:%M:%S"))
        logger.addHandler(handler)
    logger.setLevel(level)
    return logger


class Timer:
    """Context manager measuring wall-clock time of a block.

    Example
    -------
    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self, label: str = "", logger: Optional[logging.Logger] = None) -> None:
        self.label = label
        self.logger = logger
        self.elapsed = 0.0
        self._start = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.elapsed = time.perf_counter() - self._start
        if self.logger is not None:
            self.logger.info("%s took %.3fs", self.label or "block", self.elapsed)
