"""Saving and loading model parameters and experiment records.

Model state is stored as compressed ``.npz`` archives keyed by parameter
name; experiment records are stored as JSON so they can be inspected and
diffed by hand.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Mapping, Union

import numpy as np

PathLike = Union[str, Path]


def save_state_dict(state: Mapping[str, np.ndarray], path: PathLike) -> Path:
    """Save a mapping of parameter name -> numpy array to ``path`` (.npz)."""

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **{key: np.asarray(value) for key, value in state.items()})
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_state_dict(path: PathLike) -> Dict[str, np.ndarray]:
    """Load a mapping of parameter name -> numpy array saved by :func:`save_state_dict`."""

    path = Path(path)
    if not path.exists() and path.with_suffix(path.suffix + ".npz").exists():
        path = path.with_suffix(path.suffix + ".npz")
    with np.load(path) as archive:
        return {key: archive[key].copy() for key in archive.files}


def _jsonify(value: Any) -> Any:
    """Convert numpy scalars / arrays into JSON-serialisable structures."""

    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, dict):
        return {str(k): _jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    return value


def save_records(records: Any, path: PathLike) -> Path:
    """Save experiment records (list/dict of plain values) as pretty JSON."""

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(_jsonify(records), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_records(path: PathLike) -> Any:
    """Load experiment records saved by :func:`save_records`."""

    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)
