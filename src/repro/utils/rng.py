"""Deterministic random-number management.

Every stochastic component in the reproduction (dataset synthesis, weight
initialisation, dropout masks, fault-map sampling) draws from a
:class:`numpy.random.Generator` obtained through this module, so experiments
are reproducible bit-for-bit from a single seed.
"""

from __future__ import annotations

import hashlib
from typing import Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]

#: Seed used when an experiment does not specify one explicitly.
DEFAULT_SEED = 20230112  # arXiv submission date of the FalVolt paper.


def get_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``seed`` may be an integer, an existing generator (returned unchanged) or
    ``None`` (the module default seed).
    """

    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = DEFAULT_SEED
    return np.random.default_rng(int(seed))


def spawn_rngs(seed: SeedLike, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent generators from one seed.

    Used by repeated-trial experiments (e.g. the 8 fault-map iterations in the
    paper's Fig. 5b) so that each trial is independent yet reproducible.
    """

    if count < 0:
        raise ValueError("count must be non-negative")
    base = get_rng(seed)
    seeds = base.integers(0, 2**63 - 1, size=count)
    return [np.random.default_rng(int(s)) for s in seeds]


def _stable_tag_value(tag: Union[int, str]) -> int:
    """Map a tag to a 63-bit integer that is stable across processes.

    Python's built-in ``hash`` is randomised per process for strings
    (``PYTHONHASHSEED``), which would make every derived seed -- and therefore
    every "seeded" model initialisation and fault map -- different on each
    run.  String tags are digested with BLAKE2b instead, which is stable.
    """

    if isinstance(tag, str):
        digest = hashlib.blake2b(tag.encode("utf-8"), digest_size=8).digest()
        return int.from_bytes(digest, "big") & (2**63 - 1)
    return int(tag) & (2**63 - 1)


def derive_seed(seed: SeedLike, *tags: Union[int, str]) -> int:
    """Derive a child seed deterministically from a parent seed and tags.

    Tags identify the consumer (e.g. ``("fault_map", trial_index)``) so that
    changing one experiment knob does not shift the random stream of another.
    The derivation is stable across processes and platforms, which the
    campaign cache relies on (cache keys embed derived seeds).
    """

    if isinstance(seed, np.random.Generator):
        raise TypeError("derive_seed requires an integer seed, not a Generator")
    if seed is None:
        seed = DEFAULT_SEED
    mix = np.uint64(int(seed))
    for tag in tags:
        tag_value = np.uint64(_stable_tag_value(tag))
        mix = np.uint64((int(mix) * 6364136223846793005 + int(tag_value) + 1442695040888963407)
                        % (2**64))
    return int(mix % (2**63 - 1))
