"""Tests for the fixed-point format and bit-level stuck-at manipulation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.systolic import DEFAULT_ACCUMULATOR_FORMAT, FixedPointFormat


class TestFormatProperties:
    def test_default_format(self):
        fmt = DEFAULT_ACCUMULATOR_FORMAT
        assert fmt.total_bits == 16
        assert fmt.frac_bits == 8
        assert fmt.sign_bit == 15
        assert fmt.magnitude_msb == 14

    def test_ranges(self):
        fmt = FixedPointFormat(total_bits=8, frac_bits=4)
        assert fmt.max_code == 127
        assert fmt.min_code == -128
        assert fmt.scale == pytest.approx(1.0 / 16)
        assert fmt.max_value == pytest.approx(127 / 16)
        assert fmt.int_bits == 3

    def test_invalid_formats(self):
        with pytest.raises(ValueError):
            FixedPointFormat(total_bits=1, frac_bits=0)
        with pytest.raises(ValueError):
            FixedPointFormat(total_bits=8, frac_bits=8)
        with pytest.raises(ValueError):
            FixedPointFormat(total_bits=63, frac_bits=8)

    def test_str(self):
        assert "16 bits" in str(FixedPointFormat(16, 8))


class TestQuantisation:
    def test_roundtrip_exact_values(self):
        fmt = FixedPointFormat(16, 8)
        values = np.array([0.0, 1.0, -1.0, 0.5, -0.25, 100.0])
        assert np.allclose(fmt.quantize(values), values)

    def test_rounding(self):
        fmt = FixedPointFormat(16, 8)
        assert fmt.quantize(np.array(0.001)) == pytest.approx(0.0, abs=fmt.scale)

    def test_saturation(self):
        fmt = FixedPointFormat(8, 4)
        assert fmt.quantize(np.array(1000.0)) == pytest.approx(fmt.max_value)
        assert fmt.quantize(np.array(-1000.0)) == pytest.approx(fmt.min_value)

    def test_to_code_from_code_roundtrip(self):
        fmt = FixedPointFormat(12, 6)
        codes = np.array([-100, 0, 55, 2000, -2100])
        clipped = np.clip(codes, fmt.min_code, fmt.max_code)
        assert np.array_equal(fmt.to_code(fmt.from_code(clipped)), clipped)


class TestBitManipulation:
    def test_get_bit(self):
        fmt = FixedPointFormat(8, 0)
        assert fmt.get_bit(np.array([5]), 0) == 1
        assert fmt.get_bit(np.array([5]), 1) == 0
        assert fmt.get_bit(np.array([5]), 2) == 1

    def test_get_bit_negative_value(self):
        fmt = FixedPointFormat(8, 0)
        # -1 is all ones in two's complement.
        assert fmt.get_bit(np.array([-1]), 7) == 1
        assert fmt.get_bit(np.array([-1]), 0) == 1

    def test_set_bit_one(self):
        fmt = FixedPointFormat(8, 0)
        assert fmt.set_bit(np.array([0]), 3, 1) == 8

    def test_set_bit_zero(self):
        fmt = FixedPointFormat(8, 0)
        assert fmt.set_bit(np.array([15]), 1, 0) == 13

    def test_set_sign_bit_makes_negative(self):
        fmt = FixedPointFormat(8, 0)
        assert fmt.set_bit(np.array([0]), 7, 1) == -128

    def test_clear_sign_bit_makes_positive(self):
        fmt = FixedPointFormat(8, 0)
        assert fmt.set_bit(np.array([-1]), 7, 0) == 127

    def test_invalid_bit_index(self):
        fmt = FixedPointFormat(8, 0)
        with pytest.raises(ValueError):
            fmt.set_bit(np.array([0]), 8, 1)
        with pytest.raises(ValueError):
            fmt.get_bit(np.array([0]), -1)

    def test_invalid_bit_value(self):
        fmt = FixedPointFormat(8, 0)
        with pytest.raises(ValueError):
            fmt.set_bit(np.array([0]), 2, 2)

    def test_apply_stuck_at_high_bit_is_catastrophic(self):
        fmt = FixedPointFormat(16, 8)
        small = np.array([0.5])
        corrupted = fmt.apply_stuck_at(small, fmt.magnitude_msb, 1)
        assert corrupted[0] >= 63.0  # 2^14 * 2^-8 = 64 added

    def test_apply_stuck_at_lsb_is_benign(self):
        fmt = FixedPointFormat(16, 8)
        value = np.array([0.5])
        corrupted = fmt.apply_stuck_at(value, 0, 1)
        assert abs(corrupted[0] - value[0]) <= fmt.scale


class TestHypothesisProperties:
    @given(st.lists(st.floats(min_value=-100, max_value=100, allow_nan=False), min_size=1,
                    max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_quantize_idempotent(self, values):
        fmt = FixedPointFormat(16, 8)
        arr = np.array(values)
        once = fmt.quantize(arr)
        twice = fmt.quantize(once)
        assert np.allclose(once, twice)

    @given(st.lists(st.floats(min_value=-100, max_value=100, allow_nan=False), min_size=1,
                    max_size=20),
           st.integers(min_value=0, max_value=15), st.integers(min_value=0, max_value=1))
    @settings(max_examples=50, deadline=None)
    def test_stuck_at_is_idempotent(self, values, bit, stuck):
        fmt = FixedPointFormat(16, 8)
        arr = np.array(values)
        once = fmt.apply_stuck_at(arr, bit, stuck)
        twice = fmt.apply_stuck_at(once, bit, stuck)
        assert np.allclose(once, twice)

    @given(st.lists(st.floats(min_value=-100, max_value=100, allow_nan=False), min_size=1,
                    max_size=20),
           st.integers(min_value=0, max_value=15), st.integers(min_value=0, max_value=1))
    @settings(max_examples=50, deadline=None)
    def test_stuck_at_forces_bit(self, values, bit, stuck):
        fmt = FixedPointFormat(16, 8)
        corrupted_codes = fmt.to_code(fmt.apply_stuck_at(np.array(values), bit, stuck))
        assert np.all(fmt.get_bit(corrupted_codes, bit) == stuck)

    @given(st.integers(min_value=-128, max_value=127))
    @settings(max_examples=100, deadline=None)
    def test_unsigned_signed_roundtrip(self, code):
        fmt = FixedPointFormat(8, 0)
        raw = fmt._to_unsigned(np.array([code]))
        back = fmt._from_unsigned(raw)
        assert back[0] == code
