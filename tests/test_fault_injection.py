"""Tests for attaching faulty arrays to trained models and the vulnerability sweeps."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.datasets import DataLoader
from repro.faults import (
    FaultInjector,
    StuckAtFault,
    baseline_accuracy,
    build_faulty_array,
    evaluate_with_faults,
    random_fault_map,
    sweep_array_sizes,
    sweep_bit_locations,
    sweep_faulty_pe_count,
)
from repro.snn.layers import Conv2d, Linear
from repro.systolic import DEFAULT_ACCUMULATOR_FORMAT, SystolicArray

FMT = DEFAULT_ACCUMULATOR_FORMAT


@pytest.fixture()
def test_loader(tiny_mnist_data):
    _, test = tiny_mnist_data
    return DataLoader(test, batch_size=50)


class TestFaultInjector:
    def test_forwards_restored_after_context(self, trained_tiny_model):
        layers = [m for m in trained_tiny_model.modules() if isinstance(m, (Conv2d, Linear))]
        array = SystolicArray(8, 8)
        with FaultInjector(trained_tiny_model, array):
            assert all("forward" in layer.__dict__ for layer in layers)
        assert all("forward" not in layer.__dict__ for layer in layers)

    def test_fault_free_array_preserves_predictions(self, trained_tiny_model, test_loader):
        inputs, _ = next(iter(test_loader))
        clean = trained_tiny_model.predict(inputs)
        array = SystolicArray(16, 16)
        with FaultInjector(trained_tiny_model, array):
            faulty = trained_tiny_model.predict(inputs)
        assert np.array_equal(clean, faulty)

    def test_layer_filter_restricts_rerouting(self, trained_tiny_model):
        array = SystolicArray(8, 8)
        injector = FaultInjector(trained_tiny_model, array,
                                 layer_filter=lambda layer: isinstance(layer, Linear))
        assert all(isinstance(layer, Linear) for layer in injector._target_layers())

    def test_build_faulty_array_bypass_flag(self):
        fm = random_fault_map(8, 8, 4, seed=0)
        plain = build_faulty_array(fm)
        bypassed = build_faulty_array(fm, bypass=True)
        assert len(plain.bypassed_coordinates) == 0
        assert bypassed.bypassed_coordinates == set(fm.coordinates())


class TestEvaluateWithFaults:
    def test_requires_map_or_array(self, trained_tiny_model, test_loader):
        with pytest.raises(ValueError):
            evaluate_with_faults(trained_tiny_model, test_loader)

    def test_matches_baseline_without_faults(self, trained_tiny_model, test_loader,
                                             trained_tiny_model_state):
        fm = random_fault_map(16, 16, 0, seed=0)
        acc = evaluate_with_faults(trained_tiny_model, test_loader, fault_map=fm)
        assert acc == pytest.approx(trained_tiny_model_state["test_accuracy"], abs=0.05)

    def test_msb_faults_degrade_accuracy(self, trained_tiny_model, test_loader):
        clean = baseline_accuracy(trained_tiny_model, test_loader)
        fm = random_fault_map(16, 16, 24, bit_position=FMT.magnitude_msb,
                              stuck_type="sa1", seed=3)
        faulty = evaluate_with_faults(trained_tiny_model, test_loader, fault_map=fm)
        assert faulty < clean - 0.2

    def test_bypass_recovers_most_accuracy(self, trained_tiny_model, test_loader):
        fm = random_fault_map(16, 16, 8, bit_position=FMT.magnitude_msb,
                              stuck_type="sa1", seed=3)
        corrupted = evaluate_with_faults(trained_tiny_model, test_loader, fault_map=fm)
        bypassed = evaluate_with_faults(trained_tiny_model, test_loader, fault_map=fm,
                                        bypass=True)
        assert bypassed >= corrupted

    def test_model_mode_restored(self, trained_tiny_model, test_loader):
        trained_tiny_model.train()
        fm = random_fault_map(16, 16, 2, seed=1)
        evaluate_with_faults(trained_tiny_model, test_loader, fault_map=fm)
        assert trained_tiny_model.training


class TestVulnerabilitySweeps:
    def test_bit_location_sweep_records(self, trained_tiny_model, test_loader):
        records = sweep_bit_locations(trained_tiny_model, test_loader, rows=16, cols=16,
                                      bit_positions=(0, FMT.magnitude_msb),
                                      stuck_types=("sa1",), num_faulty=6, trials=1,
                                      dataset="mnist", seed=0)
        assert len(records) == 2
        by_bit = {r["bit_position"]: r["accuracy"] for r in records}
        # LSB faults are benign, high-order-bit faults are destructive.
        assert by_bit[0] > by_bit[FMT.magnitude_msb]
        assert all(r["dataset"] == "mnist" for r in records)

    def test_pe_count_sweep_monotone_trend(self, trained_tiny_model, test_loader):
        records = sweep_faulty_pe_count(trained_tiny_model, test_loader, rows=16, cols=16,
                                        counts=(0, 4, 32), trials=2, seed=0)
        accuracies = [r["accuracy"] for r in records]
        assert accuracies[0] >= accuracies[1] >= accuracies[2] - 0.05
        assert records[0]["num_faulty_pes"] == 0
        assert records[-1]["fault_rate"] == pytest.approx(32 / 256)

    def test_array_size_sweep_small_arrays_worse(self, trained_tiny_model, test_loader):
        records = sweep_array_sizes(trained_tiny_model, test_loader, sizes=(4, 32),
                                    num_faulty=2, trials=2, seed=0)
        small = next(r for r in records if r["array_size"] == 4)
        large = next(r for r in records if r["array_size"] == 32)
        assert small["accuracy"] <= large["accuracy"] + 0.05
        assert large["total_pes"] == 1024

    def test_array_size_sweep_rejects_impossible(self, trained_tiny_model, test_loader):
        with pytest.raises(ValueError):
            sweep_array_sizes(trained_tiny_model, test_loader, sizes=(2,), num_faulty=10)
