"""Tests for the systolic array simulator: PEs, mapping, faulty matmul/conv."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.faults import FaultMap, StuckAtFault, random_fault_map
from repro.systolic import (
    DEFAULT_ACCUMULATOR_FORMAT,
    FixedPointFormat,
    ProcessingElement,
    SystolicArray,
    as_weight_matrix,
    count_mapped_weights,
    faulty_weight_mask,
    faulty_mask_for_layer_weight,
    pe_coordinates,
    tile_counts,
)

FMT = DEFAULT_ACCUMULATOR_FORMAT


class TestProcessingElement:
    def test_accumulates_on_spike(self):
        pe = ProcessingElement(row=0, col=0)
        pe.load_weight(0.5)
        assert pe.process(1, 1.0) == pytest.approx(1.5)
        assert pe.spike_count == 1

    def test_no_accumulation_without_spike(self):
        pe = ProcessingElement(row=0, col=0)
        pe.load_weight(0.5)
        assert pe.process(0, 1.0) == pytest.approx(1.0)
        assert pe.spike_count == 0

    def test_negative_weight_subtracts(self):
        pe = ProcessingElement(row=0, col=0)
        pe.load_weight(-0.75)
        assert pe.process(1, 2.0) == pytest.approx(1.25)

    def test_fault_corrupts_output(self):
        fault = StuckAtFault(bit_position=FMT.magnitude_msb, stuck_type="sa1")
        pe = ProcessingElement(row=0, col=0, fault=fault)
        pe.load_weight(0.1)
        assert pe.process(1, 0.0) > 10.0

    def test_bypass_skips_weight_and_fault(self):
        fault = StuckAtFault(bit_position=FMT.magnitude_msb, stuck_type="sa1")
        pe = ProcessingElement(row=0, col=0, fault=fault, bypassed=True)
        pe.load_weight(0.5)
        assert pe.process(1, 2.0) == pytest.approx(2.0)

    def test_reset_clears_counter(self):
        pe = ProcessingElement(row=0, col=0)
        pe.load_weight(1.0)
        pe.process(1, 0.0)
        pe.reset()
        assert pe.spike_count == 0

    def test_invalid_spike(self):
        pe = ProcessingElement(row=0, col=0)
        with pytest.raises(ValueError):
            pe.process(2, 0.0)

    def test_invalid_coordinates(self):
        with pytest.raises(ValueError):
            ProcessingElement(row=-1, col=0)


class TestMapping:
    def test_as_weight_matrix_linear(self):
        w = np.zeros((5, 7))
        assert as_weight_matrix(w).shape == (5, 7)

    def test_as_weight_matrix_conv(self):
        w = np.zeros((8, 3, 3, 3))
        assert as_weight_matrix(w).shape == (8, 27)

    def test_as_weight_matrix_invalid_rank(self):
        with pytest.raises(ValueError):
            as_weight_matrix(np.zeros((2, 2, 2)))

    def test_pe_coordinates_modulo(self):
        rows, cols = pe_coordinates((6, 10), rows=4, cols=4)
        assert rows.shape == (6, 10)
        assert rows[0, 5] == 1   # input index 5 -> row 5 % 4
        assert cols[5, 0] == 1   # output index 5 -> col 5 % 4

    def test_faulty_weight_mask_hits_expected_entries(self):
        mask = faulty_weight_mask([(1, 2)], weight_shape=(8, 8), rows=4, cols=4)
        expected = np.zeros((8, 8), dtype=bool)
        for o in (2, 6):
            for i in (1, 5):
                expected[o, i] = True
        assert np.array_equal(mask, expected)

    def test_faulty_weight_mask_empty(self):
        mask = faulty_weight_mask([], (4, 4), 2, 2)
        assert not mask.any()

    def test_faulty_weight_mask_out_of_range(self):
        with pytest.raises(ValueError):
            faulty_weight_mask([(5, 0)], (4, 4), 2, 2)

    def test_mask_for_conv_weight_shape(self):
        w = np.zeros((6, 2, 3, 3))
        mask = faulty_mask_for_layer_weight(w, [(0, 0)], rows=8, cols=8)
        assert mask.shape == w.shape

    def test_count_mapped_weights_reuse(self):
        # A 4x4 array holding a 16x16 matrix maps 16 weights per PE.
        assert count_mapped_weights((16, 16), 4, 4, (0, 0)) == 16
        # A 32x32 array holding the same matrix maps at most one weight per PE.
        assert count_mapped_weights((16, 16), 32, 32, (0, 0)) == 1
        assert count_mapped_weights((16, 16), 32, 32, (20, 0)) == 0

    def test_tile_counts(self):
        assert tile_counts((10, 33), rows=16, cols=8) == (3, 2)
        assert tile_counts((8, 16), rows=16, cols=8) == (1, 1)

    @given(st.integers(min_value=1, max_value=6), st.integers(min_value=1, max_value=6),
           st.integers(min_value=2, max_value=8), st.integers(min_value=2, max_value=8))
    @settings(max_examples=30, deadline=None)
    def test_every_weight_maps_to_exactly_one_pe(self, out_f, in_f, rows, cols):
        row_map, col_map = pe_coordinates((out_f, in_f), rows, cols)
        assert np.all((row_map >= 0) & (row_map < rows))
        assert np.all((col_map >= 0) & (col_map < cols))

    @given(st.integers(min_value=2, max_value=8), st.integers(min_value=2, max_value=8))
    @settings(max_examples=20, deadline=None)
    def test_all_faulty_pes_prune_everything(self, rows, cols):
        coords = [(r, c) for r in range(rows) for c in range(cols)]
        mask = faulty_weight_mask(coords, (rows * 2, cols * 2), rows, cols)
        assert mask.all()


class TestSystolicArrayMatmul:
    def test_fault_free_matches_numpy(self):
        rng = np.random.default_rng(0)
        array = SystolicArray(8, 8)
        w = rng.normal(size=(10, 20))
        x = rng.normal(size=(5, 20))
        b = rng.normal(size=10)
        assert np.allclose(array.matmul(w, x, bias=b), x @ w.T + b)

    def test_conv_weight_accepted(self):
        rng = np.random.default_rng(1)
        array = SystolicArray(8, 8)
        w = rng.normal(size=(4, 2, 3, 3))
        x = rng.normal(size=(3, 18))
        assert np.allclose(array.matmul(w, x), x @ w.reshape(4, -1).T)

    def test_input_feature_mismatch(self):
        array = SystolicArray(4, 4)
        with pytest.raises(ValueError):
            array.matmul(np.zeros((3, 5)), np.zeros((2, 4)))

    def test_input_must_be_2d(self):
        array = SystolicArray(4, 4)
        with pytest.raises(ValueError):
            array.matmul(np.zeros((3, 4)), np.zeros(4))

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            SystolicArray(0, 4)

    def test_inject_fault_out_of_range(self):
        array = SystolicArray(4, 4)
        with pytest.raises(ValueError):
            array.inject_fault(4, 0, StuckAtFault(0, "sa1"))

    def test_msb_sa1_fault_corrupts_affected_columns(self):
        rng = np.random.default_rng(2)
        array = SystolicArray(4, 4)
        w = rng.normal(size=(4, 4)) * 0.1
        x = rng.normal(size=(3, 4)) * 0.1
        clean = x @ w.T
        array.inject_fault(0, 1, StuckAtFault(FMT.magnitude_msb, "sa1"))
        faulty = array.matmul(w, x)
        # Only column 1 is corrupted, and the corruption is large (the forced
        # high-order bit adds half the full-scale range to positive sums).
        assert np.allclose(np.delete(faulty, 1, axis=1), np.delete(clean, 1, axis=1))
        assert np.max(np.abs(faulty[:, 1] - clean[:, 1])) > 10.0

    def test_lsb_fault_small_perturbation(self):
        rng = np.random.default_rng(3)
        array = SystolicArray(4, 4)
        w = rng.normal(size=(8, 8))
        x = rng.normal(size=(5, 8))
        clean = x @ w.T
        array.inject_fault(2, 0, StuckAtFault(0, "sa0"))
        faulty = array.matmul(w, x)
        assert np.max(np.abs(faulty - clean)) < 1.0

    def test_fault_in_unused_column_is_harmless(self):
        rng = np.random.default_rng(4)
        array = SystolicArray(8, 8)
        w = rng.normal(size=(3, 8))   # only columns 0..2 used
        x = rng.normal(size=(4, 8))
        array.inject_fault(0, 6, StuckAtFault(FMT.magnitude_msb, "sa1"))
        assert np.allclose(array.matmul(w, x), x @ w.T)

    def test_bypass_equivalent_to_pruned_weights(self):
        rng = np.random.default_rng(5)
        array = SystolicArray(4, 4)
        w = rng.normal(size=(8, 8))
        x = rng.normal(size=(6, 8))
        fault_map = random_fault_map(4, 4, 3, bit_position=FMT.magnitude_msb, seed=1)
        array.load_fault_map(fault_map)
        array.bypass_faulty_pes()
        result = array.matmul(w, x)
        mask = faulty_weight_mask(fault_map.coordinates(), w.shape, 4, 4)
        pruned = np.where(mask, 0.0, w)
        assert np.allclose(result, x @ pruned.T)

    def test_clear_faults_restores_exact_result(self):
        rng = np.random.default_rng(6)
        array = SystolicArray(4, 4)
        array.inject_fault(1, 1, StuckAtFault(FMT.magnitude_msb, "sa1"))
        array.clear_faults()
        w = rng.normal(size=(6, 6))
        x = rng.normal(size=(2, 6))
        assert np.allclose(array.matmul(w, x), x @ w.T)

    def test_multiple_faults_in_same_column_applied_in_row_order(self):
        array = SystolicArray(4, 1, fmt=FixedPointFormat(16, 8))
        # Single column; two sa0 faults clearing everything do not explode.
        array.inject_fault(0, 0, StuckAtFault(0, "sa0"))
        array.inject_fault(2, 0, StuckAtFault(1, "sa0"))
        w = np.full((1, 4), 0.25)
        x = np.ones((1, 4))
        out = array.matmul(w, x)
        assert np.isfinite(out).all()

    def test_reuse_amplifies_fault_on_small_array(self):
        rng = np.random.default_rng(7)
        w = rng.normal(size=(16, 32)) * 0.2
        x = (rng.random((8, 32)) > 0.5).astype(float)
        clean = x @ w.T
        fault = StuckAtFault(FMT.magnitude_msb, "sa1")

        def corruption(size):
            array = SystolicArray(size, size)
            array.inject_fault(0, 0, fault)
            return np.abs(array.matmul(w, x) - clean).mean()

        assert corruption(4) > corruption(16)

    def test_fault_sites_and_repr(self):
        array = SystolicArray(4, 4)
        array.inject_fault(1, 2, StuckAtFault(3, "sa0"))
        assert array.faulty_coordinates == [(1, 2)]
        assert array.num_pes == 16
        sites = array.fault_sites
        assert sites[0].row == 1 and sites[0].col == 2

    def test_build_pe_grid_marks_faulty_and_bypassed(self):
        array = SystolicArray(2, 2)
        array.inject_fault(0, 1, StuckAtFault(2, "sa1"))
        array.bypass_faulty_pes()
        grid = array.build_pe_grid()
        assert grid[0][1].is_faulty and grid[0][1].bypassed
        assert not grid[1][0].is_faulty


class TestSystolicConv:
    def test_fault_free_conv_matches_software(self):
        from repro.autograd import Tensor, conv2d

        rng = np.random.default_rng(8)
        array = SystolicArray(16, 16)
        w = rng.normal(size=(4, 2, 3, 3))
        x = rng.normal(size=(2, 2, 8, 8))
        b = rng.normal(size=4)
        hw = array.conv2d(w, x, bias=b, stride=1, padding=1)
        sw = conv2d(Tensor(x), Tensor(w), Tensor(b), stride=1, padding=1).data
        assert np.allclose(hw, sw)

    def test_faulty_conv_differs(self):
        rng = np.random.default_rng(9)
        array = SystolicArray(8, 8)
        w = rng.normal(size=(4, 2, 3, 3))
        x = rng.normal(size=(1, 2, 8, 8))
        clean = array.conv2d(w, x)
        array.inject_fault(0, 0, StuckAtFault(FMT.magnitude_msb, "sa1"))
        faulty = array.conv2d(w, x)
        assert not np.allclose(clean, faulty)
