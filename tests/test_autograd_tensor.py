"""Unit tests for the core autodiff engine (Tensor, ops, backward)."""

import numpy as np
import pytest

from repro.autograd import Tensor, as_tensor, check_gradients, concatenate, no_grad, stack, where
from repro.autograd import is_grad_enabled


class TestTensorBasics:
    def test_construction_from_list(self):
        t = Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert t.shape == (2, 2)
        assert t.dtype == np.float64

    def test_requires_grad_flag(self):
        t = Tensor(np.ones(3), requires_grad=True)
        assert t.requires_grad
        assert t.grad is None

    def test_item_and_len(self):
        assert Tensor(np.array(2.5)).item() == pytest.approx(2.5)
        assert len(Tensor(np.zeros(7))) == 7

    def test_detach_shares_data_but_not_graph(self):
        t = Tensor(np.ones(3), requires_grad=True)
        d = t.detach()
        assert not d.requires_grad
        d.data[0] = 5.0
        assert t.data[0] == 5.0  # shared storage

    def test_copy_is_independent(self):
        t = Tensor(np.ones(3))
        c = t.copy()
        c.data[0] = 9.0
        assert t.data[0] == 1.0

    def test_constructors(self):
        assert np.all(Tensor.zeros((2, 2)).data == 0)
        assert np.all(Tensor.ones((2, 2)).data == 1)
        assert np.all(Tensor.full((2,), 3.5).data == 3.5)
        r = Tensor.randn((4, 4), rng=np.random.default_rng(0))
        assert r.shape == (4, 4)

    def test_as_tensor_passthrough(self):
        t = Tensor(np.ones(2))
        assert as_tensor(t) is t
        assert isinstance(as_tensor([1.0, 2.0]), Tensor)


class TestArithmeticBackward:
    def test_add_backward(self):
        a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        b = Tensor(np.array([3.0, 4.0]), requires_grad=True)
        (a + b).sum().backward()
        assert np.allclose(a.grad, [1.0, 1.0])
        assert np.allclose(b.grad, [1.0, 1.0])

    def test_mul_backward(self):
        a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        b = Tensor(np.array([3.0, 4.0]), requires_grad=True)
        (a * b).sum().backward()
        assert np.allclose(a.grad, [3.0, 4.0])
        assert np.allclose(b.grad, [1.0, 2.0])

    def test_sub_and_neg_backward(self):
        a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        b = Tensor(np.array([3.0, 5.0]), requires_grad=True)
        (a - b).sum().backward()
        assert np.allclose(a.grad, [1.0, 1.0])
        assert np.allclose(b.grad, [-1.0, -1.0])

    def test_div_backward(self):
        a = Tensor(np.array([2.0, 4.0]), requires_grad=True)
        b = Tensor(np.array([2.0, 8.0]), requires_grad=True)
        (a / b).sum().backward()
        assert np.allclose(a.grad, [0.5, 0.125])
        assert np.allclose(b.grad, [-0.5, -0.0625])

    def test_pow_backward(self):
        a = Tensor(np.array([2.0, 3.0]), requires_grad=True)
        (a ** 3).sum().backward()
        assert np.allclose(a.grad, [12.0, 27.0])

    def test_scalar_broadcasting(self):
        a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        (2.0 * a + 1.0).sum().backward()
        assert np.allclose(a.grad, [2.0, 2.0])

    def test_rsub_rdiv(self):
        a = Tensor(np.array([2.0, 4.0]), requires_grad=True)
        out = (8.0 - a) + (8.0 / a)
        out.sum().backward()
        assert np.allclose(a.grad, [-1.0 - 2.0, -1.0 - 0.5])

    def test_matmul_backward_2d(self):
        a = Tensor(np.random.default_rng(0).normal(size=(3, 4)), requires_grad=True)
        b = Tensor(np.random.default_rng(1).normal(size=(4, 5)), requires_grad=True)
        check_gradients(lambda x, y: x @ y, [a, b])

    def test_grad_accumulates_over_reuse(self):
        a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        out = a * 2.0 + a * 3.0
        out.sum().backward()
        assert np.allclose(a.grad, [5.0, 5.0])

    def test_backward_on_non_grad_tensor_raises(self):
        t = Tensor(np.ones(3))
        with pytest.raises(RuntimeError):
            t.backward()

    def test_tensor_exponent_rejected(self):
        a = Tensor(np.ones(2), requires_grad=True)
        with pytest.raises(TypeError):
            a ** Tensor(np.ones(2))


class TestBroadcastingGradients:
    def test_broadcast_add_bias(self):
        x = Tensor(np.ones((4, 3)), requires_grad=True)
        b = Tensor(np.zeros(3), requires_grad=True)
        (x + b).sum().backward()
        assert b.grad.shape == (3,)
        assert np.allclose(b.grad, [4.0, 4.0, 4.0])

    def test_broadcast_mul_column(self):
        x = Tensor(np.ones((4, 3)), requires_grad=True)
        c = Tensor(np.full((4, 1), 2.0), requires_grad=True)
        (x * c).sum().backward()
        assert c.grad.shape == (4, 1)
        assert np.allclose(c.grad, 3.0)

    def test_broadcast_scalar_tensor(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        s = Tensor(np.array(3.0), requires_grad=True)
        (x * s).sum().backward()
        assert s.grad.shape == ()
        assert s.grad == pytest.approx(4.0)


class TestReductionsAndShape:
    def test_sum_axis_keepdims(self):
        x = Tensor(np.arange(12.0).reshape(3, 4), requires_grad=True)
        out = x.sum(axis=1, keepdims=True)
        assert out.shape == (3, 1)
        out.backward(np.ones((3, 1)))
        assert np.allclose(x.grad, 1.0)

    def test_mean_gradient(self):
        x = Tensor(np.ones((2, 5)), requires_grad=True)
        x.mean().backward()
        assert np.allclose(x.grad, 0.1)

    def test_mean_multi_axis(self):
        x = Tensor(np.ones((2, 3, 4)), requires_grad=True)
        out = x.mean(axis=(1, 2))
        assert out.shape == (2,)
        out.sum().backward()
        assert np.allclose(x.grad, 1.0 / 12)

    def test_var_matches_numpy(self):
        data = np.random.default_rng(0).normal(size=(3, 5))
        x = Tensor(data)
        assert np.allclose(x.var(axis=1).data, data.var(axis=1))

    def test_max_gradient_to_argmax(self):
        x = Tensor(np.array([[1.0, 5.0, 2.0]]), requires_grad=True)
        x.max(axis=1).sum().backward()
        assert np.allclose(x.grad, [[0.0, 1.0, 0.0]])

    def test_max_gradient_splits_ties(self):
        x = Tensor(np.array([[3.0, 3.0]]), requires_grad=True)
        x.max(axis=1).sum().backward()
        assert np.allclose(x.grad, [[0.5, 0.5]])

    def test_reshape_backward(self):
        x = Tensor(np.arange(6.0), requires_grad=True)
        x.reshape(2, 3).sum().backward()
        assert x.grad.shape == (6,)
        assert np.allclose(x.grad, 1.0)

    def test_flatten_batch(self):
        x = Tensor(np.zeros((4, 2, 3, 3)))
        assert x.flatten_batch().shape == (4, 18)

    def test_transpose_backward(self):
        x = Tensor(np.random.default_rng(0).normal(size=(2, 3, 4)), requires_grad=True)
        check_gradients(lambda t: t.transpose(2, 0, 1), [x])

    def test_T_property(self):
        x = Tensor(np.zeros((2, 5)))
        assert x.T.shape == (5, 2)

    def test_getitem_backward(self):
        x = Tensor(np.arange(10.0), requires_grad=True)
        x[2:5].sum().backward()
        expected = np.zeros(10)
        expected[2:5] = 1.0
        assert np.allclose(x.grad, expected)

    def test_getitem_fancy_index_accumulates(self):
        x = Tensor(np.arange(5.0), requires_grad=True)
        idx = np.array([1, 1, 3])
        x[idx].sum().backward()
        expected = np.array([0.0, 2.0, 0.0, 1.0, 0.0])
        assert np.allclose(x.grad, expected)


class TestNonlinearities:
    @pytest.mark.parametrize("fn", ["exp", "sigmoid", "tanh", "relu", "abs"])
    def test_gradcheck_elementwise(self, fn):
        x = Tensor(np.random.default_rng(3).normal(size=(4, 3)) + 0.1, requires_grad=True)
        check_gradients(lambda t: getattr(t, fn)(), [x])

    def test_log_gradcheck_positive(self):
        x = Tensor(np.random.default_rng(4).uniform(0.5, 2.0, size=(3, 3)), requires_grad=True)
        check_gradients(lambda t: t.log(), [x])

    def test_clip_gradient_zero_outside(self):
        x = Tensor(np.array([-2.0, 0.5, 2.0]), requires_grad=True)
        x.clip(-1.0, 1.0).sum().backward()
        assert np.allclose(x.grad, [0.0, 1.0, 0.0])

    def test_maximum_with_constant(self):
        x = Tensor(np.array([-1.0, 2.0]), requires_grad=True)
        x.maximum(0.0).sum().backward()
        assert np.allclose(x.grad, [0.0, 1.0])

    def test_relu_values(self):
        x = Tensor(np.array([-1.0, 0.0, 2.0]))
        assert np.allclose(x.relu().data, [0.0, 0.0, 2.0])

    def test_comparison_returns_numpy(self):
        x = Tensor(np.array([1.0, 3.0]))
        assert isinstance(x > 2.0, np.ndarray)
        assert np.array_equal(x > 2.0, [False, True])


class TestGraphUtilities:
    def test_stack_backward(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.ones(3) * 2, requires_grad=True)
        stack([a, b], axis=0).sum().backward()
        assert np.allclose(a.grad, 1.0)
        assert np.allclose(b.grad, 1.0)

    def test_concatenate_backward(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((3, 2)), requires_grad=True)
        out = concatenate([a, b], axis=0)
        assert out.shape == (5, 2)
        (out * 2.0).sum().backward()
        assert np.allclose(a.grad, 2.0)
        assert np.allclose(b.grad, 2.0)

    def test_where_routes_gradient(self):
        cond = np.array([True, False, True])
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.zeros(3), requires_grad=True)
        where(cond, a, b).sum().backward()
        assert np.allclose(a.grad, [1.0, 0.0, 1.0])
        assert np.allclose(b.grad, [0.0, 1.0, 0.0])

    def test_no_grad_blocks_graph(self):
        a = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            assert not is_grad_enabled()
            out = a * 2.0
        assert is_grad_enabled()
        assert not out.requires_grad

    def test_no_grad_restored_after_exception(self):
        with pytest.raises(ValueError):
            with no_grad():
                raise ValueError("boom")
        assert is_grad_enabled()

    def test_deep_chain_backward(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        out = x
        for _ in range(50):
            out = out * 1.01 + 0.001
        out.backward()
        assert x.grad is not None and x.grad[0] > 0

    def test_diamond_graph_gradient(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        a = x * 3.0
        b = x * 4.0
        (a + b).backward()
        assert np.allclose(x.grad, [7.0])

    def test_zero_grad_clears(self):
        x = Tensor(np.ones(2), requires_grad=True)
        (x * 2.0).sum().backward()
        assert x.grad is not None
        x.zero_grad()
        assert x.grad is None

    def test_explicit_backward_gradient(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        y = x * 3.0
        y.backward(np.full((2, 2), 2.0))
        assert np.allclose(x.grad, 6.0)
