"""Tests for stuck-at fault models and fault-map generation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.faults import (
    FaultMap,
    StuckAtFault,
    StuckAtType,
    fault_map_from_rate,
    fault_maps_for_trials,
    lsb_fault,
    msb_fault,
    random_fault_map,
    single_bit_fault_map,
)
from repro.systolic import DEFAULT_ACCUMULATOR_FORMAT, FixedPointFormat

FMT = DEFAULT_ACCUMULATOR_FORMAT


class TestStuckAtType:
    @pytest.mark.parametrize("value,expected", [
        ("sa0", StuckAtType.STUCK_AT_0), ("SA1", StuckAtType.STUCK_AT_1),
        (0, StuckAtType.STUCK_AT_0), (1, StuckAtType.STUCK_AT_1),
        (StuckAtType.STUCK_AT_1, StuckAtType.STUCK_AT_1),
        ("stuck_at_0", StuckAtType.STUCK_AT_0),
    ])
    def test_from_value(self, value, expected):
        assert StuckAtType.from_value(value) is expected

    def test_from_value_invalid(self):
        with pytest.raises(ValueError):
            StuckAtType.from_value("sa2")
        with pytest.raises(ValueError):
            StuckAtType.from_value(3)

    def test_short_name(self):
        assert StuckAtType.STUCK_AT_0.short_name == "sa0"
        assert StuckAtType.STUCK_AT_1.short_name == "sa1"


class TestStuckAtFault:
    def test_describe(self):
        fault = StuckAtFault(bit_position=14, stuck_type="sa1")
        assert fault.describe() == "sa1@bit14"
        assert fault.stuck_value == 1

    def test_invalid_bit(self):
        with pytest.raises(ValueError):
            StuckAtFault(bit_position=-1)

    def test_apply_outside_format_raises(self):
        fault = StuckAtFault(bit_position=20, stuck_type="sa1")
        with pytest.raises(ValueError):
            fault.apply(np.array([1.0]), FMT)

    def test_sa1_high_bit_adds_large_value(self):
        fault = StuckAtFault(bit_position=FMT.magnitude_msb, stuck_type="sa1")
        corrupted = fault.apply(np.array([0.0, 0.5]), FMT)
        assert np.all(corrupted >= 60.0)

    def test_sa0_high_bit_mostly_harmless_for_small_values(self):
        fault = StuckAtFault(bit_position=FMT.magnitude_msb, stuck_type="sa0")
        values = np.array([0.0, 0.5, -0.5, 3.0])
        corrupted = fault.apply(values, FMT)
        assert np.allclose(corrupted[:2], FMT.quantize(values[:2]))

    def test_sa1_more_perturbing_than_sa0_for_positive_values(self):
        # The paper observes stuck-at-1 faults are more perturbing than
        # stuck-at-0.  In two's complement this holds whenever the
        # accumulator values are predominantly positive (their high data
        # bits are 0, so sa1 flips them and sa0 does not).
        rng = np.random.default_rng(0)
        values = np.abs(rng.normal(0.0, 1.0, size=1000))
        bit = FMT.magnitude_msb
        sa1_err = np.abs(StuckAtFault(bit, "sa1").apply(values, FMT) - values).mean()
        sa0_err = np.abs(StuckAtFault(bit, "sa0").apply(values, FMT) - values).mean()
        assert sa1_err > 10 * sa0_err

    def test_high_bit_faults_symmetric_for_zero_mean_values(self):
        # For zero-mean accumulator contents both polarities corrupt roughly
        # half the values by the same magnitude (documented deviation from
        # the paper's Fig. 5a, see EXPERIMENTS.md).
        rng = np.random.default_rng(1)
        values = rng.normal(0.0, 1.0, size=2000)
        bit = FMT.magnitude_msb
        sa1_err = np.abs(StuckAtFault(bit, "sa1").apply(values, FMT) - values).mean()
        sa0_err = np.abs(StuckAtFault(bit, "sa0").apply(values, FMT) - values).mean()
        assert sa1_err == pytest.approx(sa0_err, rel=0.3)

    def test_msb_lsb_helpers(self):
        assert msb_fault(FMT).bit_position == FMT.magnitude_msb
        assert lsb_fault(FMT, "sa0").bit_position == 0


class TestFaultMap:
    def test_add_and_query(self):
        fm = FaultMap(4, 4)
        fm.add(1, 2, StuckAtFault(3, "sa1"))
        assert (1, 2) in fm
        assert len(fm) == 1
        assert fm.fault_rate == pytest.approx(1 / 16)
        assert list(fm.coordinates()) == [(1, 2)]

    def test_out_of_range_coordinate(self):
        fm = FaultMap(4, 4)
        with pytest.raises(ValueError):
            fm.add(4, 0, StuckAtFault(0))

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            FaultMap(0, 4)

    def test_merge(self):
        a = FaultMap(4, 4, {(0, 0): StuckAtFault(1)})
        b = FaultMap(4, 4, {(1, 1): StuckAtFault(2)})
        merged = a.merge(b)
        assert len(merged) == 2

    def test_bit_position_beyond_simulation_word_rejected(self):
        """The int64 chain kernel can never force bit 64+: fail at construction."""

        assert StuckAtFault(63).bit_position == 63
        with pytest.raises(ValueError, match="bit_position"):
            StuckAtFault(64)

    def test_format_pinned_map_rejects_out_of_range_bits(self):
        ok = StuckAtFault(FMT.total_bits - 1)
        with pytest.raises(ValueError, match="accumulator format"):
            FaultMap(4, 4, {(0, 0): StuckAtFault(FMT.total_bits)}, fmt=FMT)
        fm = FaultMap(4, 4, fmt=FMT)
        fm.add(0, 0, ok)                      # in-range bit accepted
        with pytest.raises(ValueError, match="accumulator format"):
            fm.add(1, 1, StuckAtFault(FMT.total_bits))
        # Without a pinned format the construction-time check is off.
        unpinned = FaultMap(4, 4, {(0, 0): StuckAtFault(FMT.total_bits)})
        assert len(unpinned) == 1

    def test_merge_propagates_format(self):
        pinned = FaultMap(4, 4, {(0, 0): StuckAtFault(1)}, fmt=FMT)
        plain = FaultMap(4, 4, {(1, 1): StuckAtFault(2)})
        assert pinned.merge(plain).fmt is FMT
        assert plain.merge(pinned).fmt is FMT

    def test_merge_size_mismatch(self):
        with pytest.raises(ValueError):
            FaultMap(4, 4).merge(FaultMap(8, 8))

    def test_describe_mentions_rate(self):
        fm = random_fault_map(8, 8, 16, seed=0)
        assert "25.000%" in fm.describe()


class TestGenerators:
    def test_random_fault_map_count(self):
        fm = random_fault_map(16, 16, 12, seed=0)
        assert len(fm) == 12
        assert fm.rows == 16 and fm.cols == 16

    def test_random_fault_map_unique_coordinates(self):
        fm = random_fault_map(8, 8, 30, seed=1)
        assert len(set(fm.coordinates())) == 30

    def test_random_fault_map_too_many(self):
        with pytest.raises(ValueError):
            random_fault_map(2, 2, 5, seed=0)

    def test_random_fault_map_negative(self):
        with pytest.raises(ValueError):
            random_fault_map(2, 2, -1, seed=0)

    def test_bit_positions_in_high_order_data_bits(self):
        fm = random_fault_map(16, 16, 40, seed=2, high_order_bits=4)
        bits = {fault.bit_position for fault in fm.faults.values()}
        assert all(FMT.magnitude_msb - 3 <= b <= FMT.magnitude_msb for b in bits)

    def test_oversized_sampling_window_clamps_at_bit_zero(self):
        """high_order_bits > magnitude_msb + 1 must not go negative."""

        fm = random_fault_map(16, 16, 60, seed=3,
                              high_order_bits=FMT.magnitude_msb + 50)
        bits = {fault.bit_position for fault in fm.faults.values()}
        assert all(0 <= b <= FMT.magnitude_msb for b in bits)
        # The clamped window spans every data bit, so low bits are reachable.
        assert min(bits) < FMT.magnitude_msb - 3

    def test_window_exactly_all_data_bits_boundary(self):
        fm = random_fault_map(16, 16, 60, seed=4,
                              high_order_bits=FMT.magnitude_msb + 1)
        bits = {fault.bit_position for fault in fm.faults.values()}
        assert all(0 <= b <= FMT.magnitude_msb for b in bits)

    def test_non_positive_high_order_bits_rejected(self):
        with pytest.raises(ValueError, match="high_order_bits"):
            random_fault_map(4, 4, 1, seed=0, high_order_bits=0)

    def test_generated_maps_carry_their_format(self):
        fm = random_fault_map(8, 8, 4, seed=5)
        assert fm.fmt is FMT

    def test_fixed_bit_position(self):
        fm = single_bit_fault_map(8, 8, 5, bit_position=3, stuck_type="sa0", seed=0)
        assert all(f.bit_position == 3 and f.stuck_type is StuckAtType.STUCK_AT_0
                   for f in fm.faults.values())

    def test_determinism_with_seed(self):
        a = random_fault_map(16, 16, 10, seed=42)
        b = random_fault_map(16, 16, 10, seed=42)
        assert a.coordinates() == b.coordinates()

    def test_different_seeds_differ(self):
        a = random_fault_map(16, 16, 10, seed=1)
        b = random_fault_map(16, 16, 10, seed=2)
        assert a.coordinates() != b.coordinates()

    def test_fault_map_from_rate(self):
        fm = fault_map_from_rate(10, 10, 0.30, seed=0)
        assert len(fm) == 30
        assert fm.fault_rate == pytest.approx(0.30)

    def test_fault_map_from_rate_invalid(self):
        with pytest.raises(ValueError):
            fault_map_from_rate(10, 10, 1.5, seed=0)

    def test_trials_are_distinct_and_deterministic(self):
        maps_a = fault_maps_for_trials(16, 16, 8, trials=4, seed=5)
        maps_b = fault_maps_for_trials(16, 16, 8, trials=4, seed=5)
        assert len(maps_a) == 4
        assert [m.coordinates() for m in maps_a] == [m.coordinates() for m in maps_b]
        assert maps_a[0].coordinates() != maps_a[1].coordinates()

    def test_trials_positive(self):
        with pytest.raises(ValueError):
            fault_maps_for_trials(4, 4, 2, trials=0)

    @given(st.integers(min_value=1, max_value=16), st.integers(min_value=0, max_value=16))
    @settings(max_examples=30, deadline=None)
    def test_fault_rate_matches_count(self, size, count):
        if count > size * size:
            return
        fm = random_fault_map(size, size, count, seed=0)
        assert len(fm) == count
        assert fm.fault_rate == pytest.approx(count / (size * size))
