"""Tests for the utility modules (rng, logging, serialization)."""

import logging

import numpy as np
import pytest

from repro.utils import (
    DEFAULT_SEED,
    Timer,
    configure_logging,
    derive_seed,
    get_logger,
    get_rng,
    load_records,
    load_state_dict,
    save_records,
    save_state_dict,
    spawn_rngs,
)


class TestRng:
    def test_get_rng_from_int_deterministic(self):
        assert get_rng(5).integers(0, 100, 10).tolist() == get_rng(5).integers(0, 100, 10).tolist()

    def test_get_rng_passthrough(self):
        rng = np.random.default_rng(0)
        assert get_rng(rng) is rng

    def test_get_rng_default_seed(self):
        a = get_rng(None).integers(0, 1000)
        b = get_rng(DEFAULT_SEED).integers(0, 1000)
        assert a == b

    def test_spawn_rngs_independent_and_deterministic(self):
        first = [r.integers(0, 1000) for r in spawn_rngs(7, 3)]
        second = [r.integers(0, 1000) for r in spawn_rngs(7, 3)]
        assert first == second
        assert len(set(first)) > 1

    def test_spawn_rngs_negative(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_derive_seed_depends_on_tags(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_derive_seed_rejects_generator(self):
        with pytest.raises(TypeError):
            derive_seed(np.random.default_rng(0), "a")

    def test_derive_seed_in_range(self):
        for tag in range(50):
            seed = derive_seed(123, tag)
            assert 0 <= seed < 2**63 - 1


class TestLogging:
    def test_get_logger_namespacing(self):
        assert get_logger().name == "repro"
        assert get_logger("faults").name == "repro.faults"

    def test_configure_logging_idempotent(self):
        logger = configure_logging(level=logging.DEBUG)
        handlers = len(logger.handlers)
        configure_logging(level=logging.INFO)
        assert len(logger.handlers) == handlers

    def test_timer_measures(self):
        with Timer("block") as timer:
            sum(range(10000))
        assert timer.elapsed >= 0.0


class TestSerialization:
    def test_state_dict_roundtrip(self, tmp_path):
        state = {"w": np.arange(6).reshape(2, 3).astype(float), "b": np.zeros(3)}
        path = tmp_path / "model.npz"
        save_state_dict(state, path)
        loaded = load_state_dict(path)
        assert set(loaded) == {"w", "b"}
        assert np.allclose(loaded["w"], state["w"])

    def test_state_dict_suffix_added(self, tmp_path):
        path = tmp_path / "model"
        save_state_dict({"w": np.ones(2)}, path)
        loaded = load_state_dict(path)
        assert np.allclose(loaded["w"], 1.0)

    def test_records_roundtrip(self, tmp_path):
        records = [{"accuracy": np.float64(0.5), "counts": np.array([1, 2])},
                   {"accuracy": 0.75, "nested": {"x": np.int64(3)}}]
        path = tmp_path / "out" / "records.json"
        save_records(records, path)
        loaded = load_records(path)
        assert loaded[0]["accuracy"] == 0.5
        assert loaded[0]["counts"] == [1, 2]
        assert loaded[1]["nested"]["x"] == 3

    def test_records_handle_tuples(self, tmp_path):
        path = tmp_path / "records.json"
        save_records({"pair": (1, 2)}, path)
        assert load_records(path)["pair"] == [1, 2]
