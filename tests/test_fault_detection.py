"""Tests for the post-fabrication fault-detection flow (fault-map recovery)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.faults import (
    StuckAtFault,
    detect_fault_map,
    detection_coverage,
    generate_test_vectors,
    locate_faulty_columns,
    random_fault_map,
    run_detection,
)
from repro.faults.injection import build_faulty_array
from repro.systolic import DEFAULT_ACCUMULATOR_FORMAT, SystolicArray

FMT = DEFAULT_ACCUMULATOR_FORMAT


class TestTestVectors:
    def test_vector_shapes(self):
        vectors = generate_test_vectors(8, 6)
        assert len(vectors) == 2
        for vector in vectors:
            assert vector.weight.shape == (6, 8)
            assert vector.activation.shape == (1, 8)
            assert set(np.unique(vector.activation)) <= {0.0, 1.0}

    def test_positive_and_negative_planes(self):
        vectors = generate_test_vectors(4, 4)
        signs = {np.sign(v.weight).mean() for v in vectors}
        assert signs == {1.0, -1.0}

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            generate_test_vectors(0, 4)
        with pytest.raises(ValueError):
            generate_test_vectors(4, 4, weight_value=0.0)


class TestColumnLocalisation:
    def test_clean_array_reports_nothing(self):
        array = SystolicArray(8, 8)
        errors = locate_faulty_columns(array, generate_test_vectors(8, 8))
        assert errors == {}

    def test_faulty_column_detected(self):
        array = SystolicArray(8, 8)
        array.inject_fault(3, 5, StuckAtFault(FMT.magnitude_msb, "sa1"))
        errors = locate_faulty_columns(array, generate_test_vectors(8, 8))
        assert set(errors) == {5}
        assert errors[5] > 0  # stuck-at-1 pushes the sum upward

    def test_multiple_columns(self):
        array = SystolicArray(8, 8)
        array.inject_fault(0, 1, StuckAtFault(FMT.magnitude_msb, "sa1"))
        array.inject_fault(7, 6, StuckAtFault(FMT.magnitude_msb - 2, "sa1"))
        errors = locate_faulty_columns(array, generate_test_vectors(8, 8))
        assert set(errors) == {1, 6}


class TestFullDetection:
    def test_single_fault_exact_localisation(self):
        array = SystolicArray(8, 8)
        array.inject_fault(3, 5, StuckAtFault(FMT.magnitude_msb, "sa1"))
        diagnoses = run_detection(array)
        assert len(diagnoses) == 1
        assert (diagnoses[0].row, diagnoses[0].col) == (3, 5)
        assert diagnoses[0].estimated_type.short_name == "sa1"

    def test_detection_leaves_bypass_state_unchanged(self):
        array = SystolicArray(8, 8)
        array.inject_fault(2, 2, StuckAtFault(FMT.magnitude_msb, "sa1"))
        array.set_bypass({(0, 0)})
        run_detection(array)
        assert array.bypassed_coordinates == {(0, 0)}

    def test_two_faults_in_same_column(self):
        array = SystolicArray(8, 8)
        array.inject_fault(1, 4, StuckAtFault(FMT.magnitude_msb, "sa1"))
        array.inject_fault(6, 4, StuckAtFault(FMT.magnitude_msb - 1, "sa1"))
        found = {(d.row, d.col) for d in run_detection(array)}
        assert found == {(1, 4), (6, 4)}

    def test_recovered_map_enables_full_repair(self, trained_tiny_model, tiny_mnist_data):
        """End-to-end: detect the fault map from the chip, then verify that
        bypassing the detected PEs restores the fault-free behaviour."""

        from repro.datasets import DataLoader
        from repro.faults import evaluate_with_faults

        _, test = tiny_mnist_data
        loader = DataLoader(test, batch_size=50)
        true_map = random_fault_map(16, 16, 10, bit_position=FMT.magnitude_msb,
                                    stuck_type="sa1", seed=9)
        array = build_faulty_array(true_map)
        recovered = detect_fault_map(array)
        coverage = detection_coverage(true_map, recovered)
        assert coverage["recall"] >= 0.9
        assert coverage["spurious"] <= 2
        # Bypass the *recovered* coordinates and measure accuracy on the chip.
        array.set_bypass(recovered.coordinates())
        repaired = evaluate_with_faults(trained_tiny_model, loader, array=array)
        corrupted = evaluate_with_faults(trained_tiny_model, loader, fault_map=true_map)
        assert repaired >= corrupted

    @given(st.integers(min_value=0, max_value=6))
    @settings(max_examples=8, deadline=None)
    def test_detection_recall_on_random_maps(self, num_faults):
        true_map = random_fault_map(8, 8, num_faults,
                                    bit_position=FMT.magnitude_msb, stuck_type="sa1",
                                    seed=num_faults + 1)
        array = build_faulty_array(true_map)
        recovered = detect_fault_map(array)
        coverage = detection_coverage(true_map, recovered)
        assert coverage["recall"] == pytest.approx(1.0)


class TestCoverageMetrics:
    def test_perfect_detection(self):
        fm = random_fault_map(8, 8, 5, seed=0)
        metrics = detection_coverage(fm, fm)
        assert metrics["recall"] == 1.0 and metrics["precision"] == 1.0
        assert metrics["missed"] == 0 and metrics["spurious"] == 0

    def test_empty_truth(self):
        from repro.faults import FaultMap

        metrics = detection_coverage(FaultMap(4, 4), FaultMap(4, 4))
        assert metrics["recall"] == 1.0 and metrics["precision"] == 1.0

    def test_missed_and_spurious_counts(self):
        from repro.faults import FaultMap

        truth = FaultMap(4, 4, {(0, 0): StuckAtFault(1), (1, 1): StuckAtFault(1)})
        found = FaultMap(4, 4, {(0, 0): StuckAtFault(1), (2, 2): StuckAtFault(1)})
        metrics = detection_coverage(truth, found)
        assert metrics["recall"] == 0.5
        assert metrics["precision"] == 0.5
        assert metrics["missed"] == 1 and metrics["spurious"] == 1
