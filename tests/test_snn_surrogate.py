"""Tests for the spike function and its surrogate gradients."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.autograd import Tensor
from repro.snn import ATan, SigmoidSurrogate, Triangle, get_surrogate


class TestSpikeForward:
    def test_heaviside_output_binary(self):
        surrogate = Triangle()
        z = Tensor(np.array([-0.5, 0.0, 0.3, 2.0]))
        spikes = surrogate(z)
        assert np.array_equal(spikes.data, [0.0, 0.0, 1.0, 1.0])

    def test_spikes_at_exact_zero_do_not_fire(self):
        spikes = Triangle()(Tensor(np.zeros(3)))
        assert np.all(spikes.data == 0.0)


class TestTriangleSurrogate:
    def test_derivative_matches_eq2(self):
        surrogate = Triangle(gamma=2.0)
        z = np.array([-2.0, -0.5, 0.0, 0.5, 2.0])
        expected = 2.0 * np.maximum(0.0, 1.0 - np.abs(z))
        assert np.allclose(surrogate.derivative(z), expected)

    def test_backward_uses_surrogate(self):
        z = Tensor(np.array([-0.5, 0.5, 3.0]), requires_grad=True)
        Triangle(gamma=1.0)(z).sum().backward()
        assert np.allclose(z.grad, [0.5, 0.5, 0.0])

    def test_invalid_gamma(self):
        with pytest.raises(ValueError):
            Triangle(gamma=0.0)

    @given(st.floats(min_value=-5, max_value=5, allow_nan=False))
    @settings(max_examples=50, deadline=None)
    def test_derivative_nonnegative_and_bounded(self, z):
        surrogate = Triangle(gamma=1.5)
        value = surrogate.derivative(np.array(z))
        assert 0.0 <= value <= 1.5


class TestOtherSurrogates:
    def test_atan_peak_at_zero(self):
        surrogate = ATan(alpha=2.0)
        z = np.linspace(-3, 3, 101)
        derivative = surrogate.derivative(z)
        assert np.argmax(derivative) == 50
        assert np.all(derivative > 0)

    def test_sigmoid_symmetric(self):
        surrogate = SigmoidSurrogate(alpha=4.0)
        assert surrogate.derivative(np.array(0.7)) == pytest.approx(
            surrogate.derivative(np.array(-0.7)))

    @pytest.mark.parametrize("cls", [ATan, SigmoidSurrogate])
    def test_invalid_alpha(self, cls):
        with pytest.raises(ValueError):
            cls(alpha=-1.0)


class TestRegistry:
    @pytest.mark.parametrize("name,cls", [("triangle", Triangle), ("atan", ATan),
                                          ("sigmoid", SigmoidSurrogate)])
    def test_lookup(self, name, cls):
        assert isinstance(get_surrogate(name), cls)

    def test_lookup_with_kwargs(self):
        assert get_surrogate("triangle", gamma=3.0).gamma == 3.0

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            get_surrogate("step")
