"""Tests for the systolic dataflow latency / utilisation model."""

import numpy as np
import pytest

from repro.systolic import (
    LayerWorkload,
    reexecution_overhead,
    schedule_layer,
    schedule_network,
)


class TestLayerWorkload:
    def test_from_linear_weight(self):
        workload = LayerWorkload.from_weight("fc", np.zeros((32, 96)), vectors=100)
        assert workload.out_features == 32
        assert workload.in_features == 96

    def test_from_conv_weight(self):
        workload = LayerWorkload.from_weight("conv", np.zeros((8, 4, 3, 3)), vectors=10)
        assert workload.in_features == 36


class TestScheduling:
    def test_single_tile_cycles(self):
        workload = LayerWorkload("fc", out_features=8, in_features=8, vectors=10)
        schedule = schedule_layer(workload, rows=8, cols=8)
        assert schedule.tiles == 1
        assert schedule.cycles == 8 + 8 - 1 + 10
        assert schedule.mac_operations == 8 * 8 * 10

    def test_more_tiles_on_smaller_array(self):
        workload = LayerWorkload("fc", out_features=64, in_features=64, vectors=50)
        small = schedule_layer(workload, rows=8, cols=8)
        large = schedule_layer(workload, rows=64, cols=64)
        assert small.tiles == 64 and large.tiles == 1
        assert small.cycles > large.cycles

    def test_utilization_bounded(self):
        workload = LayerWorkload("fc", out_features=4, in_features=4, vectors=2)
        schedule = schedule_layer(workload, rows=64, cols=64)
        assert 0.0 <= schedule.utilization <= 1.0

    def test_invalid_array(self):
        with pytest.raises(ValueError):
            schedule_layer(LayerWorkload("x", 2, 2, 2), rows=0, cols=4)

    def test_schedule_network_totals(self):
        workloads = [LayerWorkload("a", 8, 8, 10), LayerWorkload("b", 16, 8, 10)]
        summary = schedule_network(workloads, rows=8, cols=8)
        assert summary["total_cycles"] == sum(l.cycles for l in summary["layers"])
        assert summary["total_macs"] == 8 * 8 * 10 + 16 * 8 * 10
        assert 0.0 <= summary["average_utilization"] <= 1.0

    def test_empty_network(self):
        summary = schedule_network([], rows=8, cols=8)
        assert summary["total_cycles"] == 0

    def test_reexecution_overhead(self):
        assert reexecution_overhead(100, redundancy=2) == 200
        with pytest.raises(ValueError):
            reexecution_overhead(100, redundancy=0)
