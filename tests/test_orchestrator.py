"""Tests for the sharded campaign orchestrator.

Covers: shard-spec parsing and exact grid partitioning, trial-chunk work
unit planning, the crash-tolerant work-stealing pool, byte-identity of
orchestrated/sharded/merged records with the single-process
``CampaignRunner``, killed-then-resumed sweeps that skip cached units, and
failure containment (retries, exhausted attempts).
"""

import json
import os

import pytest

from repro.faults import (
    CampaignOrchestrator,
    CampaignPoint,
    CampaignRunner,
    PendingShardError,
    ShardSpec,
    sweep_faulty_pe_count,
)
from repro.faults.orchestrator import plan_work_units, pool_map, run_tasks
from repro.systolic import DEFAULT_ACCUMULATOR_FORMAT

FMT = DEFAULT_ACCUMULATOR_FORMAT


def canonical(records) -> bytes:
    """Byte representation used for record byte-identity assertions."""

    return json.dumps(records, sort_keys=True).encode("utf-8")


def make_points(trials=2, counts=(2, 4, 6)):
    """A small Fig. 5b-style grid (faulty-PE counts on a fixed array)."""

    return [
        CampaignPoint.for_trials(16, 16, count, trials,
                                 bit_position=FMT.magnitude_msb,
                                 stuck_type="sa1", seed=40 + count,
                                 label="pe_count", dataset="mnist")
        for count in counts
    ]


@pytest.fixture()
def eval_loader(tiny_mnist_loaders):
    return tiny_mnist_loaders[1]


@pytest.fixture(scope="module")
def serial_records(trained_tiny_model_state, tiny_mnist_loaders):
    """Single-process fused records of ``make_points()`` (the oracle)."""

    from conftest import build_tiny_mnist_model

    model, _ = build_tiny_mnist_model()
    model.load_state_dict(trained_tiny_model_state["state"])
    return CampaignRunner(model, tiny_mnist_loaders[1]).run(make_points())


class TestShardSpec:
    def test_parse_round_trip(self):
        spec = ShardSpec.parse("1/3")
        assert (spec.index, spec.total) == (1, 3)
        assert str(spec) == "1/3"
        assert ShardSpec.parse(spec) is spec

    def test_parse_rejects_malformed(self):
        for text in ("", "1", "a/b", "1/2/3", "2/2", "-1/2", "0/0"):
            with pytest.raises(ValueError):
                ShardSpec.parse(text)

    def test_shards_partition_ordinals(self):
        total = 3
        shards = [ShardSpec(index, total) for index in range(total)]
        for ordinal in range(20):
            owners = [shard for shard in shards if shard.owns(ordinal)]
            assert len(owners) == 1


class TestPlanUnits:
    def test_default_is_one_unit_per_point(self):
        points = make_points(trials=4)
        units = plan_work_units(points)
        assert [unit.ordinal for unit in units] == [0, 1, 2]
        assert all(unit.num_chunks == 1 for unit in units)
        # Unsplit units carry the original points, so their cache keys are
        # exactly the plain per-point campaign keys.
        assert all(unit.point is point for unit, point in zip(units, points))

    def test_trial_chunk_splits_seeds_exactly_once(self):
        points = make_points(trials=5)
        units = plan_work_units(points, trial_chunk=2)
        assert len(units) == 9  # ceil(5/2) = 3 chunks per point
        assert [unit.ordinal for unit in units] == list(range(9))
        for point_index, point in enumerate(points):
            chunks = [unit for unit in units if unit.point_index == point_index]
            assert [unit.chunk_index for unit in chunks] == [0, 1, 2]
            recombined = tuple(seed for unit in chunks
                               for seed in unit.point.map_seeds)
            assert recombined == point.map_seeds

    def test_shard_union_covers_grid_exactly_once(self):
        units = plan_work_units(make_points(trials=4), trial_chunk=1)
        ordinals = [unit.ordinal for unit in units]
        total = 2
        shard_sets = [
            {ordinal for ordinal in ordinals if ShardSpec(i, total).owns(ordinal)}
            for i in range(total)
        ]
        assert set(ordinals) == shard_sets[0] | shard_sets[1]
        assert not (shard_sets[0] & shard_sets[1])

    def test_invalid_trial_chunk(self):
        with pytest.raises(ValueError):
            plan_work_units(make_points(), trial_chunk=0)


class TestWorkStealingPool:
    def test_results_in_task_order(self):
        results = run_tasks(5, lambda index: index * index, workers=2)
        assert [result.value for result in results] == [0, 1, 4, 9, 16]
        assert all(result.ok and result.attempts == 1 for result in results)

    def test_worker_crash_requeues_unit(self, tmp_path):
        latch = tmp_path / "crashed-once"

        def fn(index):
            if index == 1 and not latch.exists():
                latch.touch()
                os._exit(17)  # hard worker death, not an exception
            return index

        events = []
        results = run_tasks(3, fn, workers=2, max_attempts=3,
                            progress=events.append)
        assert [result.value for result in results] == [0, 1, 2]
        assert results[1].attempts == 2
        crashes = [event for event in events if event["kind"] == "worker-crash"]
        assert crashes and crashes[0]["index"] == 1

    def test_exception_retries_then_fails(self):
        def fn(index):
            if index == 0:
                raise ValueError("always broken")
            return index

        results = run_tasks(2, fn, workers=2, max_attempts=2)
        assert not results[0].ok and "always broken" in results[0].error
        assert results[0].attempts == 2
        assert results[1].ok  # surviving tasks still complete

    def test_pool_map_reraises_original_exception_type(self):
        def fn(item):
            raise ValueError(f"bad {item}")

        # The serial path would raise ValueError; the pooled path must too.
        with pytest.raises(ValueError, match="bad"):
            pool_map(fn, [1, 2], workers=2)
        with pytest.raises(ValueError, match="bad"):
            pool_map(fn, [1, 2], workers=1)

    def test_inline_fallback_matches_pool(self):
        fn = lambda index: index + 10  # noqa: E731
        inline = [result.value for result in run_tasks(4, fn, workers=1)]
        pooled = [result.value for result in run_tasks(4, fn, workers=2)]
        assert inline == pooled == [10, 11, 12, 13]


class TestOrchestratedRecords:
    def test_workers2_byte_identical_to_single_process(self, trained_tiny_model,
                                                       eval_loader, serial_records):
        runner = CampaignRunner(trained_tiny_model, eval_loader, workers=2)
        assert canonical(runner.run(make_points())) == canonical(serial_records)

    def test_trial_chunks_byte_identical_and_prime_point_cache(
            self, trained_tiny_model, eval_loader, serial_records, tmp_path):
        runner = CampaignRunner(trained_tiny_model, eval_loader, workers=2,
                                trial_chunk=1, cache_dir=tmp_path)
        records = runner.run(make_points())
        assert canonical(records) == canonical(serial_records)
        # The merge step materialised full-point records: a plain serial
        # runner with a broken simulation path must answer purely from cache.
        fresh = CampaignRunner(trained_tiny_model, eval_loader, cache_dir=tmp_path)

        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("cache miss: simulation was invoked")

        fresh._evaluate_point = boom
        fresh._evaluate_points_merged = boom
        assert canonical(fresh.run(make_points())) == canonical(serial_records)

    def test_two_shard_split_then_merge_byte_identical(
            self, trained_tiny_model, eval_loader, serial_records, tmp_path):
        points = make_points()
        shard0 = CampaignRunner(trained_tiny_model, eval_loader,
                                cache_dir=tmp_path, shard="0/2")
        with pytest.raises(PendingShardError) as excinfo:
            shard0.run(points)
        assert excinfo.value.pending == [1]  # shard 0 owns ordinals 0 and 2
        # Shard 1 computes its own unit, then merges shard 0's cached units.
        shard1 = CampaignRunner(trained_tiny_model, eval_loader,
                                cache_dir=tmp_path, shard="1/2")
        assert canonical(shard1.run(points)) == canonical(serial_records)
        # And an unsharded resume pass answers purely from the shared cache.
        merge = CampaignRunner(trained_tiny_model, eval_loader, cache_dir=tmp_path)
        assert canonical(merge.run(points)) == canonical(serial_records)

    def test_shard_requires_cache_dir(self, trained_tiny_model, eval_loader):
        runner = CampaignRunner(trained_tiny_model, eval_loader, shard="0/2")
        with pytest.raises(ValueError, match="cache_dir"):
            runner.run(make_points())

    def test_killed_sweep_resumes_without_recompute(
            self, trained_tiny_model, eval_loader, serial_records, tmp_path):
        points = make_points()
        runner = CampaignRunner(trained_tiny_model, eval_loader, cache_dir=tmp_path)

        killed_after = []

        def kill_after_two(unit):
            if len(killed_after) >= 2:
                raise KeyboardInterrupt  # simulate ^C mid-sweep
            killed_after.append(unit.ordinal)

        interrupted = CampaignOrchestrator(runner, workers=1,
                                           unit_hook=kill_after_two)
        with pytest.raises(KeyboardInterrupt):
            interrupted.run(points)
        cached_units = len(list(tmp_path.glob("*.json")))
        assert cached_units == 2  # finished units survived the kill

        computed = []
        resumed = CampaignOrchestrator(runner, workers=1,
                                       unit_hook=lambda unit: computed.append(unit.ordinal))
        result = resumed.run(points)
        assert result.complete
        assert canonical(result.records) == canonical(serial_records)
        # Only the unit lost to the kill was recomputed.
        assert computed == [2]
        assert result.report.cached_units == 2
        assert result.report.computed_units == 1

    def test_partial_point_cache_skips_units_entirely(
            self, trained_tiny_model, eval_loader, serial_records, tmp_path):
        points = make_points()
        # Prime the cache with one full point via the plain serial runner.
        CampaignRunner(trained_tiny_model, eval_loader,
                       cache_dir=tmp_path).run(points[:1])

        seen = []
        runner = CampaignRunner(trained_tiny_model, eval_loader, cache_dir=tmp_path)
        orchestrator = CampaignOrchestrator(
            runner, workers=1, unit_hook=lambda unit: seen.append(unit.point_index))
        result = orchestrator.run(points)
        assert sorted(seen) == [1, 2]  # point 0 answered from the cache
        assert canonical(result.records) == canonical(serial_records)

    def test_worker_crash_mid_sweep_is_retried(self, trained_tiny_model,
                                               eval_loader, serial_records,
                                               tmp_path):
        latch = tmp_path / "crash-once"

        def crash_once(unit):
            if unit.ordinal == 0 and not latch.exists():
                latch.touch()
                os._exit(23)

        runner = CampaignRunner(trained_tiny_model, eval_loader)
        orchestrator = CampaignOrchestrator(runner, workers=2,
                                            unit_hook=crash_once)
        result = orchestrator.run(make_points())
        assert result.complete
        assert result.report.retries >= 1
        assert canonical(result.records) == canonical(serial_records)

    def test_unit_failure_exhausts_attempts_but_keeps_other_work(
            self, trained_tiny_model, eval_loader, tmp_path):
        def poison(unit):
            if unit.ordinal == 1:
                raise ValueError("poisoned unit")

        runner = CampaignRunner(trained_tiny_model, eval_loader, cache_dir=tmp_path)
        orchestrator = CampaignOrchestrator(runner, workers=1, max_attempts=2,
                                            unit_hook=poison)
        with pytest.raises(RuntimeError, match="poisoned unit"):
            orchestrator.run(make_points())
        # The two healthy units finished and were cached before the raise.
        assert len(list(tmp_path.glob("*.json"))) == 2

    def test_progress_events_carry_timing_and_eta(self, trained_tiny_model,
                                                  eval_loader):
        events = []
        runner = CampaignRunner(trained_tiny_model, eval_loader, workers=2,
                                progress=events.append)
        runner.run(make_points())
        done = [event for event in events if event["kind"] == "unit-done"]
        assert len(done) == 3
        assert all(event["seconds"] > 0 for event in done)
        assert all("eta_seconds" in event for event in done)
        assert {event["point_index"] for event in done} == {0, 1, 2}

    def test_report_summary_counts(self, trained_tiny_model, eval_loader, tmp_path):
        runner = CampaignRunner(trained_tiny_model, eval_loader, cache_dir=tmp_path)
        orchestrator = CampaignOrchestrator(runner, workers=1)
        first = orchestrator.run(make_points()).report
        assert (first.total_units, first.computed_units, first.cached_units) == (3, 3, 0)
        second = orchestrator.run(make_points()).report
        assert second.computed_units == 0
        summary = first.summary()
        assert summary["computed_units"] == 3
        assert summary["mean_unit_seconds"] > 0


class TestSweepIntegration:
    def test_fig5b_sweep_through_orchestrator_matches_serial(
            self, trained_tiny_model, eval_loader, tmp_path):
        kwargs = dict(rows=16, cols=16, counts=(0, 2, 4), trials=2, seed=9,
                      dataset="mnist")
        serial = sweep_faulty_pe_count(trained_tiny_model, eval_loader, **kwargs)
        orchestrated = sweep_faulty_pe_count(
            trained_tiny_model, eval_loader, workers=2, trial_chunk=1,
            cache_dir=tmp_path, **kwargs)
        assert canonical(orchestrated) == canonical(serial)
        assert orchestrated[0]["num_faulty_pes"] == 0  # baseline row intact


class TestHangTolerance:
    def test_watchdog_kills_sleeping_task(self):
        import time

        def fn(index):
            if index == 1:
                time.sleep(60)
            return index

        events = []
        results = run_tasks(3, fn, workers=3, task_timeout=1.0,
                            max_attempts=2, retry_backoff=0.05,
                            progress=events.append)
        assert results[0].ok and results[2].ok
        assert not results[1].ok
        assert results[1].failure_kind == "hung"
        assert "deadline" in results[1].error
        hangs = [event for event in events if event["kind"] == "worker-hung"]
        assert hangs and hangs[0]["index"] == 1
        assert hangs[0]["reason"] == "hung"

    def test_hung_task_recovers_on_retry(self, tmp_path):
        import time

        latch = tmp_path / "hung-once"

        def fn(index):
            if index == 1 and not latch.exists():
                latch.touch()
                time.sleep(60)
            return index * 10

        results = run_tasks(3, fn, workers=2, task_timeout=1.5,
                            max_attempts=3, retry_backoff=0.05)
        assert [result.value for result in results] == [0, 10, 20]
        assert results[1].attempts == 2
        assert results[1].ok and results[1].failure_kind is None

    def test_uninterruptible_hang_is_killed_by_escalation(self):
        import signal
        import time

        def fn(index):
            if index == 1:
                # A worker too wedged to service SIGTERM: only the
                # escalation to SIGKILL can stop it.
                signal.signal(signal.SIGTERM, signal.SIG_IGN)
                time.sleep(60)
            return index

        results = run_tasks(2, fn, workers=2, task_timeout=1.0,
                            max_attempts=1)
        assert results[0].ok
        assert results[1].failure_kind == "hung"

    def test_retry_backoff_grows_exponentially(self):
        def fn(index):
            raise ValueError("always broken")

        events = []
        run_tasks(2, fn, workers=2, max_attempts=3, retry_backoff=0.05,
                  progress=events.append)
        delays = [event["retry_delay"] for event in events
                  if event["kind"] == "task-failed" and event.get("index") == 0
                  and event.get("retry_delay") is not None]
        assert delays == [0.05, 0.1]

    def test_raising_progress_callback_is_disabled_not_fatal(self):
        calls = []

        def bad_progress(event):
            calls.append(event)
            raise RuntimeError("observer broke")

        results = run_tasks(4, lambda index: index, workers=2,
                            progress=bad_progress)
        assert all(result.ok for result in results)
        assert len(calls) == 1  # reported once, then disabled

    def test_pool_map_attributes_index_and_attempts(self):
        def fn(item):
            if item == "bad":
                raise ValueError("broken cell")
            return item

        with pytest.raises(ValueError) as excinfo:
            pool_map(fn, ["ok", "bad"], workers=2, max_attempts=2)
        message = str(excinfo.value)
        assert "grid task 1/2 failed after 2 attempt(s)" in message
        assert "broken cell" in message
        # Serial fallback carries the same attribution.
        with pytest.raises(ValueError, match=r"grid task 1/2 failed after"):
            pool_map(fn, ["ok", "bad"], workers=1, max_attempts=2)


class TestQuarantine:
    def test_quarantine_mode_completes_sweep_without_raising(
            self, trained_tiny_model, eval_loader, tmp_path):
        def poison(unit):
            if unit.ordinal == 1:
                raise ValueError("poisoned unit")

        runner = CampaignRunner(trained_tiny_model, eval_loader,
                                cache_dir=tmp_path)
        orchestrator = CampaignOrchestrator(
            runner, workers=1, max_attempts=2, retry_backoff=0.05,
            on_exhausted="quarantine", unit_hook=poison)
        result = orchestrator.run(make_points())
        assert not result.complete
        assert result.pending == [1]
        assert result.records[0] is not None and result.records[2] is not None
        assert result.records[1] is None
        assert result.report.quarantined == [1]
        assert result.report.poisoned == 2  # both attempts attributed
        assert len(list(tmp_path.glob("*.json"))) == 2

    def test_raise_mode_still_reports_quarantined_ordinals(
            self, trained_tiny_model, eval_loader):
        def poison(unit):
            if unit.ordinal == 0:
                raise ValueError("poisoned unit")

        runner = CampaignRunner(trained_tiny_model, eval_loader)
        orchestrator = CampaignOrchestrator(runner, workers=1, max_attempts=2,
                                            retry_backoff=0.05,
                                            unit_hook=poison)
        with pytest.raises(RuntimeError, match="poisoned unit"):
            orchestrator.run(make_points())

    def test_invalid_policies_rejected(self, trained_tiny_model, eval_loader):
        runner = CampaignRunner(trained_tiny_model, eval_loader)
        with pytest.raises(ValueError, match="on_exhausted"):
            CampaignOrchestrator(runner, on_exhausted="retry-forever")
        with pytest.raises(ValueError, match="unit_timeout"):
            CampaignOrchestrator(runner, unit_timeout=0.0)
