"""Tests for the Module/Parameter infrastructure."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.snn import Conv2d, Linear, Module, Parameter, Sequential
from repro.snn.layers import BatchNorm2d


class Composite(Module):
    def __init__(self):
        super().__init__()
        self.fc1 = Linear(4, 3, rng=np.random.default_rng(0))
        self.fc2 = Linear(3, 2, rng=np.random.default_rng(1))
        self.scale = Parameter(np.array(2.0))

    def forward(self, x):
        return self.fc2(self.fc1(x)) * self.scale


class TestRegistration:
    def test_parameters_collected_recursively(self):
        model = Composite()
        names = [name for name, _ in model.named_parameters()]
        assert "fc1.weight" in names and "fc2.bias" in names and "scale" in names
        assert len(model.parameters()) == 5

    def test_modules_traversal(self):
        model = Composite()
        kinds = [type(m).__name__ for m in model.modules()]
        assert kinds.count("Linear") == 2
        assert kinds[0] == "Composite"

    def test_buffers_registered(self):
        bn = BatchNorm2d(3)
        buffer_names = [name for name, _ in bn.named_buffers()]
        assert set(buffer_names) == {"running_mean", "running_var"}

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module()(Tensor(np.zeros(1)))


class TestModesAndGrad:
    def test_train_eval_propagates(self):
        model = Composite()
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_zero_grad(self):
        model = Composite()
        out = model(Tensor(np.ones((2, 4))))
        out.sum().backward()
        assert any(p.grad is not None for p in model.parameters())
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())


class TestStateDict:
    def test_roundtrip(self):
        model = Composite()
        state = model.state_dict()
        other = Composite()
        # Perturb, then restore.
        for param in other.parameters():
            param.data += 1.0
        other.load_state_dict(state)
        for (_, a), (_, b) in zip(model.named_parameters(), other.named_parameters()):
            assert np.allclose(a.data, b.data)

    def test_state_dict_copies(self):
        model = Composite()
        state = model.state_dict()
        model.fc1.weight.data += 10.0
        assert not np.allclose(state["fc1.weight"], model.fc1.weight.data)

    def test_unknown_parameter_raises(self):
        model = Composite()
        with pytest.raises(KeyError):
            model.load_state_dict({"nope": np.zeros(3)})

    def test_shape_mismatch_raises(self):
        model = Composite()
        state = model.state_dict()
        state["fc1.weight"] = np.zeros((1, 1))
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_buffer_roundtrip(self):
        bn = BatchNorm2d(2)
        bn.running_mean[:] = [1.0, 2.0]
        state = bn.state_dict()
        other = BatchNorm2d(2)
        other.load_state_dict(state)
        assert np.allclose(other.running_mean, [1.0, 2.0])

    def test_unknown_buffer_raises(self):
        bn = BatchNorm2d(2)
        with pytest.raises(KeyError):
            bn.load_state_dict({"buffer.bogus": np.zeros(2)})


class TestSequential:
    def test_iteration_and_indexing(self):
        seq = Sequential(Linear(4, 4, rng=np.random.default_rng(0)),
                         Linear(4, 2, rng=np.random.default_rng(1)))
        assert len(seq) == 2
        assert isinstance(seq[1], Linear)
        assert len(list(iter(seq))) == 2

    def test_append(self):
        seq = Sequential()
        seq.append(Linear(2, 2, rng=np.random.default_rng(0)))
        assert len(seq) == 1

    def test_forward_chains(self):
        seq = Sequential(Linear(3, 3, rng=np.random.default_rng(0), bias=False),
                         Linear(3, 1, rng=np.random.default_rng(1), bias=False))
        out = seq(Tensor(np.ones((2, 3))))
        expected = np.ones((2, 3)) @ seq[0].weight.data.T @ seq[1].weight.data.T
        assert np.allclose(out.data, expected)
