"""Tests for fault-aware pruning and the FaP / FaPIT / FalVolt mitigation methods."""

import numpy as np
import pytest

from repro.core import (
    FalVolt,
    FaultAwarePruning,
    FaultAwarePruningWithRetraining,
    MITIGATIONS,
    PruningMaskCallback,
    affine_layers,
    find_pruned_weight_indices,
    get_mitigation,
    pruned_fraction,
    set_pruned_weights_to_zero,
    threshold_grid_search,
    best_threshold,
    search_cost_epochs,
)
from repro.core.base import MitigationResult
from repro.datasets import DataLoader
from repro.faults import FaultMap, StuckAtFault, random_fault_map
from repro.snn import TrainingHistory
from repro.systolic import DEFAULT_ACCUMULATOR_FORMAT

from tests.conftest import build_tiny_mnist_model

FMT = DEFAULT_ACCUMULATOR_FORMAT
ARRAY = (16, 16)


@pytest.fixture()
def loaders(tiny_mnist_data):
    train, test = tiny_mnist_data
    return (DataLoader(train, batch_size=12, shuffle=True, seed=4),
            DataLoader(test, batch_size=50))


@pytest.fixture()
def fault_map_30():
    return random_fault_map(*ARRAY, int(0.3 * ARRAY[0] * ARRAY[1]),
                            bit_position=FMT.magnitude_msb, stuck_type="sa1", seed=21)


class TestPruning:
    def test_affine_layers_found(self, tiny_model):
        layers = affine_layers(tiny_model)
        # Encoder conv + 2 conv blocks + 2 FC layers.
        assert len(layers) == 5
        assert all("." in name or name for name, _ in layers)

    def test_find_masks_cover_all_layers(self, tiny_model, fault_map_30):
        masks = find_pruned_weight_indices(tiny_model, fault_map_30)
        assert set(masks) == {name for name, _ in affine_layers(tiny_model)}
        assert all(mask.dtype == bool for mask in masks.values())

    def test_set_pruned_weights_to_zero(self, tiny_model, fault_map_30):
        masks = find_pruned_weight_indices(tiny_model, fault_map_30)
        zeroed = set_pruned_weights_to_zero(tiny_model, masks)
        assert zeroed == sum(int(m.sum()) for m in masks.values())
        for name, layer in affine_layers(tiny_model):
            assert np.all(layer.weight.data[masks[name]] == 0.0)

    def test_pruned_fraction_close_to_fault_rate(self, tiny_model, fault_map_30):
        masks = find_pruned_weight_indices(tiny_model, fault_map_30)
        assert pruned_fraction(masks) == pytest.approx(0.3, abs=0.1)

    def test_pruned_fraction_empty(self):
        assert pruned_fraction({}) == 0.0

    def test_unknown_layer_name(self, tiny_model):
        with pytest.raises(KeyError):
            set_pruned_weights_to_zero(tiny_model, {"bogus": np.zeros((2, 2), dtype=bool)})

    def test_mask_shape_mismatch(self, tiny_model, fault_map_30):
        masks = find_pruned_weight_indices(tiny_model, fault_map_30)
        name = next(iter(masks))
        masks[name] = np.zeros((1, 1), dtype=bool)
        with pytest.raises(ValueError):
            set_pruned_weights_to_zero(tiny_model, masks)

    def test_callback_re_zeroes_after_update(self, tiny_model, fault_map_30):
        masks = find_pruned_weight_indices(tiny_model, fault_map_30)
        set_pruned_weights_to_zero(tiny_model, masks)
        name, layer = affine_layers(tiny_model)[0]
        layer.weight.data[masks[name]] = 5.0  # simulate an optimizer update
        PruningMaskCallback(masks)(tiny_model, epoch=0, logs={})
        assert np.all(layer.weight.data[masks[name]] == 0.0)

    def test_no_faults_prunes_nothing(self, tiny_model):
        empty = FaultMap(*ARRAY)
        masks = find_pruned_weight_indices(tiny_model, empty)
        assert pruned_fraction(masks) == 0.0


class TestMitigationConstruction:
    def test_registry(self):
        assert set(MITIGATIONS) == {"fap", "fapit", "falvolt"}
        assert isinstance(get_mitigation("fap"), FaultAwarePruning)
        assert isinstance(get_mitigation("falvolt", retraining_epochs=2), FalVolt)
        with pytest.raises(KeyError):
            get_mitigation("dropout")

    def test_fap_rejects_retraining(self):
        with pytest.raises(ValueError):
            FaultAwarePruning(retraining_epochs=3)

    def test_fapit_requires_retraining(self):
        with pytest.raises(ValueError):
            FaultAwarePruningWithRetraining(retraining_epochs=0)

    def test_fapit_invalid_threshold(self):
        with pytest.raises(ValueError):
            FaultAwarePruningWithRetraining(retraining_epochs=1, fixed_threshold=0.0)

    def test_negative_epochs_rejected(self):
        with pytest.raises(ValueError):
            FalVolt(retraining_epochs=-1)


class TestMitigationRuns:
    def run_method(self, mitigation, trained_tiny_model_state, loaders, fault_map):
        train_loader, test_loader = loaders
        model, _ = build_tiny_mnist_model()
        model.load_state_dict(trained_tiny_model_state["state"])
        return mitigation.run(model, fault_map, train_loader, test_loader,
                              num_classes=10,
                              baseline_accuracy=trained_tiny_model_state["test_accuracy"]), model

    def test_fap_prunes_without_retraining(self, trained_tiny_model_state, loaders,
                                           fault_map_30):
        result, model = self.run_method(FaultAwarePruning(), trained_tiny_model_state,
                                        loaders, fault_map_30)
        assert result.method == "FaP"
        assert result.retraining_epochs == 0
        assert result.history.epochs == 0
        assert result.pruned_fraction > 0.15
        # Pruned weights really are zero.
        masks = find_pruned_weight_indices(model, fault_map_30)
        for name, layer in affine_layers(model):
            assert np.all(layer.weight.data[masks[name]] == 0.0)

    def test_fapit_recovers_accuracy(self, trained_tiny_model_state, loaders, fault_map_30):
        mitigation = FaultAwarePruningWithRetraining(retraining_epochs=3, learning_rate=1.5e-2)
        result, model = self.run_method(mitigation, trained_tiny_model_state, loaders,
                                        fault_map_30)
        fap_result, _ = self.run_method(FaultAwarePruning(), trained_tiny_model_state,
                                        loaders, fault_map_30)
        assert result.method == "FaPIT"
        assert result.accuracy > fap_result.accuracy
        # Thresholds stay pinned at the fixed value.
        assert all(v == pytest.approx(1.0) for v in result.thresholds.values())
        assert all(not node.learnable_threshold for node in model.spiking_layers())

    def test_falvolt_learns_thresholds_and_recovers(self, trained_tiny_model_state, loaders,
                                                    fault_map_30):
        mitigation = FalVolt(retraining_epochs=3, learning_rate=1.5e-2)
        result, model = self.run_method(mitigation, trained_tiny_model_state, loaders,
                                        fault_map_30)
        assert result.method == "FalVolt"
        assert all(node.learnable_threshold for node in model.spiking_layers())
        # At least one layer's threshold moved away from the initial 1.0.
        assert any(abs(v - 1.0) > 1e-3 for v in result.thresholds.values())
        assert result.accuracy > 0.5
        assert result.history.epochs == 3
        # Pruned weights still zero after retraining.
        masks = find_pruned_weight_indices(model, fault_map_30)
        for name, layer in affine_layers(model):
            assert np.all(layer.weight.data[masks[name]] == 0.0)

    def test_falvolt_initial_threshold_override(self, trained_tiny_model_state, loaders,
                                                fault_map_30):
        mitigation = FalVolt(retraining_epochs=1, learning_rate=1e-3, initial_threshold=0.6)
        result, model = self.run_method(mitigation, trained_tiny_model_state, loaders,
                                        fault_map_30)
        assert all(v < 0.9 for v in result.thresholds.values())

    def test_result_bookkeeping(self, trained_tiny_model_state, loaders, fault_map_30):
        result, _ = self.run_method(FaultAwarePruning(), trained_tiny_model_state, loaders,
                                    fault_map_30)
        assert isinstance(result, MitigationResult)
        assert result.fault_rate == pytest.approx(fault_map_30.fault_rate)
        assert result.accuracy_drop == pytest.approx(
            result.baseline_accuracy - result.accuracy)
        payload = result.as_dict()
        assert payload["method"] == "FaP"
        assert "thresholds" in payload and "history" in payload

    def test_epochs_to_baseline_helper(self):
        history = TrainingHistory(test_accuracy=[0.5, 0.9, 0.97])
        result = MitigationResult(method="x", accuracy=0.97, baseline_accuracy=0.98,
                                  thresholds={}, history=history, pruned_fraction=0.1,
                                  retraining_epochs=3, fault_rate=0.3)
        assert result.epochs_to_baseline(tolerance=0.02) == 3
        assert result.epochs_to_baseline(tolerance=0.0) is None


class TestThresholdSearch:
    def test_grid_search_records(self, trained_tiny_model_state, loaders, fault_map_30):
        train_loader, test_loader = loaders

        def factory():
            model, _ = build_tiny_mnist_model()
            model.load_state_dict(trained_tiny_model_state["state"])
            return model

        records = threshold_grid_search(factory, fault_map_30, train_loader, test_loader,
                                        num_classes=10, thresholds=(0.5, 1.0),
                                        retraining_epochs=1, learning_rate=1e-2,
                                        dataset="mnist")
        assert len(records) == 2
        assert {r["threshold"] for r in records} == {0.5, 1.0}
        assert all(0.0 <= r["accuracy"] <= 1.0 for r in records)
        assert search_cost_epochs(records) == 2
        assert best_threshold(records)["accuracy"] == max(r["accuracy"] for r in records)

    def test_grid_search_requires_thresholds(self, loaders, fault_map_30):
        train_loader, test_loader = loaders
        with pytest.raises(ValueError):
            threshold_grid_search(lambda: None, fault_map_30, train_loader, test_loader,
                                  num_classes=10, thresholds=())

    def test_best_threshold_empty(self):
        with pytest.raises(ValueError):
            best_threshold([])
