"""Tests for the experiment harness (configs, baseline cache, reporting, registry)."""

import numpy as np
import pytest

from repro.experiments import (
    EXPERIMENTS,
    ExperimentConfig,
    PAPER_DATASETS,
    PAPER_FAULT_RATES,
    PAPER_THRESHOLD_GRID,
    clear_baseline_cache,
    default_config,
    format_series,
    format_table,
    get_experiment,
    list_experiments,
    prepare_baseline,
    summarize,
)
from repro.experiments.baseline import build_loaders


#: Micro configuration used by the integration tests below: small enough to
#: train in a couple of seconds, large enough to be well above chance.
MICRO = ExperimentConfig(
    dataset="mnist", num_train=120, num_test=50,
    dataset_kwargs=(("max_shift", 1), ("noise_std", 0.04)),
    channels=6, hidden_units=24, time_steps=3,
    batch_size=12, baseline_epochs=10, baseline_lr=2.5e-2,
    retrain_epochs=2, retrain_lr=1.5e-2,
    array_rows=16, array_cols=16, seed=13)


@pytest.fixture(scope="module")
def micro_baseline():
    return prepare_baseline(MICRO)


class TestConfig:
    def test_default_configs_exist_for_paper_datasets(self):
        for dataset in PAPER_DATASETS:
            config = default_config(dataset)
            assert config.dataset == dataset
            assert config.num_classes in (10, 11)

    def test_full_scale_differs(self):
        small = default_config("mnist", scale="small")
        full = default_config("mnist", scale="full")
        assert full.num_train > small.num_train
        assert full.array_rows >= small.array_rows

    def test_unknown_scale_or_dataset(self):
        with pytest.raises(KeyError):
            default_config("mnist", scale="huge")
        with pytest.raises(KeyError):
            default_config("cifar")

    def test_overrides(self):
        config = default_config("mnist", num_train=50, seed=99)
        assert config.num_train == 50 and config.seed == 99

    def test_with_overrides_returns_copy(self):
        config = default_config("mnist")
        other = config.with_overrides(batch_size=5)
        assert other.batch_size == 5 and config.batch_size != 5

    def test_paper_constants(self):
        assert PAPER_FAULT_RATES == (0.10, 0.30, 0.60)
        assert PAPER_THRESHOLD_GRID == (0.45, 0.5, 0.55, 0.7)

    def test_dataset_options_dict(self):
        assert default_config("mnist").dataset_options()["max_shift"] == 1
        assert default_config("nmnist").dataset_options() == {}


class TestReporting:
    RECORDS = [
        {"method": "FaP", "fault_rate": 0.3, "accuracy": 0.42},
        {"method": "FalVolt", "fault_rate": 0.3, "accuracy": 0.985},
    ]

    def test_format_table_contains_values(self):
        table = format_table(self.RECORDS, columns=["method", "accuracy"], title="Fig7")
        assert "Fig7" in table and "FalVolt" in table and "0.985" in table
        assert table.count("\n") >= 3

    def test_format_table_empty(self):
        assert "(no records)" in format_table([], title="x")

    def test_format_table_infers_columns(self):
        table = format_table(self.RECORDS)
        assert "fault_rate" in table

    def test_format_series_grouping(self):
        series = format_series(self.RECORDS, x="fault_rate", y="accuracy", group_by="method")
        assert "[method=FaP]" in series and "0.300->0.420" in series

    def test_format_series_ungrouped(self):
        series = format_series(self.RECORDS, x="fault_rate", y="accuracy")
        assert "0.300->0.985" in series

    def test_summarize_projects_keys(self):
        rows = summarize(self.RECORDS, ["method"])
        assert rows == [{"method": "FaP"}, {"method": "FalVolt"}]


class TestRegistry:
    def test_all_paper_figures_registered(self):
        ids = {spec.experiment_id for spec in list_experiments()}
        assert {"fig2", "fig5a", "fig5b", "fig5c", "fig6", "fig7", "fig8", "headline"} <= ids

    def test_every_spec_has_runner_and_benchmark(self):
        for spec in list_experiments():
            assert callable(spec.runner)
            assert spec.benchmark.startswith("benchmarks/")

    def test_get_experiment(self):
        assert get_experiment("fig7").paper_artifact == "Figure 7"
        with pytest.raises(KeyError):
            get_experiment("fig9")


class TestBaselinePreparation:
    def test_build_loaders_shapes(self):
        train_loader, test_loader = build_loaders(MICRO)
        inputs, labels = next(iter(train_loader))
        assert inputs.shape[0] == MICRO.batch_size
        assert labels.shape[0] == MICRO.batch_size

    def test_baseline_reaches_reasonable_accuracy(self, micro_baseline):
        assert micro_baseline.baseline_accuracy > 0.6
        assert micro_baseline.num_classes == 10

    def test_baseline_cache_reused(self, micro_baseline):
        again = prepare_baseline(MICRO)
        assert again is micro_baseline

    def test_model_factory_returns_independent_copies(self, micro_baseline):
        a = micro_baseline.model_factory()
        b = micro_baseline.model_factory()
        a_params = dict(a.named_parameters())
        b_params = dict(b.named_parameters())
        name = next(iter(a_params))
        a_params[name].data += 1.0
        assert not np.allclose(a_params[name].data, b_params[name].data)

    def test_clear_cache(self, micro_baseline):
        clear_baseline_cache()
        rebuilt = prepare_baseline(MICRO, use_cache=False)
        assert rebuilt is not micro_baseline
        # Re-populate the module-scoped cache entry for later tests.
        prepare_baseline(MICRO)


class TestExperimentDrivers:
    def test_fig5b_records_shape(self, micro_baseline):
        from repro.experiments import run_fig5b_faulty_pe_count

        records = run_fig5b_faulty_pe_count(MICRO, counts=(0, 16), trials=2)
        assert len(records) == 2
        assert records[0]["num_faulty_pes"] == 0
        assert records[0]["accuracy"] >= records[1]["accuracy"] - 0.05
        assert all(r["dataset"] == "mnist" for r in records)

    def test_fig5a_records_shape(self, micro_baseline):
        from repro.experiments import run_fig5a_bit_locations

        records = run_fig5a_bit_locations(MICRO, bit_positions=(0, 14),
                                          stuck_types=("sa1",), num_faulty=4, trials=1)
        assert len(records) == 2
        bits = {r["bit_position"] for r in records}
        assert bits == {0, 14}

    def test_fig5c_records_shape(self, micro_baseline):
        from repro.experiments import run_fig5c_array_sizes

        records = run_fig5c_array_sizes(MICRO, sizes=(4, 16), num_faulty=2, trials=1)
        assert [r["array_size"] for r in records] == [4, 16]

    def test_fig7_methods_and_ordering(self, micro_baseline):
        from repro.experiments import run_fig7_mitigation_comparison

        records = run_fig7_mitigation_comparison(MICRO, fault_rates=(0.30,),
                                                 methods=("fap", "falvolt"),
                                                 retraining_epochs=2)
        assert len(records) == 2
        by_method = {r["method"]: r for r in records}
        assert set(by_method) == {"FaP", "FalVolt"}
        assert by_method["FalVolt"]["accuracy"] >= by_method["FaP"]["accuracy"]

    def test_fig6_threshold_records(self, micro_baseline):
        from repro.experiments import run_fig6_optimized_thresholds

        records = run_fig6_optimized_thresholds(MICRO, fault_rates=(0.30,),
                                                retraining_epochs=1)
        layers = {r["layer"] for r in records}
        assert layers == {"Conv1", "Conv2", "FC1", "FC2"}
        assert all(r["threshold_voltage"] > 0 for r in records)

    def test_fig8_convergence_records(self, micro_baseline):
        from repro.experiments import convergence_speedup, run_fig8_convergence

        records = run_fig8_convergence(MICRO, fault_rate=0.30, retraining_epochs=2)
        methods = {r["method"] for r in records}
        assert methods == {"FaPIT", "FalVolt"}
        assert all(1 <= r["epoch"] <= 2 for r in records)
        # Speedup is either undefined (not reached) or a positive ratio.
        speedup = convergence_speedup(records)
        assert speedup is None or speedup > 0

    def test_fig2_threshold_grid(self, micro_baseline):
        from repro.experiments import run_fig2_threshold_grid

        records = run_fig2_threshold_grid(MICRO, fault_rates=(0.30,),
                                          thresholds=(0.55, 1.0), retraining_epochs=1)
        assert len(records) == 2
        assert {r["threshold"] for r in records} == {0.55, 1.0}
        assert all(0.0 <= r["accuracy"] <= 1.0 for r in records)

    def test_unknown_mitigation_rejected(self, micro_baseline):
        from repro.experiments import run_fig7_mitigation_comparison

        with pytest.raises(KeyError):
            run_fig7_mitigation_comparison(MICRO, methods=("pruning",))


class TestReportingEdgeCases:
    """Edge-case coverage for the reporting helpers (empty / mixed records)."""

    MIXED = [
        {"name": "alpha", "count": 3, "accuracy": 0.5, "flag": True, "missing": None},
        {"name": "beta", "count": "n/a", "accuracy": 0.25},
    ]

    def test_format_table_mixed_types(self):
        from repro.experiments.reporting import format_table

        table = format_table(self.MIXED)
        assert "alpha" in table and "n/a" in table and "True" in table
        assert "0.500" in table and "0.250" in table

    def test_format_table_missing_keys_render_empty(self):
        from repro.experiments.reporting import format_table

        table = format_table(self.MIXED, columns=["name", "missing"])
        lines = table.splitlines()
        assert lines[0].startswith("name")
        assert any("beta" in line for line in lines)

    def test_format_table_empty_without_title(self):
        from repro.experiments.reporting import format_table

        assert format_table([]) == "(no records)"

    def test_format_series_empty_records(self):
        from repro.experiments.reporting import format_series

        assert format_series([], x="a", y="b") == ""
        assert format_series([], x="a", y="b", title="t") == "t"

    def test_format_series_empty_grouped(self):
        from repro.experiments.reporting import format_series

        assert format_series([], x="a", y="b", group_by="g", title="t") == "t"

    def test_format_series_mixed_types(self):
        from repro.experiments.reporting import format_series

        series = format_series(self.MIXED, x="count", y="accuracy")
        assert "3->0.500" in series and "n/a->0.250" in series

    def test_format_value(self):
        from repro.experiments.reporting import format_value

        assert format_value(0.123456) == "0.123"
        assert format_value(7) == "7"
        assert format_value("x") == "x"
        assert format_value(None) == "None"

    def test_summarize_empty_and_missing(self):
        from repro.experiments.reporting import summarize

        assert summarize([], ["a"]) == []
        rows = summarize(self.MIXED, ["name", "absent"])
        assert rows[0] == {"name": "alpha", "absent": None}
        assert rows[1] == {"name": "beta", "absent": None}


class TestRegistryEdgeCases:
    """Lookup errors and integrity of the experiment registry."""

    def test_unknown_experiment_error_names_options(self):
        with pytest.raises(KeyError) as excinfo:
            get_experiment("fig99")
        message = str(excinfo.value)
        assert "fig99" in message and "fig7" in message

    def test_lookup_is_identity_stable(self):
        assert get_experiment("fig5b") is get_experiment("fig5b")

    def test_list_experiments_sorted_and_complete(self):
        specs = list_experiments()
        ids = [spec.experiment_id for spec in specs]
        assert ids == sorted(ids)
        assert len(specs) == len(EXPERIMENTS)

    def test_benchmark_files_exist(self):
        from pathlib import Path

        root = Path(__file__).resolve().parent.parent
        for spec in list_experiments():
            assert (root / spec.benchmark).is_file(), spec.benchmark

    def test_specs_are_frozen(self):
        spec = get_experiment("fig7")
        with pytest.raises(Exception):
            spec.experiment_id = "other"
