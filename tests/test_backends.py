"""Pluggable kernel-backend registry: selection semantics and bit identity.

Covers the resolution order (argument > ``REPRO_BACKEND`` > numpy), the
failure modes (unknown name lists the available backends; a known backend
whose import or toolchain is missing raises when requested explicitly but
degrades to numpy with a logged notice when selected via the environment),
and the differential contract: every float64 record the cffi backend
produces -- Fig. 5b stuck-at sweeps and transient/SEU schedules alike --
must equal the numpy oracle ``tobytes()``-for-``tobytes()``.  The campaign
cache-key schema is pinned backend-free, and the documented ``REPRO_*``
environment-variable table is grepped against the source tree.
"""

import logging
import re
from pathlib import Path

import numpy as np
import pytest

from repro.cli import build_parser
from repro.datasets import DataLoader
from repro.faults import (
    CampaignPoint,
    CampaignRunner,
    build_faulty_array,
    evaluate_with_faults,
    evaluate_with_faults_batched,
    evaluate_with_transient_faults,
    random_fault_map,
    schedule_from_process,
)
from repro.snn.inference import (
    Backend,
    BackendUnavailableError,
    FusedFaultEngine,
    FusedInferenceEngine,
    available_backends,
    get_backend,
    register_backend,
    resolve_backend_name,
)
from repro.snn.inference import backends as registry
from repro.systolic import DEFAULT_ACCUMULATOR_FORMAT
from repro.utils.rng import derive_seed

FMT = DEFAULT_ACCUMULATOR_FORMAT
CFFI_AVAILABLE = "cffi" in available_backends()
requires_cffi = pytest.mark.skipif(
    not CFFI_AVAILABLE, reason="cffi backend not available on this machine")


@pytest.fixture()
def test_loader(tiny_mnist_data):
    _, test = tiny_mnist_data
    return DataLoader(test, batch_size=50)


@pytest.fixture(autouse=True)
def _clean_backend_env(monkeypatch):
    monkeypatch.delenv("REPRO_BACKEND", raising=False)


class _StubBackend(Backend):
    """Minimal backend double with controllable availability."""

    def __init__(self, name, ok=True, reason=None):
        self.name = name
        self._ok = ok
        self._reason = reason

    def available(self):
        return self._ok

    def unavailable_reason(self):
        return self._reason


def _fig5b_arrays(counts, seed=0):
    """Fig. 5b-style stuck-at population: mixed counts, types and seeds."""

    return [
        build_faulty_array(
            random_fault_map(8, 8, count, bit_position=None,
                             stuck_type=index % 2, seed=seed + index))
        for index, count in enumerate(counts)
    ]


def _transient_schedules(process="bernoulli", trials=2):
    return [
        schedule_from_process(process, 16, 16, 6, 3, fmt=FMT,
                              seed=derive_seed(9, "backend", process, t))
        for t in range(trials)
    ]


def _accuracy_bytes(accuracies) -> bytes:
    return np.asarray(accuracies, dtype=np.float64).tobytes()


# ----------------------------------------------------------------------
# Selection: argument > REPRO_BACKEND > default
# ----------------------------------------------------------------------
class TestSelection:
    def test_default_is_numpy(self):
        assert get_backend().name == "numpy"
        assert resolve_backend_name() == "numpy"
        assert "numpy" in available_backends()

    def test_env_selects_backend(self, monkeypatch):
        monkeypatch.setitem(registry._REGISTRY, "stub", _StubBackend("stub"))
        monkeypatch.setenv("REPRO_BACKEND", "stub")
        assert get_backend().name == "stub"
        assert resolve_backend_name() == "stub"

    def test_argument_beats_env(self, monkeypatch):
        monkeypatch.setitem(registry._REGISTRY, "stub", _StubBackend("stub"))
        monkeypatch.setenv("REPRO_BACKEND", "stub")
        assert get_backend("numpy").name == "numpy"

    def test_names_are_normalised(self):
        assert get_backend("  NumPy ").name == "numpy"
        assert resolve_backend_name("NUMPY") == "numpy"

    def test_backend_instances_pass_through_engines(self, trained_tiny_model,
                                                    test_loader):
        backend = get_backend("numpy")
        engine = FusedInferenceEngine(trained_tiny_model, backend=backend)
        assert engine.backend is backend

    def test_register_rejects_empty_name(self):
        with pytest.raises(ValueError, match="non-empty"):
            register_backend(_StubBackend("  "))


# ----------------------------------------------------------------------
# Failure modes: unknown names, unavailable backends, import errors
# ----------------------------------------------------------------------
class TestFailureModes:
    def test_unknown_name_lists_available(self):
        with pytest.raises(ValueError, match="unknown backend 'nope'") as err:
            get_backend("nope")
        assert "numpy" in str(err.value)

    def test_explicit_unavailable_raises(self, monkeypatch):
        broken = _StubBackend("broken", ok=False, reason="no toolchain")
        monkeypatch.setitem(registry._REGISTRY, "broken", broken)
        with pytest.raises(BackendUnavailableError, match="no toolchain"):
            get_backend("broken")

    def test_env_unavailable_degrades_with_notice(self, monkeypatch, caplog):
        broken = _StubBackend("broken", ok=False, reason="no toolchain")
        monkeypatch.setitem(registry._REGISTRY, "broken", broken)
        monkeypatch.setenv("REPRO_BACKEND", "broken")
        with caplog.at_level(logging.WARNING, logger="repro"):
            assert get_backend().name == "numpy"
        assert "falling back" in caplog.text
        assert "broken" in caplog.text

    def test_import_error_counts_as_unavailable(self, monkeypatch, caplog):
        """An ops_* module that failed to import degrades, not crashes."""

        monkeypatch.setitem(registry._IMPORT_ERRORS, "ghost",
                            "No module named 'ghostlib'")
        with pytest.raises(BackendUnavailableError, match="ghostlib"):
            get_backend("ghost")
        monkeypatch.setenv("REPRO_BACKEND", "ghost")
        with caplog.at_level(logging.WARNING, logger="repro"):
            assert get_backend().name == "numpy"
        assert "ghostlib" in caplog.text

    def test_unavailable_backends_not_listed(self, monkeypatch):
        broken = _StubBackend("broken", ok=False)
        monkeypatch.setitem(registry._REGISTRY, "broken", broken)
        assert "broken" not in available_backends()

    def test_backend_requires_fused_engine(self, trained_tiny_model,
                                           test_loader):
        maps = [random_fault_map(8, 8, 2, seed=1)]
        with pytest.raises(ValueError, match="fused"):
            evaluate_with_faults_batched(trained_tiny_model, test_loader,
                                         fault_maps=maps, engine="batched",
                                         backend="numpy")
        with pytest.raises(ValueError, match="fused"):
            evaluate_with_faults(trained_tiny_model, test_loader,
                                 fault_map=maps[0], engine="sequential",
                                 backend="numpy")
        with pytest.raises(ValueError, match="fused"):
            CampaignRunner(trained_tiny_model, test_loader, engine="batched",
                           backend="numpy")


# ----------------------------------------------------------------------
# Differential identity: cffi records == numpy records, byte for byte
# ----------------------------------------------------------------------
@requires_cffi
class TestCffiByteIdentity:
    def test_fault_free_rates_identical(self, trained_tiny_model, test_loader):
        frame, _ = next(iter(test_loader))
        oracle = FusedInferenceEngine(trained_tiny_model,
                                      backend="numpy").run(frame)
        rates = FusedInferenceEngine(trained_tiny_model,
                                     backend="cffi").run(frame)
        assert rates.dtype == np.float64
        assert rates.tobytes() == oracle.tobytes()

    def test_fig5b_sweep_rates_identical(self, trained_tiny_model,
                                         test_loader):
        """Per-map firing rates under a mixed stuck-at population."""

        frame, _ = next(iter(test_loader))
        with FusedFaultEngine(trained_tiny_model, _fig5b_arrays((0, 1, 2, 4, 8)),
                              backend="numpy") as engine:
            oracle = engine.run(frame)
        with FusedFaultEngine(trained_tiny_model, _fig5b_arrays((0, 1, 2, 4, 8)),
                              backend="cffi") as engine:
            rates = engine.run(frame)
        assert rates.tobytes() == oracle.tobytes()

    def test_fig5b_accuracies_identical(self, trained_tiny_model, test_loader):
        maps = [random_fault_map(8, 8, count, seed=31 + count)
                for count in (0, 2, 5)]
        oracle = evaluate_with_faults_batched(trained_tiny_model, test_loader,
                                              fault_maps=maps, backend="numpy")
        accuracies = evaluate_with_faults_batched(trained_tiny_model,
                                                  test_loader, fault_maps=maps,
                                                  backend="cffi")
        assert _accuracy_bytes(accuracies) == _accuracy_bytes(oracle)

    @pytest.mark.parametrize("process", ["bernoulli", "burst"])
    def test_transient_schedules_identical(self, trained_tiny_model,
                                           test_loader, process):
        schedules = _transient_schedules(process)
        oracle = evaluate_with_transient_faults(
            trained_tiny_model, test_loader, schedules, engine="fused",
            backend="numpy")
        accuracies = evaluate_with_transient_faults(
            trained_tiny_model, test_loader, schedules, engine="fused",
            backend="cffi")
        assert _accuracy_bytes(accuracies) == _accuracy_bytes(oracle)

    def test_campaign_records_identical(self, trained_tiny_model, test_loader):
        points = [CampaignPoint.for_trials(8, 8, count, trials=2,
                                           seed=61 + count)
                  for count in (1, 3)]
        oracle = CampaignRunner(trained_tiny_model, test_loader,
                                backend="numpy").run(points)
        records = CampaignRunner(trained_tiny_model, test_loader,
                                 backend="cffi").run(points)
        assert records == oracle

    def test_float32_requests_delegate_to_numpy_kernels(self,
                                                        trained_tiny_model,
                                                        test_loader):
        """Non-float64 dtypes run the numpy kernels under the cffi backend."""

        frame, _ = next(iter(test_loader))
        numpy32 = FusedInferenceEngine(trained_tiny_model, dtype="float32",
                                       backend="numpy").run(frame)
        cffi32 = FusedInferenceEngine(trained_tiny_model, dtype="float32",
                                      backend="cffi").run(frame)
        assert cffi32.dtype == np.float32
        assert cffi32.tobytes() == numpy32.tobytes()

    def test_im2col_unit_identity(self, rng):
        from repro.autograd.functional import im2col
        from repro.snn.inference.backends.ops_cffi import _cffi_im2col

        for (shape, kernel, stride, padding) in (
                ((2, 3, 9, 9), (3, 3), 1, 1),
                ((1, 1, 7, 5), (2, 4), 2, 0),
                ((3, 2, 8, 8), (5, 5), 3, 2)):
            x = rng.standard_normal(shape)
            oracle = im2col(x, kernel, stride, padding)
            cols = _cffi_im2col(x, kernel, stride, padding)
            assert cols.shape == oracle.shape
            assert cols.tobytes() == oracle.tobytes()

    @pytest.mark.parametrize("spec_kwargs", [
        dict(inv_tau=None, v_threshold=1.0, v_reset=None),   # IF, soft reset
        dict(inv_tau=0.5, v_threshold=0.8, v_reset=0.0),     # LIF, hard reset
    ], ids=["if-soft", "lif-hard"])
    def test_neuron_unit_identity(self, spec_kwargs):
        from repro.snn.inference.backends import ops_cffi, ops_numpy
        from repro.snn.inference.plan import NeuronSpec

        spec = NeuronSpec(**spec_kwargs)
        oracle = ops_numpy.NeuronKernel(spec, np.float64)
        kernel = ops_cffi.CffiNeuronKernel(spec, np.float64)
        rng = np.random.default_rng(5)
        for _ in range(3):   # state (v) evolves across steps
            x = rng.standard_normal((4, 32))
            ref = oracle.run(x)
            out = kernel.run(x)
            assert out.tobytes() == ref.tobytes()
            assert kernel.v.tobytes() == oracle.v.tobytes()


# ----------------------------------------------------------------------
# Campaign plumbing: resolve-once semantics and backend-free cache keys
# ----------------------------------------------------------------------
class TestCampaignPlumbing:
    def test_runner_resolves_backend_in_parent(self, trained_tiny_model,
                                               test_loader, monkeypatch):
        assert CampaignRunner(trained_tiny_model,
                              test_loader).backend == "numpy"
        monkeypatch.setitem(registry._REGISTRY, "stub", _StubBackend("stub"))
        monkeypatch.setenv("REPRO_BACKEND", "stub")
        runner = CampaignRunner(trained_tiny_model, test_loader)
        assert runner.backend == "stub"   # env read once, in the parent

    def test_non_fused_engines_skip_resolution(self, trained_tiny_model,
                                               test_loader, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "definitely-not-registered")
        runner = CampaignRunner(trained_tiny_model, test_loader,
                                engine="batched")
        assert runner.backend is None

    def test_cache_payload_is_backend_free(self, trained_tiny_model,
                                           test_loader, monkeypatch):
        """float64 cache keys must stay byte-unchanged across backends."""

        point = CampaignPoint.for_trials(8, 8, 2, trials=2, seed=3)
        default = CampaignRunner(trained_tiny_model,
                                 test_loader)._cache_payload(point)
        assert "backend" not in default
        monkeypatch.setitem(registry._REGISTRY, "stub", _StubBackend("stub"))
        stub = CampaignRunner(trained_tiny_model, test_loader,
                              backend="stub")._cache_payload(point)
        assert stub == default


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
class TestCli:
    def test_backend_flag_parses(self):
        args = build_parser().parse_args(
            ["campaign", "counts", "--engine", "fused", "--backend", "cffi"])
        assert args.backend == "cffi"

    def test_backend_defaults_to_none(self):
        args = build_parser().parse_args(["campaign", "counts"])
        assert args.backend is None   # engines then apply env > "numpy"


# ----------------------------------------------------------------------
# Documentation drift
# ----------------------------------------------------------------------
ENV_VAR = re.compile(r"REPRO_[A-Z0-9_]+")


def test_env_var_table_in_sync():
    """docs/ARCHITECTURE.md documents exactly the REPRO_* vars the code reads."""

    root = Path(__file__).resolve().parents[1]
    used = set()
    for base in ("src", "benchmarks"):
        for path in sorted((root / base).rglob("*.py")):
            used.update(ENV_VAR.findall(path.read_text(encoding="utf-8")))
    doc = (root / "docs" / "ARCHITECTURE.md").read_text(encoding="utf-8")
    documented = {
        ENV_VAR.search(line).group(0)
        for line in doc.splitlines()
        if line.startswith("| `REPRO_")
    }
    missing = used - documented
    stale = documented - used
    assert not missing, f"undocumented REPRO_* vars: {sorted(missing)}"
    assert not stale, f"documented but unused REPRO_* vars: {sorted(stale)}"
