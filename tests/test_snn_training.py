"""Tests for losses, optimizers, encoders and the Trainer loop."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.datasets import DataLoader
from repro.snn import (
    Adam,
    ConstantCurrentEncoder,
    LatencyEncoder,
    PoissonEncoder,
    SGD,
    Trainer,
    TrainingHistory,
    accuracy,
    cross_entropy_loss,
    get_loss,
    rate_from_spikes,
    rate_mse_loss,
)
from repro.snn.layers import Linear
from repro.snn.module import Parameter, Module


class TestLosses:
    def test_rate_mse_zero_when_perfect(self):
        rates = Tensor(np.eye(3))
        labels = np.array([0, 1, 2])
        assert rate_mse_loss(rates, labels, 3).item() == pytest.approx(0.0)

    def test_rate_mse_positive_when_wrong(self):
        rates = Tensor(np.zeros((2, 4)))
        loss = rate_mse_loss(rates, np.array([1, 2]), 4)
        assert loss.item() > 0

    def test_cross_entropy_prefers_correct_class(self):
        good = Tensor(np.array([[5.0, 0.0], [0.0, 5.0]]))
        bad = Tensor(np.array([[0.0, 5.0], [5.0, 0.0]]))
        labels = np.array([0, 1])
        assert cross_entropy_loss(good, labels, 2).item() < cross_entropy_loss(bad, labels, 2).item()

    def test_accuracy_metric(self):
        rates = np.array([[0.9, 0.1], [0.2, 0.8], [0.7, 0.3]])
        assert accuracy(rates, np.array([0, 1, 1])) == pytest.approx(2 / 3)

    def test_accuracy_batch_mismatch(self):
        with pytest.raises(ValueError):
            accuracy(np.zeros((2, 3)), np.zeros(3, dtype=int))

    def test_accuracy_empty(self):
        assert accuracy(np.zeros((0, 3)), np.zeros(0, dtype=int)) == 0.0

    def test_loss_registry(self):
        assert get_loss("rate_mse") is rate_mse_loss
        assert get_loss("cross_entropy") is cross_entropy_loss
        with pytest.raises(KeyError):
            get_loss("hinge")


class QuadraticProblem(Module):
    """Minimise ||w - target||^2 -- used to test optimizers converge."""

    def __init__(self):
        super().__init__()
        self.w = Parameter(np.array([5.0, -3.0]))

    def forward(self):
        target = Tensor(np.array([1.0, 2.0]))
        diff = self.w - target
        return (diff * diff).sum()


class TestOptimizers:
    @pytest.mark.parametrize("optimizer_factory", [
        lambda params: SGD(params, lr=0.1),
        lambda params: SGD(params, lr=0.05, momentum=0.9),
        lambda params: Adam(params, lr=0.2),
    ])
    def test_converges_on_quadratic(self, optimizer_factory):
        problem = QuadraticProblem()
        optimizer = optimizer_factory(problem.parameters())
        for _ in range(200):
            optimizer.zero_grad()
            loss = problem()
            loss.backward()
            optimizer.step()
        assert np.allclose(problem.w.data, [1.0, 2.0], atol=1e-2)

    def test_weight_decay_shrinks_weights(self):
        layer = Linear(4, 4, rng=np.random.default_rng(0), bias=False)
        optimizer = SGD(layer.parameters(), lr=0.1, weight_decay=0.5)
        norm_before = np.linalg.norm(layer.weight.data)
        for _ in range(10):
            optimizer.zero_grad()
            # Zero loss: only weight decay acts.
            (layer(Tensor(np.zeros((1, 4)))) * 0.0).sum().backward()
            optimizer.step()
        assert np.linalg.norm(layer.weight.data) < norm_before

    def test_skips_parameters_without_grad(self):
        problem = QuadraticProblem()
        optimizer = Adam(problem.parameters(), lr=0.1)
        optimizer.step()  # no backward yet; must not crash
        assert np.allclose(problem.w.data, [5.0, -3.0])

    def test_empty_parameter_list_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_invalid_learning_rate(self):
        problem = QuadraticProblem()
        with pytest.raises(ValueError):
            Adam(problem.parameters(), lr=0.0)

    def test_invalid_momentum(self):
        problem = QuadraticProblem()
        with pytest.raises(ValueError):
            SGD(problem.parameters(), lr=0.1, momentum=1.5)


class TestEncoders:
    def test_constant_current_repeats(self):
        encoder = ConstantCurrentEncoder(time_steps=3)
        images = np.random.default_rng(0).random((4, 1, 8, 8))
        out = encoder(images)
        assert out.shape == (3, 4, 1, 8, 8)
        assert np.allclose(out[0], out[2])

    def test_poisson_rate_matches_intensity(self):
        encoder = PoissonEncoder(time_steps=400, rng=np.random.default_rng(0))
        images = np.full((1, 1, 4, 4), 0.3)
        spikes = encoder(images)
        assert set(np.unique(spikes)) <= {0.0, 1.0}
        assert spikes.mean() == pytest.approx(0.3, abs=0.05)

    def test_latency_brighter_spikes_earlier(self):
        encoder = LatencyEncoder(time_steps=8)
        images = np.array([[[[1.0, 0.2]]]])
        spikes = encoder(images)
        bright_time = np.argmax(spikes[:, 0, 0, 0, 0])
        dim_time = np.argmax(spikes[:, 0, 0, 0, 1])
        assert bright_time < dim_time
        assert spikes.sum(axis=0).max() == 1.0

    def test_latency_requires_multiple_steps(self):
        with pytest.raises(ValueError):
            LatencyEncoder(time_steps=1)

    def test_rate_from_spikes(self):
        spikes = np.zeros((4, 2, 3))
        spikes[0] = 1.0
        assert np.allclose(rate_from_spikes(spikes), 0.25)


class TestTrainer:
    def test_fit_improves_accuracy(self, tiny_mnist_loaders):
        from tests.conftest import build_tiny_mnist_model

        train_loader, test_loader = tiny_mnist_loaders
        model, _ = build_tiny_mnist_model(seed=9)
        trainer = Trainer(model, Adam(model.parameters(), lr=2.5e-2), num_classes=10)
        before = trainer.evaluate(test_loader)
        history = trainer.fit(train_loader, epochs=4, test_loader=test_loader)
        assert history.epochs == 4
        assert history.test_accuracy[-1] > before
        assert history.test_accuracy[-1] > 0.3

    def test_trained_model_reaches_high_accuracy(self, trained_tiny_model_state):
        assert trained_tiny_model_state["test_accuracy"] >= 0.85

    def test_callbacks_invoked_each_epoch(self, tiny_mnist_loaders):
        from tests.conftest import build_tiny_mnist_model

        train_loader, _ = tiny_mnist_loaders
        model, _ = build_tiny_mnist_model()
        calls = []
        trainer = Trainer(model, Adam(model.parameters(), lr=1e-2), num_classes=10)
        trainer.fit(train_loader, epochs=2,
                    callbacks=[lambda m, epoch, logs: calls.append(epoch)])
        assert calls == [0, 1]

    def test_zero_epochs(self, tiny_mnist_loaders, tiny_model):
        train_loader, _ = tiny_mnist_loaders
        trainer = Trainer(tiny_model, Adam(tiny_model.parameters(), lr=1e-2), num_classes=10)
        history = trainer.fit(train_loader, epochs=0)
        assert history.epochs == 0

    def test_negative_epochs_rejected(self, tiny_mnist_loaders, tiny_model):
        train_loader, _ = tiny_mnist_loaders
        trainer = Trainer(tiny_model, Adam(tiny_model.parameters(), lr=1e-2), num_classes=10)
        with pytest.raises(ValueError):
            trainer.fit(train_loader, epochs=-1)


class TestTrainingHistory:
    def test_epochs_to_reach(self):
        history = TrainingHistory(test_accuracy=[0.3, 0.6, 0.9, 0.95])
        assert history.epochs_to_reach(0.9) == 3
        assert history.epochs_to_reach(0.99) is None

    def test_best_accuracy(self):
        history = TrainingHistory(test_accuracy=[0.3, 0.8, 0.7])
        assert history.best_test_accuracy() == pytest.approx(0.8)
        assert TrainingHistory().best_test_accuracy() == 0.0

    def test_as_dict(self):
        history = TrainingHistory(train_loss=[0.5], train_accuracy=[0.6], test_accuracy=[0.7])
        payload = history.as_dict()
        assert payload["train_loss"] == [0.5]
        assert payload["test_accuracy"] == [0.7]
