"""Tests for the synthetic datasets and the data-loading infrastructure."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.datasets import (
    ArrayDataset,
    DataLoader,
    NUM_GESTURE_CLASSES,
    events_from_motion,
    generate_dvs_gesture,
    generate_mnist,
    generate_nmnist,
    gesture_events,
    load_dataset,
    render_digit,
)


class TestArrayDataset:
    def test_length_and_getitem(self):
        data = ArrayDataset(np.zeros((6, 1, 4, 4)), np.arange(6) % 3, num_classes=3)
        assert len(data) == 6
        x, y = data[2]
        assert x.shape == (1, 4, 4) and y == 2

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            ArrayDataset(np.zeros((5, 1, 4, 4)), np.zeros(4, dtype=int), num_classes=2)

    def test_label_out_of_range(self):
        with pytest.raises(ValueError):
            ArrayDataset(np.zeros((2, 1, 4, 4)), np.array([0, 5]), num_classes=3)

    def test_event_data_detection(self):
        static = ArrayDataset(np.zeros((3, 1, 4, 4)), np.zeros(3, dtype=int), 2)
        events = ArrayDataset(np.zeros((3, 5, 2, 4, 4)), np.zeros(3, dtype=int), 2)
        assert not static.is_event_data
        assert events.is_event_data

    def test_split_disjoint_and_complete(self):
        data = ArrayDataset(np.arange(40).reshape(10, 1, 2, 2).astype(float),
                            np.arange(10) % 2, num_classes=2)
        train, test = data.split(0.7, seed=0)
        assert len(train) == 7 and len(test) == 3
        combined = np.sort(np.concatenate([train.inputs.ravel(), test.inputs.ravel()]))
        assert np.allclose(combined, np.sort(data.inputs.ravel()))

    def test_split_invalid_fraction(self):
        data = ArrayDataset(np.zeros((4, 1, 2, 2)), np.zeros(4, dtype=int), 2)
        with pytest.raises(ValueError):
            data.split(1.0)

    def test_class_counts(self):
        data = ArrayDataset(np.zeros((6, 1, 2, 2)), np.array([0, 0, 1, 1, 1, 2]), 4)
        assert np.array_equal(data.class_counts(), [2, 3, 1, 0])

    def test_subset(self):
        data = ArrayDataset(np.arange(8).reshape(4, 1, 1, 2).astype(float),
                            np.arange(4) % 2, num_classes=2)
        sub = data.subset([0, 3])
        assert len(sub) == 2
        assert np.allclose(sub.inputs[1], data.inputs[3])


class TestDataLoader:
    def test_batches_cover_dataset(self):
        data = ArrayDataset(np.zeros((25, 1, 4, 4)), np.zeros(25, dtype=int), 2)
        loader = DataLoader(data, batch_size=10)
        sizes = [labels.shape[0] for _, labels in loader]
        assert sizes == [10, 10, 5]
        assert len(loader) == 3

    def test_drop_last(self):
        data = ArrayDataset(np.zeros((25, 1, 4, 4)), np.zeros(25, dtype=int), 2)
        loader = DataLoader(data, batch_size=10, drop_last=True)
        assert len(loader) == 2
        assert sum(labels.shape[0] for _, labels in loader) == 20

    def test_shuffle_changes_order_but_not_content(self):
        labels = np.arange(30) % 3
        data = ArrayDataset(np.arange(30 * 4).reshape(30, 1, 2, 2).astype(float), labels, 3)
        loader = DataLoader(data, batch_size=30, shuffle=True, seed=1)
        _, first = next(iter(loader))
        assert not np.array_equal(first, labels)
        assert np.array_equal(np.sort(first), np.sort(labels))

    def test_event_batches_time_major(self):
        data = ArrayDataset(np.zeros((8, 5, 2, 4, 4)), np.zeros(8, dtype=int), 2)
        loader = DataLoader(data, batch_size=4)
        inputs, labels = next(iter(loader))
        assert inputs.shape == (5, 4, 2, 4, 4)

    def test_invalid_batch_size(self):
        data = ArrayDataset(np.zeros((4, 1, 2, 2)), np.zeros(4, dtype=int), 2)
        with pytest.raises(ValueError):
            DataLoader(data, batch_size=0)


class TestSyntheticMNIST:
    def test_render_digit_shapes_and_distinct(self):
        glyphs = [render_digit(d) for d in range(10)]
        assert all(g.shape == (16, 16) for g in glyphs)
        # All ten digit templates are pairwise distinct.
        for i in range(10):
            for j in range(i + 1, 10):
                assert not np.allclose(glyphs[i], glyphs[j])

    def test_render_digit_invalid(self):
        with pytest.raises(ValueError):
            render_digit(10)
        with pytest.raises(ValueError):
            render_digit(3, image_size=8)

    def test_generate_shapes_and_range(self):
        data = generate_mnist(num_samples=50, seed=0)
        assert data.inputs.shape == (50, 1, 16, 16)
        assert data.num_classes == 10
        assert data.inputs.min() >= 0.0 and data.inputs.max() <= 1.0

    def test_generate_balanced(self):
        data = generate_mnist(num_samples=100, seed=0)
        assert np.all(data.class_counts() == 10)

    def test_generate_deterministic(self):
        a = generate_mnist(num_samples=30, seed=5)
        b = generate_mnist(num_samples=30, seed=5)
        assert np.allclose(a.inputs, b.inputs)
        assert np.array_equal(a.labels, b.labels)

    def test_generate_too_few(self):
        with pytest.raises(ValueError):
            generate_mnist(num_samples=5)


class TestSyntheticNMNIST:
    def test_events_from_motion_shape_and_binary(self):
        rng = np.random.default_rng(0)
        frames = events_from_motion(render_digit(3), time_steps=5, rng=rng)
        assert frames.shape == (5, 2, 16, 16)
        assert set(np.unique(frames)) <= {0.0, 1.0}

    def test_events_require_positive_steps(self):
        with pytest.raises(ValueError):
            events_from_motion(render_digit(1), time_steps=0, rng=np.random.default_rng(0))

    def test_generate_shapes(self):
        data = generate_nmnist(num_samples=40, time_steps=4, seed=0)
        assert data.inputs.shape == (40, 4, 2, 16, 16)
        assert data.is_event_data

    def test_motion_produces_both_polarities(self):
        data = generate_nmnist(num_samples=20, time_steps=4, seed=0)
        assert data.inputs[:, :, 0].sum() > 0
        assert data.inputs[:, :, 1].sum() > 0


class TestSyntheticDVSGesture:
    def test_eleven_classes(self):
        data = generate_dvs_gesture(num_samples=44, time_steps=4, seed=0)
        assert data.num_classes == NUM_GESTURE_CLASSES == 11
        assert np.array_equal(np.unique(data.labels), np.arange(11))

    def test_gesture_events_shape(self):
        frames = gesture_events(3, time_steps=6, size=16, rng=np.random.default_rng(0))
        assert frames.shape == (6, 2, 16, 16)

    def test_gesture_invalid_class(self):
        with pytest.raises(ValueError):
            gesture_events(11, time_steps=4, size=16, rng=np.random.default_rng(0))

    def test_gesture_requires_multiple_steps(self):
        with pytest.raises(ValueError):
            gesture_events(0, time_steps=1, size=16, rng=np.random.default_rng(0))

    def test_gestures_have_distinct_event_patterns(self):
        rng = np.random.default_rng(0)
        signatures = []
        for gesture in range(NUM_GESTURE_CLASSES):
            frames = gesture_events(gesture, time_steps=8, size=16, rng=rng,
                                    jitter=0.0, phase_offset=0.0)
            signatures.append(frames.ravel())
        # No two gestures produce identical spatio-temporal event patterns.
        for i in range(len(signatures)):
            for j in range(i + 1, len(signatures)):
                assert not np.allclose(signatures[i], signatures[j])


class TestRegistry:
    @pytest.mark.parametrize("name,channels", [("mnist", 1), ("nmnist", 2), ("dvs_gesture", 2)])
    def test_load_dataset_splits(self, name, channels):
        train, test = load_dataset(name, num_train=22, num_test=11, seed=0)
        assert len(train) == 22 and len(test) == 11
        channel_axis = 2 if train.is_event_data else 1
        assert train.inputs.shape[channel_axis] == channels

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            load_dataset("imagenet")

    def test_train_test_disjoint_by_seed(self):
        train, test = load_dataset("mnist", num_train=20, num_test=20, seed=3)
        # Generated from different derived seeds -> not identical tensors.
        assert not np.allclose(train.inputs[:20], test.inputs[:20])

    @given(st.integers(min_value=10, max_value=60))
    @settings(max_examples=10, deadline=None)
    def test_mnist_any_size_balanced_within_one(self, n):
        data = generate_mnist(num_samples=n, seed=1)
        counts = data.class_counts()
        assert counts.max() - counts.min() <= 1
