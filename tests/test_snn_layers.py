"""Tests for the non-spiking layers (conv, fc, batch-norm, pooling, dropout)."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.snn import AvgPool2d, BatchNorm2d, Conv2d, Dropout, Flatten, Linear, MaxPool2d


class TestLinearLayer:
    def test_output_shape(self):
        layer = Linear(8, 3, rng=np.random.default_rng(0))
        assert layer(Tensor(np.zeros((5, 8)))).shape == (5, 3)

    def test_no_bias(self):
        layer = Linear(4, 2, bias=False, rng=np.random.default_rng(0))
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            Linear(0, 3)

    def test_init_gain_scales_weights(self):
        small = Linear(100, 50, rng=np.random.default_rng(0), init_gain=1.0)
        large = Linear(100, 50, rng=np.random.default_rng(0), init_gain=3.0)
        assert large.weight.data.std() == pytest.approx(3.0 * small.weight.data.std(), rel=1e-6)

    def test_invalid_gain(self):
        with pytest.raises(ValueError):
            Linear(4, 2, init_gain=0.0)

    def test_gradients_reach_parameters(self):
        layer = Linear(4, 2, rng=np.random.default_rng(0))
        layer(Tensor(np.ones((3, 4)))).sum().backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None


class TestConvLayer:
    def test_output_shape_with_padding(self):
        layer = Conv2d(3, 8, kernel_size=3, padding=1, rng=np.random.default_rng(0))
        assert layer(Tensor(np.zeros((2, 3, 16, 16)))).shape == (2, 8, 16, 16)

    def test_output_shape_stride(self):
        layer = Conv2d(1, 4, kernel_size=2, stride=2, rng=np.random.default_rng(0))
        assert layer(Tensor(np.zeros((1, 1, 8, 8)))).shape == (1, 4, 4, 4)

    def test_invalid_kernel(self):
        with pytest.raises(ValueError):
            Conv2d(1, 1, kernel_size=0)

    def test_deterministic_with_seed(self):
        a = Conv2d(2, 3, 3, rng=np.random.default_rng(42))
        b = Conv2d(2, 3, 3, rng=np.random.default_rng(42))
        assert np.allclose(a.weight.data, b.weight.data)


class TestBatchNormLayer:
    def test_normalises_in_training(self):
        layer = BatchNorm2d(4)
        x = Tensor(np.random.default_rng(0).normal(5.0, 3.0, size=(16, 4, 6, 6)))
        out = layer(x)
        assert abs(out.data.mean()) < 1e-6

    def test_eval_mode_uses_running_stats(self):
        layer = BatchNorm2d(2)
        x = Tensor(np.random.default_rng(0).normal(2.0, 1.0, size=(32, 2, 4, 4)))
        for _ in range(20):
            layer(x)
        layer.eval()
        out = layer(x)
        assert abs(out.data.mean()) < 0.3

    def test_parameters_and_buffers(self):
        layer = BatchNorm2d(5)
        assert len(layer.parameters()) == 2
        assert layer.running_mean.shape == (5,)


class TestPoolingDropoutFlatten:
    def test_avg_pool_shape(self):
        assert AvgPool2d(2)(Tensor(np.zeros((1, 3, 8, 8)))).shape == (1, 3, 4, 4)

    def test_max_pool_shape(self):
        assert MaxPool2d(2)(Tensor(np.zeros((1, 3, 8, 8)))).shape == (1, 3, 4, 4)

    def test_dropout_train_vs_eval(self):
        layer = Dropout(0.5, rng=np.random.default_rng(0))
        x = Tensor(np.ones((50, 50)))
        train_out = layer(x)
        assert (train_out.data == 0).any()
        layer.eval()
        eval_out = layer(x)
        assert np.allclose(eval_out.data, 1.0)

    def test_dropout_zero_probability_identity(self):
        layer = Dropout(0.0)
        x = Tensor(np.ones((4, 4)))
        assert layer(x) is x

    def test_dropout_invalid_probability(self):
        with pytest.raises(ValueError):
            Dropout(1.0)

    def test_flatten(self):
        assert Flatten()(Tensor(np.zeros((3, 2, 4, 4)))).shape == (3, 32)
