"""Doc-consistency checks for README.md, docs/ARCHITECTURE.md and the CLI.

Every ``python -m repro ...`` snippet in the docs must parse against the
real argument parser, every relative markdown link must resolve, and every
module/benchmark file the architecture map names must exist.  These tests
keep the docs from silently rotting as flags and files move.
"""

import re
from pathlib import Path

import pytest

import repro.cli as cli_module
from repro.cli import build_parser

REPO_ROOT = Path(__file__).resolve().parent.parent
DOC_FILES = (REPO_ROOT / "README.md", REPO_ROOT / "docs" / "ARCHITECTURE.md")

#: Tokens marking a snippet as illustrative (placeholders), not runnable.
PLACEHOLDER_MARKERS = ("[", "]", "{", "}", "<", ">", "...", "|")


def doc_commands():
    """All concrete ``python -m repro`` command lines found in the docs."""

    commands = []
    sources = [(path.name, path.read_text(encoding="utf-8")) for path in DOC_FILES]
    sources.append(("cli.py docstring", cli_module.__doc__ or ""))
    for name, text in sources:
        for line in text.splitlines():
            line = line.strip().lstrip("$ ")
            match = re.match(r"^python -m repro\b(.*)$", line)
            if match is None:
                continue
            rest = match.group(1).split("#", 1)[0].strip()
            if any(marker in rest for marker in PLACEHOLDER_MARKERS):
                continue
            commands.append((name, rest.split()))
    return commands


class TestDocCommandsParse:
    def test_docs_contain_commands(self):
        assert len(doc_commands()) >= 8  # the docs demo the CLI extensively

    @pytest.mark.parametrize("source,argv", doc_commands(),
                             ids=[" ".join(argv) for _, argv in doc_commands()])
    def test_command_parses(self, source, argv):
        parser = build_parser()
        try:
            args = parser.parse_args(argv)
        except SystemExit:
            pytest.fail(f"documented command does not parse ({source}): "
                        f"python -m repro {' '.join(argv)}")
        if argv and argv[0] not in ("list", "info"):
            assert getattr(args, "handler", None) is not None

    def test_documented_orchestrator_flags_exist(self):
        """The flags the README documents are the flags the parser accepts."""

        args = build_parser().parse_args(
            ["campaign", "counts", "--workers", "2", "--shard", "0/2",
             "--trial-chunk", "1", "--unit-timeout", "30", "--resume",
             "--cache-dir", "x"])
        assert args.workers == 2
        assert (args.shard.index, args.shard.total) == (0, 2)
        assert args.trial_chunk == 1
        assert args.unit_timeout == 30.0
        assert args.resume is True


class TestDocLinksResolve:
    @pytest.mark.parametrize("path", DOC_FILES, ids=[p.name for p in DOC_FILES])
    def test_relative_links_exist(self, path):
        text = path.read_text(encoding="utf-8")
        missing = []
        for target in re.findall(r"\]\(([^)#]+)\)", text):
            if "://" in target:
                continue
            if not (path.parent / target).exists() and not (REPO_ROOT / target).exists():
                missing.append(target)
        assert not missing, f"{path.name} links to missing files: {missing}"

    def test_architecture_map_names_existing_files(self):
        """Every repo path named in the figure map / layer tables exists."""

        text = (REPO_ROOT / "docs" / "ARCHITECTURE.md").read_text(encoding="utf-8")
        paths = set(re.findall(r"`((?:benchmarks|docs|tests)/[\w/]+\.(?:py|md))`", text))
        paths |= {f"src/repro/{match}" for match in
                  re.findall(r"`((?:experiments|faults|systolic|snn)/[\w/]+\.py)`", text)}
        assert len(paths) >= 15
        missing = [p for p in sorted(paths) if not (REPO_ROOT / p).exists()]
        assert not missing, f"ARCHITECTURE.md names missing files: {missing}"

    def test_architecture_experiment_ids_are_registered(self):
        from repro.experiments import EXPERIMENTS

        text = (REPO_ROOT / "docs" / "ARCHITECTURE.md").read_text(encoding="utf-8")
        ids = set(re.findall(r"`(fig\w+|headline)`", text))
        assert {"fig2", "fig5a", "fig5b", "fig5c", "fig6", "fig7", "fig8",
                "headline"} <= ids
        unknown = [i for i in sorted(ids) if i not in EXPERIMENTS]
        assert not unknown, f"ARCHITECTURE.md names unregistered experiments: {unknown}"

    def test_readme_recorded_bench_table_matches_results_file(self):
        """The README's folded-in bench table stays in sync with results/."""

        results = REPO_ROOT / "benchmarks" / "results" / "campaign_engine.txt"
        readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        for line in results.read_text(encoding="utf-8").splitlines():
            if line.startswith(("sequential", "batched", "fused")):
                assert line.rstrip() in readme, \
                    f"README bench table is stale; missing row: {line!r}"
