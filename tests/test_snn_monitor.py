"""Tests for spike-activity monitoring (and the membrane-drive story behind FalVolt)."""

import numpy as np
import pytest

from repro.core import FaultAwarePruning
from repro.datasets import DataLoader
from repro.faults import fault_map_from_rate
from repro.snn import SpikeMonitor, activity_drop, measure_firing_rates
from repro.systolic import DEFAULT_ACCUMULATOR_FORMAT

from tests.conftest import build_tiny_mnist_model


@pytest.fixture()
def sample_batch(tiny_mnist_data):
    _, test = tiny_mnist_data
    return test.inputs[:16]


class TestSpikeMonitor:
    def test_records_all_spiking_layers(self, trained_tiny_model, sample_batch):
        with SpikeMonitor(trained_tiny_model) as monitor:
            trained_tiny_model.predict(sample_batch)
        activities = monitor.activities()
        # Encoder PLIF + Conv1 + Conv2 + FC1 + FC2.
        assert len(activities) == 5
        assert all(a.time_steps > 0 for a in activities)
        assert monitor.total_spike_count() > 0

    def test_labelled_only(self, trained_tiny_model, sample_batch):
        with SpikeMonitor(trained_tiny_model, labelled_only=True) as monitor:
            trained_tiny_model.predict(sample_batch)
        assert set(monitor.firing_rates()) == {"Conv1", "Conv2", "FC1", "FC2"}

    def test_rates_bounded(self, trained_tiny_model, sample_batch):
        rates = measure_firing_rates(trained_tiny_model, sample_batch)
        assert all(0.0 <= r <= 1.0 for r in rates.values())

    def test_monitor_restores_forwards(self, trained_tiny_model, sample_batch):
        nodes = trained_tiny_model.spiking_layers()
        with SpikeMonitor(trained_tiny_model):
            assert all("forward" in node.__dict__ for node in nodes)
        assert all("forward" not in node.__dict__ for node in nodes)

    def test_training_mode_restored(self, trained_tiny_model, sample_batch):
        trained_tiny_model.train()
        measure_firing_rates(trained_tiny_model, sample_batch)
        assert trained_tiny_model.training


class TestActivityDrop:
    def test_drop_computation(self):
        before = {"Conv1": 0.2, "FC1": 0.1, "FC2": 0.0}
        after = {"Conv1": 0.1, "FC1": 0.1, "FC2": 0.0, "extra": 0.5}
        drops = activity_drop(before, after)
        assert drops["Conv1"] == pytest.approx(0.5)
        assert drops["FC1"] == pytest.approx(0.0)
        assert drops["FC2"] == 0.0
        assert "extra" not in drops

    def test_missing_layers_skipped(self):
        assert activity_drop({"Conv1": 0.2}, {}) == {}

    def test_pruning_reduces_firing_rates(self, trained_tiny_model_state, tiny_mnist_data,
                                          sample_batch):
        """The mechanism FalVolt exploits: pruning the weights mapped to faulty
        PEs lowers the membrane drive, so firing rates drop across layers."""

        train, test = tiny_mnist_data
        train_loader = DataLoader(train, batch_size=12, shuffle=True, seed=1)
        test_loader = DataLoader(test, batch_size=50)

        healthy, _ = build_tiny_mnist_model()
        healthy.load_state_dict(trained_tiny_model_state["state"])
        before = measure_firing_rates(healthy, sample_batch)

        pruned, _ = build_tiny_mnist_model()
        pruned.load_state_dict(trained_tiny_model_state["state"])
        fault_map = fault_map_from_rate(
            16, 16, 0.60, bit_position=DEFAULT_ACCUMULATOR_FORMAT.magnitude_msb,
            stuck_type="sa1", seed=3)
        FaultAwarePruning().run(pruned, fault_map, train_loader, test_loader,
                                num_classes=10,
                                baseline_accuracy=trained_tiny_model_state["test_accuracy"])
        after = measure_firing_rates(pruned, sample_batch)

        drops = activity_drop(before, after)
        # The total activity of the hidden layers shrinks after 60% pruning.
        assert np.mean(list(drops.values())) > 0.1
