"""Equivalence tests: batched multi-fault-map simulation vs the sequential oracle.

The campaign engine relies on ``BatchedSystolicArray`` producing per-map
results that are **bit-identical** (``np.array_equal``, not ``allclose``) to
independent ``SystolicArray.matmul`` / ``conv2d`` calls.  These tests pin
that property for fault-free maps, sa0/sa1 faults, bypassed PEs, linear and
convolutional layers, shared (2D) and per-map (3D) activations, and a
randomized sweep of shapes and fault structures seeded via ``utils.rng``.
"""

import numpy as np
import pytest

from repro.faults import FaultMap, StuckAtFault, random_fault_map
from repro.systolic import (
    BatchedSystolicArray,
    DEFAULT_ACCUMULATOR_FORMAT,
    FixedPointFormat,
    SystolicArray,
    matmul_batched,
)
from repro.utils.rng import get_rng

FMT = DEFAULT_ACCUMULATOR_FORMAT


def random_arrays(rng, rows, cols, num_maps, max_faults=7, allow_bypass=True):
    """Arrays with random faults, polarities, bits and bypass states."""

    arrays = []
    for _ in range(num_maps):
        count = int(rng.integers(0, min(max_faults, rows * cols) + 1))
        fault_map = random_fault_map(
            rows, cols, count, bit_position=None,
            stuck_type=int(rng.integers(0, 2)), seed=int(rng.integers(0, 2**31)))
        array = SystolicArray(rows, cols)
        array.load_fault_map(fault_map)
        if allow_bypass:
            roll = rng.random()
            if roll < 0.3:
                array.bypass_faulty_pes()
            elif roll < 0.5 and count:
                array.set_bypass(fault_map.coordinates()[: max(1, count // 2)])
        arrays.append(array)
    return arrays


class TestMatmulBatchedEquivalence:
    def test_fault_free_maps_match_sequential(self):
        rng = get_rng(0)
        arrays = [SystolicArray(8, 8) for _ in range(4)]
        weight = rng.normal(size=(10, 20))
        inputs = rng.normal(size=(4, 5, 20))
        result = BatchedSystolicArray(arrays).matmul_batched(weight, inputs)
        for f, array in enumerate(arrays):
            assert np.array_equal(result[f], array.matmul(weight, inputs[f]))

    @pytest.mark.parametrize("stuck", ["sa0", "sa1"])
    def test_single_polarity_faults_bit_identical(self, stuck):
        rng = get_rng(1)
        arrays = []
        for seed in range(5):
            fault_map = random_fault_map(8, 8, 5, bit_position=FMT.magnitude_msb,
                                         stuck_type=stuck, seed=seed)
            array = SystolicArray(8, 8)
            array.load_fault_map(fault_map)
            arrays.append(array)
        weight = rng.normal(size=(12, 30))
        inputs = (rng.random((5, 6, 30)) > 0.5).astype(float)
        result = BatchedSystolicArray(arrays).matmul_batched(weight, inputs)
        for f, array in enumerate(arrays):
            assert np.array_equal(result[f], array.matmul(weight, inputs[f]))

    def test_bypassed_maps_bit_identical(self):
        rng = get_rng(2)
        arrays = []
        for seed in range(4):
            fault_map = random_fault_map(6, 6, 4, bit_position=FMT.magnitude_msb,
                                         stuck_type="sa1", seed=seed)
            array = SystolicArray(6, 6)
            array.load_fault_map(fault_map)
            if seed % 2 == 0:
                array.bypass_faulty_pes()
            arrays.append(array)
        weight = rng.normal(size=(9, 14))
        inputs = rng.normal(size=(4, 3, 14))
        bias = rng.normal(size=9)
        result = BatchedSystolicArray(arrays).matmul_batched(weight, inputs, bias=bias)
        for f, array in enumerate(arrays):
            assert np.array_equal(result[f], array.matmul(weight, inputs[f], bias=bias))

    def test_shared_2d_inputs_bit_identical(self):
        rng = get_rng(3)
        arrays = random_arrays(rng, 5, 7, 6)
        weight = rng.normal(size=(11, 23))
        inputs = rng.normal(size=(4, 23))
        result = BatchedSystolicArray(arrays).matmul_batched(weight, inputs)
        for f, array in enumerate(arrays):
            assert np.array_equal(result[f], array.matmul(weight, inputs))

    def test_randomized_shapes_and_fault_structures(self):
        rng = get_rng(42)
        for _ in range(25):
            rows = int(rng.integers(2, 10))
            cols = int(rng.integers(2, 10))
            out_f = int(rng.integers(1, 40))
            in_f = int(rng.integers(1, 40))
            batch = int(rng.integers(1, 7))
            num_maps = int(rng.integers(1, 7))
            weight = rng.normal(size=(out_f, in_f)) * 2
            inputs = rng.random((num_maps, batch, in_f)) * 3 - 1
            bias = rng.normal(size=out_f) if rng.random() < 0.5 else None
            arrays = random_arrays(rng, rows, cols, num_maps)
            batched = BatchedSystolicArray(arrays).matmul_batched(weight, inputs, bias=bias)
            for f, array in enumerate(arrays):
                assert np.array_equal(batched[f],
                                      array.matmul(weight, inputs[f], bias=bias))

    def test_multiple_faults_in_one_column(self):
        rng = get_rng(4)
        array = SystolicArray(6, 4)
        array.inject_fault(0, 1, StuckAtFault(3, "sa1"))
        array.inject_fault(2, 1, StuckAtFault(FMT.magnitude_msb, "sa0"))
        array.inject_fault(5, 1, StuckAtFault(7, "sa1"))
        clean = SystolicArray(6, 4)
        weight = rng.normal(size=(8, 13))
        inputs = rng.normal(size=(2, 3, 13))
        batched = BatchedSystolicArray([array, clean]).matmul_batched(weight, inputs)
        assert np.array_equal(batched[0], array.matmul(weight, inputs[0]))
        assert np.array_equal(batched[1], clean.matmul(weight, inputs[1]))

    def test_module_level_helper(self):
        rng = get_rng(5)
        arrays = random_arrays(rng, 4, 4, 3)
        weight = rng.normal(size=(6, 10))
        inputs = rng.normal(size=(3, 2, 10))
        assert np.array_equal(
            matmul_batched(arrays, weight, inputs),
            BatchedSystolicArray(arrays).matmul_batched(weight, inputs))

    def test_prepared_weight_reuse_is_identical(self):
        rng = get_rng(6)
        arrays = random_arrays(rng, 5, 5, 4)
        batched = BatchedSystolicArray(arrays)
        weight = rng.normal(size=(7, 12))
        prepared = batched.prepare_weight(weight)
        inputs = rng.normal(size=(4, 3, 12))
        assert np.array_equal(
            batched.matmul_batched(weight, inputs, prepared=prepared),
            batched.matmul_batched(weight, inputs))


class TestConv2dBatchedEquivalence:
    def test_conv_bit_identical_per_map(self):
        rng = get_rng(7)
        arrays = random_arrays(rng, 8, 8, 4)
        weight = rng.normal(size=(4, 2, 3, 3))
        x = rng.normal(size=(4, 3, 2, 8, 8))
        bias = rng.normal(size=4)
        batched = BatchedSystolicArray(arrays).conv2d_batched(
            weight, x, bias=bias, stride=1, padding=1)
        for f, array in enumerate(arrays):
            expected = array.conv2d(weight, x[f], bias=bias, stride=1, padding=1)
            assert np.array_equal(batched[f], expected)

    def test_conv_shared_inputs_bit_identical(self):
        rng = get_rng(8)
        arrays = random_arrays(rng, 6, 6, 5)
        weight = rng.normal(size=(3, 1, 3, 3))
        x = rng.normal(size=(2, 1, 6, 6))
        batched = BatchedSystolicArray(arrays).conv2d_batched(weight, x, padding=1)
        for f, array in enumerate(arrays):
            expected = array.conv2d(weight, x, padding=1)
            assert np.array_equal(batched[f], expected)

    def test_conv_weight_through_matmul(self):
        rng = get_rng(9)
        arrays = random_arrays(rng, 8, 8, 3)
        weight = rng.normal(size=(4, 2, 3, 3))   # 4D accepted by matmul too
        inputs = rng.normal(size=(3, 5, 18))
        batched = BatchedSystolicArray(arrays).matmul_batched(weight, inputs)
        for f, array in enumerate(arrays):
            assert np.array_equal(batched[f], array.matmul(weight, inputs[f]))


class TestBatchedArrayValidation:
    def test_empty_array_list_rejected(self):
        with pytest.raises(ValueError):
            BatchedSystolicArray([])

    def test_mismatched_dimensions_rejected(self):
        with pytest.raises(ValueError):
            BatchedSystolicArray([SystolicArray(4, 4), SystolicArray(4, 5)])

    def test_mismatched_formats_rejected(self):
        with pytest.raises(ValueError):
            BatchedSystolicArray([
                SystolicArray(4, 4),
                SystolicArray(4, 4, fmt=FixedPointFormat(12, 6)),
            ])

    def test_wrong_input_rank_rejected(self):
        batched = BatchedSystolicArray([SystolicArray(4, 4)])
        with pytest.raises(ValueError):
            batched.matmul_batched(np.zeros((3, 4)), np.zeros(4))

    def test_wrong_map_count_rejected(self):
        batched = BatchedSystolicArray([SystolicArray(4, 4)] * 2)
        with pytest.raises(ValueError):
            batched.matmul_batched(np.zeros((3, 4)), np.zeros((3, 2, 4)))

    def test_feature_mismatch_rejected(self):
        batched = BatchedSystolicArray([SystolicArray(4, 4)])
        with pytest.raises(ValueError):
            batched.matmul_batched(np.zeros((3, 5)), np.zeros((1, 2, 4)))

    def test_from_fault_maps_builds_bypass(self):
        fault_map = random_fault_map(4, 4, 3, bit_position=FMT.magnitude_msb, seed=0)
        batched = BatchedSystolicArray.from_fault_maps([fault_map], bypass=True)
        assert batched.arrays[0].bypassed_coordinates == set(fault_map.coordinates())

    def test_num_maps(self):
        assert BatchedSystolicArray([SystolicArray(2, 2)] * 3).num_maps == 3
