"""Tests for SpikingClassifier (temporal execution) and the model builders."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.snn import (
    ModelConfig,
    SpikingClassifier,
    build_model_for_dataset,
    build_plif_snn,
    dvs_gesture_config,
    mnist_config,
    nmnist_config,
)
from repro.snn.layers import Sequential, Linear
from repro.snn.neurons import PLIFNode


def make_toy_classifier(time_steps=3):
    layers = Sequential(
        Linear(6, 8, rng=np.random.default_rng(0)),
        PLIFNode(layer_label="FC1"),
        Linear(8, 4, rng=np.random.default_rng(1)),
        PLIFNode(layer_label="FC2"),
    )
    return SpikingClassifier(layers, time_steps=time_steps)


class TestSpikingClassifier:
    def test_static_input_shape(self, tiny_model):
        x = Tensor(np.random.default_rng(0).random((5, 1, 16, 16)))
        out = tiny_model(x)
        assert out.shape == (5, 10)
        assert np.all(out.data >= 0.0) and np.all(out.data <= 1.0)

    def test_event_input_shape(self):
        model, _ = build_model_for_dataset("nmnist", channels=4, hidden_units=16, time_steps=3)
        x = Tensor((np.random.default_rng(0).random((3, 4, 2, 16, 16)) > 0.8).astype(float))
        out = model(x)
        assert out.shape == (4, 10)

    def test_invalid_input_rank(self):
        model = make_toy_classifier()
        with pytest.raises(ValueError):
            model(Tensor(np.zeros(6)))

    def test_invalid_time_steps(self):
        with pytest.raises(ValueError):
            SpikingClassifier(Sequential(), time_steps=0)

    def test_state_reset_between_forwards(self):
        model = make_toy_classifier()
        model.layers(Tensor(np.random.default_rng(1).random((2, 6))))
        assert any(node.v is not None for node in model.spiking_layers())
        model.reset_state()
        assert all(node.v is None for node in model.spiking_layers())

    def test_repeated_forward_is_deterministic(self):
        model = make_toy_classifier()
        model.eval()
        x = Tensor(np.random.default_rng(0).random((2, 6)))
        first = model(x).data.copy()
        second = model(x).data.copy()
        assert np.allclose(first, second)

    def test_output_is_average_rate(self):
        model = make_toy_classifier(time_steps=4)
        frames = Tensor(np.random.default_rng(0).random((4, 2, 6)))
        rates = model(frames)
        assert np.all(rates.data <= 1.0)

    def test_threshold_summary_labels(self, tiny_model):
        summary = tiny_model.threshold_summary()
        assert set(summary) == {"Conv1", "Conv2", "FC1", "FC2"}
        assert all(v == pytest.approx(1.0) for v in summary.values())

    def test_predict_returns_classes(self, tiny_model):
        x = np.random.default_rng(0).random((6, 1, 16, 16))
        preds = tiny_model.predict(x)
        assert preds.shape == (6,)
        assert preds.dtype.kind == "i"
        assert tiny_model.training  # mode restored


class TestModelBuilders:
    def test_mnist_architecture_labels(self):
        model, config = build_model_for_dataset("mnist", channels=4, hidden_units=16)
        labels = [n.layer_label for n in model.labelled_spiking_layers()]
        assert labels == ["Conv1", "Conv2", "FC1", "FC2"]
        assert config.num_classes == 10

    def test_dvs_architecture_has_five_conv_blocks(self):
        model, config = build_model_for_dataset("dvs_gesture", channels=4, hidden_units=16)
        labels = [n.layer_label for n in model.labelled_spiking_layers()]
        assert labels == ["Conv1", "Conv2", "Conv3", "Conv4", "Conv5", "FC1", "FC2"]
        assert config.num_classes == 11

    def test_nmnist_input_channels(self):
        _, config = build_model_for_dataset("nmnist")
        assert config.input_channels == 2

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            build_model_for_dataset("cifar")

    def test_learnable_threshold_option(self):
        config = mnist_config(learnable_threshold=True, channels=4, hidden_units=16)
        model = build_plif_snn(config)
        assert all(node.learnable_threshold for node in model.spiking_layers())

    def test_config_presets(self):
        assert mnist_config().conv_blocks == 2
        assert nmnist_config().input_channels == 2
        assert dvs_gesture_config().conv_blocks == 5

    def test_forward_pass_all_datasets(self):
        for dataset, channels in (("mnist", 1), ("nmnist", 2), ("dvs_gesture", 2)):
            model, config = build_model_for_dataset(dataset, channels=4, hidden_units=16,
                                                    time_steps=2)
            x = Tensor(np.random.default_rng(0).random((2, channels, 16, 16)))
            out = model(x)
            assert out.shape == (2, config.num_classes)

    def test_seed_reproducible_weights(self):
        a, _ = build_model_for_dataset("mnist", seed=3)
        b, _ = build_model_for_dataset("mnist", seed=3)
        for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            assert np.allclose(pa.data, pb.data)
