"""Property-based tests (hypothesis) for the autodiff engine."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays, array_shapes

from repro.autograd import Tensor, check_gradients, softmax


finite_floats = st.floats(min_value=-10.0, max_value=10.0, allow_nan=False,
                          allow_infinity=False)


def small_arrays(max_dims=3, max_side=4):
    return arrays(dtype=np.float64,
                  shape=array_shapes(min_dims=1, max_dims=max_dims, max_side=max_side),
                  elements=finite_floats)


class TestAlgebraicProperties:
    @given(small_arrays(), small_arrays())
    @settings(max_examples=30, deadline=None)
    def test_addition_commutes(self, a, b):
        if a.shape != b.shape:
            return
        x, y = Tensor(a), Tensor(b)
        assert np.allclose((x + y).data, (y + x).data)

    @given(small_arrays())
    @settings(max_examples=30, deadline=None)
    def test_sum_matches_numpy(self, a):
        assert np.allclose(Tensor(a).sum().data, a.sum())

    @given(small_arrays())
    @settings(max_examples=30, deadline=None)
    def test_mean_matches_numpy(self, a):
        assert np.allclose(Tensor(a).mean().data, a.mean())

    @given(small_arrays())
    @settings(max_examples=30, deadline=None)
    def test_double_negation_identity(self, a):
        x = Tensor(a)
        assert np.allclose((-(-x)).data, a)

    @given(small_arrays())
    @settings(max_examples=30, deadline=None)
    def test_exp_log_roundtrip(self, a):
        x = Tensor(np.abs(a) + 0.1)
        assert np.allclose(x.log().exp().data, x.data, rtol=1e-9)


class TestGradientProperties:
    @given(small_arrays(max_dims=2))
    @settings(max_examples=20, deadline=None)
    def test_sum_gradient_is_ones(self, a):
        x = Tensor(a, requires_grad=True)
        x.sum().backward()
        assert np.allclose(x.grad, np.ones_like(a))

    @given(small_arrays(max_dims=2), finite_floats)
    @settings(max_examples=20, deadline=None)
    def test_linear_scaling_gradient(self, a, c):
        x = Tensor(a, requires_grad=True)
        (x * c).sum().backward()
        assert np.allclose(x.grad, np.full_like(a, c))

    @given(st.integers(min_value=1, max_value=4), st.integers(min_value=1, max_value=4),
           st.integers(min_value=1, max_value=4))
    @settings(max_examples=15, deadline=None)
    def test_matmul_gradcheck_random_shapes(self, n, k, m):
        rng = np.random.default_rng(n * 100 + k * 10 + m)
        a = Tensor(rng.normal(size=(n, k)), requires_grad=True)
        b = Tensor(rng.normal(size=(k, m)), requires_grad=True)
        assert check_gradients(lambda x, y: x @ y, [a, b])

    @given(st.integers(min_value=2, max_value=6), st.integers(min_value=2, max_value=6))
    @settings(max_examples=15, deadline=None)
    def test_broadcast_bias_grad_shape(self, batch, features):
        rng = np.random.default_rng(batch * 7 + features)
        x = Tensor(rng.normal(size=(batch, features)), requires_grad=True)
        b = Tensor(rng.normal(size=(features,)), requires_grad=True)
        ((x + b) * 2.0).sum().backward()
        assert b.grad.shape == (features,)
        assert np.allclose(b.grad, np.full(features, 2.0 * batch))

    @given(st.integers(min_value=1, max_value=5), st.integers(min_value=2, max_value=8))
    @settings(max_examples=20, deadline=None)
    def test_softmax_rows_normalised(self, rows, cols):
        rng = np.random.default_rng(rows * 13 + cols)
        x = Tensor(rng.normal(size=(rows, cols)) * 3.0)
        probs = softmax(x, axis=1).data
        assert np.all(probs >= 0)
        assert np.allclose(probs.sum(axis=1), 1.0)
