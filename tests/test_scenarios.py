"""Tests for the declarative scenario registry and its CLI integration."""

import json

import pytest

from repro.cli import build_parser, main
from repro.experiments import (
    SCENARIOS,
    Scenario,
    get_scenario,
    list_scenarios,
    register_scenario,
    run_scenario,
    scenario_from_json,
)
from repro.systolic import DEFAULT_ACCUMULATOR_FORMAT


def make_scenario(**overrides):
    payload = dict(name="test-scenario", dataset="mnist", sweep="counts",
                   values=[2, 4], trials=2)
    payload.update(overrides)
    return Scenario.from_dict(payload)


class TestScenarioValidation:
    def test_round_trip_through_json(self):
        scenario = get_scenario("nmnist-transient-bernoulli")
        restored = scenario_from_json(scenario.to_json())
        assert restored == scenario

    def test_round_trip_preserves_fault_params(self):
        scenario = make_scenario(fault_model="transient",
                                 fault_params={"process": "burst",
                                               "burst_length": 2})
        restored = Scenario.from_dict(json.loads(scenario.to_json()))
        assert restored.fault_params == scenario.fault_params
        assert dict(restored.fault_params)["process"] == "burst"

    def test_unknown_key_rejected_with_options(self):
        with pytest.raises(ValueError, match="unknown key.*typo_key.*options"):
            make_scenario(typo_key=1)

    def test_missing_fields_all_reported_at_once(self):
        with pytest.raises(ValueError, match="missing required field"):
            Scenario.from_dict({"name": "x"})
        with pytest.raises(ValueError) as excinfo:
            Scenario.from_dict({"name": "x"})
        message = str(excinfo.value)
        assert "dataset" in message and "sweep" in message and "values" in message

    def test_non_dict_payload_rejected(self):
        with pytest.raises(ValueError, match="JSON object"):
            Scenario.from_dict(["not", "a", "dict"])
        with pytest.raises(ValueError, match="parse"):
            scenario_from_json("{not json")

    @pytest.mark.parametrize("field,value,match", [
        ("dataset", "cifar", "unknown dataset"),
        ("sweep", "volts", "unknown sweep"),
        ("scale", "huge", "unknown scale"),
        ("fault_model", "cosmic", "unknown fault model"),
        ("mitigation", "prayer", "unknown mitigation"),
        ("values", [], "non-empty"),
        ("values", "abc", "non-empty"),
        ("trials", 0, "positive"),
    ])
    def test_field_validation(self, field, value, match):
        with pytest.raises(ValueError, match=match):
            make_scenario(**{field: value})

    def test_bypass_of_transient_rejected(self):
        with pytest.raises(ValueError, match="bypass.*transient"):
            make_scenario(fault_model="transient", mitigation="bypass")

    def test_fault_params_need_transient_model(self):
        with pytest.raises(ValueError, match="fault_params"):
            make_scenario(fault_params={"rate": 0.5})

    def test_unknown_config_override_rejected(self):
        with pytest.raises(ValueError, match="config_overrides"):
            make_scenario(config_overrides={"bogus_field": 1})


class TestRegistry:
    def test_builtin_scenarios_registered(self):
        names = {scenario.name for scenario in list_scenarios()}
        assert {"nmnist-transient-bernoulli",
                "dvs-gesture-transient-burst"} <= names

    def test_get_unknown_lists_available(self):
        with pytest.raises(ValueError) as excinfo:
            get_scenario("does-not-exist")
        message = str(excinfo.value)
        assert "does-not-exist" in message
        for scenario in list_scenarios():
            assert scenario.name in message

    def test_register_refuses_to_clobber(self):
        scenario = make_scenario(name="clobber-check")
        register_scenario(scenario)
        try:
            with pytest.raises(ValueError, match="already registered"):
                register_scenario(scenario)
            register_scenario(scenario, replace=True)
        finally:
            SCENARIOS.pop("clobber-check", None)


class TestCampaignGrid:
    def test_grid_matches_sweep_driver(self):
        from repro.faults import pe_count_points
        from repro.utils.rng import derive_seed

        scenario = make_scenario(fault_model="transient",
                                 fault_params={"process": "bernoulli"})
        config = scenario.build_config()
        points = scenario.campaign_points(config)
        expected = pe_count_points(
            rows=config.array_rows, cols=config.array_cols, counts=[2, 4],
            bit_position=DEFAULT_ACCUMULATOR_FORMAT.magnitude_msb,
            trials=2, stuck_type="sa1", dataset="mnist",
            seed=derive_seed(config.seed, "fig5b"),
            fault_model="transient",
            fault_params={"process": "bernoulli",
                          "num_steps": config.time_steps})
        assert points == expected

    def test_transient_num_steps_defaults_to_config(self):
        scenario = make_scenario(fault_model="transient",
                                 fault_params={"process": "burst"})
        config = scenario.build_config()
        params = dict(scenario.campaign_points(config)[0].fault_params)
        assert params["num_steps"] == config.time_steps

    def test_explicit_num_steps_wins(self):
        scenario = make_scenario(fault_model="transient",
                                 fault_params={"process": "burst",
                                               "num_steps": 2})
        params = dict(scenario.campaign_points()[0].fault_params)
        assert params["num_steps"] == 2

    def test_seed_override_changes_map_seeds(self):
        base = make_scenario().campaign_points()
        seeded = make_scenario(seed=99).campaign_points()
        assert base[0].map_seeds != seeded[0].map_seeds

    def test_all_sweeps_build_grids(self):
        bits = make_scenario(sweep="bits", values=[0, 14]).campaign_points()
        counts = make_scenario().campaign_points()
        sizes = make_scenario(sweep="sizes", values=[8, 16]).campaign_points()
        assert [p.label for p in bits] == ["bit_sweep", "bit_sweep"]
        assert [p.num_faulty for p in counts] == [2, 4]
        assert [p.rows for p in sizes] == [8, 16]


class TestCli:
    def test_scenario_flag_parses(self):
        args = build_parser().parse_args(
            ["campaign", "--scenario", "nmnist-transient-bernoulli"])
        assert args.sweep is None
        assert args.scenario == "nmnist-transient-bernoulli"

    def test_unknown_scenario_lists_available(self, capsys):
        assert main(["campaign", "--scenario", "definitely-not-real"]) == 2
        err = capsys.readouterr().err
        assert "definitely-not-real" in err
        assert "nmnist-transient-bernoulli" in err

    def test_sweep_and_scenario_are_exclusive(self, capsys):
        assert main(["campaign", "counts", "--scenario",
                     "nmnist-transient-bernoulli"]) == 2
        assert "exactly one" in capsys.readouterr().err

    def test_campaign_requires_sweep_or_scenario(self, capsys):
        assert main(["campaign"]) == 2
        assert "exactly one" in capsys.readouterr().err

    def test_list_scenarios_command(self, capsys):
        assert main(["campaign", "--list-scenarios"]) == 0
        out = capsys.readouterr().out
        for scenario in list_scenarios():
            assert scenario.name in out

    def test_scenario_end_to_end(self, tmp_path, capsys):
        out_file = tmp_path / "scenario.json"
        code = main(["campaign", "--scenario", "mnist-transient-bernoulli",
                     "--seed", "13", "--out", str(out_file)])
        assert code == 0
        captured = capsys.readouterr().out
        assert "mnist-transient-bernoulli" in captured
        payload = json.loads(out_file.read_text())
        assert [record["num_faulty_pes"] for record in payload] == [0, 2, 4, 8]
        assert all(0.0 <= record["accuracy"] <= 1.0 for record in payload)


class TestRunScenario:
    def test_run_scenario_accepts_name_and_overrides(self):
        # Shrink the built-in scenario via config_overrides so the test can
        # reuse the cached baseline trained by the CLI test (same config).
        records = run_scenario("mnist-transient-bernoulli",
                               config_overrides={"seed": 13})
        assert [record["num_faulty_pes"] for record in records] == [0, 2, 4, 8]

    def test_run_scenario_engines_agree(self, tmp_path):
        scenario = make_scenario(name="engine-agreement",
                                 fault_model="transient",
                                 fault_params={"process": "bernoulli",
                                               "rate": 0.5},
                                 values=[2], seed=13)
        fused = run_scenario(scenario, engine="fused")
        sequential = run_scenario(scenario, engine="sequential")
        assert fused == sequential
