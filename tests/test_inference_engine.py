"""Tests for the fused no-autograd inference engine.

Covers: bit-identity of the fused float64 plan with the autograd forward
across neuron types x reset modes x threshold modes, the float32 tolerance
mode, lowering errors, fault-engine equivalence with the sequential and
batched autograd paths (including bypass and clean-prefix sharing), and the
campaign-runner integration.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.autograd import Tensor, no_grad
from repro.datasets import DataLoader
from repro.faults import (
    CampaignPoint,
    CampaignRunner,
    evaluate_with_faults,
    evaluate_with_faults_batched,
    fault_maps_for_trials,
    random_fault_map,
)
from repro.faults.injection import BatchedFaultInjector, build_faulty_array
from repro.snn import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    FusedFaultEngine,
    FusedInferenceEngine,
    IFNode,
    LIFNode,
    Linear,
    LoweringError,
    MaxPool2d,
    Module,
    PLIFNode,
    Sequential,
    SpikingClassifier,
    build_model_for_dataset,
    compile_for_inference,
    lower_plan,
)
from repro.snn.inference.plan import NeuronSpec
from repro.systolic import BatchedSystolicArray, DEFAULT_ACCUMULATOR_FORMAT

FMT = DEFAULT_ACCUMULATOR_FORMAT


def _autograd_rates(model, x) -> np.ndarray:
    model.eval()
    with no_grad():
        return model(Tensor(x)).data


def _make_neuron(kind: str, v_reset, learnable: bool):
    kwargs = dict(v_reset=v_reset, learnable_threshold=learnable, v_threshold=0.8)
    if kind == "if":
        return IFNode(**kwargs)
    if kind == "lif":
        return LIFNode(tau=1.7, **kwargs)
    return PLIFNode(init_tau=1.4, **kwargs)


# ----------------------------------------------------------------------
# Clean engine: float64 bit-identity with the autograd forward
# ----------------------------------------------------------------------
class TestCleanEngineBitIdentity:
    @pytest.mark.parametrize("kind", ["if", "lif", "plif"])
    @pytest.mark.parametrize("v_reset", [0.0, None], ids=["hard", "soft"])
    @pytest.mark.parametrize("learnable", [False, True], ids=["fixed", "learnable"])
    def test_neuron_grid(self, kind, v_reset, learnable, rng):
        layers = Sequential(
            Linear(12, 10, rng=rng),
            _make_neuron(kind, v_reset, learnable),
            Linear(10, 4, rng=rng),
            _make_neuron(kind, v_reset, learnable),
        )
        model = SpikingClassifier(layers, time_steps=5)
        x = rng.random((7, 12))
        reference = _autograd_rates(model, x)
        fused = FusedInferenceEngine(model).run(x)
        assert reference.tobytes() == fused.tobytes()

    def test_conv_classifier(self, rng):
        model, _ = build_model_for_dataset("mnist", channels=6, hidden_units=32,
                                           time_steps=3, seed=5)
        x = rng.random((4, 1, 16, 16))
        reference = _autograd_rates(model, x)
        fused = compile_for_inference(model).run(x)
        assert reference.tobytes() == fused.tobytes()

    def test_max_pool_and_dropout_eval(self, rng):
        layers = Sequential(
            Conv2d(1, 3, kernel_size=3, padding=1, rng=rng),
            BatchNorm2d(3),
            PLIFNode(init_tau=1.3),
            MaxPool2d(2),
            Flatten(),
            Dropout(0.5, rng=rng),
            Linear(3 * 4 * 4, 5, rng=rng),
            PLIFNode(init_tau=1.3),
        )
        model = SpikingClassifier(layers, time_steps=4)
        x = rng.random((3, 1, 8, 8))
        reference = _autograd_rates(model, x)
        fused = FusedInferenceEngine(model).run(x)
        assert reference.tobytes() == fused.tobytes()

    def test_event_input_time_major(self, rng):
        model, _ = build_model_for_dataset("nmnist", channels=4, hidden_units=16,
                                           time_steps=3, seed=2)
        # 5D event input (T, batch, C, H, W) overrides the model's T.
        x = (rng.random((6, 2, 2, 16, 16)) > 0.7).astype(np.float64)
        reference = _autograd_rates(model, x)
        fused = compile_for_inference(model).run(x)
        assert reference.tobytes() == fused.tobytes()

    def test_batch_norm_running_stats_respected(self, rng):
        layers = Sequential(Conv2d(1, 3, kernel_size=3, padding=1, rng=rng),
                            BatchNorm2d(3), PLIFNode(init_tau=1.3),
                            Flatten(), Linear(3 * 16, 4, rng=rng),
                            PLIFNode(init_tau=1.3))
        model = SpikingClassifier(layers, time_steps=2)
        # Perturb running statistics away from their init to catch engines
        # that quietly recompute batch statistics.
        bn = layers[1]
        bn.running_mean[...] = rng.normal(size=3)
        bn.running_var[...] = 1.0 + rng.random(3)
        x = rng.random((5, 1, 4, 4))
        reference = _autograd_rates(model, x)
        fused = FusedInferenceEngine(model).run(x)
        assert reference.tobytes() == fused.tobytes()

    def test_predict_and_evaluate_match_model(self, trained_tiny_model,
                                              tiny_mnist_loaders):
        _, test_loader = tiny_mnist_loaders
        engine = compile_for_inference(trained_tiny_model)
        inputs, labels = next(iter(test_loader))
        assert np.array_equal(engine.predict(inputs),
                              trained_tiny_model.predict(inputs))
        correct = total = 0
        for inputs, labels in test_loader:
            correct += int(np.sum(trained_tiny_model.predict(inputs) == labels))
            total += labels.shape[0]
        assert engine.evaluate(test_loader) == correct / total

    @settings(max_examples=15, deadline=None)
    @given(data=st.data(),
           kind=st.sampled_from(["if", "lif", "plif"]),
           v_reset=st.sampled_from([0.0, -0.2, None]),
           steps=st.integers(min_value=1, max_value=6))
    def test_neuron_dynamics_property(self, data, kind, v_reset, steps):
        """Fused neuron updates are bit-identical over arbitrary drive."""

        seed = data.draw(st.integers(min_value=0, max_value=2**31 - 1))
        gen = np.random.default_rng(seed)
        layers = Sequential(_make_neuron(kind, v_reset, learnable=False))
        model = SpikingClassifier(layers, time_steps=steps)
        x = gen.normal(scale=1.5, size=(steps, 3, 8))  # time-major drive
        reference = _autograd_rates(model, x)
        fused = FusedInferenceEngine(model).run(x)
        assert reference.tobytes() == fused.tobytes()


# ----------------------------------------------------------------------
# float32 tolerance mode
# ----------------------------------------------------------------------
class TestFloat32Mode:
    def test_rates_close_and_predictions_mostly_agree(self, trained_tiny_model,
                                                      tiny_mnist_loaders):
        _, test_loader = tiny_mnist_loaders
        inputs, _ = next(iter(test_loader))
        rates64 = compile_for_inference(trained_tiny_model).run(inputs)
        rates32 = compile_for_inference(trained_tiny_model, dtype="float32").run(inputs)
        assert rates32.dtype == np.float32
        # Away from spike-threshold flips the two dtypes agree to rounding;
        # a flip changes a rate by 1/T, so compare distributionally.
        diff = np.abs(rates64 - rates32)
        assert np.median(diff) < 1e-6
        assert np.mean(diff) < 0.02
        agree = np.mean(np.argmax(rates64, axis=1) == np.argmax(rates32, axis=1))
        assert agree >= 0.9

    def test_float32_fault_accuracies_close(self, trained_tiny_model,
                                            tiny_mnist_loaders):
        _, test_loader = tiny_mnist_loaders
        maps = fault_maps_for_trials(16, 16, 4, 3, bit_position=FMT.magnitude_msb,
                                     stuck_type="sa1", seed=5)
        acc64 = evaluate_with_faults_batched(trained_tiny_model, test_loader,
                                             fault_maps=maps)
        acc32 = evaluate_with_faults_batched(trained_tiny_model, test_loader,
                                             fault_maps=maps, dtype="float32")
        assert np.allclose(acc64, acc32, atol=0.1)

    def test_unknown_dtype_rejected(self, trained_tiny_model):
        with pytest.raises(ValueError):
            compile_for_inference(trained_tiny_model, dtype="float16")


# ----------------------------------------------------------------------
# Lowering
# ----------------------------------------------------------------------
class TestLowering:
    def test_unsupported_module_raises(self):
        class Custom(Module):
            def forward(self, x):
                return x

        model = SpikingClassifier(Sequential(Custom()), time_steps=2)
        with pytest.raises(LoweringError):
            lower_plan(model)

    def test_bare_stack_without_time_steps_raises(self, rng):
        with pytest.raises(LoweringError):
            lower_plan(Sequential(Linear(4, 2, rng=rng)))

    def test_plan_structure(self):
        model, _ = build_model_for_dataset("mnist", channels=6, hidden_units=32,
                                           time_steps=3, seed=5)
        plan = lower_plan(model)
        affine = plan.affine_specs
        # encoder conv + 2 block convs + 2 FC layers
        assert [spec.kind for spec in affine] == ["conv"] * 3 + ["linear"] * 2
        assert [spec.index for spec in affine] == list(range(5))
        assert plan.num_affine == 5
        # dropout lowers to nothing
        assert all(not isinstance(op, type(None)) for op in plan.ops)
        # static prefix = encoder conv + batch norm (everything before PLIF #1)
        assert plan.static_prefix == 2
        assert sum(isinstance(op, NeuronSpec) for op in plan.ops) == 5

    def test_plif_cell_constants(self):
        node = PLIFNode(init_tau=1.6, v_threshold=0.9)
        assert node._inference_inv_tau() == pytest.approx(1.0 / 1.6)
        assert node.tau == pytest.approx(1.6)


# ----------------------------------------------------------------------
# Fault engine equivalence
# ----------------------------------------------------------------------
class TestFaultEngineEquivalence:
    @pytest.mark.parametrize("bypass", [False, True], ids=["faulty", "bypassed"])
    def test_matches_sequential_autograd(self, trained_tiny_model,
                                         tiny_mnist_loaders, bypass):
        _, test_loader = tiny_mnist_loaders
        maps = fault_maps_for_trials(16, 16, 5, 5, bit_position=FMT.magnitude_msb,
                                     stuck_type="sa1", seed=7)
        sequential = [
            evaluate_with_faults(trained_tiny_model, test_loader, fault_map=m,
                                 bypass=bypass, engine="autograd")
            for m in maps
        ]
        fused = evaluate_with_faults_batched(trained_tiny_model, test_loader,
                                             fault_maps=maps, bypass=bypass,
                                             engine="fused")
        assert fused == sequential

    def test_single_map_fused_matches_autograd(self, trained_tiny_model,
                                               tiny_mnist_loaders):
        _, test_loader = tiny_mnist_loaders
        fm = random_fault_map(16, 16, 8, bit_position=FMT.magnitude_msb,
                              stuck_type="sa1", seed=3)
        autograd = evaluate_with_faults(trained_tiny_model, test_loader,
                                        fault_map=fm, engine="autograd")
        fused = evaluate_with_faults(trained_tiny_model, test_loader, fault_map=fm)
        assert fused == autograd

    def test_rates_bit_identical_to_batched_injector(self, trained_tiny_model,
                                                     tiny_mnist_loaders):
        _, test_loader = tiny_mnist_loaders
        maps = fault_maps_for_trials(16, 16, 2, 6, bit_position=FMT.magnitude_msb,
                                     stuck_type="sa1", seed=11)
        arrays = [build_faulty_array(m) for m in maps]
        batched_array = BatchedSystolicArray.from_fault_maps(maps)
        inputs, _ = next(iter(test_loader))
        trained_tiny_model.eval()
        with BatchedFaultInjector(trained_tiny_model, batched_array), no_grad():
            reference = trained_tiny_model(Tensor(inputs)).data
        reference = reference.reshape(len(maps), -1, 10)
        engine = FusedFaultEngine(trained_tiny_model, arrays)
        rates = engine.run(inputs)
        assert reference.tobytes() == rates.tobytes()

    def test_clean_prefix_sharing_structure(self, trained_tiny_model):
        """Maps whose faults miss the early layers fork late (or never)."""

        from repro.faults import StuckAtFault

        fault = StuckAtFault(FMT.magnitude_msb, "sa1")
        clean = random_fault_map(16, 16, 0, seed=0)
        # Column 12 holds no output feature of the 6-channel conv layers
        # (out_features = 6 < 16 columns), so this map must not fork there.
        fc_only = random_fault_map(16, 16, 0, seed=1)
        fc_only.add(3, 12, fault)
        conv_hit = random_fault_map(16, 16, 0, seed=2)
        conv_hit.add(5, 2, fault)
        arrays = [build_faulty_array(m) for m in (clean, fc_only, conv_hit)]
        engine = FusedFaultEngine(trained_tiny_model, arrays)
        assert engine._divergence[0] is None          # never forks
        assert engine._divergence[1] == 3             # first FC layer (index 3)
        assert engine._divergence[2] == 0             # encoder conv
        assert engine.fork_order == [2, 1]

    def test_never_forking_map_equals_clean_accuracy(self, trained_tiny_model,
                                                     tiny_mnist_loaders):
        _, test_loader = tiny_mnist_loaders
        clean_map = random_fault_map(16, 16, 0, seed=0)
        faulty_map = random_fault_map(16, 16, 10, bit_position=FMT.magnitude_msb,
                                      stuck_type="sa1", seed=4)
        accuracies = evaluate_with_faults_batched(
            trained_tiny_model, test_loader, fault_maps=[clean_map, faulty_map])
        sequential = [
            evaluate_with_faults(trained_tiny_model, test_loader, fault_map=m,
                                 engine="autograd")
            for m in (clean_map, faulty_map)
        ]
        assert accuracies == sequential

    def test_event_input_faulty_equivalence(self, trained_tiny_model, rng):
        maps = fault_maps_for_trials(16, 16, 4, 3, bit_position=FMT.magnitude_msb,
                                     stuck_type="sa1", seed=6)
        x = (rng.random((4, 3, 1, 16, 16)) > 0.6).astype(np.float64)
        batched_array = BatchedSystolicArray.from_fault_maps(maps)
        trained_tiny_model.eval()
        with BatchedFaultInjector(trained_tiny_model, batched_array), no_grad():
            reference = trained_tiny_model(Tensor(x)).data.reshape(len(maps), 3, 10)
        engine = FusedFaultEngine(trained_tiny_model,
                                  [build_faulty_array(m) for m in maps])
        assert reference.tobytes() == engine.run(x).tobytes()

    def test_chunked_chain_path_matches_sequential(self, rng, monkeypatch):
        """Chain chunking (block=1) reproduces the unchunked results.

        Regression test: chunks whose chains all have zero applied sites in
        a partial tile must take the tail-only branch even when other
        chunks of the group do not.
        """

        import repro.systolic.array as systolic_array

        from repro.faults import StuckAtFault

        layers = Sequential(Linear(5, 3, rng=rng), PLIFNode(init_tau=1.3))
        model = SpikingClassifier(layers, time_steps=3)
        fault = StuckAtFault(FMT.magnitude_msb, "sa1")
        # 4x4 array, in_features=5 -> tiles of 4 and 1 rows.  Map A's fault
        # (row 0) applies in both tiles; map B's fault (row 2) has no site
        # in the 1-row tail tile.
        map_a = random_fault_map(4, 4, 0, seed=0)
        map_a.add(0, 0, fault)
        map_b = random_fault_map(4, 4, 0, seed=0)
        map_b.add(2, 0, fault)
        maps = [map_a, map_b]
        data = rng.random((6, 5)) * 2.0
        labels = np.zeros(6, dtype=np.int64)
        loader = [(data, labels)]
        sequential = [evaluate_with_faults(model, loader, fault_map=m,
                                           engine="autograd") for m in maps]
        monkeypatch.setattr(systolic_array, "_CHAIN_BLOCK_ELEMENTS", 1)
        arrays = [build_faulty_array(m) for m in maps]
        fused = FusedFaultEngine(model, arrays).evaluate(loader)
        assert fused == sequential
        # Rates too, against the (equally chunked) batched injector.
        model.eval()
        with BatchedFaultInjector(
                model, BatchedSystolicArray.from_fault_maps(maps)), no_grad():
            reference = model(Tensor(data)).data.reshape(2, 6, 3)
        rates = FusedFaultEngine(model, arrays).run(data)
        assert reference.tobytes() == rates.tobytes()

    def test_requires_arrays(self, trained_tiny_model):
        with pytest.raises(ValueError):
            FusedFaultEngine(trained_tiny_model, [])

    def test_invalid_engine_rejected(self, trained_tiny_model, tiny_mnist_loaders):
        _, test_loader = tiny_mnist_loaders
        fm = random_fault_map(8, 8, 2, seed=1)
        with pytest.raises(ValueError):
            evaluate_with_faults(trained_tiny_model, test_loader, fault_map=fm,
                                 engine="turbo")
        with pytest.raises(ValueError):
            evaluate_with_faults(trained_tiny_model, test_loader, fault_map=fm,
                                 engine="autograd", dtype="float32")


# ----------------------------------------------------------------------
# Campaign integration
# ----------------------------------------------------------------------
class TestCampaignIntegration:
    def test_fused_records_match_other_engines(self, trained_tiny_model,
                                               tiny_mnist_loaders):
        _, test_loader = tiny_mnist_loaders
        points = [
            CampaignPoint.for_trials(16, 16, count, trials=3,
                                     bit_position=FMT.magnitude_msb,
                                     stuck_type="sa1", seed=20 + count)
            for count in (2, 6)
        ]
        records = {}
        for engine in ("fused", "batched", "sequential"):
            runner = CampaignRunner(trained_tiny_model, test_loader, engine=engine)
            records[engine] = runner.run(points)
        assert records["fused"] == records["batched"]
        assert records["fused"] == records["sequential"]

    def test_fused_baseline_accuracy_matches_software(self, trained_tiny_model,
                                                      tiny_mnist_loaders):
        from repro.faults import baseline_accuracy

        _, test_loader = tiny_mnist_loaders
        runner = CampaignRunner(trained_tiny_model, test_loader, engine="fused")
        assert runner.baseline_accuracy() == baseline_accuracy(
            trained_tiny_model, test_loader)

    def test_float32_requires_fused(self, trained_tiny_model, tiny_mnist_loaders):
        _, test_loader = tiny_mnist_loaders
        with pytest.raises(ValueError):
            CampaignRunner(trained_tiny_model, test_loader, engine="batched",
                           dtype="float32")

    def test_float32_gets_its_own_cache_key(self, trained_tiny_model,
                                            tiny_mnist_loaders):
        _, test_loader = tiny_mnist_loaders
        point = CampaignPoint.for_trials(16, 16, 4, trials=2, seed=1)
        runner64 = CampaignRunner(trained_tiny_model, test_loader)
        runner32 = CampaignRunner(trained_tiny_model, test_loader, dtype="float32")
        payload64 = runner64._cache_payload(point)
        payload32 = runner32._cache_payload(point)
        assert "dtype" not in payload64  # float64 keeps historic cache keys
        assert payload32["dtype"] == "float32"


# ----------------------------------------------------------------------
# Neuron-layer satellites (cached constants, PLIF tau)
# ----------------------------------------------------------------------
class TestNeuronCaches:
    def test_hard_reset_constant_reused_across_steps(self, rng):
        node = LIFNode(tau=1.5, v_reset=0.3)
        x = Tensor(rng.random((4, 6)) * 2.0)
        node(x)
        first = node._reset_cache
        assert first is not None and first[1].shape == (4, 6)
        node(x)
        assert node._reset_cache is first
        # New state shape -> new cached constant.
        node.reset_state()
        node(Tensor(rng.random((2, 6))))
        assert node._reset_cache is not first
        assert float(node._reset_cache[1].data[0, 0]) == 0.3

    def test_hard_reset_cache_tracks_v_reset_mutation(self):
        node = IFNode(v_threshold=0.5, v_reset=0.0)
        drive = Tensor(np.full((2, 3), 1.0))
        node(drive)
        assert np.all(node.v.data == 0.0)  # fired, pinned to v_reset=0.0
        # Direct attribute mutation (as the reset-mode ablation does).
        node.v_reset = 0.25
        node.reset_state()
        node(drive)
        assert np.all(node.v.data == 0.25)

    def test_fixed_threshold_cache_invalidated_on_set(self, rng):
        node = IFNode(v_threshold=1.0)
        x = Tensor(rng.random((2, 3)))
        node(x)
        cached = node._threshold_cache
        assert cached is not None and float(cached.data) == 1.0
        node.set_threshold(0.5)
        node.reset_state()
        spikes = node(Tensor(np.full((2, 3), 0.75)))
        assert float(node.threshold_tensor().data) == 0.5
        assert np.all(spikes.data == 1.0)  # 0.75 > 0.5 threshold

    def test_plif_tau_simplification(self):
        for init_tau in (1.1, 1.5, 2.0, 4.0):
            node = PLIFNode(init_tau=init_tau)
            assert node.tau == pytest.approx(init_tau, rel=1e-12)
            w = float(node.w.data)
            assert node.tau == 1.0 + np.exp(-w)
