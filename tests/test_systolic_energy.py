"""Tests for the energy / area model of the systolicSNN accelerator."""

import numpy as np
import pytest

from repro.systolic import (
    BYPASS_AREA_OVERHEAD,
    EnergyModel,
    LayerWorkload,
    compare_snn_vs_ann,
)


WORKLOADS = [
    LayerWorkload("conv1", out_features=8, in_features=72, vectors=512),
    LayerWorkload("fc1", out_features=32, in_features=128, vectors=16),
]


class TestEnergyModel:
    def test_invalid_widths(self):
        with pytest.raises(ValueError):
            EnergyModel(accumulator_bits=0)

    def test_snn_pe_cheaper_than_ann_pe(self):
        model = EnergyModel()
        assert model.snn_accumulate_pj < model.ann_mac_pj
        assert model.pe_energy_ratio > 5.0

    def test_wider_accumulator_costs_more(self):
        narrow = EnergyModel(accumulator_bits=8)
        wide = EnergyModel(accumulator_bits=32)
        assert wide.snn_accumulate_pj > narrow.snn_accumulate_pj

    def test_layer_energy_scales_with_spike_rate(self):
        model = EnergyModel()
        dense = model.layer_energy_pj(WORKLOADS[0], spike_rate=1.0)
        sparse = model.layer_energy_pj(WORKLOADS[0], spike_rate=0.1)
        assert sparse < dense

    def test_layer_energy_invalid_args(self):
        model = EnergyModel()
        with pytest.raises(ValueError):
            model.layer_energy_pj(WORKLOADS[0], spike_rate=1.5)
        with pytest.raises(ValueError):
            model.layer_energy_pj(WORKLOADS[0], style="tpu")

    def test_ann_ignores_spike_rate(self):
        model = EnergyModel()
        assert model.layer_energy_pj(WORKLOADS[0], 0.1, style="ann") == pytest.approx(
            model.layer_energy_pj(WORKLOADS[0], 1.0, style="ann"))

    def test_network_energy_sums_layers(self):
        model = EnergyModel()
        total = model.network_energy_pj(WORKLOADS)
        parts = sum(model.layer_energy_pj(w) for w in WORKLOADS)
        assert total == pytest.approx(parts)

    def test_network_energy_rate_length_mismatch(self):
        model = EnergyModel()
        with pytest.raises(ValueError):
            model.network_energy_pj(WORKLOADS, spike_rates=[0.5])


class TestAreaModel:
    def test_snn_array_smaller_than_ann(self):
        model = EnergyModel()
        assert model.array_area(32, 32, style="snn") < model.array_area(32, 32, style="ann")

    def test_bypass_overhead_matches_paper(self):
        model = EnergyModel()
        overhead = model.bypass_area_overhead(256, 256)
        assert overhead == pytest.approx(BYPASS_AREA_OVERHEAD)
        assert overhead == pytest.approx(0.08)

    def test_invalid_style_and_dims(self):
        model = EnergyModel()
        with pytest.raises(ValueError):
            model.array_area(0, 4)
        with pytest.raises(ValueError):
            model.array_area(4, 4, style="gpu")

    def test_invalid_style_rejected_before_area_selection(self):
        """Style validation must precede the per-PE area pick, for every flag."""

        model = EnergyModel()
        for with_bypass in (False, True):
            with pytest.raises(ValueError, match="style"):
                model.array_area(4, 4, style="tpu", with_bypass=with_bypass)
        # Valid styles still pick the matching per-PE area.
        assert model.array_area(2, 2, style="ann") > model.array_area(2, 2,
                                                                      style="snn")


class TestComparison:
    def test_compare_summary_keys_and_ordering(self):
        summary = compare_snn_vs_ann(WORKLOADS, rows=16, cols=16, spike_rates=[0.2, 0.1])
        assert summary["snn_energy_pj"] < summary["ann_energy_pj"]
        assert summary["energy_ratio_ann_over_snn"] > 1.0
        assert summary["total_cycles"] > 0
        assert 0.0 <= summary["average_utilization"] <= 1.0
        assert summary["bypass_area_overhead"] == pytest.approx(0.08)
