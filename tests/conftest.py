"""Shared fixtures for the test-suite.

The expensive fixtures (a trained tiny model per dataset) are session-scoped
so the many mitigation / fault-injection tests reuse one short training run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import DataLoader, load_dataset
from repro.snn import Adam, Trainer, build_model_for_dataset
from repro.utils.rng import get_rng


TINY_MNIST_KWARGS = dict(num_train=120, num_test=50, seed=11, max_shift=1, noise_std=0.04)


@pytest.fixture(scope="session")
def rng():
    return get_rng(123)


@pytest.fixture(scope="session")
def tiny_mnist_data():
    """Small synthetic MNIST train/test split shared across tests."""

    return load_dataset("mnist", **TINY_MNIST_KWARGS)


@pytest.fixture(scope="session")
def tiny_mnist_loaders(tiny_mnist_data):
    train, test = tiny_mnist_data
    train_loader = DataLoader(train, batch_size=12, shuffle=True, seed=3)
    test_loader = DataLoader(test, batch_size=50)
    return train_loader, test_loader


def build_tiny_mnist_model(seed: int = 5):
    """Small MNIST PLIF-SNN used throughout the tests (untrained)."""

    model, config = build_model_for_dataset(
        "mnist", channels=6, hidden_units=32, time_steps=3, seed=seed)
    return model, config


@pytest.fixture()
def tiny_model():
    model, _ = build_tiny_mnist_model()
    return model


@pytest.fixture(scope="session")
def trained_tiny_model_state(tiny_mnist_data):
    """State dict of a tiny MNIST model trained to high accuracy (shared, read-only).

    Fresh data loaders are built here (rather than reusing the shared loader
    fixture) so the training run does not depend on how many times other
    tests have advanced the shared loader's shuffle stream.
    """

    train, test = tiny_mnist_data
    train_loader = DataLoader(train, batch_size=12, shuffle=True, seed=3)
    test_loader = DataLoader(test, batch_size=50)
    model, _ = build_tiny_mnist_model()
    trainer = Trainer(model, Adam(model.parameters(), lr=2.5e-2), num_classes=10)
    history = trainer.fit(train_loader, epochs=10, test_loader=test_loader)
    return {
        "state": model.state_dict(),
        "test_accuracy": history.test_accuracy[-1],
    }


@pytest.fixture()
def trained_tiny_model(trained_tiny_model_state):
    """A fresh tiny MNIST model loaded with the shared trained weights."""

    model, _ = build_tiny_mnist_model()
    model.load_state_dict(trained_tiny_model_state["state"])
    return model
