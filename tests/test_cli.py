"""Tests for the command-line interface (``python -m repro``)."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0

    def test_run_requires_known_experiment(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["run", "fig99"])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "fig5b"])
        assert args.dataset == "mnist"
        assert args.scale == "small"


class TestCommands:
    def test_no_command_prints_help(self, capsys):
        assert main([]) == 2
        assert "usage" in capsys.readouterr().out.lower()

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig7" in out and "Figure 7" in out

    def test_info_command(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "mnist" in out and "dvs_gesture" in out

    def test_run_command_small_experiment(self, tmp_path, capsys):
        # fig5c with the tiny seed-overridden config is the cheapest registered
        # experiment that still trains a baseline; restrict it further by seed
        # only (sizes are fixed by the driver defaults).  To keep the test fast
        # we run the ablation-accumulator experiment instead, which reuses the
        # cached baseline from other tests when available.
        out_file = tmp_path / "records.json"
        code = main(["run", "ablation-accumulator", "--dataset", "mnist",
                     "--seed", "13", "--out", str(out_file)])
        assert code == 0
        captured = capsys.readouterr().out
        assert "ablation-accumulator" in captured
        payload = json.loads(out_file.read_text())
        assert isinstance(payload, list) and payload
        assert {"total_bits", "accuracy"} <= set(payload[0])
