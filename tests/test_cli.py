"""Tests for the command-line interface (``python -m repro``)."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0

    def test_run_requires_known_experiment(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["run", "fig99"])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "fig5b"])
        assert args.dataset == "mnist"
        assert args.scale == "small"


class TestCommands:
    def test_no_command_prints_help(self, capsys):
        assert main([]) == 2
        assert "usage" in capsys.readouterr().out.lower()

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig7" in out and "Figure 7" in out

    def test_info_command(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "mnist" in out and "dvs_gesture" in out

    def test_run_command_small_experiment(self, tmp_path, capsys):
        # fig5c with the tiny seed-overridden config is the cheapest registered
        # experiment that still trains a baseline; restrict it further by seed
        # only (sizes are fixed by the driver defaults).  To keep the test fast
        # we run the ablation-accumulator experiment instead, which reuses the
        # cached baseline from other tests when available.
        out_file = tmp_path / "records.json"
        code = main(["run", "ablation-accumulator", "--dataset", "mnist",
                     "--seed", "13", "--out", str(out_file)])
        assert code == 0
        captured = capsys.readouterr().out
        assert "ablation-accumulator" in captured
        payload = json.loads(out_file.read_text())
        assert isinstance(payload, list) and payload
        assert {"total_bits", "accuracy"} <= set(payload[0])


class TestCampaignCommand:
    def test_campaign_parser_defaults(self):
        args = build_parser().parse_args(["campaign", "counts"])
        assert args.sweep == "counts"
        assert args.engine == "fused"
        assert args.dtype == "float64"
        assert args.workers == 1
        assert args.cache_dir is None

    def test_campaign_parser_lists(self):
        args = build_parser().parse_args(
            ["campaign", "bits", "--bits", "0,4,14", "--engine", "sequential",
             "--workers", "3", "--trials", "2"])
        assert args.bits == [0, 4, 14]
        assert args.engine == "sequential"
        assert args.workers == 3

    def test_campaign_rejects_unknown_sweep(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign", "volts"])

    def test_run_accepts_engine_flags(self):
        args = build_parser().parse_args(
            ["run", "fig5b", "--engine", "sequential", "--workers", "2"])
        assert args.engine == "sequential" and args.workers == 2

    def test_unit_timeout_flag_parses_and_threads_through(self):
        from repro.cli import _engine_kwargs_for
        from repro.faults import sweep_faulty_pe_count

        args = build_parser().parse_args(
            ["campaign", "counts", "--unit-timeout", "15", "--workers", "2"])
        assert args.unit_timeout == 15.0
        kwargs = _engine_kwargs_for(sweep_faulty_pe_count, args)
        assert kwargs["unit_timeout"] == 15.0
        # Default: no deadline override (derived from observed timings).
        args = build_parser().parse_args(["campaign", "counts"])
        assert args.unit_timeout is None

    def test_campaign_counts_end_to_end(self, tmp_path, capsys):
        out_file = tmp_path / "campaign.json"
        code = main(["campaign", "counts", "--dataset", "mnist", "--seed", "13",
                     "--counts", "0,4", "--trials", "2",
                     "--cache-dir", str(tmp_path / "cache"),
                     "--out", str(out_file)])
        assert code == 0
        captured = capsys.readouterr().out
        assert "campaign" in captured and "num_faulty_pes" in captured
        payload = json.loads(out_file.read_text())
        assert [record["num_faulty_pes"] for record in payload] == [0, 4]
        assert (tmp_path / "cache").is_dir()

    def test_campaign_engines_agree(self, tmp_path):
        out_a = tmp_path / "batched.json"
        out_b = tmp_path / "sequential.json"
        base = ["campaign", "counts", "--dataset", "mnist", "--seed", "13",
                "--counts", "2", "--trials", "2"]
        assert main(base + ["--engine", "batched", "--out", str(out_a)]) == 0
        assert main(base + ["--engine", "sequential", "--out", str(out_b)]) == 0
        assert json.loads(out_a.read_text()) == json.loads(out_b.read_text())
